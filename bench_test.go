// Benchmarks regenerating every table and figure of the paper on a
// reduced, seeded corpus (same 60 classes, fewer graphs — the full
// 2100-graph run is cmd/schedbench). Each BenchmarkTableN times the
// aggregation pipeline for that table and reports its headline numbers
// via b.ReportMetric, so `go test -bench=.` prints a compact version
// of the paper's evaluation. Scheduling-throughput and ablation
// benchmarks follow.
package schedcomp

import (
	"strconv"
	"sync"
	"testing"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
	"schedcomp/internal/dup"
	"schedcomp/internal/experiments"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/clans"
	"schedcomp/internal/heuristics/hu"
	"schedcomp/internal/heuristics/mcp"
	"schedcomp/internal/stats"
)

var (
	benchOnce sync.Once
	benchCorp *corpus.Corpus
	benchEval *core.Evaluation
)

// benchSetup builds the shared reduced corpus and its evaluation once.
func benchSetup(b *testing.B) (*corpus.Corpus, *core.Evaluation) {
	b.Helper()
	benchOnce.Do(func() {
		spec := corpus.Spec{Seed: 1994, GraphsPerSet: 6, MinNodes: 40, MaxNodes: 90}
		c, err := corpus.Generate(spec)
		if err != nil {
			panic(err)
		}
		ev, err := core.Evaluate(c, core.Options{})
		if err != nil {
			panic(err)
		}
		benchCorp, benchEval = c, ev
	})
	return benchCorp, benchEval
}

// reportRow publishes one table row's per-heuristic values as metrics:
// <heuristic>_<label> = value.
func reportRow(b *testing.B, tbl *stats.Table, rowLabel, suffix string) {
	b.Helper()
	for _, row := range tbl.Rows {
		if row[0] != rowLabel {
			continue
		}
		for i, h := range tbl.Columns[1:] {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				b.Fatalf("cell %q: %v", row[i+1], err)
			}
			b.ReportMetric(v, h+"_"+suffix)
		}
		return
	}
	b.Fatalf("row %q not found in %s", rowLabel, tbl.Title)
}

func BenchmarkTable1Corpus(b *testing.B) {
	c, _ := benchSetup(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table1(c).Rows)
	}
	b.ReportMetric(float64(rows), "classes")
	b.ReportMetric(float64(c.NumGraphs()), "graphs")
}

func BenchmarkTable2SpeedupLT1ByGranularity(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table2(ev)
	}
	// Paper Table 2, first row: CLANS 0, others fail on >50% of the
	// fine-grained graphs.
	reportRow(b, tbl, "G < 0.08", "lt1_fineG")
}

func BenchmarkTable3Fig1RelTimeByGranularity(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table3(ev)
	}
	reportRow(b, tbl, "G < 0.08", "rel_fineG")
}

func BenchmarkTable4Fig2SpeedupByGranularity(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table4(ev)
	}
	reportRow(b, tbl, "2 < G", "speedup_coarseG")
}

func BenchmarkTable5Fig3EfficiencyByGranularity(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table5(ev)
	}
	reportRow(b, tbl, "G < 0.08", "eff_fineG")
}

func BenchmarkTable6SpeedupLT1ByWeightRange(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table6(ev)
	}
	reportRow(b, tbl, "20-400", "lt1_w400")
}

func BenchmarkTable7Fig4RelTimeByWeightRange(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table7(ev)
	}
	reportRow(b, tbl, "20-400", "rel_w400")
}

func BenchmarkTable8Fig5SpeedupByWeightRange(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table8(ev)
	}
	reportRow(b, tbl, "20-100", "speedup_w100")
}

func BenchmarkTable9Fig6EfficiencyByWeightRange(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table9(ev)
	}
	reportRow(b, tbl, "20-100", "eff_w100")
}

func BenchmarkTable10SpeedupLT1ByAnchor(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table10(ev)
	}
	reportRow(b, tbl, "A = 2", "lt1_anchor2")
}

func BenchmarkTable11RelTimeByAnchor(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.Table11(ev)
	}
	reportRow(b, tbl, "A = 5", "rel_anchor5")
}

func BenchmarkFiguresRender(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for _, f := range experiments.AllFigures(ev) {
			total += len(f)
		}
	}
	b.ReportMetric(float64(total), "chart_bytes")
}

// --- scheduling throughput -------------------------------------------------

// benchGraph is a fixed, representative mid-granularity PDG.
func benchGraph() *Graph {
	return gen.MustGenerate(gen.Params{
		Nodes: 100, Anchor: 3, WMin: 20, WMax: 200,
		Gran: gen.Band{Lo: 0.2, Hi: 0.8},
	}, 77)
}

func benchSchedule(b *testing.B, name string) {
	g := benchGraph()
	s, err := heuristics.New(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleCLANS(b *testing.B) { benchSchedule(b, "CLANS") }
func BenchmarkScheduleDSC(b *testing.B)   { benchSchedule(b, "DSC") }
func BenchmarkScheduleMCP(b *testing.B)   { benchSchedule(b, "MCP") }
func BenchmarkScheduleMH(b *testing.B)    { benchSchedule(b, "MH") }
func BenchmarkScheduleHU(b *testing.B)    { benchSchedule(b, "HU") }

func BenchmarkGenerateGraph(b *testing.B) {
	p := gen.Params{Nodes: 100, Anchor: 3, WMin: 20, WMax: 200, Gran: gen.Band{Lo: 0.2, Hi: 0.8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.MustGenerate(p, int64(i))
	}
}

// --- ablations --------------------------------------------------------------

// meanSpeedupOver evaluates a single scheduler over one graph per
// corpus class and returns the mean speedup.
func meanSpeedupOver(b *testing.B, factory func() heuristics.Scheduler) float64 {
	c, _ := benchSetup(b)
	var acc stats.Acc
	s := factory()
	for _, set := range c.Sets {
		g := set.Graphs[0]
		sc, err := heuristics.Run(s, g)
		if err != nil {
			b.Fatal(err)
		}
		acc.Add(sc.Speedup())
	}
	return acc.Mean()
}

// BenchmarkAblationCLANSSpeedupCheck quantifies the per-linear-node
// speedup check: without it CLANS parallelizes unconditionally and
// loses its never-below-serial guarantee.
func BenchmarkAblationCLANSSpeedupCheck(b *testing.B) {
	var withCheck, without float64
	for i := 0; i < b.N; i++ {
		withCheck = meanSpeedupOver(b, func() heuristics.Scheduler { return clans.New() })
		without = meanSpeedupOver(b, func() heuristics.Scheduler { return &clans.CLANS{SpeedupCheck: false} })
	}
	b.ReportMetric(withCheck, "speedup_guarded")
	b.ReportMetric(without, "speedup_unguarded")
}

// BenchmarkAblationMCPInsertion quantifies gap insertion in MCP.
func BenchmarkAblationMCPInsertion(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = meanSpeedupOver(b, func() heuristics.Scheduler { return mcp.New() })
		without = meanSpeedupOver(b, func() heuristics.Scheduler { return &mcp.MCP{Insertion: false} })
	}
	b.ReportMetric(with, "speedup_insertion")
	b.ReportMetric(without, "speedup_append")
}

// BenchmarkAblationHUPolicy contrasts the paper's comm-oblivious HU
// placement with the comm-aware variant — the interpretation choice
// DESIGN.md documents.
func BenchmarkAblationHUPolicy(b *testing.B) {
	var avail, start float64
	for i := 0; i < b.N; i++ {
		avail = meanSpeedupOver(b, func() heuristics.Scheduler { return hu.New() })
		start = meanSpeedupOver(b, func() heuristics.Scheduler { return &hu.HU{Policy: hu.EarliestStart} })
	}
	b.ReportMetric(avail, "speedup_earliest_avail")
	b.ReportMetric(start, "speedup_earliest_start")
}

// BenchmarkAblationCLANSDeepPrimitives contrasts flat CLANS with the
// strengthened variant that extracts sub-clans inside primitive clans.
func BenchmarkAblationCLANSDeepPrimitives(b *testing.B) {
	var flat, deep float64
	for i := 0; i < b.N; i++ {
		flat = meanSpeedupOver(b, func() heuristics.Scheduler { return clans.New() })
		deep = meanSpeedupOver(b, func() heuristics.Scheduler {
			return &clans.CLANS{SpeedupCheck: true, DeepPrimitives: true}
		})
	}
	b.ReportMetric(flat, "speedup_flat")
	b.ReportMetric(deep, "speedup_deep")
}

// BenchmarkAblationDuplication measures what the paper's
// no-duplication rule costs: mean speedup of DSH with duplication
// enabled vs disabled over one graph per corpus class.
func BenchmarkAblationDuplication(b *testing.B) {
	c, _ := benchSetup(b)
	run := func(maxDups int) float64 {
		var acc stats.Acc
		for _, set := range c.Sets {
			s, err := (&dup.DSH{MaxDupsPerTask: maxDups}).Schedule(set.Graphs[0])
			if err != nil {
				b.Fatal(err)
			}
			acc.Add(s.Speedup())
		}
		return acc.Mean()
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(0)     // default chain bound
		without = run(-1) // duplication disabled
	}
	b.ReportMetric(with, "speedup_dup")
	b.ReportMetric(without, "speedup_nodup")
}

// BenchmarkAblationPerturbation sweeps the generator's
// reachability-perturbation strength (DescendantBias): with bias 100
// no insertion ever changes reachability and CLANS sees pristine clan
// structure; with bias 0 every insertion perturbs. Reported metric:
// CLANS and MCP mean speedup over a fine-grained sample at each bias.
func BenchmarkAblationPerturbation(b *testing.B) {
	run := func(bias int, name string) float64 {
		s, err := heuristics.New(name)
		if err != nil {
			b.Fatal(err)
		}
		var acc stats.Acc
		for seed := int64(0); seed < 10; seed++ {
			g := gen.MustGenerate(gen.Params{
				Nodes: 80, Anchor: 3, WMin: 20, WMax: 200,
				Gran: gen.Band{Lo: 0, Hi: 0.08}, DescendantBias: bias,
			}, 700+seed)
			sc, err := heuristics.Run(s, g)
			if err != nil {
				b.Fatal(err)
			}
			acc.Add(sc.Speedup())
		}
		return acc.Mean()
	}
	var c100, c0, m100, m0 float64
	for i := 0; i < b.N; i++ {
		c100 = run(100, "CLANS")
		c0 = run(-1, "CLANS")
		m100 = run(100, "MCP")
		m0 = run(-1, "MCP")
	}
	b.ReportMetric(c100, "clans_bias100")
	b.ReportMetric(c0, "clans_bias0")
	b.ReportMetric(m100, "mcp_bias100")
	b.ReportMetric(m0, "mcp_bias0")
}

// BenchmarkAblationGraphSize shows how mean speedup scales with graph
// size for the five heuristics' best performer per size.
func BenchmarkAblationGraphSize(b *testing.B) {
	sizes := []int{30, 60, 120}
	p := gen.Params{Anchor: 3, WMin: 20, WMax: 200, Gran: gen.Band{Lo: 0.8, Hi: 2}}
	var means [3]float64
	for i := 0; i < b.N; i++ {
		for si, n := range sizes {
			p.Nodes = n
			var acc stats.Acc
			for seed := int64(0); seed < 4; seed++ {
				g := gen.MustGenerate(p, 500+seed)
				sc, err := heuristics.Run(clans.New(), g)
				if err != nil {
					b.Fatal(err)
				}
				acc.Add(sc.Speedup())
			}
			means[si] = acc.Mean()
		}
	}
	for si, n := range sizes {
		b.ReportMetric(means[si], "clans_speedup_n"+strconv.Itoa(n))
	}
}
