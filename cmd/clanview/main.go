// Command clanview parses a PDG into its clan tree (the structure the
// CLANS scheduler costs bottom-up) and prints it, with a summary of
// node kinds and the granularity classification of the graph.
//
// Usage:
//
//	clanview [-f graph.json]
//
// Generate inputs with daggen, e.g.:
//
//	daggen -nodes 40 -anchor 3 | clanview
package main

import (
	"flag"
	"fmt"
	"os"

	"schedcomp/internal/clan"
	"schedcomp/internal/dag"
)

func main() {
	file := flag.String("f", "", "input graph JSON (default: stdin)")
	flag.Parse()

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	g, err := dag.ReadJSON(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading graph:", err)
		os.Exit(1)
	}
	tree, err := clan.Parse(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsing clans:", err)
		os.Exit(1)
	}
	fmt.Printf("graph %q: %d tasks, %d edges, granularity %.3f, anchor %d\n",
		g.Name(), g.NumNodes(), g.NumEdges(), g.Granularity(), g.AnchorOutDegree())
	counts := tree.Counts()
	fmt.Printf("clan tree: %d leaves, %d linear, %d independent, %d primitive\n\n",
		counts[clan.Leaf], counts[clan.Linear], counts[clan.Independent], counts[clan.Primitive])
	fmt.Print(tree.String())
}
