// Command daggen generates random classified PDGs and writes them as
// JSON (one file per graph, or one JSON-lines stream on stdout).
//
// Usage:
//
//	daggen [-seed N] [-n N] [-nodes N] [-anchor A] [-wmin W] [-wmax W]
//	       [-glo G] [-ghi G] [-dir PATH] [-dot]
//
// With -dir, files are written as PATH/graph-XXX.json; otherwise each
// graph is printed to stdout as one JSON line. With -dot the Graphviz
// rendering is emitted instead of JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"schedcomp"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "random seed")
		count  = flag.Int("n", 1, "number of graphs")
		nodes  = flag.Int("nodes", 80, "approximate node count")
		anchor = flag.Int("anchor", 3, "target anchor out-degree")
		wmin   = flag.Int64("wmin", 20, "minimum node weight")
		wmax   = flag.Int64("wmax", 200, "maximum node weight")
		glo    = flag.Float64("glo", 0.2, "granularity band lower bound (0 for open)")
		ghi    = flag.Float64("ghi", 0.8, "granularity band upper bound (0 for open)")
		dir    = flag.String("dir", "", "output directory (default: stdout)")
		dot    = flag.Bool("dot", false, "emit Graphviz dot instead of JSON")
	)
	flag.Parse()

	p := schedcomp.GenParams{
		Nodes:  *nodes,
		Anchor: *anchor,
		WMin:   *wmin,
		WMax:   *wmax,
		Gran:   schedcomp.Band{Lo: *glo, Hi: *ghi},
	}
	for i := 0; i < *count; i++ {
		g, err := schedcomp.Generate(p, *seed+int64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "graph %d: %v\n", i, err)
			os.Exit(1)
		}
		g.SetName(fmt.Sprintf("daggen-%03d", i))
		var out *os.File
		if *dir == "" {
			out = os.Stdout
		} else {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			ext := "json"
			if *dot {
				ext = "dot"
			}
			f, err := os.Create(filepath.Join(*dir, fmt.Sprintf("graph-%03d.%s", i, ext)))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out = f
		}
		if *dot {
			fmt.Fprint(out, g.DOT())
		} else if err := g.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if out != os.Stdout {
			out.Close()
		}
	}
	if *dir != "" {
		fmt.Printf("wrote %d graph(s) to %s\n", *count, *dir)
	}
}
