package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	"schedcomp/internal/corpus"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/obs"
)

// BenchSpec pins the corpus parameters a bench result was measured on.
// Golden comparison refuses to compare results from different specs.
type BenchSpec struct {
	Seed         int64 `json:"seed"`
	GraphsPerSet int   `json:"graphs_per_set"`
	MinNodes     int   `json:"min_nodes"`
	MaxNodes     int   `json:"max_nodes"`
}

// HeuristicBench aggregates one heuristic's pass over the whole corpus.
type HeuristicBench struct {
	Name           string `json:"name"`
	NsPerGraph     int64  `json:"ns_per_graph"`
	AllocsPerGraph uint64 `json:"allocs_per_graph"`
	// BytesPerGraph is the heap bytes allocated per graph
	// (MemStats.TotalAlloc delta over the pass), the volume counterpart
	// to the AllocsPerGraph count: hoisting many small allocations into
	// one big one moves allocs_per_graph but barely moves this, while a
	// growing per-iteration buffer moves both.
	BytesPerGraph uint64  `json:"bytes_per_graph"`
	GraphsPerSec  float64 `json:"graphs_per_sec"`
	// ScheduleHash is an FNV-1a digest over every schedule the
	// heuristic produced (assignments in node order plus makespan and
	// processor count, graphs in corpus order). Any behavioural change
	// to the heuristic, the timing builder, or the generator shows up
	// here.
	ScheduleHash string `json:"schedule_hash"`
}

// BenchResult is the schema of BENCH_schedbench.json.
type BenchResult struct {
	Spec        BenchSpec `json:"spec"`
	Graphs      int       `json:"graphs"`
	CorpusGenMs int64     `json:"corpus_gen_ms"`
	// EvalMs is the summed single-threaded wall time of all heuristic
	// passes (per-heuristic numbers are measured sequentially so they
	// are stable; this is NOT the parallel testbed time).
	EvalMs  int64 `json:"eval_ms"`
	TotalMs int64 `json:"total_ms"`
	// GraphsPerSec is corpus throughput end to end: graphs over
	// generation plus evaluation wall time.
	GraphsPerSec float64          `json:"graphs_per_sec"`
	Heuristics   []HeuristicBench `json:"heuristics"`
	Note         string           `json:"note,omitempty"`
}

// runBench runs every registered heuristic over the corpus, one
// heuristic at a time on a single goroutine, and aggregates timing,
// allocation, and schedule-hash measurements. tr may be nil; when set,
// each heuristic's pass is recorded as a child span.
func runBench(c *corpus.Corpus, corpusGen time.Duration, note string, tr *obs.Trace) (*BenchResult, error) {
	res := &BenchResult{
		Spec: BenchSpec{
			Seed:         c.Spec.Seed,
			GraphsPerSet: c.Spec.GraphsPerSet,
			MinNodes:     c.Spec.MinNodes,
			MaxNodes:     c.Spec.MaxNodes,
		},
		Graphs:      c.NumGraphs(),
		CorpusGenMs: corpusGen.Milliseconds(),
		Note:        note,
	}
	var evalTotal time.Duration
	var ms runtime.MemStats
	spBench := tr.Span("bench")
	defer spBench.End()
	for _, name := range heuristics.Names() {
		s, err := heuristics.New(name)
		if err != nil {
			return nil, err
		}
		h := fnv.New64a()
		var buf [8]byte
		word := func(v uint64) {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		runtime.ReadMemStats(&ms)
		allocs0, bytes0 := ms.Mallocs, ms.TotalAlloc
		spH := spBench.Span(name)
		start := time.Now()
		for _, set := range c.Sets {
			for _, g := range set.Graphs {
				sc, err := heuristics.Run(s, g)
				if err != nil {
					return nil, fmt.Errorf("bench: %s on %s: %w", name, g.Name(), err)
				}
				word(uint64(sc.Makespan))
				word(uint64(sc.NumProcs))
				for _, a := range sc.ByNode {
					word(uint64(a.Proc))
					word(uint64(a.Start))
					word(uint64(a.Finish))
				}
			}
		}
		elapsed := time.Since(start)
		spH.End()
		runtime.ReadMemStats(&ms)
		evalTotal += elapsed
		n := c.NumGraphs()
		res.Heuristics = append(res.Heuristics, HeuristicBench{
			Name:           name,
			NsPerGraph:     elapsed.Nanoseconds() / int64(n),
			AllocsPerGraph: (ms.Mallocs - allocs0) / uint64(n),
			BytesPerGraph:  (ms.TotalAlloc - bytes0) / uint64(n),
			GraphsPerSec:   float64(n) / elapsed.Seconds(),
			ScheduleHash:   fmt.Sprintf("fnv1a:%016x", h.Sum64()),
		})
	}
	res.EvalMs = evalTotal.Milliseconds()
	res.TotalMs = (corpusGen + evalTotal).Milliseconds()
	res.GraphsPerSec = float64(res.Graphs) / (corpusGen + evalTotal).Seconds()
	return res, nil
}

// writeBench writes the result as indented JSON.
func writeBench(path string, res *BenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadBench reads a previously written bench result.
func loadBench(path string) (*BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res BenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &res, nil
}

// compareGolden checks the schedule hashes of res against a committed
// golden result. A spec mismatch is an error (the hashes would be
// incomparable); a hash mismatch means some heuristic's output changed.
func compareGolden(res, golden *BenchResult) error {
	if res.Spec != golden.Spec {
		return fmt.Errorf("bench spec %+v does not match golden spec %+v: regenerate the golden", res.Spec, golden.Spec)
	}
	want := map[string]string{}
	for _, h := range golden.Heuristics {
		want[h.Name] = h.ScheduleHash
	}
	var bad []string
	for _, h := range res.Heuristics {
		g, ok := want[h.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from golden", h.Name))
			continue
		}
		if g != h.ScheduleHash {
			bad = append(bad, fmt.Sprintf("%s: hash %s, golden %s", h.Name, h.ScheduleHash, g))
		}
	}
	if len(res.Heuristics) != len(golden.Heuristics) {
		bad = append(bad, fmt.Sprintf("%d heuristics benched, golden has %d", len(res.Heuristics), len(golden.Heuristics)))
	}
	if len(bad) > 0 {
		return fmt.Errorf("schedule hashes diverged from golden:\n  %s", joinLines(bad))
	}
	return nil
}

func joinLines(s []string) string {
	out := ""
	for i, l := range s {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
