package main

import (
	"path/filepath"
	"testing"
	"time"

	"schedcomp/internal/corpus"
)

func tinyCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{Seed: 7, GraphsPerSet: 1, MinNodes: 8, MaxNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBenchHashesAreReproducible(t *testing.T) {
	c := tinyCorpus(t)
	r1, err := runBench(c, time.Second, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runBench(c, time.Second, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Heuristics) == 0 {
		t.Fatal("no heuristics benched")
	}
	for i := range r1.Heuristics {
		a, b := r1.Heuristics[i], r2.Heuristics[i]
		if a.Name != b.Name || a.ScheduleHash != b.ScheduleHash {
			t.Errorf("%s: hash %s vs %s across identical runs", a.Name, a.ScheduleHash, b.ScheduleHash)
		}
	}
}

func TestBenchGoldenRoundTrip(t *testing.T) {
	c := tinyCorpus(t)
	res, err := runBench(c, time.Second, "note", nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := writeBench(path, res); err != nil {
		t.Fatal(err)
	}
	golden, err := loadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := compareGolden(res, golden); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}

	// A corrupted hash must be detected.
	golden.Heuristics[0].ScheduleHash = "fnv1a:0000000000000000"
	if err := compareGolden(res, golden); err == nil {
		t.Fatal("hash divergence not detected")
	}

	// A spec mismatch must refuse the comparison outright.
	golden, _ = loadBench(path)
	golden.Spec.Seed++
	if err := compareGolden(res, golden); err == nil {
		t.Fatal("spec mismatch not detected")
	}
}
