package main

import (
	"fmt"
	"strings"
)

// compareBench renders a per-heuristic diff of two bench results —
// ns/graph, allocs/graph, bytes/graph, end-to-end throughput, and
// schedule-hash equality — and reports an error when the results are
// incomparable (different specs) or any heuristic's schedule hash
// diverged. Performance may move freely between runs; behaviour may
// not.
func compareBench(oldRes, newRes *BenchResult) (string, error) {
	if oldRes.Spec != newRes.Spec {
		return "", fmt.Errorf("bench specs differ: old %+v, new %+v", oldRes.Spec, newRes.Spec)
	}
	oldBy := map[string]HeuristicBench{}
	for _, h := range oldRes.Heuristics {
		oldBy[h.Name] = h
	}

	var b strings.Builder
	var mismatched []string
	fmt.Fprintf(&b, "%-7s %25s %21s %23s  %s\n", "", "ns/graph", "allocs/graph", "bytes/graph", "schedules")
	for _, nh := range newRes.Heuristics {
		oh, ok := oldBy[nh.Name]
		if !ok {
			fmt.Fprintf(&b, "%-7s (not in old result)\n", nh.Name)
			continue
		}
		delete(oldBy, nh.Name)
		hashNote := "identical"
		if oh.ScheduleHash != nh.ScheduleHash {
			hashNote = "MISMATCH"
			mismatched = append(mismatched, fmt.Sprintf("%s: old %s, new %s", nh.Name, oh.ScheduleHash, nh.ScheduleHash))
		}
		fmt.Fprintf(&b, "%-7s %10d -> %8d %s %7d -> %6d %s %9d -> %8d %s  %s\n",
			nh.Name,
			oh.NsPerGraph, nh.NsPerGraph, ratio(float64(oh.NsPerGraph), float64(nh.NsPerGraph)),
			oh.AllocsPerGraph, nh.AllocsPerGraph, ratio(float64(oh.AllocsPerGraph), float64(nh.AllocsPerGraph)),
			oh.BytesPerGraph, nh.BytesPerGraph, ratio(float64(oh.BytesPerGraph), float64(nh.BytesPerGraph)),
			hashNote)
	}
	for _, h := range oldRes.Heuristics {
		if _, stillOld := oldBy[h.Name]; stillOld {
			fmt.Fprintf(&b, "%-7s (not in new result)\n", h.Name)
			mismatched = append(mismatched, fmt.Sprintf("%s: missing from new result", h.Name))
		}
	}
	fmt.Fprintf(&b, "end-to-end: %.1f -> %.1f graphs/sec %s\n",
		oldRes.GraphsPerSec, newRes.GraphsPerSec, ratio(newRes.GraphsPerSec, oldRes.GraphsPerSec))
	if len(mismatched) > 0 {
		return b.String(), fmt.Errorf("schedule hashes diverged:\n  %s", joinLines(mismatched))
	}
	return b.String(), nil
}

// ratio formats new-over-old (or old-over-new for times, where the
// caller passes arguments so that >1 means improvement) as "(2.41x)";
// a zero denominator yields "(n/a)".
func ratio(num, den float64) string {
	if num == 0 || den == 0 {
		return "(n/a) "
	}
	return fmt.Sprintf("(%.2fx)", num/den)
}
