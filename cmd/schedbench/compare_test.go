package main

import (
	"strings"
	"testing"
)

func benchFixture() *BenchResult {
	return &BenchResult{
		Spec:         BenchSpec{Seed: 1994, GraphsPerSet: 35, MinNodes: 40, MaxNodes: 120},
		GraphsPerSec: 100,
		Heuristics: []HeuristicBench{
			{Name: "DSC", NsPerGraph: 2000, AllocsPerGraph: 50, BytesPerGraph: 9000, ScheduleHash: "fnv1a:1111111111111111"},
			{Name: "EZ", NsPerGraph: 9000, AllocsPerGraph: 21000, BytesPerGraph: 2500000, ScheduleHash: "fnv1a:2222222222222222"},
		},
	}
}

func TestCompareBenchIdentical(t *testing.T) {
	report, err := compareBench(benchFixture(), benchFixture())
	if err != nil {
		t.Fatalf("identical results must compare clean: %v", err)
	}
	if !strings.Contains(report, "identical") || strings.Contains(report, "MISMATCH") {
		t.Fatalf("unexpected report:\n%s", report)
	}
}

func TestCompareBenchReportsSpeedup(t *testing.T) {
	oldRes, newRes := benchFixture(), benchFixture()
	newRes.Heuristics[1].NsPerGraph = 900 // 10x faster, same hashes
	newRes.Heuristics[1].AllocsPerGraph = 42
	newRes.GraphsPerSec = 300
	report, err := compareBench(oldRes, newRes)
	if err != nil {
		t.Fatalf("perf-only change must compare clean: %v", err)
	}
	if !strings.Contains(report, "(10.00x)") {
		t.Fatalf("report missing ns/graph speedup ratio:\n%s", report)
	}
	if !strings.Contains(report, "(3.00x)") {
		t.Fatalf("report missing end-to-end throughput ratio:\n%s", report)
	}
}

func TestCompareBenchHashMismatchFails(t *testing.T) {
	oldRes, newRes := benchFixture(), benchFixture()
	newRes.Heuristics[0].ScheduleHash = "fnv1a:dead000000000000"
	report, err := compareBench(oldRes, newRes)
	if err == nil {
		t.Fatal("hash divergence must fail the comparison")
	}
	if !strings.Contains(report, "MISMATCH") || !strings.Contains(err.Error(), "DSC") {
		t.Fatalf("mismatch not attributed to DSC:\nreport: %s\nerr: %v", report, err)
	}
}

func TestCompareBenchSpecMismatchFails(t *testing.T) {
	oldRes, newRes := benchFixture(), benchFixture()
	newRes.Spec.Seed++
	if _, err := compareBench(oldRes, newRes); err == nil {
		t.Fatal("spec mismatch must refuse the comparison")
	}
}

func TestCompareBenchMissingHeuristicFails(t *testing.T) {
	oldRes, newRes := benchFixture(), benchFixture()
	newRes.Heuristics = newRes.Heuristics[:1]
	if _, err := compareBench(oldRes, newRes); err == nil {
		t.Fatal("heuristic missing from the new result must fail the comparison")
	}
}
