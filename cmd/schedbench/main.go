// Command schedbench regenerates the paper's full evaluation: it
// builds the classified random-PDG corpus (Table 1), runs the five
// heuristics on every graph, and prints Tables 2–11 and Figures 1–6.
//
// Usage:
//
//	schedbench [-seed N] [-graphs N] [-min N] [-max N] [-figures] [-table1]
//
// With the defaults it reproduces the paper-scale experiment: 60
// classes × 35 graphs = 2100 PDGs of 40–120 nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"schedcomp"
	"schedcomp/internal/report"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1994, "corpus random seed")
		graphs     = flag.Int("graphs", 35, "graphs per class (paper: 35)")
		minN       = flag.Int("min", 40, "minimum graph size in nodes")
		maxN       = flag.Int("max", 120, "maximum graph size in nodes")
		figures    = flag.Bool("figures", true, "render Figures 1-6 as text charts")
		table1     = flag.Bool("table1", false, "print the 60-row corpus composition (Table 1)")
		extensions = flag.Bool("extensions", false, "also run the extension experiments (optimality gap, wider weight ranges, duplication, metric comparison, extended comparison)")
		saveDir    = flag.String("save", "", "save the generated corpus to this directory")
		loadDir    = flag.String("load", "", "load a previously saved corpus instead of generating")
		markdown   = flag.String("markdown", "", "also write the full report as markdown to this file")
	)
	flag.Parse()

	var c *schedcomp.Corpus
	var err error
	start := time.Now()
	if *loadDir != "" {
		fmt.Printf("loading corpus from %s...\n", *loadDir)
		c, err = schedcomp.LoadCorpus(*loadDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpus load failed:", err)
			os.Exit(1)
		}
	} else {
		spec := schedcomp.PaperCorpusSpec(*seed)
		spec.GraphsPerSet = *graphs
		spec.MinNodes = *minN
		spec.MaxNodes = *maxN
		fmt.Printf("generating corpus: 60 classes x %d graphs (%d-%d nodes), seed %d...\n",
			spec.GraphsPerSet, spec.MinNodes, spec.MaxNodes, spec.Seed)
		c, err = schedcomp.GenerateCorpus(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpus generation failed:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("corpus ready: %d graphs in %v\n", c.NumGraphs(), time.Since(start).Round(time.Millisecond))
	if *saveDir != "" {
		if err := c.Save(*saveDir); err != nil {
			fmt.Fprintln(os.Stderr, "corpus save failed:", err)
			os.Exit(1)
		}
		fmt.Printf("saved corpus to %s\n", *saveDir)
	}

	if *table1 {
		fmt.Println()
		fmt.Println(schedcomp.CorpusTable(c))
	}

	start = time.Now()
	fmt.Println("evaluating CLANS, DSC, MCP, MH, HU on every graph...")
	ev, err := schedcomp.Evaluate(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluation failed:", err)
		os.Exit(1)
	}
	fmt.Printf("evaluated %d schedules in %v\n\n", 5*c.NumGraphs(), time.Since(start).Round(time.Millisecond))

	for _, t := range schedcomp.Tables(ev) {
		fmt.Println(t)
	}
	if *figures {
		for _, f := range schedcomp.Figures(ev) {
			fmt.Println(f)
		}
	}

	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = report.Write(f, c, ev, report.Options{
			Extensions:    *extensions,
			ExtensionSeed: *seed,
			Timestamp:     time.Now(),
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "markdown report failed:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote markdown report to %s\n", *markdown)
	}

	if *extensions {
		fmt.Println(schedcomp.SpeedupQuantilesTable(ev))
		fmt.Println("running extension experiments...")
		type ext struct {
			name string
			run  func() (*schedcomp.Table, error)
		}
		for _, e := range []ext{
			{"optimality gap", func() (*schedcomp.Table, error) { return schedcomp.OptimalityGapTable(*seed, 10) }},
			{"wider weight ranges", func() (*schedcomp.Table, error) { return schedcomp.WiderWeightRangesTable(*seed, 4) }},
			{"duplication gain", func() (*schedcomp.Table, error) { return schedcomp.DuplicationGainTable(*seed, 10) }},
			{"metric comparison", func() (*schedcomp.Table, error) { return schedcomp.MetricComparisonTable(*seed, 100) }},
			{"extended comparison", func() (*schedcomp.Table, error) { return schedcomp.ExtendedComparisonTable(*seed, 10) }},
			{"size scaling", func() (*schedcomp.Table, error) { return schedcomp.SizeScalingTable(*seed, 5) }},
		} {
			t, err := e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println(t)
		}
	}
}
