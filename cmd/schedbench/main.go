// Command schedbench regenerates the paper's full evaluation: it
// builds the classified random-PDG corpus (Table 1), runs the five
// heuristics on every graph, and prints Tables 2–11 and Figures 1–6.
//
// Usage:
//
//	schedbench [-seed N] [-graphs N] [-min N] [-max N] [-figures] [-table1]
//
// With the defaults it reproduces the paper-scale experiment: 60
// classes × 35 graphs = 2100 PDGs of 40–120 nodes.
//
// Performance tracking:
//
//	schedbench -bench [-benchout FILE] [-golden FILE] [-writegolden FILE]
//	schedbench -compare old.json new.json
//	schedbench -cpuprofile cpu.out -memprofile mem.out
//	schedbench -metrics -trace
//
// -bench replaces the report with a perf run: every registered
// heuristic is timed single-threaded over the corpus and the result
// (ns/graph, allocs/graph, graphs/sec, an FNV-1a hash of every
// schedule produced) is written as JSON. -golden compares the hashes
// against a committed baseline and exits non-zero on any divergence,
// which is how CI catches unintended behavioural changes riding along
// with performance work.
//
// -compare diffs two -bench result files heuristic by heuristic
// (ns/graph, allocs/graph, bytes/graph, schedule-hash equality) and
// exits non-zero when any schedule hash diverged — the same contract
// as -golden, plus the perf delta report.
//
// -metrics enables the internal/obs registry and dumps every counter
// and histogram in the Prometheus text format on exit; -trace records
// per-phase spans (corpus, evaluate/bench, report) and prints the
// flame-style tree. Both are off by default and cost nothing when off.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"schedcomp"
	"schedcomp/internal/obs"
	"schedcomp/internal/report"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		seed        = flag.Int64("seed", 1994, "corpus random seed")
		graphs      = flag.Int("graphs", 35, "graphs per class (paper: 35)")
		minN        = flag.Int("min", 40, "minimum graph size in nodes")
		maxN        = flag.Int("max", 120, "maximum graph size in nodes")
		figures     = flag.Bool("figures", true, "render Figures 1-6 as text charts")
		table1      = flag.Bool("table1", false, "print the 60-row corpus composition (Table 1)")
		extensions  = flag.Bool("extensions", false, "also run the extension experiments (optimality gap, wider weight ranges, duplication, metric comparison, extended comparison)")
		saveDir     = flag.String("save", "", "save the generated corpus to this directory")
		loadDir     = flag.String("load", "", "load a previously saved corpus instead of generating")
		markdown    = flag.String("markdown", "", "also write the full report as markdown to this file")
		bench       = flag.Bool("bench", false, "run the perf benchmark over all registered heuristics instead of the report")
		benchOut    = flag.String("benchout", "BENCH_schedbench.json", "write the -bench result to this file")
		benchNote   = flag.String("benchnote", "", "free-form note recorded in the -bench result")
		golden      = flag.String("golden", "", "compare -bench schedule hashes against this golden file; exit non-zero on divergence")
		writeGolden = flag.String("writegolden", "", "also write the -bench result to this golden file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		withMetrics = flag.Bool("metrics", false, "enable the obs registry and dump it (Prometheus text) on exit")
		withTrace   = flag.Bool("trace", false, "record per-phase spans and print the trace tree on exit")
		compare     = flag.Bool("compare", false, "compare two -bench result files (old.json new.json): print per-heuristic deltas, exit non-zero when any schedule hash diverged")
	)
	flag.Parse()

	if *compare {
		return runCompareMode(flag.Args())
	}

	if *withMetrics {
		obs.Default().SetEnabled(true)
	}
	var tr *obs.Trace // nil unless -trace; every method is nil-safe
	if *withTrace {
		tr = obs.NewTrace("schedbench")
	}
	defer func() {
		if tr != nil {
			fmt.Println()
			fmt.Print(tr.Tree())
		}
		if *withMetrics {
			fmt.Println()
			_ = obs.Default().WritePrometheus(os.Stdout)
		}
	}()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}()
	}

	var c *schedcomp.Corpus
	var err error
	start := time.Now()
	spCorpus := tr.Span("corpus")
	if *loadDir != "" {
		fmt.Printf("loading corpus from %s...\n", *loadDir)
		c, err = schedcomp.LoadCorpus(*loadDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpus load failed:", err)
			return 1
		}
	} else {
		spec := schedcomp.PaperCorpusSpec(*seed)
		spec.GraphsPerSet = *graphs
		spec.MinNodes = *minN
		spec.MaxNodes = *maxN
		fmt.Printf("generating corpus: 60 classes x %d graphs (%d-%d nodes), seed %d...\n",
			spec.GraphsPerSet, spec.MinNodes, spec.MaxNodes, spec.Seed)
		c, err = schedcomp.GenerateCorpus(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpus generation failed:", err)
			return 1
		}
	}
	spCorpus.End()
	corpusGen := time.Since(start)
	fmt.Printf("corpus ready: %d graphs in %v\n", c.NumGraphs(), corpusGen.Round(time.Millisecond))
	if *saveDir != "" {
		if err := c.Save(*saveDir); err != nil {
			fmt.Fprintln(os.Stderr, "corpus save failed:", err)
			return 1
		}
		fmt.Printf("saved corpus to %s\n", *saveDir)
	}

	if *table1 {
		fmt.Println()
		fmt.Println(schedcomp.CorpusTable(c))
	}

	if *bench {
		return runBenchMode(c, corpusGen, *benchNote, *benchOut, *golden, *writeGolden, tr)
	}

	start = time.Now()
	fmt.Println("evaluating CLANS, DSC, MCP, MH, HU on every graph...")
	spEval := tr.Span("evaluate")
	ev, err := schedcomp.Evaluate(c)
	spEval.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluation failed:", err)
		return 1
	}
	fmt.Printf("evaluated %d schedules in %v\n\n", 5*c.NumGraphs(), time.Since(start).Round(time.Millisecond))

	spReport := tr.Span("report")
	for _, t := range schedcomp.Tables(ev) {
		fmt.Println(t)
	}
	if *figures {
		for _, f := range schedcomp.Figures(ev) {
			fmt.Println(f)
		}
	}
	spReport.End()

	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		err = report.Write(f, c, ev, report.Options{
			Extensions:    *extensions,
			ExtensionSeed: *seed,
			Timestamp:     time.Now(),
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "markdown report failed:", err)
			return 1
		}
		fmt.Printf("wrote markdown report to %s\n", *markdown)
	}

	if *extensions {
		fmt.Println(schedcomp.SpeedupQuantilesTable(ev))
		fmt.Println("running extension experiments...")
		type ext struct {
			name string
			run  func() (*schedcomp.Table, error)
		}
		for _, e := range []ext{
			{"optimality gap", func() (*schedcomp.Table, error) { return schedcomp.OptimalityGapTable(*seed, 10) }},
			{"wider weight ranges", func() (*schedcomp.Table, error) { return schedcomp.WiderWeightRangesTable(*seed, 4) }},
			{"duplication gain", func() (*schedcomp.Table, error) { return schedcomp.DuplicationGainTable(*seed, 10) }},
			{"metric comparison", func() (*schedcomp.Table, error) { return schedcomp.MetricComparisonTable(*seed, 100) }},
			{"extended comparison", func() (*schedcomp.Table, error) { return schedcomp.ExtendedComparisonTable(*seed, 10) }},
			{"size scaling", func() (*schedcomp.Table, error) { return schedcomp.SizeScalingTable(*seed, 5) }},
		} {
			t, err := e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
				return 1
			}
			fmt.Println(t)
		}
	}
	return 0
}

// runCompareMode diffs two previously written -bench results. Output
// changes (hash divergence, a heuristic present on only one side) exit
// non-zero; performance deltas are informational.
func runCompareMode(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: schedbench -compare old.json new.json")
		return 2
	}
	oldRes, err := loadBench(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		return 1
	}
	newRes, err := loadBench(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		return 1
	}
	report, err := compareBench(oldRes, newRes)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "COMPARE FAILED:", err)
		return 1
	}
	fmt.Printf("all %d schedule hashes identical (%s vs %s)\n", len(newRes.Heuristics), args[0], args[1])
	return 0
}

// runBenchMode times every registered heuristic over the corpus,
// writes the JSON result, and optionally checks it against a golden.
func runBenchMode(c *schedcomp.Corpus, corpusGen time.Duration, note, out, golden, writeGolden string, tr *obs.Trace) int {
	fmt.Println("benchmarking all registered heuristics (single-threaded)...")
	res, err := runBench(c, corpusGen, note, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench failed:", err)
		return 1
	}
	for _, h := range res.Heuristics {
		fmt.Printf("  %-7s %12d ns/graph %8d allocs/graph %10.1f graphs/sec  %s\n",
			h.Name, h.NsPerGraph, h.AllocsPerGraph, h.GraphsPerSec, h.ScheduleHash)
	}
	fmt.Printf("total: %d graphs, gen %dms + eval %dms = %dms (%.1f graphs/sec)\n",
		res.Graphs, res.CorpusGenMs, res.EvalMs, res.TotalMs, res.GraphsPerSec)
	if err := writeBench(out, res); err != nil {
		fmt.Fprintln(os.Stderr, "bench write failed:", err)
		return 1
	}
	fmt.Printf("wrote %s\n", out)
	if writeGolden != "" {
		if err := writeBench(writeGolden, res); err != nil {
			fmt.Fprintln(os.Stderr, "golden write failed:", err)
			return 1
		}
		fmt.Printf("wrote golden %s\n", writeGolden)
	}
	if golden != "" {
		g, err := loadBench(golden)
		if err != nil {
			fmt.Fprintln(os.Stderr, "golden load failed:", err)
			return 1
		}
		if err := compareGolden(res, g); err != nil {
			fmt.Fprintln(os.Stderr, "GOLDEN MISMATCH:", err)
			return 1
		}
		fmt.Printf("schedule hashes match golden %s\n", golden)
	}
	return 0
}
