package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// baseline is a multiset of previously-accepted findings, loaded from
// the NDJSON emitted by -json. Matching is by (file, analyzer,
// message) — deliberately not by line or column, so edits elsewhere
// in a file do not invalidate the baseline. The multiset counts keep
// duplicates honest: two identical findings in one file stay two, and
// a third one introduced later is new.
type baseline struct {
	counts map[string]int
}

func baselineKey(f finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// loadBaseline parses an NDJSON baseline file. Blank lines are
// ignored; malformed lines are errors (a truncated baseline silently
// accepting findings would defeat the gate).
func loadBaseline(path string) (*baseline, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	b := &baseline{counts: map[string]int{}}
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var f finding
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("baseline %s:%d: %v", path, line, err)
		}
		b.counts[baselineKey(f)]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return b, nil
}

// diff splits findings into (new, knownCount). Findings must arrive
// in the deterministic suite order; the first n occurrences of a key
// present n times in the baseline are known, later ones are new.
func (b *baseline) diff(findings []finding) ([]finding, int) {
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	var fresh []finding
	known := 0
	for _, f := range findings {
		k := baselineKey(f)
		if remaining[k] > 0 {
			remaining[k]--
			known++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, known
}
