package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schedcomp/internal/lint/analyzers"
)

func writeBaseline(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.ndjson")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBaseline(t *testing.T) {
	path := writeBaseline(t,
		`{"file":"a.go","line":10,"col":2,"analyzer":"locksafe","message":"m1"}`,
		``,
		`{"file":"a.go","line":30,"col":2,"analyzer":"locksafe","message":"m1"}`,
		`{"file":"b.go","line":1,"col":1,"analyzer":"genbump","message":"m2"}`,
	)
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.counts["a.go\x00locksafe\x00m1"]; got != 2 {
		t.Errorf("duplicate key count = %d, want 2 (multiset semantics)", got)
	}
	if got := b.counts["b.go\x00genbump\x00m2"]; got != 1 {
		t.Errorf("singleton key count = %d, want 1", got)
	}
}

func TestLoadBaselineMalformed(t *testing.T) {
	path := writeBaseline(t, `{"file":"a.go"`, ``)
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("malformed baseline line should be an error, got nil")
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "nope.ndjson")); err == nil {
		t.Fatal("missing baseline file should be an error, got nil")
	}
}

func TestBaselineDiff(t *testing.T) {
	b := &baseline{counts: map[string]int{
		"a.go\x00locksafe\x00m1": 1,
		"b.go\x00genbump\x00m2":  2,
	}}
	findings := []finding{
		// Known, even though the line moved: matching ignores position.
		{File: "a.go", Line: 99, Col: 1, Analyzer: "locksafe", Message: "m1"},
		// Second occurrence of a key present once: new.
		{File: "a.go", Line: 120, Col: 1, Analyzer: "locksafe", Message: "m1"},
		// Both budgeted occurrences: known.
		{File: "b.go", Line: 1, Col: 1, Analyzer: "genbump", Message: "m2"},
		{File: "b.go", Line: 2, Col: 1, Analyzer: "genbump", Message: "m2"},
		// Different analyzer, same file/message: new.
		{File: "b.go", Line: 3, Col: 1, Analyzer: "obscard", Message: "m2"},
	}
	fresh, known := b.diff(findings)
	if known != 3 {
		t.Errorf("known = %d, want 3", known)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want 2 entries", fresh)
	}
	if fresh[0].Line != 120 || fresh[0].Analyzer != "locksafe" {
		t.Errorf("fresh[0] = %+v, want the over-budget locksafe duplicate", fresh[0])
	}
	if fresh[1].Analyzer != "obscard" {
		t.Errorf("fresh[1] = %+v, want the obscard finding", fresh[1])
	}
}

func TestBaselineDiffEmptyBaseline(t *testing.T) {
	b := &baseline{counts: map[string]int{}}
	findings := []finding{{File: "a.go", Analyzer: "ctxflow", Message: "m"}}
	fresh, known := b.diff(findings)
	if known != 0 || len(fresh) != 1 {
		t.Errorf("empty baseline: fresh=%d known=%d, want 1/0", len(fresh), known)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all := analyzers.All()
	only, err := selectAnalyzers(all, "locksafe,ctxflow", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 2 {
		t.Fatalf("-only selected %d analyzers, want 2", len(only))
	}
	skip, err := selectAnalyzers(all, "", "locksafe")
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != len(all)-1 {
		t.Fatalf("-skip left %d analyzers, want %d", len(skip), len(all)-1)
	}
	if _, err := selectAnalyzers(all, "nosuch", ""); err == nil {
		t.Fatal("unknown -only name should be an error")
	}
	if _, err := selectAnalyzers(all, "locksafe", "locksafe"); err == nil {
		t.Fatal("selection that leaves nothing should be an error")
	}
}
