// Command schedlint runs the project's custom static-analysis suite
// (internal/lint/...) over the module: determinism and execution-model
// invariants that ordinary vet checks cannot see. It is the static
// twin of the schedtest determinism harness and is wired into CI.
//
// Usage:
//
//	go run ./cmd/schedlint ./...                       # whole module (CI gate)
//	go run ./cmd/schedlint ./internal/...              # subtree
//	go run ./cmd/schedlint -json ./...                 # NDJSON findings for CI/editors
//	go run ./cmd/schedlint -only=locksafe,ctxflow ./...# subset of the suite
//	go run ./cmd/schedlint -skip=hotalloc ./...        # everything but
//	go run ./cmd/schedlint -baseline lint_baseline.ndjson ./...
//	go run ./cmd/schedlint -list                       # describe the analyzers
//
//	# perflint pack (hotescape, hotbce, noinline):
//	go run ./cmd/schedlint -only hotescape,hotbce,noinline -perfbudget perf_budget.json ./...
//	go run ./cmd/schedlint -only hotescape,hotbce,noinline -writeperfbudget perf_budget.json ./...
//	go run ./cmd/schedlint -only hotescape,hotbce,noinline -perfreport ./internal/heuristics/...
//
// In -json mode each finding is one JSON object per line with the
// fields file, line, col, analyzer and message; the default text mode
// is unchanged.
//
// In -baseline mode the committed NDJSON baseline is loaded and
// findings already present in it (matched by file, analyzer and
// message — line-tolerant, so unrelated edits do not churn the
// baseline) are treated as known: only new findings are printed (in
// text or -json shape) and only new findings fail the run. This lets
// a large refactor land analyzer-visible churn incrementally: commit
// the current findings as the baseline, burn them down over follow-up
// PRs, and still gate every PR on "no new findings".
//
// In -perfbudget mode the committed budget (see perfbudget.go) is
// loaded and findings within their budgeted (package, analyzer,
// message) counts pass; only findings over budget — new optimization
// regressions — are printed and fail the run. -writeperfbudget
// regenerates the budget from the current tree; -perfreport prints
// every finding as a worklist ranked by loop depth, deepest first.
//
// Exit status: 0 clean (or baseline-known/within-budget only), 1 new
// diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as NDJSON records (file/line/col/analyzer/message)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to skip")
	baselinePath := flag.String("baseline", "", "NDJSON baseline file; only findings absent from it fail the run")
	perfBudgetPath := flag.String("perfbudget", "", "perf budget JSON file; only findings over the budgeted counts fail the run")
	writePerfBudget := flag.String("writeperfbudget", "", "write the current findings as a perf budget to this file and exit")
	perfReport := flag.Bool("perfreport", false, "print findings as a refactoring worklist ranked by loop depth and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [-list] [-json] [-only names] [-skip names] [-baseline file] [-perfbudget file] [-writeperfbudget file] [-perfreport] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite, err := selectAnalyzers(analyzers.All(), *only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := runSuite(suite, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	if *writePerfBudget != "" {
		b, err := savePerfBudget(*writePerfBudget, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "schedlint: wrote %d budget entr(y/ies) (%d finding(s), %s) to %s\n",
			len(b.Entries), len(findings), b.GcVersion, *writePerfBudget)
		return
	}
	if *perfReport {
		printPerfReport(findings)
		return
	}

	overBudget := false
	if *perfBudgetPath != "" {
		budget, err := loadPerfBudget(*perfBudgetPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
		if v := runtime.Version(); budget.GcVersion != "" && budget.GcVersion != v {
			fmt.Fprintf(os.Stderr, "schedlint: warning: perf budget written under %s, running %s; optimization decisions may differ\n",
				budget.GcVersion, v)
		}
		regressions, within, improved := budget.diff(findings)
		findings = regressions
		overBudget = len(regressions) > 0
		if within > 0 {
			fmt.Fprintf(os.Stderr, "schedlint: %d finding(s) within the perf budget\n", within)
		}
		if improved > 0 {
			fmt.Fprintf(os.Stderr, "schedlint: %d budgeted finding(s) no longer present (consider -writeperfbudget to shrink the budget)\n", improved)
		}
	}

	known := 0
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
		var fresh []finding
		fresh, known = base.diff(findings)
		findings = fresh
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "schedlint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message)
		}
	}
	if known > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s) matched the baseline\n", known)
	}
	if len(findings) > 0 {
		what := "finding(s)"
		switch {
		case overBudget:
			what = "finding(s) over the perf budget"
		case *baselinePath != "":
			what = "new finding(s) not in the baseline"
		}
		fmt.Fprintf(os.Stderr, "schedlint: %d %s\n", len(findings), what)
		os.Exit(1)
	}
}

// selectAnalyzers applies -only and -skip to the suite, rejecting
// names that match no analyzer (a typo would otherwise silently pass).
func selectAnalyzers(all []*lint.Analyzer, only, skip string) ([]*lint.Analyzer, error) {
	names := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		m := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			found := false
			for _, a := range all {
				if a.Name == n {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", n)
			}
			m[n] = true
		}
		return m, nil
	}
	onlySet, err := names(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := names(skip)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flag selection leaves no analyzers to run")
	}
	return out, nil
}

// finding is one diagnostic in a machine-consumable shape; the JSON
// field names are the -json output contract (consumed by the baseline
// differ and CI artifacts).
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Package is the import path of the analyzed package; Depth is the
	// loop nesting depth attributed by depth-ranking analyzers. Both are
	// omitted when zero so the pre-existing NDJSON contract (and the
	// committed baselines that use it) are unchanged for the analyzers
	// that do not set them.
	Package string `json:"package,omitempty"`
	Depth   int    `json:"depth,omitempty"`
}

func runSuite(suite []*lint.Analyzer, patterns []string) ([]finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}

	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			a := a
			pass := &lint.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Loader:    loader,
				Report: func(d lint.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					file := pos.Filename
					if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
						file = rel
					}
					findings = append(findings, finding{File: file, Line: pos.Line, Col: pos.Column, Analyzer: a.Name, Message: d.Message, Package: pkg.Path, Depth: d.Depth})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return findings, nil
}
