// Command schedlint runs the project's custom static-analysis suite
// (internal/lint/...) over the module: determinism and execution-model
// invariants that ordinary vet checks cannot see. It is the static
// twin of the schedtest determinism harness and is wired into CI.
//
// Usage:
//
//	go run ./cmd/schedlint ./...          # whole module (CI gate)
//	go run ./cmd/schedlint ./internal/... # subtree
//	go run ./cmd/schedlint -list          # describe the analyzers
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := runSuite(suite, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func runSuite(suite []*lint.Analyzer, patterns []string) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}

	type finding struct {
		file      string
		line, col int
		msg       string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			pass := &lint.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d lint.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					file := pos.Filename
					if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
						file = rel
					}
					findings = append(findings, finding{file: file, line: pos.Line, col: pos.Column, msg: d.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.msg < b.msg
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s\n", f.file, f.line, f.col, f.msg)
	}
	return len(findings), nil
}
