// Command schedlint runs the project's custom static-analysis suite
// (internal/lint/...) over the module: determinism and execution-model
// invariants that ordinary vet checks cannot see. It is the static
// twin of the schedtest determinism harness and is wired into CI.
//
// Usage:
//
//	go run ./cmd/schedlint ./...          # whole module (CI gate)
//	go run ./cmd/schedlint ./internal/... # subtree
//	go run ./cmd/schedlint -json ./...    # NDJSON findings for CI/editors
//	go run ./cmd/schedlint -list          # describe the analyzers
//
// In -json mode each finding is one JSON object per line with the
// fields file, line, col, analyzer and message; the default text mode
// is unchanged. Exit status: 0 clean, 1 diagnostics reported, 2
// operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as NDJSON records (file/line/col/analyzer/message)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := runSuite(suite, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "schedlint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// finding is one diagnostic in a machine-consumable shape; the JSON
// field names are the -json output contract.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runSuite(suite []*lint.Analyzer, patterns []string) ([]finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}

	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			a := a
			pass := &lint.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Loader:    loader,
				Report: func(d lint.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					file := pos.Filename
					if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
						file = rel
					}
					findings = append(findings, finding{File: file, Line: pos.Line, Col: pos.Column, Analyzer: a.Name, Message: d.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return findings, nil
}
