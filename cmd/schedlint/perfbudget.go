package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// perfBudget is the committed multiset of accepted perflint findings
// (perf_budget.json): how many findings of each (package, analyzer,
// message) the tree is allowed to have. The gate is one-directional —
// a finding over its budgeted count (or with no entry at all) is a
// regression and fails the run; a budgeted finding that disappeared is
// an improvement and is merely noted, so fixes land without touching
// the budget and the file only changes when someone deliberately
// accepts new debt (-writeperfbudget).
//
// Messages embed the loop depth ("depth-2"), so a finding migrating
// deeper into a nest is a regression even when its count is unchanged.
type perfBudget struct {
	// GcVersion is the toolchain the budget was written under. Inline
	// and escape decisions shift between compiler releases, so a
	// mismatch is reported (but does not fail: the findings themselves
	// decide).
	GcVersion string        `json:"gc_version"`
	Entries   []budgetEntry `json:"entries"`
}

type budgetEntry struct {
	Package  string `json:"package"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func budgetKey(f finding) string {
	return f.Package + "\x00" + f.Analyzer + "\x00" + f.Message
}

// budgetFromFindings aggregates findings into a budget for the running
// toolchain, in deterministic order.
func budgetFromFindings(findings []finding) *perfBudget {
	counts := map[string]*budgetEntry{}
	for _, f := range findings {
		k := budgetKey(f)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &budgetEntry{Package: f.Package, Analyzer: f.Analyzer, Message: f.Message, Count: 1}
	}
	b := &perfBudget{GcVersion: runtime.Version()}
	for _, e := range counts {
		b.Entries = append(b.Entries, *e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.Package != c.Package {
			return a.Package < c.Package
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

func savePerfBudget(path string, findings []finding) (*perfBudget, error) {
	b := budgetFromFindings(findings)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}

func loadPerfBudget(path string) (*perfBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b perfBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perf budget %s: %v", path, err)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.Count < 1 {
			return nil, fmt.Errorf("perf budget %s: entry %d is malformed: %+v", path, i, e)
		}
	}
	return &b, nil
}

// diff splits findings against the budget: regressions (over budget or
// unbudgeted), the number within budget, and the number of budgeted
// findings no longer present (improvements).
func (b *perfBudget) diff(findings []finding) (regressions []finding, within, improved int) {
	remaining := map[string]int{}
	for _, e := range b.Entries {
		remaining[e.Package+"\x00"+e.Analyzer+"\x00"+e.Message] += e.Count
	}
	for _, f := range findings {
		k := budgetKey(f)
		if remaining[k] > 0 {
			remaining[k]--
			within++
			continue
		}
		regressions = append(regressions, f)
	}
	for _, n := range remaining {
		improved += n
	}
	return regressions, within, improved
}

// printPerfReport renders findings as a refactoring worklist, hottest
// (deepest loop) first.
func printPerfReport(findings []finding) {
	sorted := append([]finding(nil), findings...)
	sort.Slice(sorted, func(i, j int) bool {
		a, c := sorted[i], sorted[j]
		if a.Depth != c.Depth {
			return a.Depth > c.Depth
		}
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		return a.Message < c.Message
	})
	byPkg := map[string]int{}
	for _, f := range sorted {
		fmt.Printf("depth=%d %s:%d:%d: %s\n", f.Depth, f.File, f.Line, f.Col, f.Message)
		byPkg[f.Package]++
	}
	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	fmt.Fprintf(os.Stderr, "schedlint: %d finding(s) across %d package(s)\n", len(sorted), len(pkgs))
	for _, p := range pkgs {
		fmt.Fprintf(os.Stderr, "  %4d  %s\n", byPkg[p], p)
	}
}
