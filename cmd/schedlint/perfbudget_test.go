package main

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func perfFindings() []finding {
	return []finding{
		{File: "internal/heuristics/ez/ez.go", Line: 10, Col: 3, Analyzer: "hotescape",
			Message: "hotescape: m1", Package: "schedcomp/internal/heuristics/ez", Depth: 2},
		{File: "internal/heuristics/ez/ez.go", Line: 40, Col: 3, Analyzer: "hotescape",
			Message: "hotescape: m1", Package: "schedcomp/internal/heuristics/ez", Depth: 2},
		{File: "internal/dag/dag.go", Line: 5, Col: 1, Analyzer: "hotbce",
			Message: "hotbce: m2", Package: "schedcomp/internal/dag", Depth: 1},
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf_budget.json")
	saved, err := savePerfBudget(path, perfFindings())
	if err != nil {
		t.Fatal(err)
	}
	if saved.GcVersion != runtime.Version() {
		t.Errorf("saved GcVersion = %q, want %q", saved.GcVersion, runtime.Version())
	}
	b, err := loadPerfBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %+v, want 2 aggregated keys", b.Entries)
	}
	// Deterministic order: dag before heuristics/ez.
	if b.Entries[0].Package != "schedcomp/internal/dag" || b.Entries[0].Count != 1 {
		t.Errorf("entry 0 = %+v", b.Entries[0])
	}
	if b.Entries[1].Count != 2 {
		t.Errorf("duplicate hotescape findings should aggregate to count 2, got %+v", b.Entries[1])
	}
	regressions, within, improved := b.diff(perfFindings())
	if len(regressions) != 0 || within != 3 || improved != 0 {
		t.Errorf("tree at budget: regressions=%v within=%d improved=%d", regressions, within, improved)
	}
}

func TestBudgetDiffRegressionAndImprovement(t *testing.T) {
	b := budgetFromFindings(perfFindings())
	// One extra hotescape occurrence (over count), one brand-new key,
	// and the hotbce finding fixed.
	now := []finding{
		perfFindings()[0], perfFindings()[1],
		{File: "internal/heuristics/ez/ez.go", Line: 77, Col: 3, Analyzer: "hotescape",
			Message: "hotescape: m1", Package: "schedcomp/internal/heuristics/ez", Depth: 2},
		{File: "internal/pq/pq.go", Line: 9, Col: 2, Analyzer: "noinline",
			Message: "noinline: m3", Package: "schedcomp/internal/pq", Depth: 2},
	}
	regressions, within, improved := b.diff(now)
	if within != 2 {
		t.Errorf("within = %d, want 2", within)
	}
	if improved != 1 {
		t.Errorf("improved = %d, want 1 (the fixed hotbce finding)", improved)
	}
	if len(regressions) != 2 {
		t.Fatalf("regressions = %+v, want 2", regressions)
	}
	if regressions[0].Line != 77 {
		t.Errorf("regressions[0] = %+v, want the over-count hotescape occurrence", regressions[0])
	}
	if regressions[1].Analyzer != "noinline" {
		t.Errorf("regressions[1] = %+v, want the new noinline key", regressions[1])
	}
}

func TestBudgetDepthChangeIsRegression(t *testing.T) {
	base := []finding{{File: "f.go", Line: 1, Analyzer: "hotbce",
		Message: "hotbce: bounds check not eliminated in a depth-1 scheduling loop", Package: "p", Depth: 1}}
	b := budgetFromFindings(base)
	moved := []finding{{File: "f.go", Line: 1, Analyzer: "hotbce",
		Message: "hotbce: bounds check not eliminated in a depth-2 scheduling loop", Package: "p", Depth: 2}}
	regressions, _, improved := b.diff(moved)
	if len(regressions) != 1 || improved != 1 {
		t.Errorf("finding migrating deeper must regress: regressions=%v improved=%d", regressions, improved)
	}
}

func TestLoadPerfBudgetErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadPerfBudget(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing budget file should be an error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := loadPerfBudget(bad); err == nil {
		t.Error("malformed budget JSON should be an error")
	}
	zero := filepath.Join(dir, "zero.json")
	os.WriteFile(zero, []byte(`{"gc_version":"go1.24.0","entries":[{"package":"p","analyzer":"","message":"m","count":1}]}`), 0o644)
	if _, err := loadPerfBudget(zero); err == nil {
		t.Error("entry without analyzer should be an error")
	}
}
