package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
	"schedcomp/internal/stats"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	Addr      string
	RPS       float64
	Conc      int
	Dur       time.Duration
	Heuristic string
	Batch     int
	Seed      int64
	MinNodes  int
	MaxNodes  int
}

// Report aggregates one load run. Serialized as the CI artifact.
type Report struct {
	Heuristic          string  `json:"heuristic"`
	Batch              int     `json:"batch"`
	Clients            int     `json:"clients"`
	DurationSeconds    float64 `json:"duration_seconds"`
	Requests           int     `json:"requests"`
	Items              int     `json:"items"`
	OK                 int     `json:"ok"`
	Shed               int     `json:"shed"`
	Timeouts           int     `json:"timeouts"`
	TransportErrors    int     `json:"transport_errors"`
	ValidationFailures int     `json:"validation_failures"`
	ShedRate           float64 `json:"shed_rate"`
	ItemsPerSecond     float64 `json:"items_per_second"`
	LatencyP50Ms       float64 `json:"latency_p50_ms"`
	LatencyP90Ms       float64 `json:"latency_p90_ms"`
	LatencyP99Ms       float64 `json:"latency_p99_ms"`
	LatencyMaxMs       float64 `json:"latency_max_ms"`
}

// Print writes the human-readable summary.
func (r *Report) Print(w io.Writer) {
	mode := "single"
	if r.Batch > 1 {
		mode = fmt.Sprintf("batch=%d", r.Batch)
	}
	fmt.Fprintf(w, "schedload: %s %s, %d clients, %.1fs\n", r.Heuristic, mode, r.Clients, r.DurationSeconds)
	fmt.Fprintf(w, "  requests   %d (%d items, %.1f items/s)\n", r.Requests, r.Items, r.ItemsPerSecond)
	fmt.Fprintf(w, "  ok         %d\n", r.OK)
	fmt.Fprintf(w, "  shed       %d (rate %.1f%%)\n", r.Shed, 100*r.ShedRate)
	fmt.Fprintf(w, "  timeouts   %d\n", r.Timeouts)
	fmt.Fprintf(w, "  errors     %d transport, %d validation\n", r.TransportErrors, r.ValidationFailures)
	fmt.Fprintf(w, "  latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		r.LatencyP50Ms, r.LatencyP90Ms, r.LatencyP99Ms, r.LatencyMaxMs)
}

// assignment mirrors the server's wire format.
type assignment struct {
	Node   int   `json:"node"`
	Proc   int   `json:"proc"`
	Start  int64 `json:"start"`
	Finish int64 `json:"finish"`
}

// scheduleBody is the subset of the /schedule response (and of one
// batch NDJSON line) validation needs.
type scheduleBody struct {
	Index       int          `json:"index"`
	Error       string       `json:"error"`
	Makespan    int64        `json:"makespan"`
	Assignments []assignment `json:"assignments"`
}

// checkSchedule rebuilds the placement the server returned and
// re-times it under the execution model: the response is only counted
// OK if the schedule validates and the server's makespan matches.
func checkSchedule(g *dag.Graph, body scheduleBody) error {
	if len(body.Assignments) != g.NumNodes() {
		return fmt.Errorf("%d assignments for %d nodes", len(body.Assignments), g.NumNodes())
	}
	as := append([]assignment(nil), body.Assignments...)
	sort.Slice(as, func(i, j int) bool {
		if as[i].Proc != as[j].Proc {
			return as[i].Proc < as[j].Proc
		}
		return as[i].Start < as[j].Start
	})
	pl := sched.NewPlacement(g.NumNodes())
	for _, a := range as {
		if a.Node < 0 || a.Node >= g.NumNodes() {
			return fmt.Errorf("assignment names node %d of %d", a.Node, g.NumNodes())
		}
		pl.Assign(dag.NodeID(a.Node), a.Proc)
	}
	rebuilt, err := sched.Build(g, pl)
	if err != nil {
		return err
	}
	if err := rebuilt.Validate(); err != nil {
		return err
	}
	if rebuilt.Makespan != body.Makespan {
		return fmt.Errorf("server makespan %d, rebuilt %d", body.Makespan, rebuilt.Makespan)
	}
	return nil
}

// tally is the shared, mutex-guarded run accumulator.
type tally struct {
	mu        sync.Mutex
	report    Report
	latencies []float64 // milliseconds, one per HTTP request
}

func (a *tally) addLatency(d time.Duration) {
	a.mu.Lock()
	a.latencies = append(a.latencies, float64(d)/float64(time.Millisecond))
	a.report.Requests++
	a.mu.Unlock()
}

func (a *tally) count(f func(r *Report)) {
	a.mu.Lock()
	f(&a.report)
	a.mu.Unlock()
}

// runLoad generates the graph population, runs the clients, and
// assembles the report.
func runLoad(cfg loadConfig) (*Report, error) {
	if cfg.Conc < 1 {
		cfg.Conc = 1
	}
	if cfg.Batch < 0 {
		cfg.Batch = 0
	}
	c, err := corpus.Generate(corpus.Spec{
		Seed: cfg.Seed, GraphsPerSet: 1, MinNodes: cfg.MinNodes, MaxNodes: cfg.MaxNodes,
	})
	if err != nil {
		return nil, err
	}
	var graphs []*dag.Graph
	var bodies [][]byte
	for _, set := range c.Sets {
		for _, g := range set.Graphs {
			data, err := json.Marshal(g)
			if err != nil {
				return nil, err
			}
			graphs = append(graphs, g)
			bodies = append(bodies, data)
		}
	}

	// Rate limiting: a shared token stream at the target rate. The
	// buffer lets a brief stall catch up without a thundering herd.
	var tokens chan struct{}
	stopPacer := make(chan struct{})
	if cfg.RPS > 0 {
		tokens = make(chan struct{}, cfg.Conc)
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				case <-stopPacer:
					return
				}
			}
		}()
	}

	acc := &tally{}
	client := &http.Client{Timeout: 60 * time.Second}
	deadline := time.Now().Add(cfg.Dur)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Conc; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				if cfg.Batch > 1 {
					doBatch(client, cfg, rng, graphs, bodies, acc)
				} else {
					doSingle(client, cfg, rng, graphs, bodies, acc)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopPacer)
	elapsed := time.Since(t0)

	rep := acc.report
	rep.Heuristic = cfg.Heuristic
	rep.Batch = cfg.Batch
	rep.Clients = cfg.Conc
	rep.DurationSeconds = elapsed.Seconds()
	if rep.Items > 0 {
		rep.ItemsPerSecond = float64(rep.Items) / elapsed.Seconds()
	}
	if n := rep.OK + rep.Shed; n > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(n+rep.Timeouts)
	}
	if len(acc.latencies) > 0 {
		rep.LatencyP50Ms = stats.Quantile(acc.latencies, 0.50)
		rep.LatencyP90Ms = stats.Quantile(acc.latencies, 0.90)
		rep.LatencyP99Ms = stats.Quantile(acc.latencies, 0.99)
		_, max := stats.MinMax(acc.latencies)
		rep.LatencyMaxMs = max
	}
	return &rep, nil
}

func doSingle(client *http.Client, cfg loadConfig, rng *rand.Rand, graphs []*dag.Graph, bodies [][]byte, acc *tally) {
	i := rng.Intn(len(graphs))
	t0 := time.Now()
	resp, err := client.Post(cfg.Addr+"/schedule?heuristic="+cfg.Heuristic, "application/json", bytes.NewReader(bodies[i]))
	if err != nil {
		acc.count(func(r *Report) { r.Requests++; r.Items++; r.TransportErrors++ })
		return
	}
	defer resp.Body.Close()
	acc.addLatency(time.Since(t0))
	acc.count(func(r *Report) { r.Items++ })
	switch resp.StatusCode {
	case http.StatusOK:
		var body scheduleBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			acc.count(func(r *Report) { r.ValidationFailures++ })
			return
		}
		if err := checkSchedule(graphs[i], body); err != nil {
			acc.count(func(r *Report) { r.ValidationFailures++ })
			return
		}
		acc.count(func(r *Report) { r.OK++ })
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		acc.count(func(r *Report) { r.Shed++ })
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		acc.count(func(r *Report) { r.Timeouts++ })
	default:
		io.Copy(io.Discard, resp.Body)
		acc.count(func(r *Report) { r.TransportErrors++ })
	}
}

func doBatch(client *http.Client, cfg loadConfig, rng *rand.Rand, graphs []*dag.Graph, bodies [][]byte, acc *tally) {
	idx := make([]int, cfg.Batch)
	var buf bytes.Buffer
	buf.WriteByte('[')
	for j := range idx {
		idx[j] = rng.Intn(len(graphs))
		if j > 0 {
			buf.WriteByte(',')
		}
		buf.Write(bodies[idx[j]])
	}
	buf.WriteByte(']')

	t0 := time.Now()
	resp, err := client.Post(cfg.Addr+"/schedule/batch?heuristic="+cfg.Heuristic, "application/json", &buf)
	if err != nil {
		acc.count(func(r *Report) { r.Requests++; r.Items += len(idx); r.TransportErrors++ })
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		acc.addLatency(time.Since(t0))
		acc.count(func(r *Report) { r.Items += len(idx); r.TransportErrors++ })
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	seen := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var body scheduleBody
		if err := json.Unmarshal(line, &body); err != nil {
			acc.count(func(r *Report) { r.Items++; r.ValidationFailures++ })
			continue
		}
		seen++
		switch {
		case body.Error == "":
			if body.Index < 0 || body.Index >= len(idx) {
				acc.count(func(r *Report) { r.Items++; r.ValidationFailures++ })
				continue
			}
			if err := checkSchedule(graphs[idx[body.Index]], body); err != nil {
				acc.count(func(r *Report) { r.Items++; r.ValidationFailures++ })
				continue
			}
			acc.count(func(r *Report) { r.Items++; r.OK++ })
		case strings.Contains(body.Error, "deadline exceeded") || strings.Contains(body.Error, "canceled"):
			acc.count(func(r *Report) { r.Items++; r.Timeouts++ })
		default:
			acc.count(func(r *Report) { r.Items++; r.TransportErrors++ })
		}
	}
	acc.addLatency(time.Since(t0))
	if err := sc.Err(); err != nil || seen != len(idx) {
		acc.count(func(r *Report) { r.TransportErrors++ })
	}
}
