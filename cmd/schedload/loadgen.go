package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
	"schedcomp/internal/stats"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	Addr      string
	RPS       float64
	Conc      int
	Dur       time.Duration
	Heuristic string
	Batch     int
	Seed      int64
	MinNodes  int
	MaxNodes  int
	// Dup is the fraction of requests drawn from a fixed pool of
	// repeated content: identical, renamed, and relabeled (isomorphic)
	// copies of the corpus graphs. The remaining requests are
	// content-unique weight perturbations, so a schedule cache can
	// never serve them from a prior entry.
	Dup float64
	// Quality drives ?quality=best instead of a single heuristic;
	// Budget is the per-request refinement allowance. Quality is
	// single-request only (the server rejects quality batches).
	Quality bool
	Budget  time.Duration
}

// Report aggregates one load run. Serialized as the CI artifact.
//
// latency_* quantiles cover served (200) responses only; shed (429)
// responses get their own shed_latency_* quantiles. Request timeouts
// (503) appear in neither — their latency is the deadline, not a
// measurement.
type Report struct {
	Heuristic          string  `json:"heuristic"`
	Batch              int     `json:"batch"`
	Clients            int     `json:"clients"`
	DupRatio           float64 `json:"dup_ratio"`
	DurationSeconds    float64 `json:"duration_seconds"`
	Requests           int     `json:"requests"`
	Items              int     `json:"items"`
	OK                 int     `json:"ok"`
	Shed               int     `json:"shed"`
	Timeouts           int     `json:"timeouts"`
	TransportErrors    int     `json:"transport_errors"`
	ValidationFailures int     `json:"validation_failures"`
	ShedRate           float64 `json:"shed_rate"`
	ItemsPerSecond     float64 `json:"items_per_second"`
	CacheHits          int     `json:"cache_hits"`
	CacheMisses        int     `json:"cache_misses"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
	Quality            bool    `json:"quality,omitempty"`
	BudgetMs           float64 `json:"budget_ms,omitempty"`
	ProvenOptimal      int     `json:"proven_optimal,omitempty"`
	OvershootP50       float64 `json:"overshoot_p50"`
	OvershootP99       float64 `json:"overshoot_p99"`
	OvershootMax       float64 `json:"overshoot_max"`
	LatencyP50Ms       float64 `json:"latency_p50_ms"`
	LatencyP90Ms       float64 `json:"latency_p90_ms"`
	LatencyP99Ms       float64 `json:"latency_p99_ms"`
	LatencyMaxMs       float64 `json:"latency_max_ms"`
	ShedLatencyP50Ms   float64 `json:"shed_latency_p50_ms"`
	ShedLatencyP90Ms   float64 `json:"shed_latency_p90_ms"`
	ShedLatencyP99Ms   float64 `json:"shed_latency_p99_ms"`
	ShedLatencyMaxMs   float64 `json:"shed_latency_max_ms"`
}

// Print writes the human-readable summary.
func (r *Report) Print(w io.Writer) {
	mode := "single"
	if r.Batch > 1 {
		mode = fmt.Sprintf("batch=%d", r.Batch)
	}
	fmt.Fprintf(w, "schedload: %s %s, %d clients, %.1fs\n", r.Heuristic, mode, r.Clients, r.DurationSeconds)
	fmt.Fprintf(w, "  requests   %d (%d items, %.1f items/s)\n", r.Requests, r.Items, r.ItemsPerSecond)
	fmt.Fprintf(w, "  ok         %d\n", r.OK)
	fmt.Fprintf(w, "  shed       %d (rate %.1f%%)\n", r.Shed, 100*r.ShedRate)
	fmt.Fprintf(w, "  timeouts   %d\n", r.Timeouts)
	fmt.Fprintf(w, "  errors     %d transport, %d validation\n", r.TransportErrors, r.ValidationFailures)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(w, "  cache      %d hits / %d misses (hit rate %.1f%%)\n",
			r.CacheHits, r.CacheMisses, 100*r.CacheHitRate)
	}
	if r.Quality {
		fmt.Fprintf(w, "  quality    budget=%.0fms, %d proven optimal, overshoot p50=%.3f p99=%.3f max=%.3f\n",
			r.BudgetMs, r.ProvenOptimal, r.OvershootP50, r.OvershootP99, r.OvershootMax)
	}
	fmt.Fprintf(w, "  served ms  p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		r.LatencyP50Ms, r.LatencyP90Ms, r.LatencyP99Ms, r.LatencyMaxMs)
	if r.Shed > 0 {
		fmt.Fprintf(w, "  shed ms    p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
			r.ShedLatencyP50Ms, r.ShedLatencyP90Ms, r.ShedLatencyP99Ms, r.ShedLatencyMaxMs)
	}
}

// assignment mirrors the server's wire format.
type assignment struct {
	Node   int   `json:"node"`
	Proc   int   `json:"proc"`
	Start  int64 `json:"start"`
	Finish int64 `json:"finish"`
}

// scheduleBody is the subset of the /schedule response (and of one
// batch NDJSON line) validation needs.
type scheduleBody struct {
	Index       int          `json:"index"`
	Error       string       `json:"error"`
	Cache       string       `json:"cache"`
	Makespan    int64        `json:"makespan"`
	Assignments []assignment `json:"assignments"`
	Quality     *qualityWire `json:"quality"`
}

// qualityWire is the provenance block of a quality-tier response.
type qualityWire struct {
	LowerBound int64   `json:"lower_bound"`
	Gap        int64   `json:"gap"`
	Proven     bool    `json:"proven"`
	ElapsedMs  float64 `json:"elapsed_ms"`
	BudgetMs   float64 `json:"budget_ms"`
}

// checkQuality enforces the quality-tier contract on the wire: the
// block must be present and internally sound (gap identity against
// the reported makespan, non-negative, Proven exactly when the gap
// closed). A server quietly downgrading to the plain tier fails here.
func checkQuality(body scheduleBody) error {
	q := body.Quality
	if q == nil {
		return fmt.Errorf("quality request answered without a quality block")
	}
	if q.Gap != body.Makespan-q.LowerBound {
		return fmt.Errorf("gap %d != makespan %d - lower bound %d", q.Gap, body.Makespan, q.LowerBound)
	}
	if q.Gap < 0 {
		return fmt.Errorf("negative gap %d", q.Gap)
	}
	if q.Proven != (q.Gap == 0) {
		return fmt.Errorf("proven = %v with gap %d", q.Proven, q.Gap)
	}
	return nil
}

// checkSchedule rebuilds the placement the server returned and
// re-times it under the execution model: the response is only counted
// OK if the schedule validates and the server's makespan matches.
// Responses the server marked as cache hits go through exactly the
// same fresh local rebuild, so a stale or mis-remapped cache entry
// shows up as a validation failure, not silent corruption.
func checkSchedule(g *dag.Graph, body scheduleBody) error {
	if len(body.Assignments) != g.NumNodes() {
		return fmt.Errorf("%d assignments for %d nodes", len(body.Assignments), g.NumNodes())
	}
	as := append([]assignment(nil), body.Assignments...)
	sort.Slice(as, func(i, j int) bool {
		if as[i].Proc != as[j].Proc {
			return as[i].Proc < as[j].Proc
		}
		return as[i].Start < as[j].Start
	})
	pl := sched.NewPlacement(g.NumNodes())
	for _, a := range as {
		if a.Node < 0 || a.Node >= g.NumNodes() {
			return fmt.Errorf("assignment names node %d of %d", a.Node, g.NumNodes())
		}
		pl.Assign(dag.NodeID(a.Node), a.Proc)
	}
	rebuilt, err := sched.Build(g, pl)
	if err != nil {
		return err
	}
	if err := rebuilt.Validate(); err != nil {
		return err
	}
	if rebuilt.Makespan != body.Makespan {
		return fmt.Errorf("server makespan %d, rebuilt %d", body.Makespan, rebuilt.Makespan)
	}
	return nil
}

// tally is the shared, mutex-guarded run accumulator.
type tally struct {
	mu        sync.Mutex
	report    Report
	served    []float64 // milliseconds, one per 200 response
	shed      []float64 // milliseconds, one per 429 response
	overshoot []float64 // budget-overshoot ratios, one per quality 200
}

func (a *tally) addServed(d time.Duration) {
	a.mu.Lock()
	a.served = append(a.served, float64(d)/float64(time.Millisecond))
	a.mu.Unlock()
}

func (a *tally) addShed(d time.Duration) {
	a.mu.Lock()
	a.shed = append(a.shed, float64(d)/float64(time.Millisecond))
	a.mu.Unlock()
}

// addOvershoot records how far the server-reported refinement time ran
// past the requested budget, as a ratio of the budget (0 when within
// it).
func (a *tally) addOvershoot(elapsedMs, budgetMs float64) {
	over := (elapsedMs - budgetMs) / budgetMs
	if over < 0 {
		over = 0
	}
	a.mu.Lock()
	a.overshoot = append(a.overshoot, over)
	a.mu.Unlock()
}

func (a *tally) count(f func(r *Report)) {
	a.mu.Lock()
	f(&a.report)
	a.mu.Unlock()
}

// countCache folds one response's cache marker ("hit", "miss", or ""
// from a server without a cache) into the report.
func countCache(r *Report, status string) {
	switch status {
	case "hit":
		r.CacheHits++
	case "miss":
		r.CacheMisses++
	}
}

// wireGraph mirrors the dag JSON wire format so the generator can
// relabel and perturb graphs without reaching into dag internals.
type wireGraph struct {
	Name  string     `json:"name,omitempty"`
	Nodes []int64    `json:"nodes"`
	Edges []wireEdge `json:"edges"`
}

type wireEdge struct {
	From   int   `json:"from"`
	To     int   `json:"to"`
	Weight int64 `json:"weight"`
}

// reqGraph is one sendable request body plus the graph to validate the
// response against.
type reqGraph struct {
	g    *dag.Graph
	body []byte
}

// maxFreshWeight bounds the perturbed weight of fresh graphs. Together
// with the node choice it keeps the first ~million fresh graphs drawn
// from one base pairwise content-distinct.
const maxFreshWeight = 1 << 20

// trafficSource draws request bodies. A coin biased by dup picks
// between the duplicate pool — identical, renamed, and relabeled
// isomorphic variants that all share one canonical hash per base graph
// — and a fresh content-unique perturbation that no cache can have
// seen before.
type trafficSource struct {
	dup      float64
	variants [][]reqGraph // per base graph
	wires    []wireGraph  // base wire forms, cloned for fresh graphs
	fresh    atomic.Int64
}

func compileWire(w wireGraph) (reqGraph, error) {
	body, err := json.Marshal(w)
	if err != nil {
		return reqGraph{}, err
	}
	g, err := dag.ReadJSON(bytes.NewReader(body))
	if err != nil {
		return reqGraph{}, fmt.Errorf("generated graph rejected: %w", err)
	}
	return reqGraph{g: g, body: body}, nil
}

// permuteWire relabels the nodes under a random permutation and
// shuffles edge order: an isomorphic graph with different bytes.
func permuteWire(w wireGraph, rng *rand.Rand) wireGraph {
	n := len(w.Nodes)
	order := rng.Perm(n) // order[new] = old
	inv := make([]int, n)
	for newID, old := range order {
		inv[old] = newID
	}
	out := wireGraph{
		Name:  w.Name + "-perm",
		Nodes: make([]int64, n),
		Edges: make([]wireEdge, len(w.Edges)),
	}
	for newID, old := range order {
		out.Nodes[newID] = w.Nodes[old]
	}
	for i, e := range w.Edges {
		out.Edges[i] = wireEdge{From: inv[e.From], To: inv[e.To], Weight: e.Weight}
	}
	rng.Shuffle(len(out.Edges), func(i, j int) { out.Edges[i], out.Edges[j] = out.Edges[j], out.Edges[i] })
	return out
}

func newTrafficSource(dup float64, graphs []*dag.Graph, rng *rand.Rand) (*trafficSource, error) {
	if dup < 0 {
		dup = 0
	}
	if dup > 1 {
		dup = 1
	}
	s := &trafficSource{dup: dup}
	for _, g := range graphs {
		data, err := json.Marshal(g)
		if err != nil {
			return nil, err
		}
		var w wireGraph
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, err
		}
		s.wires = append(s.wires, w)

		identical := reqGraph{g: g, body: data}
		renamed := w
		renamed.Name = w.Name + "-renamed"
		rv, err := compileWire(renamed)
		if err != nil {
			return nil, err
		}
		vs := []reqGraph{identical, rv}
		for k := 0; k < 2; k++ {
			pv, err := compileWire(permuteWire(w, rng))
			if err != nil {
				return nil, err
			}
			vs = append(vs, pv)
		}
		s.variants = append(s.variants, vs)
	}
	return s, nil
}

// pick returns the next request. Duplicates come straight from the
// precompiled pool; fresh graphs perturb one node weight with a
// globally unique counter so their content never repeats.
func (s *trafficSource) pick(rng *rand.Rand) (*dag.Graph, []byte, error) {
	i := rng.Intn(len(s.variants))
	if s.dup > 0 && rng.Float64() < s.dup {
		vs := s.variants[i]
		v := vs[rng.Intn(len(vs))]
		return v.g, v.body, nil
	}
	c := s.fresh.Add(1)
	w := s.wires[i]
	nodes := append([]int64(nil), w.Nodes...)
	v := int(c) % len(nodes)
	nodes[v] = 1 + (nodes[v]+c)%maxFreshWeight
	w.Nodes = nodes
	w.Name = fmt.Sprintf("%s-fresh%d", w.Name, c)
	rg, err := compileWire(w)
	if err != nil {
		return nil, nil, err
	}
	return rg.g, rg.body, nil
}

// runLoad generates the graph population, runs the clients, and
// assembles the report.
func runLoad(cfg loadConfig) (*Report, error) {
	if cfg.Conc < 1 {
		cfg.Conc = 1
	}
	if cfg.Batch < 0 {
		cfg.Batch = 0
	}
	if cfg.Quality {
		if cfg.Batch > 1 {
			return nil, fmt.Errorf("the quality tier is single-request only (got -batch %d)", cfg.Batch)
		}
		if cfg.Budget <= 0 {
			return nil, fmt.Errorf("quality budget %v must be positive", cfg.Budget)
		}
	}
	c, err := corpus.Generate(corpus.Spec{
		Seed: cfg.Seed, GraphsPerSet: 1, MinNodes: cfg.MinNodes, MaxNodes: cfg.MaxNodes,
	})
	if err != nil {
		return nil, err
	}
	var graphs []*dag.Graph
	for _, set := range c.Sets {
		graphs = append(graphs, set.Graphs...)
	}
	src, err := newTrafficSource(cfg.Dup, graphs, rand.New(rand.NewSource(cfg.Seed^0x5eedca4e)))
	if err != nil {
		return nil, err
	}

	// Rate limiting: a shared token stream at the target rate. The
	// buffer lets a brief stall catch up without a thundering herd.
	var tokens chan struct{}
	stopPacer := make(chan struct{})
	if cfg.RPS > 0 {
		tokens = make(chan struct{}, cfg.Conc)
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				case <-stopPacer:
					return
				}
			}
		}()
	}

	acc := &tally{}
	client := &http.Client{Timeout: 60 * time.Second}
	deadline := time.Now().Add(cfg.Dur)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Conc; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				if cfg.Batch > 1 {
					doBatch(client, cfg, rng, src, acc)
				} else {
					doSingle(client, cfg, rng, src, acc)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopPacer)
	elapsed := time.Since(t0)

	rep := acc.report
	rep.Heuristic = cfg.Heuristic
	if cfg.Quality {
		rep.Heuristic = "quality:best"
		rep.Quality = true
		rep.BudgetMs = float64(cfg.Budget) / float64(time.Millisecond)
	}
	rep.Batch = cfg.Batch
	rep.Clients = cfg.Conc
	rep.DupRatio = src.dup
	rep.DurationSeconds = elapsed.Seconds()
	if rep.Items > 0 {
		rep.ItemsPerSecond = float64(rep.Items) / elapsed.Seconds()
	}
	if denom := rep.OK + rep.Shed + rep.Timeouts; denom > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(denom)
	}
	if n := rep.CacheHits + rep.CacheMisses; n > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(n)
	}
	if len(acc.served) > 0 {
		rep.LatencyP50Ms = stats.Quantile(acc.served, 0.50)
		rep.LatencyP90Ms = stats.Quantile(acc.served, 0.90)
		rep.LatencyP99Ms = stats.Quantile(acc.served, 0.99)
		_, max := stats.MinMax(acc.served)
		rep.LatencyMaxMs = max
	}
	if len(acc.shed) > 0 {
		rep.ShedLatencyP50Ms = stats.Quantile(acc.shed, 0.50)
		rep.ShedLatencyP90Ms = stats.Quantile(acc.shed, 0.90)
		rep.ShedLatencyP99Ms = stats.Quantile(acc.shed, 0.99)
		_, max := stats.MinMax(acc.shed)
		rep.ShedLatencyMaxMs = max
	}
	if len(acc.overshoot) > 0 {
		rep.OvershootP50 = stats.Quantile(acc.overshoot, 0.50)
		rep.OvershootP99 = stats.Quantile(acc.overshoot, 0.99)
		_, max := stats.MinMax(acc.overshoot)
		rep.OvershootMax = max
	}
	return &rep, nil
}

func doSingle(client *http.Client, cfg loadConfig, rng *rand.Rand, src *trafficSource, acc *tally) {
	g, body, err := src.pick(rng)
	if err != nil {
		log.Printf("schedload: generate request: %v", err)
		acc.count(func(r *Report) { r.Requests++; r.Items++; r.TransportErrors++ })
		return
	}
	url := cfg.Addr + "/schedule?heuristic=" + cfg.Heuristic
	if cfg.Quality {
		url = cfg.Addr + "/schedule?quality=best&budget=" + cfg.Budget.String()
	}
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	lat := time.Since(t0)
	if err != nil {
		acc.count(func(r *Report) { r.Requests++; r.Items++; r.TransportErrors++ })
		return
	}
	defer resp.Body.Close()
	acc.count(func(r *Report) { r.Requests++; r.Items++ })
	switch resp.StatusCode {
	case http.StatusOK:
		acc.addServed(lat)
		cacheStatus := resp.Header.Get("X-Sched-Cache")
		var sb scheduleBody
		if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
			acc.count(func(r *Report) { r.ValidationFailures++; countCache(r, cacheStatus) })
			return
		}
		if err := checkSchedule(g, sb); err != nil {
			acc.count(func(r *Report) { r.ValidationFailures++; countCache(r, cacheStatus) })
			return
		}
		if cfg.Quality {
			if err := checkQuality(sb); err != nil {
				acc.count(func(r *Report) { r.ValidationFailures++; countCache(r, cacheStatus) })
				return
			}
			acc.addOvershoot(sb.Quality.ElapsedMs, float64(cfg.Budget)/float64(time.Millisecond))
			if sb.Quality.Proven {
				acc.count(func(r *Report) { r.ProvenOptimal++ })
			}
		}
		acc.count(func(r *Report) { r.OK++; countCache(r, cacheStatus) })
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		acc.addShed(lat)
		acc.count(func(r *Report) { r.Shed++ })
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		acc.count(func(r *Report) { r.Timeouts++ })
	default:
		io.Copy(io.Discard, resp.Body)
		acc.count(func(r *Report) { r.TransportErrors++ })
	}
}

func doBatch(client *http.Client, cfg loadConfig, rng *rand.Rand, src *trafficSource, acc *tally) {
	picked := make([]*dag.Graph, cfg.Batch)
	var buf bytes.Buffer
	buf.WriteByte('[')
	for j := range picked {
		g, body, err := src.pick(rng)
		if err != nil {
			log.Printf("schedload: generate request: %v", err)
			acc.count(func(r *Report) { r.Requests++; r.Items += cfg.Batch; r.TransportErrors++ })
			return
		}
		picked[j] = g
		if j > 0 {
			buf.WriteByte(',')
		}
		buf.Write(body)
	}
	buf.WriteByte(']')

	t0 := time.Now()
	resp, err := client.Post(cfg.Addr+"/schedule/batch?heuristic="+cfg.Heuristic, "application/json", &buf)
	lat := time.Since(t0)
	if err != nil {
		acc.count(func(r *Report) { r.Requests++; r.Items += len(picked); r.TransportErrors++ })
		return
	}
	defer resp.Body.Close()
	acc.count(func(r *Report) { r.Requests++ })
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		acc.count(func(r *Report) { r.Items += len(picked); r.TransportErrors++ })
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	seen := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var body scheduleBody
		if err := json.Unmarshal(line, &body); err != nil {
			acc.count(func(r *Report) { r.Items++; r.ValidationFailures++ })
			continue
		}
		seen++
		switch {
		case body.Error == "":
			if body.Index < 0 || body.Index >= len(picked) {
				acc.count(func(r *Report) { r.Items++; r.ValidationFailures++ })
				continue
			}
			if err := checkSchedule(picked[body.Index], body); err != nil {
				acc.count(func(r *Report) { r.Items++; r.ValidationFailures++; countCache(r, body.Cache) })
				continue
			}
			acc.count(func(r *Report) { r.Items++; r.OK++; countCache(r, body.Cache) })
		case strings.Contains(body.Error, "deadline exceeded") || strings.Contains(body.Error, "canceled"):
			acc.count(func(r *Report) { r.Items++; r.Timeouts++ })
		default:
			acc.count(func(r *Report) { r.Items++; r.TransportErrors++ })
		}
	}
	// The whole-request latency belongs to the served bucket: the
	// request was admitted and streamed results.
	acc.addServed(lat)
	if err := sc.Err(); err != nil || seen != len(picked) {
		acc.count(func(r *Report) { r.TransportErrors++ })
	}
}
