package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/mcp"
)

// stubServe is a minimal schedserve stand-in: it really schedules with
// MCP so the client's validation path sees authentic responses, and
// optionally sheds every Nth /schedule request.
func stubServe(t *testing.T, shedEvery int64) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	writeItem := func(w http.ResponseWriter, g *dag.Graph, index int) {
		sc, err := heuristics.Run(mcp.New(), g)
		if err != nil {
			t.Errorf("stub schedule: %v", err)
			return
		}
		body := scheduleBody{Index: index, Makespan: sc.Makespan}
		for _, a := range sc.ByNode {
			body.Assignments = append(body.Assignments, assignment{
				Node: int(a.Node), Proc: a.Proc, Start: a.Start, Finish: a.Finish,
			})
		}
		_ = json.NewEncoder(w).Encode(body) // Encode terminates the NDJSON line
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		if shedEvery > 0 && n.Add(1)%shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		g, err := dag.ReadJSON(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeItem(w, g, 0)
	})
	mux.HandleFunc("/schedule/batch", func(w http.ResponseWriter, r *http.Request) {
		var graphs []*dag.Graph
		if err := json.NewDecoder(r.Body).Decode(&graphs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i, g := range graphs {
			writeItem(w, g, i)
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func shortLoadConfig(addr string) loadConfig {
	return loadConfig{
		Addr: addr, Conc: 4, Dur: 300 * time.Millisecond,
		Heuristic: "MCP", Seed: 3, MinNodes: 8, MaxNodes: 16,
	}
}

func TestRunLoadSingle(t *testing.T) {
	ts := stubServe(t, 0)
	rep, err := runLoad(shortLoadConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatal("no successful requests against the stub")
	}
	if rep.ValidationFailures != 0 || rep.TransportErrors != 0 {
		t.Fatalf("clean stub produced failures: %+v", rep)
	}
	if rep.Requests != rep.Items || rep.OK != rep.Items {
		t.Fatalf("single mode accounting: %+v", rep)
	}
	if rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("latency quantiles inverted: %+v", rep)
	}
}

func TestRunLoadCountsSheds(t *testing.T) {
	ts := stubServe(t, 3) // every third request sheds
	rep, err := runLoad(shortLoadConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("stub sheds every 3rd request but report saw none: %+v", rep)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Fatalf("shed rate = %v, want within (0,1)", rep.ShedRate)
	}
	if rep.ValidationFailures != 0 {
		t.Fatalf("sheds counted as validation failures: %+v", rep)
	}
}

func TestRunLoadBatch(t *testing.T) {
	ts := stubServe(t, 0)
	cfg := shortLoadConfig(ts.URL)
	cfg.Batch = 5
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.ValidationFailures != 0 || rep.TransportErrors != 0 {
		t.Fatalf("batch run: %+v", rep)
	}
	if rep.Items != rep.Requests*cfg.Batch {
		t.Fatalf("items = %d, want requests (%d) x batch (%d)", rep.Items, rep.Requests, cfg.Batch)
	}
}

// TestCheckScheduleRejectsCorruption guards the validator itself: a
// forged makespan or a placement violating dependencies must fail.
func TestCheckScheduleRejectsCorruption(t *testing.T) {
	g := dag.New("pair")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 3)
	sc, err := heuristics.Run(mcp.New(), g)
	if err != nil {
		t.Fatal(err)
	}
	good := scheduleBody{Makespan: sc.Makespan}
	for _, x := range sc.ByNode {
		good.Assignments = append(good.Assignments, assignment{
			Node: int(x.Node), Proc: x.Proc, Start: x.Start, Finish: x.Finish,
		})
	}
	if err := checkSchedule(g, good); err != nil {
		t.Fatalf("authentic schedule rejected: %v", err)
	}

	forged := good
	forged.Makespan++
	if err := checkSchedule(g, forged); err == nil {
		t.Fatal("forged makespan accepted")
	}

	truncated := good
	truncated.Assignments = truncated.Assignments[:1]
	if err := checkSchedule(g, truncated); err == nil {
		t.Fatal("truncated assignment list accepted")
	}
}
