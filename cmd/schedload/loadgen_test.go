package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/mcp"
)

// stubOptions tunes the stub server: shed cadence, an injected
// service delay on served responses, and canonical-hash cache
// emulation (marking repeated content hit, first sighting miss).
type stubOptions struct {
	shedEvery  int64
	serveDelay time.Duration
	cacheAware bool
	// qualityFactor, when positive, makes the stub answer ?quality=best
	// with a quality block whose elapsed_ms is factor × the requested
	// budget (so overshoot ratios are deterministic). Zero means the
	// stub ignores the parameter entirely — a downgrading server the
	// client must flag.
	qualityFactor float64
	// brokenGap corrupts the quality block's gap field.
	brokenGap bool
}

// stubServe is a minimal schedserve stand-in: it really schedules with
// MCP so the client's validation path sees authentic responses, and
// optionally sheds every Nth /schedule request.
func stubServe(t *testing.T, shedEvery int64) *httptest.Server {
	return stubServeOpts(t, stubOptions{shedEvery: shedEvery})
}

func stubServeOpts(t *testing.T, opts stubOptions) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	var mu sync.Mutex
	seen := make(map[dag.Fingerprint]bool)
	cacheStatus := func(g *dag.Graph) string {
		if !opts.cacheAware {
			return ""
		}
		fp := g.CanonicalHash()
		mu.Lock()
		defer mu.Unlock()
		if seen[fp] {
			return "hit"
		}
		seen[fp] = true
		return "miss"
	}
	writeItem := func(w http.ResponseWriter, g *dag.Graph, index int, cache string, budget string) {
		sc, err := heuristics.Run(mcp.New(), g)
		if err != nil {
			t.Errorf("stub schedule: %v", err)
			return
		}
		body := scheduleBody{Index: index, Makespan: sc.Makespan, Cache: cache}
		if budget != "" && opts.qualityFactor > 0 {
			b, err := time.ParseDuration(budget)
			if err != nil {
				t.Errorf("stub budget %q: %v", budget, err)
				return
			}
			budgetMs := float64(b) / float64(time.Millisecond)
			q := &qualityWire{
				LowerBound: sc.Makespan, // gap 0: pretend the probe proved it
				Gap:        0,
				Proven:     true,
				BudgetMs:   budgetMs,
				ElapsedMs:  budgetMs * opts.qualityFactor,
			}
			if opts.brokenGap {
				q.Gap = 7
			}
			body.Quality = q
		}
		for _, a := range sc.ByNode {
			body.Assignments = append(body.Assignments, assignment{
				Node: int(a.Node), Proc: a.Proc, Start: a.Start, Finish: a.Finish,
			})
		}
		_ = json.NewEncoder(w).Encode(body) // Encode terminates the NDJSON line
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		if opts.shedEvery > 0 && n.Add(1)%opts.shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		g, err := dag.ReadJSON(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if opts.serveDelay > 0 {
			time.Sleep(opts.serveDelay)
		}
		cache := cacheStatus(g)
		if cache != "" {
			w.Header().Set("X-Sched-Cache", cache)
		}
		budget := ""
		if r.URL.Query().Get("quality") == "best" {
			budget = r.URL.Query().Get("budget")
		}
		writeItem(w, g, 0, cache, budget)
	})
	mux.HandleFunc("/schedule/batch", func(w http.ResponseWriter, r *http.Request) {
		var graphs []*dag.Graph
		if err := json.NewDecoder(r.Body).Decode(&graphs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if opts.serveDelay > 0 {
			time.Sleep(opts.serveDelay)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i, g := range graphs {
			writeItem(w, g, i, cacheStatus(g), "")
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func shortLoadConfig(addr string) loadConfig {
	return loadConfig{
		Addr: addr, Conc: 4, Dur: 300 * time.Millisecond,
		Heuristic: "MCP", Seed: 3, MinNodes: 8, MaxNodes: 16,
	}
}

func TestRunLoadSingle(t *testing.T) {
	ts := stubServe(t, 0)
	rep, err := runLoad(shortLoadConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatal("no successful requests against the stub")
	}
	if rep.ValidationFailures != 0 || rep.TransportErrors != 0 {
		t.Fatalf("clean stub produced failures: %+v", rep)
	}
	if rep.Requests != rep.Items || rep.OK != rep.Items {
		t.Fatalf("single mode accounting: %+v", rep)
	}
	if rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("latency quantiles inverted: %+v", rep)
	}
}

func TestRunLoadCountsSheds(t *testing.T) {
	ts := stubServe(t, 3) // every third request sheds
	rep, err := runLoad(shortLoadConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("stub sheds every 3rd request but report saw none: %+v", rep)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Fatalf("shed rate = %v, want within (0,1)", rep.ShedRate)
	}
	if rep.ValidationFailures != 0 {
		t.Fatalf("sheds counted as validation failures: %+v", rep)
	}
}

func TestRunLoadBatch(t *testing.T) {
	ts := stubServe(t, 0)
	cfg := shortLoadConfig(ts.URL)
	cfg.Batch = 5
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.ValidationFailures != 0 || rep.TransportErrors != 0 {
		t.Fatalf("batch run: %+v", rep)
	}
	if rep.Items != rep.Requests*cfg.Batch {
		t.Fatalf("items = %d, want requests (%d) x batch (%d)", rep.Items, rep.Requests, cfg.Batch)
	}
}

// TestServedShedLatencySplit guards the quantile fix: shed responses
// used to be folded into the same latency population as served ones,
// dragging p50/p99 down under overload. With a 20ms injected service
// delay and instant sheds, the served median must carry the delay
// while the shed median stays well below it.
func TestServedShedLatencySplit(t *testing.T) {
	const delay = 20 * time.Millisecond
	ts := stubServeOpts(t, stubOptions{shedEvery: 2, serveDelay: delay})
	cfg := shortLoadConfig(ts.URL)
	cfg.Conc = 2
	cfg.Dur = 500 * time.Millisecond
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.Shed == 0 {
		t.Fatalf("need both served and shed traffic: %+v", rep)
	}
	if rep.LatencyP50Ms < float64(delay/time.Millisecond)/2 {
		t.Fatalf("served p50 = %.2fms, want >= %.0fms (injected delay leaked out)",
			rep.LatencyP50Ms, float64(delay/time.Millisecond)/2)
	}
	if rep.ShedLatencyP50Ms >= rep.LatencyP50Ms {
		t.Fatalf("shed p50 (%.2fms) >= served p50 (%.2fms): split is not separating populations",
			rep.ShedLatencyP50Ms, rep.LatencyP50Ms)
	}
	wantRate := float64(rep.Shed) / float64(rep.OK+rep.Shed+rep.Timeouts)
	if rep.ShedRate != wantRate {
		t.Fatalf("shed rate = %v, want %v", rep.ShedRate, wantRate)
	}
}

// TestDupTrafficHitsCache drives pure duplicate traffic (identical,
// renamed, and relabeled isomorphic copies) at a canonical-hash-aware
// stub: everything past the first sighting of each base graph must
// come back a hit, and hits validate like any other response.
func TestDupTrafficHitsCache(t *testing.T) {
	ts := stubServeOpts(t, stubOptions{cacheAware: true})
	cfg := shortLoadConfig(ts.URL)
	cfg.Dup = 1.0
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValidationFailures != 0 || rep.TransportErrors != 0 {
		t.Fatalf("duplicate traffic failed validation: %+v", rep)
	}
	if rep.CacheMisses == 0 || rep.CacheHits == 0 {
		t.Fatalf("want both misses (first sightings) and hits: %+v", rep)
	}
	if rep.CacheHits+rep.CacheMisses != rep.OK {
		t.Fatalf("cache accounting %d+%d != ok %d", rep.CacheHits, rep.CacheMisses, rep.OK)
	}
	if rep.CacheHitRate <= 0 || rep.CacheHitRate >= 1 {
		t.Fatalf("hit rate = %v, want within (0,1)", rep.CacheHitRate)
	}
}

// TestFreshTrafficNeverHits is the uniqueness guarantee for -dup 0:
// every generated graph is content-distinct, so a canonical-hash cache
// never sees a repeat.
func TestFreshTrafficNeverHits(t *testing.T) {
	ts := stubServeOpts(t, stubOptions{cacheAware: true})
	cfg := shortLoadConfig(ts.URL)
	cfg.Dup = 0
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.ValidationFailures != 0 {
		t.Fatalf("fresh traffic run: %+v", rep)
	}
	if rep.CacheHits != 0 {
		t.Fatalf("%d cache hits on supposedly content-unique traffic", rep.CacheHits)
	}
	if rep.CacheMisses != rep.OK {
		t.Fatalf("misses %d != ok %d", rep.CacheMisses, rep.OK)
	}
}

// TestBatchDupCacheCounts exercises the per-line cache field on the
// batch path.
func TestBatchDupCacheCounts(t *testing.T) {
	ts := stubServeOpts(t, stubOptions{cacheAware: true})
	cfg := shortLoadConfig(ts.URL)
	cfg.Dup = 1.0
	cfg.Batch = 4
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.ValidationFailures != 0 || rep.TransportErrors != 0 {
		t.Fatalf("batch dup run: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("no cache hits across %d duplicate batch items", rep.Items)
	}
	if rep.CacheHits+rep.CacheMisses != rep.OK {
		t.Fatalf("cache accounting %d+%d != ok %d", rep.CacheHits, rep.CacheMisses, rep.OK)
	}
}

// TestCheckScheduleRejectsCorruption guards the validator itself: a
// forged makespan or a placement violating dependencies must fail.
func TestCheckScheduleRejectsCorruption(t *testing.T) {
	g := dag.New("pair")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 3)
	sc, err := heuristics.Run(mcp.New(), g)
	if err != nil {
		t.Fatal(err)
	}
	good := scheduleBody{Makespan: sc.Makespan}
	for _, x := range sc.ByNode {
		good.Assignments = append(good.Assignments, assignment{
			Node: int(x.Node), Proc: x.Proc, Start: x.Start, Finish: x.Finish,
		})
	}
	if err := checkSchedule(g, good); err != nil {
		t.Fatalf("authentic schedule rejected: %v", err)
	}

	forged := good
	forged.Makespan++
	if err := checkSchedule(g, forged); err == nil {
		t.Fatal("forged makespan accepted")
	}

	truncated := good
	truncated.Assignments = truncated.Assignments[:1]
	if err := checkSchedule(g, truncated); err == nil {
		t.Fatal("truncated assignment list accepted")
	}
}

// TestRunLoadQuality drives the quality tier at a stub whose reported
// refinement time overshoots the budget by a fixed 5%: every response
// must validate (schedule AND quality block), and the overshoot
// quantiles must reproduce the stub's factor exactly.
func TestRunLoadQuality(t *testing.T) {
	ts := stubServeOpts(t, stubOptions{qualityFactor: 1.05})
	cfg := shortLoadConfig(ts.URL)
	cfg.Quality = true
	cfg.Budget = 20 * time.Millisecond
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.ValidationFailures != 0 || rep.TransportErrors != 0 {
		t.Fatalf("quality run: %+v", rep)
	}
	if !rep.Quality || rep.Heuristic != "quality:best" || rep.BudgetMs != 20 {
		t.Fatalf("quality fields not reported: %+v", rep)
	}
	if rep.ProvenOptimal != rep.OK {
		t.Fatalf("stub proves every result but report says %d of %d", rep.ProvenOptimal, rep.OK)
	}
	const want = 0.05
	for name, got := range map[string]float64{
		"p50": rep.OvershootP50, "p99": rep.OvershootP99, "max": rep.OvershootMax,
	} {
		if got < want-1e-9 || got > want+1e-9 {
			t.Fatalf("overshoot %s = %v, want %v", name, got, want)
		}
	}
}

// A server that quietly ignores ?quality=best and answers with a plain
// schedule must show up as validation failures, not silent success.
func TestRunLoadQualityFlagsDowngradingServer(t *testing.T) {
	ts := stubServeOpts(t, stubOptions{}) // stub ignores the quality param
	cfg := shortLoadConfig(ts.URL)
	cfg.Quality = true
	cfg.Budget = 20 * time.Millisecond
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 0 || rep.ValidationFailures == 0 {
		t.Fatalf("downgraded responses accepted: %+v", rep)
	}
}

// A quality block with an inconsistent gap is corruption, same as a
// forged makespan.
func TestRunLoadQualityFlagsBrokenGap(t *testing.T) {
	ts := stubServeOpts(t, stubOptions{qualityFactor: 1, brokenGap: true})
	cfg := shortLoadConfig(ts.URL)
	cfg.Quality = true
	cfg.Budget = 20 * time.Millisecond
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 0 || rep.ValidationFailures == 0 {
		t.Fatalf("broken gap accepted: %+v", rep)
	}
}

// Quality-mode config validation: batch and non-positive budgets are
// rejected before any traffic is sent, and the CLI refuses the
// contradictory flag combinations.
func TestQualityConfigValidation(t *testing.T) {
	cfg := shortLoadConfig("http://127.0.0.1:0")
	cfg.Quality = true
	cfg.Budget = 10 * time.Millisecond
	cfg.Batch = 4
	if _, err := runLoad(cfg); err == nil {
		t.Fatal("quality batch accepted")
	}
	cfg.Batch = 0
	cfg.Budget = 0
	if _, err := runLoad(cfg); err == nil {
		t.Fatal("zero budget accepted")
	}
	for _, args := range [][]string{
		{"-budget", "5ms"},                // budget without quality
		{"-quality", "-heuristic", "MCP"}, // contradictory selection
		{"-quality", "-batch", "4"},       // quality batch
		{"-quality", "-budget", "-5ms"},   // negative budget
		{"-quality", "-budget", "5ms", "-batch", "2"},
	} {
		if code := run(args, os.Stdout); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
