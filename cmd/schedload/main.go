// Command schedload is a closed-loop load generator for schedserve. It
// drives /schedule (or /schedule/batch with -batch) from -conc
// concurrent clients at an optional target rate, validates every
// returned schedule by re-timing it under the execution model, and
// reports latency quantiles (served and shed separately) and the shed
// rate.
//
// The graphs come from the paper's corpus generator, so the offered
// load has the same shape mix the benchmarks use. -dup sets the
// fraction of requests repeating earlier content — identical, renamed,
// and relabeled isomorphic copies of a fixed pool — to exercise the
// server's content-addressed schedule cache; the rest are
// content-unique weight perturbations. Responses the server marks as
// cache hits are re-validated against a fresh local rebuild exactly
// like uncached ones, and the report carries hit/miss counts.
//
// Exit status is 1 if any response failed validation or any transport
// error occurred; load shedding (429) and request timeouts (503) are
// expected behaviour under overload and do not fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("schedload", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8080", "schedserve base URL")
		rps       = fs.Float64("rps", 0, "target request rate across all clients (0 = closed loop, as fast as responses return)")
		conc      = fs.Int("conc", 8, "concurrent clients")
		dur       = fs.Duration("dur", 10*time.Second, "how long to send load")
		heuristic = fs.String("heuristic", "MCP", "heuristic to request")
		batch     = fs.Int("batch", 0, "graphs per request via /schedule/batch (0 or 1 = single /schedule requests)")
		seed      = fs.Int64("seed", 1, "corpus seed")
		minNodes  = fs.Int("min-nodes", 24, "minimum graph size")
		maxNodes  = fs.Int("max-nodes", 48, "maximum graph size")
		dup       = fs.Float64("dup", 0, "fraction of requests repeating pool content (identical/renamed/relabeled copies); the rest are content-unique")
		quality   = fs.Bool("quality", false, "request the anytime quality tier (?quality=best) instead of a single heuristic")
		budget    = fs.Duration("budget", 50*time.Millisecond, "refinement budget per quality request (only with -quality)")
		report    = fs.String("report", "", "write the JSON report to this file as well as stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var budgetSet, heuristicSet bool
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "budget":
			budgetSet = true
		case "heuristic":
			heuristicSet = true
		}
	})
	switch {
	case budgetSet && !*quality:
		log.Print("schedload: -budget requires -quality")
		return 2
	case *quality && heuristicSet:
		log.Print("schedload: -quality runs the whole portfolio; drop -heuristic")
		return 2
	case *quality && *batch > 1:
		log.Print("schedload: the quality tier is single-request only; drop -batch")
		return 2
	case *quality && *budget <= 0:
		log.Printf("schedload: budget %v must be positive", *budget)
		return 2
	}

	cfg := loadConfig{
		Addr: *addr, RPS: *rps, Conc: *conc, Dur: *dur,
		Heuristic: *heuristic, Batch: *batch,
		Seed: *seed, MinNodes: *minNodes, MaxNodes: *maxNodes,
		Dup: *dup, Quality: *quality, Budget: *budget,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		log.Printf("schedload: %v", err)
		return 1
	}
	rep.Print(out)
	if *report != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Printf("schedload: marshal report: %v", err)
			return 1
		}
		if err := os.WriteFile(*report, append(data, '\n'), 0o644); err != nil {
			log.Printf("schedload: write report: %v", err)
			return 1
		}
	}
	if rep.ValidationFailures > 0 || rep.TransportErrors > 0 {
		fmt.Fprintln(out, "schedload: FAIL (validation or transport errors)")
		return 1
	}
	return 0
}
