package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

// batchLine mirrors batchItemJSON for decoding NDJSON responses.
type batchLine struct {
	Index       int    `json:"index"`
	Error       string `json:"error"`
	Graph       string `json:"graph"`
	Makespan    int64  `json:"makespan"`
	Procs       int    `json:"procs"`
	Assignments []struct {
		Node   int   `json:"node"`
		Proc   int   `json:"proc"`
		Start  int64 `json:"start"`
		Finish int64 `json:"finish"`
	} `json:"assignments"`
}

func postBatch(t *testing.T, url, query, body string) (*http.Response, []batchLine) {
	t.Helper()
	resp, err := http.Post(url+"/schedule/batch"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var lines []batchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l batchLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// rebuildSchedule reconstructs the placement a batch line describes
// and re-times it under the execution model, proving the streamed
// result is a schedule sched.Validate accepts — not just plausible
// numbers.
func rebuildSchedule(t *testing.T, g *dag.Graph, l batchLine) *sched.Schedule {
	t.Helper()
	pl := sched.NewPlacement(g.NumNodes())
	as := append([]struct {
		Node   int   `json:"node"`
		Proc   int   `json:"proc"`
		Start  int64 `json:"start"`
		Finish int64 `json:"finish"`
	}(nil), l.Assignments...)
	sort.Slice(as, func(i, j int) bool {
		if as[i].Proc != as[j].Proc {
			return as[i].Proc < as[j].Proc
		}
		return as[i].Start < as[j].Start
	})
	for _, a := range as {
		pl.Assign(dag.NodeID(a.Node), a.Proc)
	}
	rebuilt, err := sched.Build(g, pl)
	if err != nil {
		t.Fatalf("rebuilding schedule: %v", err)
	}
	if err := rebuilt.Validate(); err != nil {
		t.Fatalf("streamed schedule does not validate: %v", err)
	}
	return rebuilt
}

func TestScheduleBatchEndpoint(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	sample := sampleDAG(t)
	body := "[" + sample + "," + sample + "," + sample + "]"
	resp, lines := postBatch(t, ts.URL, "?heuristic=DSC", body)
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	g, err := dag.ReadJSON(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d has index %d: stream out of input order", i, l.Index)
		}
		if l.Error != "" {
			t.Fatalf("item %d: %s", i, l.Error)
		}
		rebuilt := rebuildSchedule(t, g, l)
		if rebuilt.Makespan != l.Makespan {
			t.Errorf("item %d: reported makespan %d, rebuilt %d", i, l.Makespan, rebuilt.Makespan)
		}
	}
}

func TestScheduleBatchMalformed(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	for name, body := range map[string]string{
		"not-an-array": sampleDAG(t),
		"empty-array":  "[]",
		"null-item":    "[null]",
		"bad-graph":    `[{"nodes":[5,5],"edges":[{"from":0,"to":1,"weight":1},{"from":1,"to":0,"weight":1}]}]`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, _ := postBatch(t, ts.URL, "", body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestScheduleBatchCancelledItems is the HTTP half of the cancellation
// regression: when the batch deadline expires, every unfinished item's
// NDJSON line carries the context error and no assignments — a partial
// placement never reaches the stream.
func TestScheduleBatchCancelledItems(t *testing.T) {
	registerSlow.Do(func() {
		heuristics.Register("SLOWTEST", func() heuristics.Scheduler { return slowSched{d: 300 * time.Millisecond} })
	})
	ts := newTestServer(t, serverOptions{Timeout: 30 * time.Millisecond, Workers: 1, QueueDepth: 1})
	sample := sampleDAG(t)
	body := "[" + sample + "," + sample + "," + sample + "]"
	resp, lines := postBatch(t, ts.URL, "?heuristic=SLOWTEST", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (batch errors arrive per line once streaming starts)", resp.StatusCode)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d has index %d", i, l.Index)
		}
		if l.Error == "" {
			t.Fatalf("item %d finished despite a 30ms deadline against a 300ms scheduler", i)
		}
		if !strings.Contains(l.Error, "deadline exceeded") && !strings.Contains(l.Error, "canceled") {
			t.Errorf("item %d: error %q is not a context error", i, l.Error)
		}
		if len(l.Assignments) != 0 || l.Makespan != 0 {
			t.Errorf("item %d: partial placement leaked into the stream: %+v", i, l)
		}
	}
}

// TestScheduleShedsWithRetryAfter drives more concurrent slow requests
// than the 1-worker, 1-deep pipeline can hold: the excess must shed
// with 429 and a Retry-After hint while admitted requests complete.
func TestScheduleShedsWithRetryAfter(t *testing.T) {
	registerSlow.Do(func() {
		heuristics.Register("SLOWTEST", func() heuristics.Scheduler { return slowSched{d: 300 * time.Millisecond} })
	})
	ts := newTestServer(t, serverOptions{Workers: 1, QueueDepth: 1})
	sample := sampleDAG(t)

	const n = 4 // capacity is 2 (1 on the worker + 1 queued): at least 2 must shed
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/schedule?heuristic=SLOWTEST", "application/json", strings.NewReader(sample))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("429 response %d missing Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want both successes and sheds, got %d ok / %d shed (%v)", ok, shed, codes)
	}
}
