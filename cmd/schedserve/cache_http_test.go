package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// cachedServerOptions turns the schedule cache on with test-friendly
// bounds; everything else stays at the handler defaults.
func cachedServerOptions() serverOptions {
	return serverOptions{Workers: 2, QueueDepth: 8, CacheEntries: 64}
}

func TestScheduleCacheHeaderAndByteIdenticalBody(t *testing.T) {
	ts := newTestServer(t, cachedServerOptions())
	body := sampleDAG(t)

	first := postSchedule(t, ts, "?heuristic=MCP", body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", first.StatusCode)
	}
	if got := first.Header.Get("X-Sched-Cache"); got != "miss" {
		t.Fatalf("first X-Sched-Cache = %q, want miss", got)
	}
	firstBody, err := io.ReadAll(first.Body)
	if err != nil {
		t.Fatal(err)
	}

	second := postSchedule(t, ts, "?heuristic=MCP", body)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", second.StatusCode)
	}
	if got := second.Header.Get("X-Sched-Cache"); got != "hit" {
		t.Fatalf("second X-Sched-Cache = %q, want hit", got)
	}
	secondBody, err := io.ReadAll(second.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The consistency contract: a hit returns the byte-identical
	// response body a miss produced.
	if string(firstBody) != string(secondBody) {
		t.Fatalf("hit body differs from miss body:\nmiss: %s\nhit:  %s", firstBody, secondBody)
	}

	// A renamed copy of the same graph is the same content: still a
	// hit (name only shows up in the response's own graph field).
	renamed := strings.Replace(body, `"name"`, `"renamed_name"`, 1)
	if renamed == body {
		// sample has no name field; wrap one in.
		renamed = strings.Replace(body, "{", `{"name":"renamed",`, 1)
	}
	third := postSchedule(t, ts, "?heuristic=MCP", renamed)
	if third.StatusCode != http.StatusOK {
		t.Fatalf("renamed status = %d", third.StatusCode)
	}
	if got := third.Header.Get("X-Sched-Cache"); got != "hit" {
		t.Fatalf("renamed X-Sched-Cache = %q, want hit", got)
	}

	// A different heuristic is a different key.
	other := postSchedule(t, ts, "?heuristic=HU", body)
	if other.StatusCode != http.StatusOK {
		t.Fatalf("other-heuristic status = %d", other.StatusCode)
	}
	if got := other.Header.Get("X-Sched-Cache"); got != "miss" {
		t.Fatalf("other-heuristic X-Sched-Cache = %q, want miss", got)
	}
}

func TestScheduleNoCacheNoHeader(t *testing.T) {
	ts := newTestServer(t, serverOptions{}) // CacheEntries 0: cache off
	resp := postSchedule(t, ts, "?heuristic=MCP", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got, ok := resp.Header["X-Sched-Cache"]; ok {
		t.Fatalf("uncached server sent X-Sched-Cache: %q", got)
	}
}

func TestScheduleBatchCacheField(t *testing.T) {
	ts := newTestServer(t, cachedServerOptions())
	g := sampleDAG(t)
	batch := "[" + g + "," + g + "," + g + "]"
	resp, err := http.Post(ts.URL+"/schedule/batch?heuristic=MCP", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	type line struct {
		Index    int    `json:"index"`
		Error    string `json:"error"`
		Cache    string `json:"cache"`
		Makespan int64  `json:"makespan"`
	}
	var lines []line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	misses, hits := 0, 0
	var makespan int64
	for i, l := range lines {
		if l.Index != i || l.Error != "" {
			t.Fatalf("line %d: %+v", i, l)
		}
		if makespan == 0 {
			makespan = l.Makespan
		} else if l.Makespan != makespan {
			t.Fatalf("makespan diverged across identical items: %d vs %d", l.Makespan, makespan)
		}
		switch l.Cache {
		case "miss":
			misses++
		case "hit":
			hits++
		default:
			t.Fatalf("line %d cache = %q", i, l.Cache)
		}
	}
	if misses != 1 || hits != 2 {
		t.Fatalf("%d misses / %d hits, want 1 / 2", misses, hits)
	}
}

func TestScheduleRejectsTrailingData(t *testing.T) {
	ts := newTestServer(t, cachedServerOptions())
	g := strings.TrimSpace(sampleDAG(t))

	resp := postSchedule(t, ts, "?heuristic=MCP", g+g)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/schedule with trailing object: status = %d, want 400", resp.StatusCode)
	}
	resp = postSchedule(t, ts, "?heuristic=MCP", g+"garbage")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/schedule with trailing garbage: status = %d, want 400", resp.StatusCode)
	}

	batch := "[" + g + "]"
	for _, body := range []string{batch + batch, batch + "x"} {
		bresp, err := http.Post(ts.URL+"/schedule/batch?heuristic=MCP", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		bresp.Body.Close()
		if bresp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/schedule/batch with trailing data: status = %d, want 400", bresp.StatusCode)
		}
	}
}

func TestScheduleRejectsInvalidWireGraphs(t *testing.T) {
	ts := newTestServer(t, cachedServerOptions())
	bad := []string{
		`{"nodes":[1,2],"edges":[{"from":0,"to":0,"weight":1}]}`,                                 // self loop
		`{"nodes":[1,2],"edges":[{"from":0,"to":1,"weight":1},{"from":0,"to":1,"weight":2}]}`,    // duplicate edge
		`{"nodes":[1,2],"edges":[{"from":5,"to":1,"weight":1}]}`,                                 // out of range
		`{"nodes":[1,2],"edges":[{"from":0,"to":1,"weight":-2}]}`,                                // negative weight
		`{"name":"` + strings.Repeat("N", 2000) + `","nodes":[1],"edges":[]}`,                    // oversized name
		`{"nodes":[1,1],"edges":[{"from":0,"to":1,"weight":1},{"from":1,"to":0,"weight":1}]}`,    // cycle
	}
	for _, body := range bad {
		resp := postSchedule(t, ts, "?heuristic=MCP", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestMetricsExposeCacheCounters(t *testing.T) {
	ts := newTestServer(t, cachedServerOptions())
	body := sampleDAG(t)
	postSchedule(t, ts, "?heuristic=MCP", body)
	postSchedule(t, ts, "?heuristic=MCP", body)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`schedcache_hits_total{heuristic="MCP"}`,
		`schedcache_misses_total{heuristic="MCP"}`,
		"schedcache_entries",
		"schedcache_bytes",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
