package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync"
	"testing"
	"time"

	"schedcomp/internal/obs"
)

// The fuzz server is built once per process: the pipeline spawns
// workers, and the point of the fuzz target is the decode path, not
// pipeline construction.
var fuzzSrv struct {
	once sync.Once
	s    *server
}

func fuzzHandler() http.Handler {
	fuzzSrv.once.Do(func() {
		obs.Default().SetEnabled(true)
		fuzzSrv.s = newServer(obs.Default(), serverOptions{
			Timeout: 2 * time.Second, MaxBody: 1 << 20, Workers: 2, QueueDepth: 8,
			// Small cache so fuzzing also drives the canonical-hash and
			// hit/miss/evict paths, not just the decoder.
			CacheEntries: 64,
		})
	})
	return fuzzSrv.s.Handler()
}

// fuzzOKCodes are the statuses the handlers may answer with under
// fuzzing: success, client errors for malformed input, shedding, and
// deadline expiry. Anything else — especially a 500 or a panic — is a
// decoding bug.
func fuzzOKCode(code int) bool {
	switch code {
	case http.StatusOK, http.StatusBadRequest, http.StatusMethodNotAllowed,
		http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
		http.StatusServiceUnavailable:
		return true
	}
	return false
}

// FuzzScheduleHandler throws arbitrary bodies and heuristic names at
// /schedule and /schedule/batch: malformed JSON, huge weights, cycles,
// duplicate edges, self loops, and out-of-range node ids must all come
// back as client errors, never a panic or a 500. Seeds live in
// testdata/fuzz/FuzzScheduleHandler.
func FuzzScheduleHandler(f *testing.F) {
	sample, err := os.ReadFile("testdata/sample_dag.json")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sample, "MCP")
	f.Add(sample, "CLANS")
	f.Add([]byte("this is not json"), "MCP")
	f.Add([]byte(`{"nodes":[9223372036854775807,9223372036854775807],"edges":[]}`), "ETF")
	f.Add([]byte(`{"nodes":[5,5],"edges":[{"from":0,"to":1,"weight":1},{"from":1,"to":0,"weight":1}]}`), "DSC")
	f.Add([]byte(`{"nodes":[5,5],"edges":[{"from":0,"to":1,"weight":1},{"from":0,"to":1,"weight":2}]}`), "HU")
	f.Add([]byte(`{"nodes":[5],"edges":[{"from":0,"to":0,"weight":1}]}`), "LC")
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":0,"to":99,"weight":1}]}`), "EZ")
	f.Add([]byte(`{"nodes":[],"edges":[]}`), "MH")
	f.Add([]byte(`{"nodes":[-4],"edges":[]}`), "DCP")
	f.Add([]byte(""), "RAND")
	f.Add([]byte("null"), "")
	f.Add([]byte(`[{"nodes":[1],"edges":[]}]`), "NOPE")
	f.Add([]byte(`{"nodes":[1],"edges":[]}{"nodes":[2],"edges":[]}`), "MCP")
	f.Add([]byte(`{"nodes":[1],"edges":[]}trailing`), "ETF")
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":-1,"to":1,"weight":1}]}`), "MCP")
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":0,"to":1,"weight":-1}]}`), "HU")

	f.Fuzz(func(t *testing.T, body []byte, heuristic string) {
		h := fuzzHandler()
		q := "?heuristic=" + url.QueryEscape(heuristic)

		req := httptest.NewRequest(http.MethodPost, "/schedule"+q, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if !fuzzOKCode(rec.Code) {
			t.Fatalf("/schedule: status %d for body %q (%s)", rec.Code, body, rec.Body.Bytes())
		}
		if rec.Code == http.StatusOK && rec.Header().Get("Content-Type") == "application/json" {
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("/schedule: 200 with invalid JSON body %q", rec.Body.Bytes())
			}
		}

		// The same body wrapped in an array exercises the batch
		// decoder; the raw body covers its non-array error paths.
		for _, b := range [][]byte{[]byte("[" + string(body) + "]"), body} {
			breq := httptest.NewRequest(http.MethodPost, "/schedule/batch"+q, bytes.NewReader(b))
			brec := httptest.NewRecorder()
			h.ServeHTTP(brec, breq)
			if !fuzzOKCode(brec.Code) {
				t.Fatalf("/schedule/batch: status %d for body %q (%s)", brec.Code, b, brec.Body.Bytes())
			}
		}
	})
}

// FuzzQualityParams throws arbitrary quality/budget query parameters
// at /schedule over a fixed valid graph: negative, huge, and garbage
// budgets, bad units, budgets beyond the request deadline, and
// contradictory combinations must all answer 4xx — never a panic, a
// 500, or a silent fall-through to a tier the client did not ask for.
// Seeds live in testdata/fuzz/FuzzQualityParams.
func FuzzQualityParams(f *testing.F) {
	sample, err := os.ReadFile("testdata/sample_dag.json")
	if err != nil {
		f.Fatal(err)
	}
	f.Add("best", "50ms")
	f.Add("best", "")
	f.Add("", "50ms")
	f.Add("worst", "1ms")
	f.Add("BEST", "5ms")
	f.Add("best", "-5ms")
	f.Add("best", "0s")
	f.Add("best", "fifty")
	f.Add("best", "50")
	f.Add("best", "1h")
	f.Add("best", "9223372036854775807ns")
	f.Add("best", "1ms1ms1ms")
	f.Add("best\x00", "5ms")
	f.Add("best", "µs")

	f.Fuzz(func(t *testing.T, quality, budget string) {
		h := fuzzHandler()
		// Two forms: parameters always present (possibly empty), and
		// present only when non-empty — the absent/empty distinction is
		// part of the contract.
		queries := []string{
			"?quality=" + url.QueryEscape(quality) + "&budget=" + url.QueryEscape(budget),
		}
		q2 := ""
		if quality != "" {
			q2 = "?quality=" + url.QueryEscape(quality)
		}
		if budget != "" {
			if q2 == "" {
				q2 = "?"
			} else {
				q2 += "&"
			}
			q2 += "budget=" + url.QueryEscape(budget)
		}
		if q2 != "" && q2 != queries[0] {
			queries = append(queries, q2)
		}
		for _, q := range queries {
			req := httptest.NewRequest(http.MethodPost, "/schedule"+q, bytes.NewReader(sample))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if !fuzzOKCode(rec.Code) {
				t.Fatalf("status %d for query %q (%s)", rec.Code, q, rec.Body.Bytes())
			}
			if rec.Code == http.StatusOK {
				if !json.Valid(rec.Body.Bytes()) {
					t.Fatalf("200 with invalid JSON for query %q", q)
				}
				// A 200 under quality=best must carry the quality block;
				// any other accepted request must not.
				var resp struct {
					Quality *struct {
						Gap        int64 `json:"gap"`
						LowerBound int64 `json:"lower_bound"`
					} `json:"quality"`
					Makespan int64 `json:"makespan"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Fatal(err)
				}
				if quality == "best" && resp.Quality == nil {
					t.Fatalf("quality=best answered 200 without a quality block (query %q)", q)
				}
				if resp.Quality != nil {
					if resp.Quality.Gap != resp.Makespan-resp.Quality.LowerBound || resp.Quality.Gap < 0 {
						t.Fatalf("gap identity violated for query %q: %+v makespan %d",
							q, resp.Quality, resp.Makespan)
					}
				}
			}
		}
	})
}
