// Command schedserve is a long-running HTTP scheduling service: POST a
// DAG as JSON and get the timed schedule back, computed by any
// registered heuristic under the paper's execution model.
//
// Endpoints:
//
//	POST /schedule?heuristic=MCP[&format=gantt][&trace=1]
//	              body: {"name":..., "nodes":[weights], "edges":[{"from","to","weight"}]}
//	POST /schedule/batch?heuristic=MCP
//	              body: a JSON array of DAGs; response is NDJSON, one
//	              line per DAG in input order, streamed as they finish
//	GET  /heuristics      registered scheduler names
//	GET  /metrics         obs registry, Prometheus text format
//	GET  /healthz         liveness probe
//	GET  /debug/pprof/    runtime profiles
//
// Scheduling runs on a bounded pipeline: -workers goroutines pull from
// a -queue-deep admission queue. When the queue is full, /schedule
// sheds load with 429 and a Retry-After estimate; batch items instead
// wait for queue space (bounded by the request deadline). Every
// request is bounded by -timeout — expiry frees the worker at the next
// cancellation poll inside the heuristic. SIGINT/SIGTERM drain
// in-flight requests for up to -drain before exiting.
//
// A content-addressed schedule cache (sized by -cache-entries and
// -cache-bytes; -cache-entries 0 disables it) answers repeated graphs
// — including renamed and relabeled isomorphic copies — without
// scheduling: hits bypass admission entirely and are marked with an
// X-Sched-Cache: hit response header (batch lines carry a "cache"
// field instead).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"schedcomp/internal/obs"

	// Link in every heuristic so ?heuristic= can pick any of them.
	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dcp"
	_ "schedcomp/internal/heuristics/dls"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/ez"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
	_ "schedcomp/internal/heuristics/random"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout for /schedule (0 disables)")
		drain   = flag.Duration("drain", 5*time.Second, "graceful shutdown drain limit")
		maxBody = flag.Int64("maxbody", defaultMaxBody, "maximum DAG request body in bytes")
		workers = flag.Int("workers", 0, "scheduling worker goroutines (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")

		cacheEntries = flag.Int("cache-entries", 4096, "schedule cache capacity in entries (0 disables the cache)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "schedule cache budget in approximate bytes")
	)
	flag.Parse()

	// The service exists to be observed: metrics are always on.
	obs.Default().SetEnabled(true)
	srv := newServer(obs.Default(), serverOptions{
		Timeout: *timeout, MaxBody: *maxBody,
		Workers: *workers, QueueDepth: *queue,
		CacheEntries: *cacheEntries, CacheBytes: *cacheBytes,
	})
	defer srv.Close()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("schedserve: listening on %s (request timeout %v)", *addr, *timeout)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("schedserve: %v", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}
	stopSig() // a second signal kills immediately rather than draining
	log.Printf("schedserve: draining (limit %v)...", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("schedserve: shutdown: %v", err)
		return 1
	}
	log.Printf("schedserve: bye")
	return 0
}
