package main

import (
	"errors"
	"fmt"
	"net/url"
	"time"

	"schedcomp/internal/anytime"
)

// Quality-tier request parsing. /schedule grows two query parameters:
//
//	?quality=best            select the anytime optimizer
//	?budget=50ms             refinement allowance (default 50ms)
//
// The rules are strict so a malformed request can never silently fall
// back to a different tier than the client asked for:
//
//   - quality accepts exactly "best";
//   - budget is meaningless without quality=best and is rejected;
//   - budget must be a positive Go duration no longer than the
//     server's own request deadline (a budget the deadline would cut
//     short is a client error, not a quietly truncated run);
//   - quality=best with an explicit ?heuristic= is contradictory (the
//     quality tier runs the whole portfolio) and is rejected.
type qualityParams struct {
	enabled bool
	budget  time.Duration
}

// maxQualityBudget caps ?budget= when the server runs without a
// request timeout; no sane interactive refinement runs longer.
const maxQualityBudget = 10 * time.Second

// parseQuality validates the quality/budget query parameters.
// maxBudget is the server's request deadline (0 means none; the
// static cap applies instead). The zero qualityParams means "plain
// tier".
func parseQuality(q url.Values, maxBudget time.Duration) (qualityParams, error) {
	if maxBudget <= 0 {
		maxBudget = maxQualityBudget
	}
	quality := q.Get("quality")
	budgetStr := q.Get("budget")
	if quality == "" {
		if _, has := q["quality"]; has {
			return qualityParams{}, errors.New("empty quality parameter (did you mean quality=best?)")
		}
		if budgetStr != "" || len(q["budget"]) > 0 {
			return qualityParams{}, errors.New("budget requires quality=best")
		}
		return qualityParams{}, nil
	}
	if quality != "best" {
		return qualityParams{}, fmt.Errorf("unknown quality %q (only \"best\" is supported)", quality)
	}
	p := qualityParams{enabled: true, budget: anytime.DefaultBudget}
	if len(q["budget"]) > 0 {
		b, err := time.ParseDuration(budgetStr)
		if err != nil {
			return qualityParams{}, fmt.Errorf("bad budget %q: %v", budgetStr, err)
		}
		if b <= 0 {
			return qualityParams{}, fmt.Errorf("budget %v must be positive", b)
		}
		p.budget = b
	}
	if p.budget > maxBudget {
		return qualityParams{}, fmt.Errorf("budget %v exceeds the request deadline %v", p.budget, maxBudget)
	}
	return p, nil
}

// qualityJSON is the provenance block attached to a quality-tier
// /schedule response: the proven lower bound and optimality gap, plus
// how the answer was reached.
type qualityJSON struct {
	LowerBound   int64   `json:"lower_bound"`
	Gap          int64   `json:"gap"`
	Proven       bool    `json:"proven"`
	Generations  int     `json:"generations"`
	Improvements int     `json:"improvements"`
	BnbStates    int64   `json:"bnb_states"`
	Seed         string  `json:"seed"`
	BudgetMs     float64 `json:"budget_ms"`
	ElapsedMs    float64 `json:"elapsed_ms"`
}

func qualityBlock(res *anytime.Result, budget time.Duration) *qualityJSON {
	return &qualityJSON{
		LowerBound:   res.LowerBound,
		Gap:          res.Gap,
		Proven:       res.Proven,
		Generations:  res.Generations,
		Improvements: res.Improvements,
		BnbStates:    res.ProbeStates,
		Seed:         res.SeedName,
		BudgetMs:     float64(budget) / float64(time.Millisecond),
		ElapsedMs:    float64(res.Elapsed) / float64(time.Millisecond),
	}
}
