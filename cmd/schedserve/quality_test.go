package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"schedcomp/internal/serve"
)

// qualityResponse mirrors the wire shape a quality-tier client decodes.
type qualityResponse struct {
	Heuristic string `json:"heuristic"`
	Makespan  int64  `json:"makespan"`
	Quality   *struct {
		LowerBound   int64   `json:"lower_bound"`
		Gap          int64   `json:"gap"`
		Proven       bool    `json:"proven"`
		Generations  int     `json:"generations"`
		Improvements int     `json:"improvements"`
		BnbStates    int64   `json:"bnb_states"`
		Seed         string  `json:"seed"`
		BudgetMs     float64 `json:"budget_ms"`
		ElapsedMs    float64 `json:"elapsed_ms"`
	} `json:"quality"`
}

func decodeQuality(t *testing.T, resp *http.Response) qualityResponse {
	t.Helper()
	var got qualityResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestScheduleQualityEndpoint(t *testing.T) {
	ts := newTestServer(t, serverOptions{Timeout: 5 * time.Second})
	resp := postSchedule(t, ts, "?quality=best&budget=50ms", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	got := decodeQuality(t, resp)
	if got.Heuristic != serve.QualityBest {
		t.Fatalf("heuristic = %q, want %q", got.Heuristic, serve.QualityBest)
	}
	if got.Quality == nil {
		t.Fatal("response has no quality block")
	}
	q := got.Quality
	if q.Gap != got.Makespan-q.LowerBound {
		t.Fatalf("gap %d != makespan %d - lower bound %d", q.Gap, got.Makespan, q.LowerBound)
	}
	if q.Gap < 0 {
		t.Fatalf("negative gap %d", q.Gap)
	}
	if q.Proven != (q.Gap == 0) {
		t.Fatalf("proven = %v with gap %d", q.Proven, q.Gap)
	}
	if q.Seed == "" {
		t.Fatal("quality block lost its seeding heuristic")
	}
	if q.BudgetMs != 50 {
		t.Fatalf("budget_ms = %v, want 50", q.BudgetMs)
	}
}

// The default budget applies when quality=best is given without one.
func TestScheduleQualityDefaultBudget(t *testing.T) {
	ts := newTestServer(t, serverOptions{Timeout: 5 * time.Second})
	resp := postSchedule(t, ts, "?quality=best", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	got := decodeQuality(t, resp)
	if got.Quality == nil || got.Quality.BudgetMs != 50 {
		t.Fatalf("quality block %+v, want default 50ms budget", got.Quality)
	}
}

// Every malformed quality/budget combination is a client error: the
// server must never silently fall back to a different tier, truncate
// a budget, or accept a contradictory heuristic selection.
func TestScheduleQualityParamValidation(t *testing.T) {
	ts := newTestServer(t, serverOptions{Timeout: 2 * time.Second})
	body := sampleDAG(t)
	cases := []struct {
		name  string
		query string
	}{
		{"unknown quality", "?quality=worst"},
		{"empty quality", "?quality="},
		{"quality casing", "?quality=BEST"},
		{"budget without quality", "?budget=50ms"},
		{"empty budget", "?quality=best&budget="},
		{"garbage budget", "?quality=best&budget=fifty"},
		{"unitless budget", "?quality=best&budget=50"},
		{"negative budget", "?quality=best&budget=-5ms"},
		{"zero budget", "?quality=best&budget=0s"},
		{"budget beyond deadline", "?quality=best&budget=1h"},
		{"huge budget", "?quality=best&budget=9223372036s"},
		{"quality with heuristic", "?quality=best&heuristic=MCP"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSchedule(t, ts, tc.query, body)
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s: status = %d, want 400 (%s)", tc.query, resp.StatusCode, b)
			}
		})
	}
}

// Without a server timeout the static 10s cap governs ?budget=.
func TestScheduleQualityBudgetCapWithoutTimeout(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp := postSchedule(t, ts, "?quality=best&budget=11s", sampleDAG(t))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	resp = postSchedule(t, ts, "?quality=best&budget=5ms", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
}

// The batch endpoint has no quality tier; asking for one is an error,
// not a silent downgrade of the whole batch.
func TestScheduleBatchRejectsQuality(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	batch := "[" + sampleDAG(t) + "]"
	for _, query := range []string{"?quality=best", "?budget=50ms", "?quality=best&budget=50ms"} {
		resp, err := http.Post(ts.URL+"/schedule/batch"+query, "application/json", strings.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", query, resp.StatusCode)
		}
	}
}

// A repeated quality request must hit the cache and keep its certified
// provenance on the wire.
func TestScheduleQualityCacheHit(t *testing.T) {
	ts := newTestServer(t, serverOptions{Timeout: 5 * time.Second, CacheEntries: 32})
	body := sampleDAG(t)

	first := postSchedule(t, ts, "?quality=best&budget=20ms", body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d", first.StatusCode)
	}
	if st := first.Header.Get("X-Sched-Cache"); st != "miss" {
		t.Fatalf("first X-Sched-Cache = %q, want miss", st)
	}
	fr := decodeQuality(t, first)

	second := postSchedule(t, ts, "?quality=best&budget=20ms", body)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d", second.StatusCode)
	}
	if st := second.Header.Get("X-Sched-Cache"); st != "hit" {
		t.Fatalf("second X-Sched-Cache = %q, want hit", st)
	}
	sr := decodeQuality(t, second)
	if sr.Makespan != fr.Makespan || sr.Quality == nil || fr.Quality == nil ||
		sr.Quality.LowerBound != fr.Quality.LowerBound || sr.Quality.Proven != fr.Quality.Proven {
		t.Fatalf("hit lost provenance:\nmiss %+v\nhit  %+v", fr, sr)
	}
}
