package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"schedcomp/internal/anytime"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
	"schedcomp/internal/schedcache"
	"schedcomp/internal/serve"
)

// serverOptions configures the HTTP layer and the scheduling pipeline
// behind it.
type serverOptions struct {
	// Timeout bounds one /schedule or /schedule/batch request end to
	// end; 0 disables.
	Timeout time.Duration
	// MaxBody caps the request body size in bytes.
	MaxBody int64
	// Workers and QueueDepth size the serve.Pipeline; zero values
	// pick the pipeline defaults (GOMAXPROCS workers, 4× queue).
	Workers    int
	QueueDepth int
	// CacheEntries and CacheBytes size the content-addressed schedule
	// cache. CacheEntries 0 disables caching entirely; CacheBytes 0
	// with caching enabled picks the schedcache default budget.
	CacheEntries int
	CacheBytes   int64
}

// server wires the scheduling endpoints to the pipeline and the obs
// registry.
type server struct {
	reg  *obs.Registry
	opts serverOptions
	pipe *serve.Pipeline
	mux  *http.ServeMux
}

const defaultMaxBody = 8 << 20

func newServer(reg *obs.Registry, opts serverOptions) *server {
	if opts.MaxBody <= 0 {
		opts.MaxBody = defaultMaxBody
	}
	var cache *schedcache.Cache
	if opts.CacheEntries > 0 {
		cache = schedcache.New(schedcache.Config{
			MaxEntries: opts.CacheEntries,
			MaxBytes:   opts.CacheBytes,
		})
	}
	s := &server{
		reg:  reg,
		opts: opts,
		pipe: serve.New(serve.Config{
			Workers:    opts.Workers,
			QueueDepth: opts.QueueDepth,
			Cache:      cache,
		}, reg),
		mux: http.NewServeMux(),
	}

	s.mux.Handle("/schedule", s.instrument("/schedule", http.HandlerFunc(s.handleSchedule)))
	s.mux.Handle("/schedule/batch", s.instrument("/schedule/batch", http.HandlerFunc(s.handleScheduleBatch)))
	s.mux.Handle("/heuristics", s.instrument("/heuristics", http.HandlerFunc(s.handleHeuristics)))
	s.mux.Handle("/metrics", s.instrument("/metrics", http.HandlerFunc(s.handleMetrics)))
	s.mux.Handle("/healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the root handler.
func (s *server) Handler() http.Handler { return s.mux }

// Close drains the scheduling pipeline. Call after the HTTP server has
// stopped accepting requests: handlers submit to the pipeline, so the
// order is hs.Shutdown first, then Close.
func (s *server) Close() { s.pipe.Close() }

// requestCtx derives the per-request deadline context. The deadline
// rides the context through the pipeline into the heuristics, so an
// expired request stops consuming a worker at the next poll.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.Timeout)
	}
	return r.Context(), func() {}
}

// scheduleError maps pipeline errors onto status codes: full queue →
// 429 with a Retry-After estimate (load shedding), expired or dropped
// request → 503, anything else → 500 (the graph already validated, so
// the failure is the scheduler's).
func (s *server) scheduleError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		ra := s.pipe.RetryAfter()
		secs := int((ra + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, "admission queue full, retry later")
	case heuristics.IsCancellation(err):
		httpError(w, http.StatusServiceUnavailable, "request timed out")
	case errors.Is(err, serve.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "shutting down")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps h with a per-path duration histogram and a
// per-(path, status) request counter. Paths are the fixed routes
// above and status codes are a small finite set, so cardinality stays
// bounded.
func (s *server) instrument(path string, h http.Handler) http.Handler {
	dur := s.reg.Histogram("serve_request_seconds",
		"End-to-end request handling time.", obs.DefTimeBuckets, obs.L("path", path))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		dur.Observe(time.Since(t0).Seconds())
		s.reg.Counter("serve_requests_total", "Requests by path and status code.",
			obs.L("path", path), obs.L("code", strconv.Itoa(sw.code))).Inc()
	})
}

// assignmentJSON is one task's placement in the response.
type assignmentJSON struct {
	Node   int   `json:"node"`
	Proc   int   `json:"proc"`
	Start  int64 `json:"start"`
	Finish int64 `json:"finish"`
}

// scheduleResponse is the /schedule JSON body.
type scheduleResponse struct {
	Heuristic   string           `json:"heuristic"`
	Graph       string           `json:"graph,omitempty"`
	Nodes       int              `json:"nodes"`
	SerialTime  int64            `json:"serial_time"`
	Makespan    int64            `json:"makespan"`
	Procs       int              `json:"procs"`
	Speedup     float64          `json:"speedup"`
	Efficiency  float64          `json:"efficiency"`
	Assignments []assignmentJSON `json:"assignments"`
	Quality     *qualityJSON     `json:"quality,omitempty"`
	Trace       json.RawMessage  `json:"trace,omitempty"`
}

// handleSchedule schedules one DAG: POST a graph as JSON, pick the
// heuristic with ?heuristic= (default MCP), get the timed schedule
// back as JSON, or as a text Gantt chart with ?format=gantt. ?trace=1
// embeds the request's span trace in the JSON response.
//
// ?quality=best selects the anytime tier instead of a single
// heuristic: the response then carries a "quality" block with the
// proven lower bound and optimality gap; ?budget= bounds the
// refinement time (default 50ms, never beyond the request deadline).
func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST a DAG as JSON")
		return
	}
	query := r.URL.Query()
	qp, err := parseQuality(query, s.opts.Timeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	name := query.Get("heuristic")
	if qp.enabled && name != "" {
		httpError(w, http.StatusBadRequest,
			"quality=best runs the whole heuristic portfolio; drop the heuristic parameter")
		return
	}
	if name == "" {
		name = "MCP"
	}
	var sc heuristics.Scheduler
	if qp.enabled {
		name = serve.QualityBest
	} else {
		sc, err = heuristics.New(name)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	tr := obs.NewTrace("schedule " + name)
	dec := tr.Span("decode")
	g, err := dag.ReadJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	dec.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad DAG: "+err.Error())
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	run := tr.Span("schedule")
	var schedule *sched.Schedule
	var cacheStatus serve.CacheStatus
	var best *anytime.Result
	if qp.enabled {
		best, cacheStatus, err = s.pipe.ScheduleBest(ctx, g, qp.budget) //lint:boundedlabel quality labels are the QualityBest constant plus Scheduler.Name(), a finite registry set
		if best != nil {
			schedule = best.Schedule
		}
	} else {
		schedule, cacheStatus, err = s.pipe.ScheduleCached(ctx, sc, g) //lint:boundedlabel cache labels use Scheduler.Name(), a finite registry set
	}
	run.End()
	if err != nil {
		s.scheduleError(w, err)
		return
	}
	if cacheStatus != serve.CacheNone {
		w.Header().Set("X-Sched-Cache", string(cacheStatus))
	}

	enc := tr.Span("encode")
	defer enc.End()
	if r.URL.Query().Get("format") == "gantt" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "heuristic %s on %q\n%s", name, g.Name(), schedule.Gantt(80))
		return
	}
	resp := scheduleResponse{
		Heuristic:   name,
		Graph:       g.Name(),
		Nodes:       g.NumNodes(),
		SerialTime:  g.SerialTime(),
		Makespan:    schedule.Makespan,
		Procs:       schedule.NumProcs,
		Speedup:     schedule.Speedup(),
		Efficiency:  schedule.Efficiency(),
		Assignments: make([]assignmentJSON, 0, len(schedule.ByNode)),
	}
	if best != nil {
		resp.Quality = qualityBlock(best, qp.budget)
	}
	for _, a := range schedule.ByNode {
		resp.Assignments = append(resp.Assignments, assignmentJSON{
			Node: int(a.Node), Proc: a.Proc, Start: a.Start, Finish: a.Finish,
		})
	}
	if r.URL.Query().Get("trace") == "1" {
		var tb bytes.Buffer
		if err := tr.WriteJSON(&tb); err == nil {
			resp.Trace = json.RawMessage(bytes.TrimSpace(tb.Bytes()))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	encJSON := json.NewEncoder(w)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(resp); err != nil {
		// Headers are gone; nothing to do but note it in the metrics
		// via the instrument wrapper's status (already 200).
		return
	}
}

// batchItemJSON is one NDJSON line of the /schedule/batch response:
// either a schedule or an error, always carrying the item's input
// index. Lines are emitted in input order.
type batchItemJSON struct {
	Index       int              `json:"index"`
	Error       string           `json:"error,omitempty"`
	Cache       string           `json:"cache,omitempty"`
	Heuristic   string           `json:"heuristic,omitempty"`
	Graph       string           `json:"graph,omitempty"`
	Nodes       int              `json:"nodes,omitempty"`
	SerialTime  int64            `json:"serial_time,omitempty"`
	Makespan    int64            `json:"makespan,omitempty"`
	Procs       int              `json:"procs,omitempty"`
	Assignments []assignmentJSON `json:"assignments,omitempty"`
}

// handleScheduleBatch schedules an array of DAGs: POST a JSON array of
// graphs, get back one NDJSON line per graph, in input order, streamed
// as results complete. Items fan out across the worker pool; admission
// is blocking per item, so a batch larger than the queue trickles in
// at the pool's pace instead of displacing single requests wholesale.
// A cancelled or expired item yields an error line, never a partial
// schedule.
func (s *server) handleScheduleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON array of DAGs")
		return
	}
	for _, p := range []string{"quality", "budget"} {
		if _, has := r.URL.Query()[p]; has {
			httpError(w, http.StatusBadRequest,
				"the quality tier is single-request only; "+p+" is not accepted on /schedule/batch")
			return
		}
	}
	name := r.URL.Query().Get("heuristic")
	if name == "" {
		name = "MCP"
	}
	if _, err := heuristics.New(name); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var graphs []*dag.Graph
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	if err := dec.Decode(&graphs); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch: "+err.Error())
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad batch: trailing data after the array")
		return
	}
	if len(graphs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	for i, g := range graphs {
		if g == nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("batch item %d is null", i))
			return
		}
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Errors from enc/emit mean the client went away; ScheduleBatch
	// stops emitting and drains, and there is no status left to send.
	_ = s.pipe.ScheduleBatch(ctx,
		func() heuristics.Scheduler { sc, _ := heuristics.New(name); return sc },
		graphs,
		func(res serve.Result) error {
			line := batchItemJSON{Index: res.Index, Cache: string(res.Cache)}
			if res.Err != nil {
				line.Error = res.Err.Error()
			} else {
				g := graphs[res.Index]
				line.Heuristic = name
				line.Graph = g.Name()
				line.Nodes = g.NumNodes()
				line.SerialTime = g.SerialTime()
				line.Makespan = res.Schedule.Makespan
				line.Procs = res.Schedule.NumProcs
				line.Assignments = make([]assignmentJSON, 0, len(res.Schedule.ByNode))
				for _, a := range res.Schedule.ByNode {
					line.Assignments = append(line.Assignments, assignmentJSON{
						Node: int(a.Node), Proc: a.Proc, Start: a.Start, Finish: a.Finish,
					})
				}
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
}

// handleHeuristics lists the registered scheduler names.
func (s *server) handleHeuristics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(heuristics.Names())
}

// handleMetrics serves the registry in the Prometheus text format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, "schedserve: "+msg, code)
}
