package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/obs"
)

// serverOptions configures the HTTP layer.
type serverOptions struct {
	// Timeout bounds one /schedule request end to end; 0 disables.
	Timeout time.Duration
	// MaxBody caps the request body size in bytes.
	MaxBody int64
}

// server wires the scheduling endpoints to the obs registry.
type server struct {
	reg  *obs.Registry
	opts serverOptions
	mux  *http.ServeMux
}

const defaultMaxBody = 8 << 20

func newServer(reg *obs.Registry, opts serverOptions) *server {
	if opts.MaxBody <= 0 {
		opts.MaxBody = defaultMaxBody
	}
	s := &server{reg: reg, opts: opts, mux: http.NewServeMux()}

	schedule := http.Handler(http.HandlerFunc(s.handleSchedule))
	if opts.Timeout > 0 {
		schedule = http.TimeoutHandler(schedule, opts.Timeout, "schedserve: request timed out\n")
	}
	s.mux.Handle("/schedule", s.instrument("/schedule", schedule))
	s.mux.Handle("/heuristics", s.instrument("/heuristics", http.HandlerFunc(s.handleHeuristics)))
	s.mux.Handle("/metrics", s.instrument("/metrics", http.HandlerFunc(s.handleMetrics)))
	s.mux.Handle("/healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the root handler.
func (s *server) Handler() http.Handler { return s.mux }

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps h with a per-path duration histogram and a
// per-(path, status) request counter. Paths are the fixed routes
// above and status codes are a small finite set, so cardinality stays
// bounded.
func (s *server) instrument(path string, h http.Handler) http.Handler {
	dur := s.reg.Histogram("serve_request_seconds",
		"End-to-end request handling time.", obs.DefTimeBuckets, obs.L("path", path))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		dur.Observe(time.Since(t0).Seconds())
		s.reg.Counter("serve_requests_total", "Requests by path and status code.",
			obs.L("path", path), obs.L("code", strconv.Itoa(sw.code))).Inc()
	})
}

// assignmentJSON is one task's placement in the response.
type assignmentJSON struct {
	Node   int   `json:"node"`
	Proc   int   `json:"proc"`
	Start  int64 `json:"start"`
	Finish int64 `json:"finish"`
}

// scheduleResponse is the /schedule JSON body.
type scheduleResponse struct {
	Heuristic   string           `json:"heuristic"`
	Graph       string           `json:"graph,omitempty"`
	Nodes       int              `json:"nodes"`
	SerialTime  int64            `json:"serial_time"`
	Makespan    int64            `json:"makespan"`
	Procs       int              `json:"procs"`
	Speedup     float64          `json:"speedup"`
	Efficiency  float64          `json:"efficiency"`
	Assignments []assignmentJSON `json:"assignments"`
	Trace       json.RawMessage  `json:"trace,omitempty"`
}

// handleSchedule schedules one DAG: POST a graph as JSON, pick the
// heuristic with ?heuristic= (default MCP), get the timed schedule
// back as JSON, or as a text Gantt chart with ?format=gantt. ?trace=1
// embeds the request's span trace in the JSON response.
func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST a DAG as JSON")
		return
	}
	name := r.URL.Query().Get("heuristic")
	if name == "" {
		name = "MCP"
	}
	sc, err := heuristics.New(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	tr := obs.NewTrace("schedule " + name)
	dec := tr.Span("decode")
	g, err := dag.ReadJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	dec.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad DAG: "+err.Error())
		return
	}

	run := tr.Span("schedule")
	schedule, err := heuristics.Run(sc, g)
	run.End()
	if err != nil {
		// The graph decoded and validated, so a failure here is the
		// scheduler's, not the client's.
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	enc := tr.Span("encode")
	defer enc.End()
	if r.URL.Query().Get("format") == "gantt" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "heuristic %s on %q\n%s", name, g.Name(), schedule.Gantt(80))
		return
	}
	resp := scheduleResponse{
		Heuristic:   name,
		Graph:       g.Name(),
		Nodes:       g.NumNodes(),
		SerialTime:  g.SerialTime(),
		Makespan:    schedule.Makespan,
		Procs:       schedule.NumProcs,
		Speedup:     schedule.Speedup(),
		Efficiency:  schedule.Efficiency(),
		Assignments: make([]assignmentJSON, 0, len(schedule.ByNode)),
	}
	for _, a := range schedule.ByNode {
		resp.Assignments = append(resp.Assignments, assignmentJSON{
			Node: int(a.Node), Proc: a.Proc, Start: a.Start, Finish: a.Finish,
		})
	}
	if r.URL.Query().Get("trace") == "1" {
		var tb bytes.Buffer
		if err := tr.WriteJSON(&tb); err == nil {
			resp.Trace = json.RawMessage(bytes.TrimSpace(tb.Bytes()))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	encJSON := json.NewEncoder(w)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(resp); err != nil {
		// Headers are gone; nothing to do but note it in the metrics
		// via the instrument wrapper's status (already 200).
		return
	}
}

// handleHeuristics lists the registered scheduler names.
func (s *server) handleHeuristics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(heuristics.Names())
}

// handleMetrics serves the registry in the Prometheus text format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, "schedserve: "+msg, code)
}
