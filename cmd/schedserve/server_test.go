package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
)

// newTestServer returns an httptest server over a fresh handler wired
// to the (enabled) default registry.
func newTestServer(t *testing.T, opts serverOptions) *httptest.Server {
	t.Helper()
	obs.Default().SetEnabled(true)
	srv := newServer(obs.Default(), opts)
	t.Cleanup(srv.Close) // after ts.Close: handlers drain before the pipeline does
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func sampleDAG(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("testdata/sample_dag.json")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func postSchedule(t *testing.T, ts *httptest.Server, query, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/schedule"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestScheduleEndpoint(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp := postSchedule(t, ts, "?heuristic=MCP", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got struct {
		Heuristic   string `json:"heuristic"`
		Nodes       int    `json:"nodes"`
		SerialTime  int64  `json:"serial_time"`
		Makespan    int64  `json:"makespan"`
		Procs       int    `json:"procs"`
		Assignments []struct {
			Node, Proc    int
			Start, Finish int64
		} `json:"assignments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Heuristic != "MCP" || got.Nodes != 7 || len(got.Assignments) != 7 {
		t.Fatalf("response = %+v", got)
	}
	if got.Makespan <= 0 || got.Makespan > got.SerialTime {
		t.Fatalf("makespan %d vs serial %d", got.Makespan, got.SerialTime)
	}
	if got.Procs < 1 {
		t.Fatalf("procs = %d", got.Procs)
	}
}

func TestScheduleDefaultHeuristicAndTrace(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp := postSchedule(t, ts, "?trace=1", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got struct {
		Heuristic string          `json:"heuristic"`
		Trace     json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Heuristic != "MCP" {
		t.Fatalf("default heuristic = %q", got.Heuristic)
	}
	if !strings.Contains(string(got.Trace), `"decode"`) || !strings.Contains(string(got.Trace), `"schedule"`) {
		t.Fatalf("trace missing spans: %s", got.Trace)
	}
}

func TestScheduleGanttFormat(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp := postSchedule(t, ts, "?heuristic=DSC&format=gantt", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "heuristic DSC") || !strings.Contains(out, "P0") {
		t.Fatalf("not a gantt chart:\n%s", out)
	}
}

func TestScheduleMalformedDAG(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	cases := map[string]string{
		"not-json":        "this is not json",
		"negative-weight": `{"nodes":[5,-1],"edges":[]}`,
		"bad-edge":        `{"nodes":[5,5],"edges":[{"from":0,"to":9,"weight":1}]}`,
		"cycle":           `{"nodes":[5,5],"edges":[{"from":0,"to":1,"weight":1},{"from":1,"to":0,"weight":1}]}`,
		"empty-body":      "",
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			resp := postSchedule(t, ts, "", body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestScheduleUnknownHeuristicAndMethod(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp := postSchedule(t, ts, "?heuristic=NOPE", sampleDAG(t))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown heuristic status = %d, want 400", resp.StatusCode)
	}
	get, err := http.Get(ts.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", get.StatusCode)
	}
}

func TestScheduleBodyLimit(t *testing.T) {
	ts := newTestServer(t, serverOptions{MaxBody: 64})
	resp := postSchedule(t, ts, "", sampleDAG(t)) // sample is > 64 bytes
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// slowSched blocks long enough to trip the request timeout. Registered
// once for the whole test binary.
type slowSched struct{ d time.Duration }

func (s slowSched) Name() string { return "SLOWTEST" }
func (s slowSched) Schedule(g *dag.Graph) (*sched.Placement, error) {
	time.Sleep(s.d)
	pl := sched.NewPlacement(g.NumNodes())
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, v := range order {
		pl.Assign(v, 0)
	}
	return pl, nil
}

var registerSlow sync.Once

func TestScheduleTimeout(t *testing.T) {
	registerSlow.Do(func() {
		heuristics.Register("SLOWTEST", func() heuristics.Scheduler { return slowSched{d: 300 * time.Millisecond} })
	})
	ts := newTestServer(t, serverOptions{Timeout: 30 * time.Millisecond})
	resp := postSchedule(t, ts, "?heuristic=SLOWTEST", sampleDAG(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "timed out") {
		t.Fatalf("timeout body = %q", raw)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	// Drive one schedule through so the counters are nonzero.
	resp := postSchedule(t, ts, "?heuristic=MCP", sampleDAG(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule status = %d", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mresp.StatusCode)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`sched_schedules_total{heuristic="MCP"}`,
		"# TYPE sched_schedules_total counter",
		"# TYPE serve_request_seconds histogram",
		`serve_requests_total{path="/schedule",code="200"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestHeuristicsEndpoint(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp, err := http.Get(ts.URL + "/heuristics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"CLANS", "DSC", "MCP", "MH", "HU"} {
		if !found[want] {
			t.Fatalf("heuristics list %v missing %s", names, want)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPprofEndpoint(t *testing.T) {
	ts := newTestServer(t, serverOptions{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}
