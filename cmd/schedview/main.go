// Command schedview loads a PDG from JSON (a file or stdin), schedules
// it with one or all of the five heuristics, and prints the schedule
// as a Gantt chart and a start-time table.
//
// Usage:
//
//	schedview [-f graph.json] [-heuristic NAME|all] [-width N] [-dot]
//
// Generate inputs with daggen, e.g.:
//
//	daggen -nodes 60 | schedview -heuristic CLANS
package main

import (
	"flag"
	"fmt"
	"os"

	"schedcomp"
	"schedcomp/internal/analysis"
	"schedcomp/internal/dag"
)

func main() {
	var (
		file    = flag.String("f", "", "input graph JSON (default: stdin)")
		heur    = flag.String("heuristic", "all", "heuristic name or 'all'")
		width   = flag.Int("width", 72, "Gantt chart width in characters")
		dot     = flag.Bool("dot", false, "also print the graph in Graphviz dot")
		analyze = flag.Bool("analyze", false, "print a schedule-quality breakdown per heuristic")
		csv     = flag.Bool("csv", false, "emit each schedule as CSV instead of a Gantt chart")
		trace   = flag.Bool("trace", false, "emit each schedule in Chrome trace format instead of a Gantt chart")
	)
	flag.Parse()

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	g, err := dag.ReadJSON(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading graph:", err)
		os.Exit(1)
	}
	fmt.Printf("graph %q: %d tasks, %d edges, serial time %d, granularity %.3f, anchor %d\n\n",
		g.Name(), g.NumNodes(), g.NumEdges(), g.SerialTime(), g.Granularity(), g.AnchorOutDegree())
	if *dot {
		fmt.Println(g.DOT())
	}

	names := []string{*heur}
	if *heur == "all" {
		names = []string{"CLANS", "DSC", "MCP", "MH", "HU"}
	}
	for _, name := range names {
		s, err := schedcomp.ScheduleGraph(name, g)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n", name)
		switch {
		case *csv:
			if err := s.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case *trace:
			if err := s.WriteTrace(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		default:
			fmt.Println(s.Gantt(*width))
		}
		if *analyze {
			r, err := analysis.Analyze(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(r)
		}
	}
}
