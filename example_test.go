package schedcomp_test

import (
	"fmt"

	"schedcomp"
)

// The paper's appendix example: five tasks whose optimal schedule
// overlaps node 2 with the chain 3-4.
func ExampleScheduleGraph() {
	g := schedcomp.NewGraph("appendix")
	n := make([]schedcomp.NodeID, 5)
	for i, w := range []int64{10, 20, 30, 40, 50} {
		n[i] = g.AddNode(w)
	}
	g.MustAddEdge(n[0], n[1], 5)
	g.MustAddEdge(n[0], n[2], 5)
	g.MustAddEdge(n[2], n[3], 10)
	g.MustAddEdge(n[1], n[4], 4)
	g.MustAddEdge(n[3], n[4], 5)

	s, err := schedcomp.ScheduleGraph("CLANS", g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parallel time %d on %d processors (serial %d)\n",
		s.Makespan, s.NumProcs, g.SerialTime())
	// Output:
	// parallel time 130 on 2 processors (serial 150)
}

// Generating a classified random PDG: the class constraints
// (granularity band, anchor out-degree, weight range) hold by
// construction.
func ExampleGenerate() {
	bands := schedcomp.PaperBands()
	g, err := schedcomp.Generate(schedcomp.GenParams{
		Nodes: 60, Anchor: 3, WMin: 20, WMax: 100, Gran: bands[2],
	}, 7)
	if err != nil {
		panic(err)
	}
	min, max := g.NodeWeightRange()
	fmt.Printf("anchor %d, weights within [20,100]: %v, granularity in band: %v\n",
		g.AnchorOutDegree(), min >= 20 && max <= 100, bands[2].Contains(g.Granularity()))
	// Output:
	// anchor 3, weights within [20,100]: true, granularity in band: true
}

// Comparing all five paper heuristics on one workload.
func ExamplePaperHeuristics() {
	g := schedcomp.ForkJoin(2, 6, 100, 5) // coarse-grained fork-join
	for _, s := range schedcomp.PaperHeuristics() {
		sc, err := schedcomp.Run(s, g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-5s speedup %.2f\n", s.Name(), sc.Speedup())
	}
	// Output:
	// CLANS speedup 2.88
	// DSC   speedup 2.88
	// MCP   speedup 2.88
	// MH    speedup 2.88
	// HU    speedup 2.88
}

// Exact optimum for a small graph, as a baseline.
func ExampleOptimal() {
	g := schedcomp.NewGraph("tiny")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(a, c, 5)
	res, err := schedcomp.Optimal(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal parallel time %d\n", res.Makespan)
	// Output:
	// optimal parallel time 40
}
