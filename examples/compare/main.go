// Compare: run the five heuristics head-to-head on randomly generated
// PDGs from each of the paper's granularity classes and print a
// per-class scoreboard — a miniature of the paper's whole experiment,
// on a handful of graphs, in under a second.
package main

import (
	"fmt"

	"schedcomp"
)

func main() {
	const perBand = 5
	names := []string{"CLANS", "DSC", "MCP", "MH", "HU"}

	for _, band := range schedcomp.PaperBands() {
		wins := map[string]int{}
		retards := map[string]int{}
		sums := map[string]float64{}
		for seed := int64(0); seed < perBand; seed++ {
			g, err := schedcomp.Generate(schedcomp.GenParams{
				Nodes: 80, Anchor: 3, WMin: 20, WMax: 200, Gran: band,
			}, 100+seed)
			if err != nil {
				panic(err)
			}
			best := ""
			var bestTime int64
			for _, name := range names {
				s, err := schedcomp.ScheduleGraph(name, g)
				if err != nil {
					panic(err)
				}
				sums[name] += s.Speedup()
				if s.Speedup() < 1 {
					retards[name]++
				}
				if best == "" || s.Makespan < bestTime {
					best, bestTime = name, s.Makespan
				}
			}
			wins[best]++
		}
		fmt.Printf("granularity %-16s", band.String())
		for _, name := range names {
			fmt.Printf("  %s: speedup %.2f wins %d retards %d |",
				name, sums[name]/perBand, wins[name], retards[name])
		}
		fmt.Println()
	}
	fmt.Println("\nCLANS never retards (speedup >= 1 structurally); the local")
	fmt.Println("schedulers fall below serial time on fine-grained graphs.")
}
