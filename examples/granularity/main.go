// Granularity sweep: take one workload shape (a fork-join program) and
// sweep the message cost from negligible to crushing, printing each
// heuristic's speedup at every point. This reproduces the paper's
// central finding as a single readable curve: all heuristics improve
// with granularity, the local schedulers collapse below speedup 1 when
// communication dominates, and CLANS degrades gracefully to serial
// execution instead.
package main

import (
	"fmt"

	"schedcomp"
)

func main() {
	names := []string{"CLANS", "DSC", "MCP", "MH", "HU"}
	const taskCost = 50

	fmt.Printf("%-10s %-12s", "msg cost", "granularity")
	for _, n := range names {
		fmt.Printf(" %8s", n)
	}
	fmt.Println()

	for _, msgCost := range []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500} {
		g := schedcomp.ForkJoin(3, 6, taskCost, msgCost)
		fmt.Printf("%-10d %-12.3f", msgCost, g.Granularity())
		for _, name := range names {
			s, err := schedcomp.ScheduleGraph(name, g)
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %8.2f", s.Speedup())
		}
		fmt.Println()
	}
	fmt.Println("\nspeedup per heuristic as communication cost rises (task cost fixed at 50)")
}
