// Optimal: the paper opens with "no baseline is available from which
// to compare the resulting schedules". For small graphs a baseline IS
// computable: this example solves 12-task PDGs from each granularity
// class exactly (branch and bound) and shows how far each heuristic —
// and a duplication scheduler the paper's model forbids — lands from
// the true optimum.
package main

import (
	"fmt"

	"schedcomp"
)

func main() {
	names := []string{"CLANS", "DSC", "MCP", "MH", "HU"}
	fmt.Printf("%-16s %8s", "granularity", "optimal")
	for _, n := range names {
		fmt.Printf(" %7s", n)
	}
	fmt.Printf(" %7s\n", "DSH*")

	for _, band := range schedcomp.PaperBands() {
		g, err := schedcomp.Generate(schedcomp.GenParams{
			Nodes: 12, Anchor: 2, WMin: 20, WMax: 100, Gran: band,
		}, 4242)
		if err != nil {
			panic(err)
		}
		res, err := schedcomp.Optimal(g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %8d", band.String(), res.Makespan)
		for _, n := range names {
			s, err := schedcomp.ScheduleGraph(n, g)
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %6.2fx", float64(s.Makespan)/float64(res.Makespan))
		}
		d, err := schedcomp.ScheduleWithDuplication(g)
		if err != nil {
			panic(err)
		}
		fmt.Printf(" %6.2fx\n", float64(d.Makespan)/float64(res.Makespan))
	}
	fmt.Println("\nparallel time as a multiple of the exact optimum (1.00x = optimal).")
	fmt.Println("*DSH duplicates tasks, which the paper's model forbids, so it can")
	fmt.Println("go below 1.00x of the no-duplication optimum at fine grain.")
}
