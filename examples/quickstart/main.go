// Quickstart: build a small program dependence graph by hand, schedule
// it with each of the five heuristics, and print the resulting Gantt
// charts. The graph is the worked example from the paper's appendix
// (Figures 8–16): five tasks, two of which can overlap when
// communication is cheap enough.
package main

import (
	"fmt"

	"schedcomp"
)

func main() {
	g := schedcomp.NewGraph("quickstart")
	// Paper node k = ID k-1; weights 10, 20, 30, 40, 50.
	n := make([]schedcomp.NodeID, 5)
	for i, w := range []int64{10, 20, 30, 40, 50} {
		n[i] = g.AddNode(w)
	}
	g.MustAddEdge(n[0], n[1], 5)
	g.MustAddEdge(n[0], n[2], 5)
	g.MustAddEdge(n[2], n[3], 10)
	g.MustAddEdge(n[1], n[4], 4)
	g.MustAddEdge(n[3], n[4], 5)

	fmt.Printf("graph %q: %d tasks, serial time %d, granularity %.2f\n\n",
		g.Name(), g.NumNodes(), g.SerialTime(), g.Granularity())

	for _, name := range []string{"CLANS", "DSC", "MCP", "MH", "HU"} {
		s, err := schedcomp.ScheduleGraph(name, g)
		if err != nil {
			fmt.Println(name, "failed:", err)
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", name, s.Gantt(60))
	}
	fmt.Println("The paper's CLANS walkthrough (Figure 16) ends at parallel time 130.")
}
