// Topology: the Mapping Heuristic was designed to exploit processor
// interconnect topology (the paper runs it on a fully connected
// machine, where the machinery is inert). This example schedules one
// FFT graph onto a fully connected machine, a ring, a 2D mesh, a
// hypercube and a star, and reports three numbers per network:
//
//   - the schedule length under the uncontended hop-delay model;
//   - the same placement executed by the contention simulator
//     (messages queue on busy links);
//   - the contention simulator's makespan when MH also *plans* for
//     contention.
package main

import (
	"fmt"

	"schedcomp"
)

func main() {
	g := schedcomp.FFT(4, 50, 25) // 5 ranks x 16 butterflies
	fmt.Printf("graph %s: %d tasks, serial time %d\n\n", g.Name(), g.NumNodes(), g.SerialTime())

	nets := []*schedcomp.Network{
		schedcomp.FullyConnected(8),
		schedcomp.Ring(8),
		schedcomp.Mesh(4, 2),
		schedcomp.Hypercube(3),
		schedcomp.Star(8),
	}

	fmt.Printf("%-22s %10s %12s %14s\n", "network (8 procs)", "hop model", "simulated", "planned+simd")
	for _, net := range nets {
		plain, err := schedcomp.ScheduleOnNetwork(g, net, false)
		if err != nil {
			panic(err)
		}
		place := func(contention bool) *schedcomp.Placement {
			pl, err := schedcomp.NewMH(net, contention).Schedule(g)
			if err != nil {
				panic(err)
			}
			return pl
		}
		simPlain, err := schedcomp.SimulatePlacement(g, place(false), net)
		if err != nil {
			panic(err)
		}
		simAware, err := schedcomp.SimulatePlacement(g, place(true), net)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %10d %12d %14d\n",
			net.Name(), plain.Makespan, simPlain.Schedule.Makespan, simAware.Schedule.Makespan)
	}

	fmt.Println("\ncolumns: schedule length assuming free links; the same placement")
	fmt.Println("run with link contention (store-and-forward, unit-capacity links);")
	fmt.Println("and the contended run when MH also plans around contention.")
	fmt.Println("Sparse topologies pay more than the paper's fully connected")
	fmt.Println("machine; the star's shared hub is the worst bottleneck.")
}
