// Workloads: schedule structured application task graphs — FFT,
// Gaussian elimination, tiled LU, a Jacobi stencil, divide-and-conquer,
// fork-join and a software pipeline — with all five heuristics, at a
// coarse and a fine granularity. This is the paper's proposed next
// step ("DAGs generated from real serial programs ... classified into
// application classes") made concrete.
package main

import (
	"fmt"

	"schedcomp"
)

func run(g *schedcomp.Graph, names []string) {
	fmt.Printf("%-18s n=%-5d G=%-8.2f", g.Name(), g.NumNodes(), g.Granularity())
	for _, name := range names {
		s, err := schedcomp.ScheduleGraph(name, g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %s %.2fx/%dp", name, s.Speedup(), s.NumProcs)
	}
	fmt.Println()
}

func main() {
	names := []string{"CLANS", "DSC", "MCP", "MH", "HU"}

	fmt.Println("== coarse grain (task 200, message 10) ==")
	for _, g := range schedcomp.AllWorkloads(200, 10) {
		run(g, names)
	}

	fmt.Println("\n== fine grain (task 20, message 400) ==")
	for _, g := range schedcomp.AllWorkloads(20, 400) {
		run(g, names)
	}

	fmt.Println("\nspeedup×/processors-used per heuristic; note the fine-grain")
	fmt.Println("rows where the list and critical-path schedulers drop below 1x")
	fmt.Println("while CLANS holds at serial time or better.")
}
