package schedcomp

import (
	"schedcomp/internal/dup"
	"schedcomp/internal/experiments"
	"schedcomp/internal/heuristics/clans"
	"schedcomp/internal/opt"
	"schedcomp/internal/sched"
	"schedcomp/internal/sim"
)

// Extensions beyond the paper's Tables 1-11: the exact optimal
// baseline its introduction laments not having, the duplication
// technique its assumptions exclude, the strengthened CLANS variant
// its conclusion hints at, a contention-level execution simulator, and
// the follow-up studies its future-work section proposes.

// OptimalResult is an exact optimum for a small graph.
type OptimalResult = opt.Result

// Optimal computes an exact optimal schedule for a small graph (≤ 14
// tasks by default) by branch and bound, seeded with the best of the
// five heuristics.
func Optimal(g *Graph) (*OptimalResult, error) {
	var best int64
	for _, s := range PaperHeuristics() {
		sc, err := Run(s, g)
		if err != nil {
			return nil, err
		}
		if best == 0 || sc.Makespan < best {
			best = sc.Makespan
		}
	}
	return opt.Solve(g, opt.Options{Incumbent: best})
}

// DupSchedule is a schedule in which tasks may have been duplicated
// onto several processors.
type DupSchedule = dup.Schedule

// ScheduleWithDuplication schedules g with the simplified Duplication
// Scheduling Heuristic — the technique the paper's model forbids —
// for comparison against the five no-duplication heuristics.
func ScheduleWithDuplication(g *Graph) (*DupSchedule, error) {
	return dup.New().Schedule(g)
}

// NewDeepCLANS returns the strengthened CLANS variant that extracts
// proper sub-clans inside primitive clans ("the best version of
// CLANS" the paper alludes to). The registered "CLANS" scheduler is
// the flat paper configuration.
func NewDeepCLANS() Scheduler {
	return &clans.CLANS{SpeedupCheck: true, DeepPrimitives: true}
}

// SimResult is a contention-level simulation outcome.
type SimResult = sim.Result

// SimulateHeuristic schedules g with the named heuristic and then
// simulates the placement on the network with contended,
// store-and-forward links — a stricter model than the paper's.
func SimulateHeuristic(name string, g *Graph, net *Network) (*SimResult, error) {
	s, err := NewScheduler(name)
	if err != nil {
		return nil, err
	}
	pl, err := s.Schedule(g)
	if err != nil {
		return nil, err
	}
	// Heuristics emit dense, interchangeable processor labels; compact
	// before treating them as physical network positions.
	pl.Compact()
	return sim.Run(g, pl, net)
}

// SimulatePlacement simulates an explicit placement (whose processor
// indices are physical network positions) under link contention.
func SimulatePlacement(g *Graph, pl *Placement, net *Network) (*SimResult, error) {
	return sim.Run(g, pl, net)
}

// Extension experiment drivers (see EXPERIMENTS.md):

// OptimalityGapTable reports each heuristic's mean distance from the
// exact optimum on tiny graphs, per granularity band.
func OptimalityGapTable(seed int64, perBand int) (*Table, error) {
	return experiments.OptimalityGap(seed, perBand)
}

// WiderWeightRangesTable extends the paper's node-weight-range domain
// up to 20-1600.
func WiderWeightRangesTable(seed int64, graphsPerCell int) (*Table, error) {
	return experiments.WiderWeightRanges(seed, graphsPerCell)
}

// DuplicationGainTable quantifies what the no-duplication assumption
// costs, per granularity band.
func DuplicationGainTable(seed int64, perBand int) (*Table, error) {
	return experiments.DuplicationGain(seed, perBand)
}

// MetricComparisonTable correlates speedup with the paper's
// granularity metric versus Sarkar's.
func MetricComparisonTable(seed int64, graphs int) (*Table, error) {
	return experiments.MetricComparison(seed, graphs)
}

// ExtendedComparisonTable reruns the granularity study with nine
// heuristics: the paper's five plus ETF, EZ (Sarkar), LC (Kim &
// Browne) and DLS (Sih & Lee).
func ExtendedComparisonTable(seed int64, perBand int) (*Table, error) {
	return experiments.ExtendedComparison(seed, perBand)
}

// SizeScalingTable reports mean speedup against graph size.
func SizeScalingTable(seed int64, perSize int) (*Table, error) {
	return experiments.SizeScaling(seed, perSize)
}

// SpeedupQuantilesTable reports the p10/p50/p90 speedup distribution
// per granularity band for an existing evaluation.
func SpeedupQuantilesTable(ev *Evaluation) *Table {
	return experiments.SpeedupQuantiles(ev)
}

// MustPlacementOf runs a registered heuristic and returns its raw
// placement (for SimulatePlacement and custom evaluation).
func MustPlacementOf(name string, g *Graph) (*Placement, error) {
	s, err := NewScheduler(name)
	if err != nil {
		return nil, err
	}
	pl, err := s.Schedule(g)
	if err != nil {
		return nil, err
	}
	if err := pl.Check(g); err != nil {
		return nil, err
	}
	return pl, nil
}

// BuildPlacement times a placement under the paper's uniform model.
func BuildPlacement(g *Graph, pl *Placement) (*Schedule, error) {
	return sched.Build(g, pl)
}
