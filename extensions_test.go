package schedcomp

import (
	"testing"
)

func TestOptimalFacade(t *testing.T) {
	g := NewGraph("tiny")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(a, c, 5)
	res, err := Optimal(g)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: a and c share a processor ([0,10) and [10,40)); b runs
	// on another at [15,35) after its 5-unit message — makespan 40.
	if res.Makespan != 40 {
		t.Errorf("optimal = %d, want 40", res.Makespan)
	}
}

func TestScheduleWithDuplicationFacade(t *testing.T) {
	g := ForkJoin(1, 4, 10, 500)
	s, err := ScheduleWithDuplication(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Duplicates() == 0 {
		t.Error("expected duplication on a comm-bound fork-join")
	}
}

func TestNewDeepCLANSFacade(t *testing.T) {
	s := NewDeepCLANS()
	if s.Name() != "CLANS" {
		t.Errorf("Name = %s", s.Name())
	}
	g := FFT(3, 50, 10)
	sc, err := Run(s, g)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Makespan > g.SerialTime() {
		t.Error("deep CLANS exceeded serial time")
	}
}

func TestSimulateHeuristicFacade(t *testing.T) {
	g := FFT(3, 40, 20)
	res, err := SimulateHeuristic("MCP", g, FullyConnected(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan <= 0 {
		t.Error("empty simulation result")
	}
	// Contended execution can never beat the paper's model timing of
	// the same heuristic.
	plain, err := ScheduleGraph("MCP", g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan < plain.Makespan {
		t.Errorf("simulated %d beat uncontended %d", res.Schedule.Makespan, plain.Makespan)
	}
}

func TestExtensionTables(t *testing.T) {
	if testing.Short() {
		t.Skip("extension tables in -short mode")
	}
	type run struct {
		name string
		f    func() (*Table, error)
		rows int
	}
	for _, r := range []run{
		{"optimality", func() (*Table, error) { return OptimalityGapTable(1, 2) }, 5},
		{"ranges", func() (*Table, error) { return WiderWeightRangesTable(1, 1) }, 6},
		{"duplication", func() (*Table, error) { return DuplicationGainTable(1, 2) }, 5},
		{"metric", func() (*Table, error) { return MetricComparisonTable(1, 15) }, 5},
		{"extended", func() (*Table, error) { return ExtendedComparisonTable(1, 1) }, 5},
		{"scaling", func() (*Table, error) { return SizeScalingTable(1, 1) }, 5},
	} {
		tbl, err := r.f()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if len(tbl.Rows) != r.rows {
			t.Errorf("%s: %d rows, want %d", r.name, len(tbl.Rows), r.rows)
		}
		if tbl.CSV() == "" {
			t.Errorf("%s: empty CSV", r.name)
		}
	}
}

func TestBuildPlacementFacade(t *testing.T) {
	g := NewGraph("bp")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 3)
	pl, err := MustPlacementOf("DSC", g)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildPlacement(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Makespan != 20 {
		t.Errorf("makespan = %d, want 20", sc.Makespan)
	}
}
