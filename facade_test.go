package schedcomp

import (
	"testing"
)

func TestNetworkFacade(t *testing.T) {
	nets := []*Network{
		FullyConnected(8), Ring(8), Mesh(4, 2), Hypercube(3), Star(8),
	}
	for _, net := range nets {
		if net.NumProcs() != 8 {
			t.Errorf("%s: %d procs", net.Name(), net.NumProcs())
		}
	}
}

func TestScheduleOnNetwork(t *testing.T) {
	g := FFT(3, 40, 10)
	for _, net := range []*Network{FullyConnected(4), Ring(4), Hypercube(2)} {
		for _, contention := range []bool{false, true} {
			s, err := ScheduleOnNetwork(g, net, contention)
			if err != nil {
				t.Fatalf("%s contention=%v: %v", net.Name(), contention, err)
			}
			if s.NumProcs > 4 {
				t.Errorf("%s: %d procs", net.Name(), s.NumProcs)
			}
			if s.Makespan <= 0 {
				t.Errorf("%s: makespan %d", net.Name(), s.Makespan)
			}
		}
	}
}

func TestSparseTopologyCostsMore(t *testing.T) {
	// The same scheduler on a ring pays multi-hop delays a fully
	// connected machine does not; for a communication-heavy graph the
	// ring schedule should never be cheaper.
	g := FFT(3, 20, 50)
	full, err := ScheduleOnNetwork(g, FullyConnected(8), false)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := ScheduleOnNetwork(g, Ring(8), false)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Makespan < full.Makespan {
		t.Errorf("ring %d beat fully connected %d", ring.Makespan, full.Makespan)
	}
}

func TestWorkloadFacade(t *testing.T) {
	if got := len(AllWorkloads(10, 5)); got != 9 {
		t.Fatalf("AllWorkloads = %d graphs", got)
	}
	cases := []*Graph{
		FFT(3, 10, 5),
		GaussianElimination(5, 10, 5),
		LU(3, 10, 5),
		Cholesky(3, 10, 5),
		Laplace(4, 3, 10, 5),
		Stencil2D(3, 2, 10, 5),
		DivideAndConquer(3, 10, 5),
		ForkJoin(2, 4, 10, 5),
		Pipeline(3, 4, 10, 5),
	}
	for _, g := range cases {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if _, err := ScheduleGraph("CLANS", g); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

func TestNewMHIsScheduler(t *testing.T) {
	var s Scheduler = NewMH(Ring(4), true)
	if s.Name() != "MH" {
		t.Errorf("Name = %s", s.Name())
	}
	g := ForkJoin(2, 3, 50, 5)
	sc, err := Run(s, g)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumProcs > 4 {
		t.Errorf("procs = %d on a 4-proc ring", sc.NumProcs)
	}
}
