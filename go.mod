module schedcomp

go 1.22
