// Package analysis decomposes a schedule's quality: where the parallel
// time goes (busy vs idle processors), how much communication the
// placement actually pays, how balanced the load is, and how far the
// makespan sits above the two classical lower bounds (critical path
// and total-work-over-processors). The paper reports only aggregate
// speedup/efficiency; these per-schedule diagnostics explain *why* a
// heuristic's number is what it is, and power schedview's -analyze
// output.
package analysis

import (
	"fmt"
	"strings"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// Report is the full diagnostic breakdown of one schedule.
type Report struct {
	// Makespan, Procs, Speedup, Efficiency mirror the schedule.
	Makespan   int64
	Procs      int
	Speedup    float64
	Efficiency float64

	// BusyTime is the summed execution time (= the graph's serial
	// time); IdleTime is Procs*Makespan − BusyTime.
	BusyTime int64
	IdleTime int64

	// CommPaid is the summed weight of edges whose endpoints run on
	// different processors; CommTotal sums all edge weights. Their
	// ratio is the fraction of potential communication actually paid.
	CommPaid  int64
	CommTotal int64
	// CrossEdges counts the cross-processor edges.
	CrossEdges int

	// LoadMax and LoadMin are the heaviest and lightest processor
	// loads (busy time); Imbalance is LoadMax/mean load (1.0 =
	// perfectly balanced).
	LoadMax   int64
	LoadMin   int64
	Imbalance float64

	// CPLowerBound is the communication-free critical path;
	// WorkLowerBound is ceil(serial/Procs). CPStretch is
	// Makespan/CPLowerBound (≥ 1).
	CPLowerBound   int64
	WorkLowerBound int64
	CPStretch      float64

	// Depth and MaxWidth describe the graph's shape: the longest
	// path's node count and the widest depth level — context for how
	// many processors could possibly be useful.
	Depth    int
	MaxWidth int
}

// Analyze computes the report for a validated schedule.
func Analyze(s *sched.Schedule) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := s.Graph
	r := &Report{
		Makespan:   s.Makespan,
		Procs:      s.NumProcs,
		Speedup:    s.Speedup(),
		Efficiency: s.Efficiency(),
		BusyTime:   g.SerialTime(),
	}
	if s.NumProcs > 0 {
		r.IdleTime = int64(s.NumProcs)*s.Makespan - r.BusyTime
	}

	proc := make([]int, g.NumNodes())
	for v, a := range s.ByNode {
		proc[v] = a.Proc
	}
	for _, e := range g.Edges() {
		r.CommTotal += e.Weight
		if proc[e.From] != proc[e.To] {
			r.CommPaid += e.Weight
			r.CrossEdges++
		}
	}

	if s.NumProcs > 0 {
		load := make([]int64, s.NumProcs)
		for v, a := range s.ByNode {
			load[a.Proc] += g.Weight(dag.NodeID(v))
		}
		r.LoadMax, r.LoadMin = load[0], load[0]
		var sum int64
		for _, l := range load {
			if l > r.LoadMax {
				r.LoadMax = l
			}
			if l < r.LoadMin {
				r.LoadMin = l
			}
			sum += l
		}
		if sum > 0 {
			mean := float64(sum) / float64(s.NumProcs)
			r.Imbalance = float64(r.LoadMax) / mean
		}
	}

	lv, err := g.BLevelsNoComm()
	if err != nil {
		return nil, err
	}
	for _, l := range lv {
		if l > r.CPLowerBound {
			r.CPLowerBound = l
		}
	}
	if s.NumProcs > 0 {
		r.WorkLowerBound = (r.BusyTime + int64(s.NumProcs) - 1) / int64(s.NumProcs)
	}
	if r.CPLowerBound > 0 {
		r.CPStretch = float64(r.Makespan) / float64(r.CPLowerBound)
	}
	r.Depth = g.Depth()
	r.MaxWidth = g.MaxWidth()
	return r, nil
}

// String renders the report as an aligned block for terminals.
func (r *Report) String() string {
	var b strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }
	w("parallel time     %d (critical path bound %d, stretch %.2fx)", r.Makespan, r.CPLowerBound, r.CPStretch)
	w("processors        %d (work bound %d)", r.Procs, r.WorkLowerBound)
	w("speedup           %.2f   efficiency %.2f", r.Speedup, r.Efficiency)
	w("busy/idle time    %d / %d", r.BusyTime, r.IdleTime)
	if r.CommTotal > 0 {
		w("communication     paid %d of %d (%.0f%%) over %d cross edges",
			r.CommPaid, r.CommTotal, 100*float64(r.CommPaid)/float64(r.CommTotal), r.CrossEdges)
	} else {
		w("communication     none in graph")
	}
	w("load balance      max %d / min %d (imbalance %.2fx)", r.LoadMax, r.LoadMin, r.Imbalance)
	w("graph shape       depth %d, max level width %d", r.Depth, r.MaxWidth)
	return b.String()
}
