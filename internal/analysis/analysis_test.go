package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

func TestAnalyzePaperExampleCLANS(t *testing.T) {
	g := paperex.Graph()
	s, err := heuristics.New("CLANS")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := heuristics.Run(s, g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 130 || r.Procs != 2 {
		t.Fatalf("makespan %d procs %d", r.Makespan, r.Procs)
	}
	if r.BusyTime != 150 {
		t.Errorf("busy = %d, want 150", r.BusyTime)
	}
	if r.IdleTime != 2*130-150 {
		t.Errorf("idle = %d, want %d", r.IdleTime, 2*130-150)
	}
	// Cross edges in the CLANS schedule: 1->2 and 2->5 (node 2 alone):
	// weights 5 + 4 = 9 of total 29.
	if r.CommPaid != 9 || r.CommTotal != 29 || r.CrossEdges != 2 {
		t.Errorf("comm: paid %d/%d over %d edges", r.CommPaid, r.CommTotal, r.CrossEdges)
	}
	if r.CPLowerBound != 130 {
		t.Errorf("CP bound = %d, want 130", r.CPLowerBound)
	}
	if math.Abs(r.CPStretch-1.0) > 1e-12 {
		t.Errorf("stretch = %v, want 1.0 (schedule is optimal)", r.CPStretch)
	}
	if r.LoadMax != 130 || r.LoadMin != 20 {
		t.Errorf("loads = %d/%d", r.LoadMax, r.LoadMin)
	}
	out := r.String()
	for _, want := range []string{"parallel time", "processors", "communication", "load balance"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeSerialSchedule(t *testing.T) {
	g := paperex.Graph()
	pl, err := sched.Serial(g)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.IdleTime != 0 {
		t.Errorf("serial idle = %d, want 0", r.IdleTime)
	}
	if r.CommPaid != 0 || r.CrossEdges != 0 {
		t.Errorf("serial pays communication: %d over %d edges", r.CommPaid, r.CrossEdges)
	}
	if math.Abs(r.Imbalance-1.0) > 1e-12 {
		t.Errorf("serial imbalance = %v", r.Imbalance)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	g := paperex.Graph()
	pl, _ := sched.Serial(g)
	sc, _ := sched.Build(g, pl)
	sc.ByNode[0].Start = 999 // corrupt
	sc.ByNode[0].Finish = 999 + g.Weight(0)
	if _, err := Analyze(sc); err == nil {
		t.Fatal("expected validation error")
	}
}

// Property: invariants hold for every heuristic on random graphs:
// idle ≥ 0, paid comm ≤ total comm, stretch ≥ 1, work bound ≤ makespan.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := dag.New("q")
		for i := 0; i < n; i++ {
			g.AddNode(int64(1 + rng.Intn(60)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(100) < 20 {
					g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(50)))
				}
			}
		}
		for _, s := range heuristics.All() {
			sc, err := heuristics.Run(s, g)
			if err != nil {
				return false
			}
			r, err := Analyze(sc)
			if err != nil {
				return false
			}
			if r.IdleTime < 0 || r.CommPaid > r.CommTotal {
				return false
			}
			if r.CPStretch < 1-1e-9 {
				return false
			}
			if r.WorkLowerBound > r.Makespan {
				return false
			}
			if r.LoadMax < r.LoadMin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
