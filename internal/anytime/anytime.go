// Package anytime is the service's quality tier: an interruptible
// schedule optimizer that always has an answer and always knows how
// far that answer can still be from optimal.
//
// It seeds a genetic-algorithm population from every registered
// heuristic's schedule (the portfolio — the best heuristic incumbent
// is the floor, never regressed), evolves it with precedence-
// preserving order crossover and placement/order mutations decoded
// through the greedy sched builder, and interleaves an incremental
// opt.Probe branch-and-bound whose live lower bound certifies an
// optimality gap. Every result therefore carries best-so-far makespan
// plus a proven bound: gap == 0 means the schedule is proven optimal.
//
// Two budget modes: Options.Budget (wall clock, for serving — the
// default 50ms) and Options.Generations (an exact generation count,
// for reproducing byte-identical trajectories in tests). The random
// stream is seeded from the graph structure like the RAND control
// heuristic, so results are a deterministic function of (graph, seed,
// generations).
package anytime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/obs"
	"schedcomp/internal/opt"
	"schedcomp/internal/sched"
)

// DefaultBudget is the wall-clock budget when Options.Budget is zero.
const DefaultBudget = 50 * time.Millisecond

const (
	defaultPopulation  = 24
	defaultProbeStates = 4096
	eliteCount         = 2
)

// Options tunes one Optimize call. The zero value is a 50ms wall-clock
// run with default population and probe interleave.
type Options struct {
	// Budget is the wall-clock budget; DefaultBudget when zero.
	// Ignored when Generations > 0.
	Budget time.Duration
	// Generations, when positive, runs exactly this many generations
	// instead of a wall-clock budget: the deterministic mode.
	Generations int
	// Seed perturbs the structure-derived random stream.
	Seed int64
	// Population is the GA population size (default 24; never below
	// the number of seed heuristics).
	Population int
	// ProbeStates is the branch-and-bound step granted between
	// generations (default 4096).
	ProbeStates int64
	// MaxProbeTasks bounds the graphs the B&B probe attempts (default
	// opt's 14); larger graphs still run the GA, with the
	// communication-free critical path as the lower bound.
	MaxProbeTasks int
	// OnGeneration, if set, observes each completed generation: the
	// index, the best schedule so far, and the proven lower bound.
	// The schedule must be treated as read-only.
	OnGeneration func(gen int, best *sched.Schedule, lowerBound int64)
}

func (o *Options) fill() {
	if o.Budget <= 0 {
		o.Budget = DefaultBudget
	}
	if o.Population <= 0 {
		o.Population = defaultPopulation
	}
	if o.ProbeStates <= 0 {
		o.ProbeStates = defaultProbeStates
	}
}

// Result is an anytime answer: the best schedule found plus the proof
// state of how good it is.
type Result struct {
	// Schedule is the best schedule found; never worse than the best
	// seeding heuristic's.
	Schedule *sched.Schedule
	// LowerBound is a proven lower bound on the optimal makespan.
	LowerBound int64
	// Gap is Schedule.Makespan - LowerBound: the proven distance from
	// optimal. Zero means the schedule is proven optimal.
	Gap int64
	// Proven reports Gap == 0.
	Proven bool
	// Generations is the number of GA generations completed.
	Generations int
	// Improvements counts strict makespan improvements over the
	// initial heuristic incumbent (GA offspring or adopted B&B
	// witnesses).
	Improvements int
	// SeedName is the heuristic whose schedule seeded the incumbent.
	SeedName string
	// ProbeStates is the number of branch-and-bound states explored.
	ProbeStates int64
	// Elapsed is the wall-clock time the optimization took.
	Elapsed time.Duration
}

// ErrNoSeeds is returned when no registered heuristic produced a
// schedule to seed the population from.
var ErrNoSeeds = errors.New("anytime: no heuristic produced a seed schedule")

type metrics struct {
	runs         *obs.Counter
	cancelled    *obs.Counter
	proven       *obs.Counter
	generations  *obs.Counter
	improvements *obs.Counter
	gap          *obs.Histogram
	overshoot    *obs.Histogram

	seedBest sync.Map // heuristic name -> *obs.Counter
}

var (
	metOnce sync.Once
	met     *metrics
)

// gapBuckets bound the relative proven gap (gap / lower bound); the
// leading 0 bucket counts proven-optimal results exactly.
var gapBuckets = []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2}

// overshootBuckets bound relative budget overshoot ((elapsed-budget)/
// budget); the leading 0 bucket counts runs that respected the budget.
var overshootBuckets = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2}

func getMetrics() *metrics {
	metOnce.Do(func() {
		reg := obs.Default()
		met = &metrics{
			runs: reg.Counter("anytime_runs_total",
				"Anytime optimizations completed."),
			cancelled: reg.Counter("anytime_cancelled_total",
				"Anytime optimizations abandoned on context cancellation."),
			proven: reg.Counter("anytime_proven_total",
				"Anytime optimizations that proved their schedule optimal (gap 0)."),
			generations: reg.Counter("anytime_generations_total",
				"GA generations evolved across all anytime optimizations."),
			improvements: reg.Counter("anytime_improvements_total",
				"Strict makespan improvements over the heuristic incumbent."),
			gap: reg.Histogram("anytime_gap_ratio",
				"Proven optimality gap relative to the lower bound.", gapBuckets),
			overshoot: reg.Histogram("anytime_budget_overshoot_ratio",
				"Wall-clock overshoot relative to the requested budget.", overshootBuckets),
		}
	})
	return met
}

func (m *metrics) seedBestFor(name string) *obs.Counter {
	if c, ok := m.seedBest.Load(name); ok {
		return c.(*obs.Counter)
	}
	// The label set is the bounded heuristic registry.
	c := obs.Default().Counter("anytime_seed_best_total",
		"Anytime runs whose incumbent came from this heuristic.",
		obs.L("heuristic", name))
	actual, _ := m.seedBest.LoadOrStore(name, c)
	return actual.(*obs.Counter)
}

// optimizer is the per-run state of one Optimize call. It is single-
// goroutine by design: determinism comes from one random stream and a
// fixed visit order, never from scheduling luck.
type optimizer struct {
	g     *dag.Graph
	n     int
	rng   *rand.Rand
	procs int // mutation pool: max seed processor count + 1, in [1, n]

	pop    []chromosome // sorted by makespan, stable
	best   chromosome
	bestSc *sched.Schedule

	improvements int
	pos          []int // scratch for mutateOrder
}

func (o *optimizer) tournament() chromosome {
	i := o.rng.Intn(len(o.pop))
	j := o.rng.Intn(len(o.pop))
	if o.pop[j].mk < o.pop[i].mk {
		return o.pop[j]
	}
	return o.pop[i]
}

// offspring derives, mutates and evaluates one child chromosome.
func (o *optimizer) offspring() (chromosome, *sched.Schedule, error) {
	pa := o.tournament()
	var child chromosome
	if o.n >= 2 && o.rng.Intn(10) < 9 {
		pb := o.tournament()
		child = crossover(pa, pb, 1+o.rng.Intn(o.n-1))
	} else {
		child = pa.clone()
	}
	if o.rng.Intn(10) < 9 {
		mutateProc(child, o.rng, o.procs)
	}
	if o.n >= 2 && o.rng.Intn(2) == 0 {
		mutateOrder(o.g, child, o.rng, o.pos)
	}
	sc, err := child.build(o.g)
	if err != nil {
		return chromosome{}, nil, err
	}
	child.mk = sc.Makespan
	return child, sc, nil
}

// consider adopts sc as the new best if it strictly improves.
func (o *optimizer) consider(c chromosome, sc *sched.Schedule) {
	if sc.Makespan < o.best.mk {
		o.best = c
		o.bestSc = sc
		o.improvements++
	}
}

// generation evolves one generation: elitism plus tournament-selected,
// crossed-over, mutated offspring. Cancellation and the wall-clock
// deadline (zero = none, the fixed-generation mode) are polled per
// offspring so a mid-generation expiry stops within one evaluation,
// not one generation — under CPU contention those differ by an order
// of magnitude. A deadline stop reports timedOut without committing
// the partial population; incumbent improvements already considered
// stand, so the anytime contract (return the best found) holds.
func (o *optimizer) generation(ctx context.Context, deadline time.Time) (timedOut bool, err error) {
	size := len(o.pop)
	elite := eliteCount
	if elite > size {
		elite = size
	}
	next := make([]chromosome, 0, size)
	next = append(next, o.pop[:elite]...)
	for len(next) < size {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) { //lint:sorted budget expiry stops refinement; it never alters a fixed-generation result
			return true, nil
		}
		child, sc, err := o.offspring()
		if err != nil {
			return false, err
		}
		o.consider(child, sc)
		next = append(next, child)
	}
	sort.SliceStable(next, func(i, j int) bool { return next[i].mk < next[j].mk })
	o.pop = next
	return false, nil
}

// probeChunk bounds one uninterrupted branch-and-bound slice in budget
// mode; between chunks the deadline is re-polled, so a probe step can
// overshoot the budget by at most one chunk's wall-clock even when CPU
// contention stretches per-state cost.
const probeChunk = 256

// stepProbe advances the probe by up to states, in deadline-polled
// chunks when a deadline is set (budget mode) and in one deterministic
// slice when it is not (fixed-generation mode).
func (o *optimizer) stepProbe(probe *opt.Probe, states int64, deadline time.Time) {
	if deadline.IsZero() {
		probe.Step(states)
		return
	}
	for states > 0 && !probe.Done() {
		if !time.Now().Before(deadline) { //lint:sorted budget expiry stops refinement; it never alters a fixed-generation result
			return
		}
		chunk := int64(probeChunk)
		if states < chunk {
			chunk = states
		}
		probe.Step(chunk)
		states -= chunk
	}
}

// adoptWitness folds a branch-and-bound witness into the population
// and, if it improves, the incumbent.
func (o *optimizer) adoptWitness(sc *sched.Schedule) {
	c := fromSchedule(sc)
	o.consider(c, sc)
	o.pop[len(o.pop)-1] = c
	sort.SliceStable(o.pop, func(i, j int) bool { return o.pop[i].mk < o.pop[j].mk })
}

// Optimize runs the anytime portfolio on g until the budget expires,
// the configured generations complete, or optimality is proven —
// whichever comes first — and returns the best schedule with its
// certified gap. A cancelled context returns ctx's error and no
// result; budget expiry is not an error.
func Optimize(ctx context.Context, g *dag.Graph, opts Options) (*Result, error) {
	// Wall-clock dependence is the anytime contract: the budget decides
	// when refinement stops, never which result a fixed generation count
	// produces (RequireDeterministicAnytime pins the latter).
	start := time.Now() //lint:sorted
	opts.fill()
	m := getMetrics()
	n := g.NumNodes()
	if n == 0 {
		sc, err := sched.Build(g, sched.NewPlacement(0))
		if err != nil {
			return nil, err
		}
		m.runs.Inc()
		m.proven.Inc()
		m.gap.Observe(0)
		return &Result{Schedule: sc, Proven: true, Elapsed: time.Since(start)}, nil //lint:sorted Elapsed is reporting, not an input to the search
	}
	bl, err := g.BLevelsNoComm()
	if err != nil {
		return nil, err
	}
	var lb int64
	for _, l := range bl {
		if l > lb {
			lb = l
		}
	}

	// Portfolio seeding: one chromosome per registered heuristic, in
	// sorted name order. Cancellation aborts; other failures only
	// shrink the portfolio.
	names := heuristics.Names()
	type seedRun struct {
		name string
		sc   *sched.Schedule
	}
	var seeds []seedRun
	for _, name := range names {
		s, err := heuristics.New(name)
		if err != nil {
			continue
		}
		sc, err := heuristics.RunContext(ctx, s, g)
		if err != nil {
			if heuristics.IsCancellation(err) {
				m.cancelled.Inc()
				return nil, err
			}
			continue
		}
		seeds = append(seeds, seedRun{name, sc})
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("%w (tried %d)", ErrNoSeeds, len(names))
	}

	o := &optimizer{
		g:   g,
		n:   n,
		rng: rand.New(rand.NewSource(structSeed(g) ^ opts.Seed)),
		pos: make([]int, n),
	}
	seedName := ""
	for _, s := range seeds {
		c := fromSchedule(s.sc)
		if o.bestSc == nil || c.mk < o.best.mk {
			o.best, o.bestSc, seedName = c, s.sc, s.name
		}
		if s.sc.NumProcs >= o.procs {
			o.procs = s.sc.NumProcs + 1
		}
		o.pop = append(o.pop, c)
	}
	if o.procs > n {
		o.procs = n
	}
	if o.procs < 1 {
		o.procs = 1
	}
	m.seedBestFor(seedName).Inc()

	// deadline is zero in fixed-generation mode: no wall-clock polls,
	// so the deterministic twin sees identical control flow every run.
	var deadline time.Time
	if opts.Generations == 0 {
		deadline = start.Add(opts.Budget)
	}

	// Fill the population to size with mutated copies of the seeds. A
	// budget already exhausted by seeding stops here — the population
	// holds every seed, which is all the anytime floor requires.
	for i := 0; len(o.pop) < opts.Population; i++ {
		if err := ctx.Err(); err != nil {
			m.cancelled.Inc()
			return nil, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) { //lint:sorted budget expiry stops refinement; it never alters a fixed-generation result
			break
		}
		c := o.pop[i%len(seeds)].clone()
		mutateProc(c, o.rng, o.procs)
		if n >= 2 && o.rng.Intn(2) == 0 {
			mutateOrder(g, c, o.rng, o.pos)
		}
		sc, err := c.build(g)
		if err != nil {
			return nil, err
		}
		c.mk = sc.Makespan
		o.consider(c, sc)
		o.pop = append(o.pop, c)
	}
	sort.SliceStable(o.pop, func(i, j int) bool { return o.pop[i].mk < o.pop[j].mk })

	// Branch-and-bound probe, bounded-size graphs only. The GA best is
	// an externally witnessed upper bound, so Tighten lets the probe
	// prune from the start and prove optimality without re-finding the
	// incumbent.
	var probe *opt.Probe
	maxProbe := opts.MaxProbeTasks
	if maxProbe == 0 {
		maxProbe = 14
	}
	if n <= maxProbe {
		if pr, err := opt.NewProbe(g, opt.Options{MaxTasks: maxProbe}); err == nil {
			probe = pr
			probe.Tighten(o.best.mk)
		}
	}

	gens := 0
	for {
		if err := ctx.Err(); err != nil {
			m.cancelled.Inc()
			return nil, err
		}
		if o.best.mk-lb == 0 {
			break
		}
		if opts.Generations > 0 {
			if gens >= opts.Generations {
				break
			}
		} else if !time.Now().Before(deadline) { //lint:sorted budget expiry stops refinement; it never alters a fixed-generation result
			break
		}
		timedOut, err := o.generation(ctx, deadline)
		if err != nil {
			if heuristics.IsCancellation(err) {
				m.cancelled.Inc()
			}
			return nil, err
		}
		if timedOut {
			break
		}
		if probe != nil && !probe.Done() {
			probe.Tighten(o.best.mk)
			o.stepProbe(probe, opts.ProbeStates, deadline)
			if mk, ok := probe.Incumbent(); ok && mk < o.best.mk {
				sc, err := sched.Build(g, probe.IncumbentPlacement())
				if err != nil {
					return nil, err
				}
				o.adoptWitness(sc)
			}
			if l := probe.LowerBound(); l > lb {
				lb = l
			}
		}
		gens++
		if opts.OnGeneration != nil {
			opts.OnGeneration(gens-1, o.bestSc, lb)
		}
	}

	res := &Result{
		Schedule:     o.bestSc,
		LowerBound:   lb,
		Gap:          o.best.mk - lb,
		Generations:  gens,
		Improvements: o.improvements,
		SeedName:     seedName,
		Elapsed:      time.Since(start), //lint:sorted Elapsed is reporting, not an input to the search
	}
	res.Proven = res.Gap == 0
	if probe != nil {
		res.ProbeStates = probe.Explored()
	}
	m.runs.Inc()
	m.generations.Add(uint64(gens))
	m.improvements.Add(uint64(o.improvements))
	if res.Proven {
		m.proven.Inc()
	}
	if lb > 0 {
		m.gap.Observe(float64(res.Gap) / float64(lb))
	}
	if opts.Generations == 0 {
		over := time.Since(start) - opts.Budget //lint:sorted overshoot is an instrument, not an input to the search
		if over < 0 {
			over = 0
		}
		m.overshoot.Observe(float64(over) / float64(opts.Budget))
	}
	return res, nil
}
