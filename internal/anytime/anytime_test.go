package anytime_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"schedcomp/internal/anytime"
	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/opt"
	"schedcomp/internal/sched"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dcp"
	_ "schedcomp/internal/heuristics/dls"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/ez"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
	_ "schedcomp/internal/heuristics/random"
)

// smallCorpus is a stratified set of graphs small enough for exact
// branch and bound: random DAGs of every size 2..12 across densities,
// plus structured generator graphs from the paper's bands.
func smallCorpus(t *testing.T) []*dag.Graph {
	t.Helper()
	var graphs []*dag.Graph
	for n := 2; n <= 12; n++ {
		for d := 0; d < 2; d++ {
			rng := rand.New(rand.NewSource(int64(1000*n + d)))
			g := dag.New("small")
			for i := 0; i < n; i++ {
				g.AddNode(int64(1 + rng.Intn(40)))
			}
			density := 20 + 30*d
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Intn(100) < density {
						g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(60)))
					}
				}
			}
			graphs = append(graphs, g)
		}
	}
	for seed := int64(0); seed < 4; seed++ {
		g := gen.MustGenerate(gen.Params{
			Nodes: 10, Anchor: 2, WMin: 10, WMax: 80,
			Gran: gen.Band{Lo: 0.5, Hi: 2.5},
		}, 700+seed)
		if g.NumNodes() <= 12 {
			graphs = append(graphs, g)
		}
	}
	return graphs
}

// bestHeuristicMakespan is the portfolio floor: the minimum makespan
// over every registered heuristic.
func bestHeuristicMakespan(t *testing.T, g *dag.Graph) int64 {
	t.Helper()
	best := int64(math.MaxInt64)
	for _, name := range heuristics.Names() {
		s, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := heuristics.Run(s, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Makespan < best {
			best = sc.Makespan
		}
	}
	return best
}

// The core property suite against exact optima: every intermediate
// schedule validates, best-so-far is monotone non-increasing, the
// lower bound is monotone non-decreasing and never exceeds the true
// optimum, and gap==0 whenever branch and bound had the states to
// prove optimality.
func TestPropertySuiteAgainstExact(t *testing.T) {
	const (
		generations = 60
		probeStates = 8192
	)
	for gi, g := range smallCorpus(t) {
		exact, exactErr := opt.Solve(g, opt.Options{MaxStates: 2_000_000})
		exactOK := exactErr == nil
		if !exactOK && !errors.Is(exactErr, opt.ErrBudget) {
			t.Fatalf("graph %d: %v", gi, exactErr)
		}

		prevBest := int64(math.MaxInt64)
		prevLB := int64(0)
		res, err := anytime.Optimize(context.Background(), g, anytime.Options{
			Generations: generations,
			ProbeStates: probeStates,
			OnGeneration: func(gen int, best *sched.Schedule, lb int64) {
				if err := best.Validate(); err != nil {
					t.Fatalf("graph %d gen %d: intermediate schedule invalid: %v", gi, gen, err)
				}
				if best.Makespan > prevBest {
					t.Fatalf("graph %d gen %d: best regressed %d -> %d", gi, gen, prevBest, best.Makespan)
				}
				if lb < prevLB {
					t.Fatalf("graph %d gen %d: lower bound regressed %d -> %d", gi, gen, prevLB, lb)
				}
				if lb > best.Makespan {
					t.Fatalf("graph %d gen %d: lower bound %d above best %d", gi, gen, lb, best.Makespan)
				}
				if exactOK && lb > exact.Makespan {
					t.Fatalf("graph %d gen %d: lower bound %d exceeds optimum %d", gi, gen, lb, exact.Makespan)
				}
				prevBest, prevLB = best.Makespan, lb
			},
		})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("graph %d: final schedule invalid: %v", gi, err)
		}
		if res.Gap != res.Schedule.Makespan-res.LowerBound {
			t.Errorf("graph %d: gap %d != makespan %d - lower bound %d",
				gi, res.Gap, res.Schedule.Makespan, res.LowerBound)
		}
		if res.Gap < 0 {
			t.Errorf("graph %d: negative gap %d", gi, res.Gap)
		}
		if res.Proven != (res.Gap == 0) {
			t.Errorf("graph %d: Proven=%v with gap %d", gi, res.Proven, res.Gap)
		}
		if floor := bestHeuristicMakespan(t, g); res.Schedule.Makespan > floor {
			t.Errorf("graph %d: anytime makespan %d worse than best heuristic %d",
				gi, res.Schedule.Makespan, floor)
		}
		if exactOK {
			if res.Schedule.Makespan < exact.Makespan {
				t.Errorf("graph %d: anytime makespan %d beats proven optimum %d — unsound",
					gi, res.Schedule.Makespan, exact.Makespan)
			}
			if res.LowerBound > exact.Makespan {
				t.Errorf("graph %d: lower bound %d exceeds optimum %d",
					gi, res.LowerBound, exact.Makespan)
			}
			if res.Proven && res.Schedule.Makespan != exact.Makespan {
				t.Errorf("graph %d: claims proven at %d but optimum is %d",
					gi, res.Schedule.Makespan, exact.Makespan)
			}
			// With a state grant far above what the exact solve needed,
			// the interleaved probe (pruning from the GA incumbent, at
			// least as hard as Solve prunes) must have completed.
			if exact.Explored <= 100_000 && !res.Proven {
				t.Errorf("graph %d: B&B had the budget (exact explored %d, granted %d) but gap %d not proven",
					gi, exact.Explored, int64(generations)*probeStates, res.Gap)
			}
		}
	}
}

// Wall-clock budget mode: whatever the clock does, the portfolio floor
// and validity guarantees are structural, and the run must terminate
// reasonably close to its budget.
func TestBudgetModeRespectsFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		n := 20 + rng.Intn(20)
		g := dag.New("budget")
		for i := 0; i < n; i++ {
			g.AddNode(int64(1 + rng.Intn(80)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(100) < 15 {
					g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(50)))
				}
			}
		}
		res, err := anytime.Optimize(context.Background(), g, anytime.Options{
			Budget: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatal(err)
		}
		if floor := bestHeuristicMakespan(t, g); res.Schedule.Makespan > floor {
			t.Errorf("trial %d: makespan %d worse than portfolio floor %d",
				trial, res.Schedule.Makespan, floor)
		}
		if res.LowerBound <= 0 {
			t.Errorf("trial %d: no lower bound reported", trial)
		}
		if res.Gap < 0 {
			t.Errorf("trial %d: negative gap %d", trial, res.Gap)
		}
	}
}

// Degenerate inputs.
func TestDegenerateGraphs(t *testing.T) {
	res, err := anytime.Optimize(context.Background(), dag.New("empty"), anytime.Options{Generations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || res.Schedule.Makespan != 0 {
		t.Fatalf("empty graph: %+v", res)
	}

	g := dag.New("one")
	g.AddNode(42)
	res, err = anytime.Optimize(context.Background(), g, anytime.Options{Generations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan != 42 || !res.Proven || res.LowerBound != 42 {
		t.Fatalf("single node: %+v", res)
	}

	cyc := dag.New("cycle")
	a := cyc.AddNode(1)
	b := cyc.AddNode(1)
	cyc.MustAddEdge(a, b, 1)
	if err := cyc.AddEdge(b, a, 1); err == nil {
		// Only exercise the error path if the dag layer even allows
		// constructing a cycle.
		if _, err := anytime.Optimize(context.Background(), cyc, anytime.Options{Generations: 1}); err == nil {
			t.Error("cyclic graph did not error")
		}
	}
}
