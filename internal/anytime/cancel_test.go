package anytime_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"schedcomp/internal/anytime"
	"schedcomp/internal/dag"
)

// trippingContext reports cancellation after a fixed number of Err
// polls, so the test cancels the optimizer deterministically in the
// middle of a generation (wall-clock cancellation would be racy).
type trippingContext struct {
	context.Context
	mu    sync.Mutex
	calls int
	fuse  int
}

func (c *trippingContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.fuse {
		return context.Canceled
	}
	return nil
}

func (c *trippingContext) polled() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// cancelGraph is a 31-task expensive-communication fork: the
// communication-free lower bound (110) is unreachable by any real
// schedule, so the optimizer can never prove gap 0 and terminate early
// — only the tripping context (or the generation cap) can end the run.
// It is also too large for the branch-and-bound probe.
func cancelGraph() *dag.Graph {
	g := dag.New("cancel")
	root := g.AddNode(10)
	for i := 0; i < 30; i++ {
		v := g.AddNode(100)
		g.MustAddEdge(root, v, 500)
	}
	return g
}

// A context that expires mid-generation must abandon the run with the
// context's error and no (stale) result, and must not leak goroutines
// — the optimizer is single-goroutine by design, and this pins it.
func TestMidGenerationCancellation(t *testing.T) {
	g := cancelGraph()
	baseline := runtime.NumGoroutine()
	// Fuses chosen to trip at different phases: during heuristic
	// seeding, during the population fill, and well into the
	// generation loop (the offspring loop polls once per child).
	for _, fuse := range []int{1, 5, 40, 200, 1000} {
		ctx := &trippingContext{Context: context.Background(), fuse: fuse}
		res, err := anytime.Optimize(ctx, g, anytime.Options{
			Generations: 10_000, // would run ~forever without the trip
			Population:  16,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fuse %d: err = %v, want context.Canceled", fuse, err)
		}
		if res != nil {
			t.Fatalf("fuse %d: got stale result %+v after cancellation", fuse, res)
		}
		if ctx.polled() <= fuse {
			t.Fatalf("fuse %d: context polled only %d times", fuse, ctx.polled())
		}
	}
	// Give any stray goroutine a moment to show itself, then require
	// the count back at (or below) the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A pre-cancelled context must fail fast without touching the graph.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := anytime.Optimize(ctx, cancelGraph(), anytime.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("result %+v from pre-cancelled context", res)
	}
}
