package anytime_test

import (
	"testing"

	"schedcomp/internal/heuristics/schedtest"
)

// The determinism twin: fixed seed + fixed budget-in-generations must
// yield byte-identical trajectories, including under GOMAXPROCS(1).
func TestAnytimeDeterministic(t *testing.T) {
	schedtest.RequireDeterministicAnytime(t)
}
