package anytime

import (
	"math/rand"

	"schedcomp/internal/dag"
	"schedcomp/internal/pq"
	"schedcomp/internal/sched"
)

// chromosome is one GA individual: a topologically consistent priority
// list over all tasks plus a processor choice per task. Decoding
// assigns tasks to processors in list order and re-times greedily with
// the sched builder, so every chromosome maps to a valid schedule.
type chromosome struct {
	order []dag.NodeID // priority list; always a topological order
	proc  []int        // proc[v] = processor for node v
	mk    int64        // makespan of the decoded schedule (set by eval)
}

func (c chromosome) clone() chromosome {
	return chromosome{
		order: append([]dag.NodeID(nil), c.order...),
		proc:  append([]int(nil), c.proc...),
		mk:    c.mk,
	}
}

// build decodes the chromosome into a timed schedule via the greedy
// re-timing builder.
func (c chromosome) build(g *dag.Graph) (*sched.Schedule, error) {
	pl := sched.NewPlacement(g.NumNodes())
	for _, v := range c.order {
		pl.Assign(v, c.proc[v])
	}
	return sched.Build(g, pl)
}

// fromSchedule extracts a chromosome from an existing schedule: the
// priority list is a Kahn traversal popping the ready task with the
// earliest start time (ties by node ID), which is topologically
// consistent by construction even when start-time order alone is not
// (zero-weight tasks can share start times with their successors).
// Decoding it reproduces the schedule's placement, so the chromosome's
// makespan equals the schedule's.
func fromSchedule(sc *sched.Schedule) chromosome {
	g := sc.Graph
	n := g.NumNodes()
	c := chromosome{order: make([]dag.NodeID, 0, n), proc: make([]int, n), mk: sc.Makespan}
	indeg := make([]int, n)
	type item struct {
		start int64
		v     dag.NodeID
	}
	h := pq.New(func(a, b item) bool {
		if a.start != b.start {
			return a.start < b.start
		}
		return a.v < b.v
	})
	for v := 0; v < n; v++ {
		c.proc[v] = sc.ByNode[v].Proc
		indeg[v] = g.InDegree(dag.NodeID(v))
		if indeg[v] == 0 {
			h.Push(item{sc.ByNode[v].Start, dag.NodeID(v)})
		}
	}
	for !h.Empty() {
		it := h.Pop()
		c.order = append(c.order, it.v)
		for _, e := range g.Succs(it.v) {
			if indeg[e.To]--; indeg[e.To] == 0 {
				h.Push(item{sc.ByNode[e.To].Start, e.To})
			}
		}
	}
	return c
}

// crossover is precedence-preserving order crossover: the child takes
// parent a's first cut tasks (with a's placements), then the remaining
// tasks in parent b's relative order (with b's placements). A prefix
// of a topological order is downward closed, and b's order restricted
// to the complement keeps every predecessor before its successors, so
// the child is always topologically consistent.
func crossover(a, b chromosome, cut int) chromosome {
	n := len(a.order)
	child := chromosome{order: make([]dag.NodeID, 0, n), proc: make([]int, n)}
	taken := make([]bool, n)
	for _, v := range a.order[:cut] {
		child.order = append(child.order, v)
		child.proc[v] = a.proc[v]
		taken[v] = true
	}
	for _, v := range b.order {
		if !taken[v] {
			child.order = append(child.order, v)
			child.proc[v] = b.proc[v]
		}
	}
	return child
}

// mutateOrder moves one task to a random position within its feasible
// window — strictly after its last-positioned predecessor and before
// its first-positioned successor — so the list stays topologically
// consistent. pos is caller-provided scratch of length n.
func mutateOrder(g *dag.Graph, c chromosome, rng *rand.Rand, pos []int) {
	n := len(c.order)
	if n < 2 {
		return
	}
	i := rng.Intn(n)
	v := c.order[i]
	for idx, u := range c.order {
		pos[u] = idx
	}
	lo, hi := 0, n-1
	for _, e := range g.Preds(v) {
		if p := pos[e.To] + 1; p > lo {
			lo = p
		}
	}
	for _, e := range g.Succs(v) {
		if s := pos[e.To] - 1; s < hi {
			hi = s
		}
	}
	if lo > hi {
		return
	}
	j := lo + rng.Intn(hi-lo+1)
	if j == i {
		return
	}
	if j < i {
		copy(c.order[j+1:i+1], c.order[j:i])
	} else {
		copy(c.order[i:j], c.order[i+1:j+1])
	}
	c.order[j] = v
}

// mutateProc reassigns one task to a random processor in [0, procs).
func mutateProc(c chromosome, rng *rand.Rand, procs int) {
	if len(c.proc) == 0 || procs < 1 {
		return
	}
	c.proc[rng.Intn(len(c.proc))] = rng.Intn(procs)
}

// structSeed hashes the graph structure into an RNG seed (FNV-1a over
// node count, edges and weights — the RAND scheduler's recipe), so the
// anytime stream is a deterministic function of the input graph.
func structSeed(g *dag.Graph) int64 {
	h := uint64(1469598103934665603) // FNV offset
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(g.NumNodes()))
	for _, e := range g.Edges() {
		mix(uint64(e.From)<<32 | uint64(uint32(e.To)))
		mix(uint64(e.Weight))
	}
	for v := 0; v < g.NumNodes(); v++ {
		mix(uint64(g.Weight(dag.NodeID(v))))
	}
	return int64(h >> 1)
}
