package anytime

import (
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// randomTopoDAG builds a random DAG whose node IDs are already a
// topological order (edges only go from smaller to larger IDs).
func randomTopoDAG(rng *rand.Rand, n int, density int) *dag.Graph {
	g := dag.New("ga-rand")
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + rng.Intn(50)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(100) < density {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(40)))
			}
		}
	}
	return g
}

// requireTopoConsistent fails unless order is a permutation of g's
// nodes with every edge pointing forward.
func requireTopoConsistent(t *testing.T, g *dag.Graph, order []dag.NodeID) {
	t.Helper()
	n := g.NumNodes()
	if len(order) != n {
		t.Fatalf("order has %d entries, graph has %d nodes", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[v] = true
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violated: positions %d >= %d in %v",
				e.From, e.To, pos[e.From], pos[e.To], order)
		}
	}
}

// randomChromosome derives a feasible individual: identity order
// (topological by construction) jittered by feasible-window moves,
// with random placements.
func randomChromosome(g *dag.Graph, rng *rand.Rand, pos []int) chromosome {
	n := g.NumNodes()
	c := chromosome{order: make([]dag.NodeID, n), proc: make([]int, n)}
	for i := 0; i < n; i++ {
		c.order[i] = dag.NodeID(i)
		c.proc[i] = rng.Intn(1 + n/2)
	}
	for k := 0; k < 3*n; k++ {
		mutateOrder(g, c, rng, pos)
	}
	return c
}

// Offspring of crossover and both mutations must always be
// topologically consistent — the invariant the whole GA rests on.
func TestOffspringAlwaysTopoConsistent(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(24)
		g := randomTopoDAG(rng, n, 35)
		pos := make([]int, n)
		a := randomChromosome(g, rng, pos)
		b := randomChromosome(g, rng, pos)
		requireTopoConsistent(t, g, a.order)
		requireTopoConsistent(t, g, b.order)
		for trial := 0; trial < 40; trial++ {
			child := crossover(a, b, 1+rng.Intn(n-1))
			requireTopoConsistent(t, g, child.order)
			mutateOrder(g, child, rng, pos)
			requireTopoConsistent(t, g, child.order)
			mutateProc(child, rng, n)
			// A mutated child must still decode to a valid schedule.
			sc, err := child.build(g)
			if err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			// Feed offspring back in as parents to compound drift.
			a, b = b, child
		}
	}
}

// fromSchedule must produce a topologically consistent priority list
// even when many tasks share identical start times (zero-cost edges,
// siblings starting together on different processors), where sort
// order alone would be ambiguous.
func TestFromScheduleStartTimeTies(t *testing.T) {
	g := dag.New("ties")
	a := g.AddNode(1)
	b := g.AddNode(1)
	c := g.AddNode(5)
	d := g.AddNode(1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(b, d, 0)
	// c and d both become ready the instant b finishes; on separate
	// processors with zero-cost edges their starts tie exactly.
	pl := sched.NewPlacement(4)
	pl.Assign(a, 0)
	pl.Assign(b, 0)
	pl.Assign(c, 0)
	pl.Assign(d, 1)
	sc, err := sched.Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	chr := fromSchedule(sc)
	requireTopoConsistent(t, g, chr.order)
	if chr.mk != sc.Makespan {
		t.Errorf("chromosome makespan %d != schedule %d", chr.mk, sc.Makespan)
	}
	// Round trip: decoding must reproduce the makespan.
	sc2, err := chr.build(g)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Makespan != sc.Makespan {
		t.Errorf("round-trip makespan %d != %d", sc2.Makespan, sc.Makespan)
	}
}

// fromSchedule round-trips arbitrary schedules: the decoded chromosome
// reproduces the source placement's makespan exactly, which is what
// makes the heuristic portfolio a true floor for the GA.
func TestFromScheduleRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		n := 1 + rng.Intn(20)
		g := randomTopoDAG(rng, n, 30)
		pl := sched.NewPlacement(n)
		procs := 1 + rng.Intn(4)
		for v := 0; v < n; v++ {
			pl.Assign(dag.NodeID(v), rng.Intn(procs))
		}
		sc, err := sched.Build(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		chr := fromSchedule(sc)
		requireTopoConsistent(t, g, chr.order)
		sc2, err := chr.build(g)
		if err != nil {
			t.Fatal(err)
		}
		if sc2.Makespan != sc.Makespan {
			t.Errorf("seed %d: round-trip makespan %d != %d", seed, sc2.Makespan, sc.Makespan)
		}
	}
}

func TestStructSeedSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomTopoDAG(rng, 12, 30)
	h := g.Clone()
	if structSeed(g) != structSeed(h) {
		t.Fatal("clone changed the structure seed")
	}
	h.AddNode(7)
	if structSeed(g) == structSeed(h) {
		t.Error("adding a node did not change the structure seed")
	}
}
