// Package arena provides pooled, graph-sized scratch memory for the
// scheduling hot paths.
//
// The heuristics, the timing builder, the clan parser and the graph
// generator all need short-lived working arrays sized to the graph —
// per-node levels, cluster indices, visited flags, bit sets. Allocating
// them per call is what the perflint pack keeps flagging: the arrays
// escape, the garbage collector churns, and the inner loops stall on
// cold memory. A Scratch is a bump allocator over a handful of typed
// backing slices, recycled through a sync.Pool: Get one at the top of a
// call, carve as many zeroed slices out of it as needed, and Release it
// on the way out. Steady state performs no heap allocation at all.
//
// Contract:
//
//   - A Scratch is single-goroutine; share slices, not the Scratch.
//   - Every slice carved from a Scratch is zeroed and capacity-clipped
//     (appending beyond its length reallocates instead of stomping a
//     neighbour).
//   - All slices die at Release: they must not be stored anywhere that
//     outlives the call. Results that escape must be allocated normally.
package arena

import (
	"sync"

	"schedcomp/internal/bitset"
	"schedcomp/internal/dag"
)

// chunk is one typed bump region. take hands out zeroed, self-capped
// sub-slices and grows the backing geometrically when exhausted; old
// backings stay alive (and valid) through the slices already handed
// out, and are garbage once those die at Release.
type chunk[T any] struct {
	buf []T
	off int
}

func (c *chunk[T]) take(n int) []T {
	if n < 0 {
		panic("arena: negative scratch length")
	}
	if len(c.buf)-c.off < n {
		size := 2 * len(c.buf)
		if size < n {
			size = n
		}
		if size < 64 {
			size = 64
		}
		c.buf = make([]T, size)
		c.off = 0
	}
	s := c.buf[c.off : c.off+n : c.off+n]
	c.off += n
	clear(s)
	return s
}

func (c *chunk[T]) reset() { c.off = 0 }

// Scratch is a pooled bump allocator for the scratch types the hot
// paths use. The zero value is usable, but callers should obtain one
// with Get so backings are recycled.
type Scratch struct {
	i64   chunk[int64]
	i32   chunk[int32]
	ints  chunk[int]
	bools chunk[bool]
	words chunk[uint64]
	ids   chunk[dag.NodeID]
	sets  chunk[bitset.Set]
}

var pool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// Get returns a Scratch from the pool.
func Get() *Scratch { return pool.Get().(*Scratch) }

// Release resets the scratch and returns it to the pool. Every slice
// carved from it becomes invalid.
func (s *Scratch) Release() {
	s.i64.reset()
	s.i32.reset()
	s.ints.reset()
	s.bools.reset()
	s.words.reset()
	s.ids.reset()
	s.sets.reset()
	pool.Put(s)
}

// Int64s returns a zeroed []int64 of length n.
func (s *Scratch) Int64s(n int) []int64 { return s.i64.take(n) }

// Int32s returns a zeroed []int32 of length n.
func (s *Scratch) Int32s(n int) []int32 { return s.i32.take(n) }

// Ints returns a zeroed []int of length n.
func (s *Scratch) Ints(n int) []int { return s.ints.take(n) }

// Bools returns a zeroed []bool of length n.
func (s *Scratch) Bools(n int) []bool { return s.bools.take(n) }

// Words returns a zeroed []uint64 of length n.
func (s *Scratch) Words(n int) []uint64 { return s.words.take(n) }

// NodeIDs returns a zeroed []dag.NodeID of length n.
func (s *Scratch) NodeIDs(n int) []dag.NodeID { return s.ids.take(n) }

// Bitset returns an empty bit set of capacity n backed by scratch
// words. The set is returned by value (no allocation); like every
// other scratch slice it dies at Release.
func (s *Scratch) Bitset(n int) bitset.Set {
	return bitset.Wrap(n, s.Words(bitset.WordsFor(n)))
}

// Bitsets returns count empty bit sets of capacity n each, every one
// backed by its own scratch words.
func (s *Scratch) Bitsets(count, n int) []bitset.Set {
	out := s.sets.take(count)
	for i := range out {
		out[i] = bitset.Wrap(n, s.Words(bitset.WordsFor(n)))
	}
	return out
}
