package arena

import (
	"testing"

	"schedcomp/internal/bitset"
)

func TestSlicesAreZeroedAndDisjoint(t *testing.T) {
	s := Get()
	defer s.Release()

	a := s.Int64s(10)
	b := s.Int64s(10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		a[i] = int64(i + 1)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %d, want 0 (scratch not zeroed or not disjoint)", i, v)
		}
	}
	// Appending beyond a carved slice must not stomp its neighbour.
	a = append(a[:10], 99)
	_ = a
	if b[0] != 0 {
		t.Fatalf("append to earlier slice stomped later slice: b[0] = %d", b[0])
	}
}

func TestReuseZeroesDirtyBacking(t *testing.T) {
	s := Get()
	x := s.Ints(64)
	for i := range x {
		x[i] = -1
	}
	s.Release()

	s2 := Get()
	defer s2.Release()
	y := s2.Ints(64)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("reused scratch not zeroed at %d: %d", i, v)
		}
	}
}

func TestGrowthKeepsEarlierSlicesValid(t *testing.T) {
	s := Get()
	defer s.Release()
	first := s.Int32s(8)
	first[0] = 42
	// Force the chunk to grow several times.
	for i := 0; i < 10; i++ {
		_ = s.Int32s(1 << 10)
	}
	if first[0] != 42 {
		t.Fatalf("earlier slice invalidated by growth: %d", first[0])
	}
}

func TestBitset(t *testing.T) {
	s := Get()
	defer s.Release()
	bs := s.Bitset(130)
	if bs.Len() != 130 {
		t.Fatalf("capacity %d, want 130", bs.Len())
	}
	if got := bs.Count(); got != 0 {
		t.Fatalf("fresh scratch bitset has %d elements", got)
	}
	bs.Add(0)
	bs.Add(129)
	if !bs.Contains(0) || !bs.Contains(129) || bs.Count() != 2 {
		t.Fatalf("bitset ops broken: %v", bs.String())
	}
	other := bitset.New(130)
	other.Add(64)
	bs.Union(other)
	if !bs.Contains(64) {
		t.Fatal("union with heap-allocated set failed")
	}
}

func TestBitsets(t *testing.T) {
	s := Get()
	defer s.Release()
	sets := s.Bitsets(5, 70)
	if len(sets) != 5 {
		t.Fatalf("got %d sets, want 5", len(sets))
	}
	for i := range sets {
		if sets[i].Len() != 70 || sets[i].Count() != 0 {
			t.Fatalf("set %d: len %d count %d, want 70/0", i, sets[i].Len(), sets[i].Count())
		}
	}
	// Sets must be disjoint: writing one leaves the others empty.
	sets[2].Add(69)
	for i := range sets {
		if i != 2 && sets[i].Count() != 0 {
			t.Fatalf("set %d dirtied by a write to set 2", i)
		}
	}
	if !sets[2].Contains(69) {
		t.Fatal("write to set 2 lost")
	}
}

func TestAllocFreeSteadyState(t *testing.T) {
	// Warm the pool so backings exist.
	s := Get()
	_ = s.Int64s(256)
	_ = s.Bools(256)
	_ = s.NodeIDs(256)
	s.Release()

	allocs := testing.AllocsPerRun(100, func() {
		sc := Get()
		_ = sc.Int64s(256)
		_ = sc.Bools(256)
		_ = sc.NodeIDs(256)
		sc.Release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state Get/carve/Release allocates %.1f times per run, want 0", allocs)
	}
}
