// Package bitset provides a dense, fixed-capacity bit set used for
// reachability (transitive closure) computations on DAGs.
//
// The zero value of Set is an empty set of capacity zero; use New to
// allocate a set able to hold n elements. All operations that combine
// two sets require them to have the same capacity.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set over the universe [0, n).
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for n elements.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, WordsFor(n))}
}

// WordsFor returns the number of backing words a set of capacity n
// needs, for callers that provide their own storage via Wrap.
func WordsFor(n int) int {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return (n + wordBits - 1) / wordBits
}

// Wrap returns a set of capacity n backed by the caller's word slice,
// whose length must be exactly WordsFor(n). The set is returned by
// value so that scratch-backed sets (see internal/arena) cost no
// allocation; the contents of words are kept, so callers wanting an
// empty set must pass zeroed storage. The set aliases words: it is
// only valid as long as the backing storage is.
func Wrap(n int, words []uint64) Set {
	if len(words) != WordsFor(n) {
		panic(fmt.Sprintf("bitset: Wrap needs %d words for capacity %d, got %d", WordsFor(n), n, len(words)))
	}
	return Set{n: n, words: words}
}

// Len returns the capacity (universe size) of the set.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Union sets s = s ∪ t and reports whether s changed.
func (s *Set) Union(t *Set) bool {
	s.compat(t)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect sets s = s ∩ t.
func (s *Set) Intersect(t *Set) {
	s.compat(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Subtract sets s = s \ t.
func (s *Set) Subtract(t *Set) {
	s.compat(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	s.compat(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// CopyFrom overwrites s with the contents of t.
func (s *Set) CopyFrom(t *Set) {
	s.compat(t)
	copy(s.words, t.words)
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes every element.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls f for each element of the set in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as {a, b, c}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) compat(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}
