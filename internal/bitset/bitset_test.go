package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	for i := 0; i < 130; i++ {
		if s.Contains(i) {
			t.Fatalf("empty set contains %d", i)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(100)
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(99)
	for _, i := range []int{0, 63, 64, 99} {
		if !s.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Remove(63)
	if s.Contains(63) {
		t.Error("63 still present after Remove")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	// Removing an absent element is a no-op.
	s.Remove(63)
	if s.Count() != 3 {
		t.Fatalf("Count changed on redundant Remove")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Contains(10) },
		func() { s.Remove(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range index")
				}
			}()
			f()
		}()
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative capacity")
		}
	}()
	New(-1)
}

func TestUnionIntersectSubtract(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Add(1)
	a.Add(65)
	b.Add(2)
	b.Add(65)

	u := a.Clone()
	if changed := u.Union(b); !changed {
		t.Error("Union should report change")
	}
	if u.Count() != 3 || !u.Contains(1) || !u.Contains(2) || !u.Contains(65) {
		t.Errorf("union wrong: %v", u)
	}
	if changed := u.Union(b); changed {
		t.Error("second Union should be a no-op")
	}

	i := a.Clone()
	i.Intersect(b)
	if i.Count() != 1 || !i.Contains(65) {
		t.Errorf("intersect wrong: %v", i)
	}

	d := a.Clone()
	d.Subtract(b)
	if d.Count() != 1 || !d.Contains(1) {
		t.Errorf("subtract wrong: %v", d)
	}
}

func TestIntersectsEqual(t *testing.T) {
	a, b := New(10), New(10)
	a.Add(3)
	b.Add(4)
	if a.Intersects(b) {
		t.Error("disjoint sets reported as intersecting")
	}
	b.Add(3)
	if !a.Intersects(b) {
		t.Error("intersecting sets reported disjoint")
	}
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal to original")
	}
	if a.Equal(New(11)) {
		t.Error("sets of different capacity reported equal")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on capacity mismatch")
		}
	}()
	New(10).Union(New(11))
}

func TestForEachElemsOrder(t *testing.T) {
	s := New(200)
	want := []int{0, 5, 63, 64, 127, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestClearAndString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(9)
	if got := s.String(); got != "{1, 9}" {
		t.Errorf("String = %q, want {1, 9}", got)
	}
	s.Clear()
	if s.Count() != 0 {
		t.Error("Clear left elements behind")
	}
	if got := s.String(); got != "{}" {
		t.Errorf("String of empty = %q", got)
	}
}

// Property: a Set agrees with a map[int]bool model under a random
// operation sequence.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		s := New(n)
		model := map[int]bool{}
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				delete(model, i)
			case 2:
				if s.Contains(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for _, e := range s.Elems() {
			if !model[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and idempotent on counts.
func TestQuickUnionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		again.Union(a)
		again.Union(b)
		return again.Equal(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
