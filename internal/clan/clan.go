// Package clan implements the clan-based graph decomposition of
// McCreary & Gill: parsing a DAG into a unique hierarchy (parse tree)
// of subgraphs called clans, which the CLANS scheduler then costs
// bottom-up.
//
// A set of vertices C of graph G is a clan iff for all x, y in C and
// every z outside C: z is an ancestor of x iff z is an ancestor of y,
// and z is a descendant of x iff z is a descendant of y — i.e. the
// outside world cannot tell members of C apart. Clans are exactly the
// modules of the 2-structure that colours every vertex pair with one of
// {ancestor, descendant, incomparable} according to reachability.
//
// The parse tree is built by recursive splitting:
//
//   - independent clan: the comparability graph over the members is
//     disconnected; the components are the children and may execute
//     concurrently (no paths between them);
//   - linear clan: the incomparability graph is disconnected and its
//     components can be merged into blocks that are totally ordered by
//     uniform reachability; the blocks are the children and must
//     execute sequentially;
//   - primitive clan: neither split applies; the clan has no uniform
//     internal structure. (A primitive clan's proper strong modules, if
//     any, are not extracted — its children are the individual
//     vertices. See DESIGN.md: the CLANS scheduler handles primitives
//     with an internal list scheduler, so only schedule quality within
//     the primitive, never correctness, is affected.)
//
// Because every set this recursion descends into is itself a clan,
// reachability between members never routes through external vertices,
// so the global transitive closure restricted to the member set is the
// correct internal relation.
package clan

import (
	"fmt"
	"sort"
	"strings"

	"schedcomp/internal/arena"
	"schedcomp/internal/bitset"
	"schedcomp/internal/dag"
)

// Kind classifies a parse tree node.
type Kind int

const (
	// Leaf is a single task.
	Leaf Kind = iota
	// Linear clans execute their children sequentially: every vertex
	// of child i is an ancestor of every vertex of child i+1.
	Linear
	// Independent clans may execute their children concurrently: no
	// paths exist between children.
	Independent
	// Primitive clans have no uniform internal structure.
	Primitive
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Linear:
		return "linear"
	case Independent:
		return "independent"
	case Primitive:
		return "primitive"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one clan in the parse tree.
type Node struct {
	Kind Kind
	// Task is the graph node for Leaf clans.
	Task dag.NodeID
	// Children are the sub-clans: in precedence order for Linear
	// clans, in an arbitrary (but deterministic) order otherwise.
	Children []*Node
	// Members lists the graph nodes of this clan, ascending.
	Members []dag.NodeID
}

// Size returns the number of graph nodes in the clan.
func (n *Node) Size() int { return len(n.Members) }

// Tree is the parse tree of a graph.
type Tree struct {
	Graph *dag.Graph
	Root  *Node
}

// Parse decomposes g into its clan parse tree. It fails only if g is
// cyclic. A graph with no nodes yields a nil Root.
func Parse(g *dag.Graph) (*Tree, error) {
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	anc, err := g.Ancestors()
	if err != nil {
		return nil, err
	}
	t := &Tree{Graph: g}
	n := g.NumNodes()
	if n == 0 {
		return t, nil
	}
	members := make([]dag.NodeID, n)
	for i := range members {
		members[i] = dag.NodeID(i)
	}
	// The BFS scratch (two bit sets and the work stack) lives in pooled
	// arena memory for the duration of the parse; the tree itself is
	// built from ordinary allocations since it escapes.
	scratch := arena.Get()
	defer scratch.Release()
	unvisited, tmp := scratch.Bitset(n), scratch.Bitset(n)
	p := &parser{
		desc:      desc,
		anc:       anc,
		unvisited: &unvisited,
		tmp:       &tmp,
		stack:     scratch.NodeIDs(n)[:0],
	}
	t.Root = p.decompose(members)
	return t, nil
}

type parser struct {
	desc []*bitset.Set
	anc  []*bitset.Set
	// Scratch reused across the single-threaded recursion.
	unvisited *bitset.Set
	tmp       *bitset.Set
	stack     []dag.NodeID
}

// before reports whether u is an ancestor of v.
func (p *parser) before(u, v dag.NodeID) bool {
	return p.desc[u].Contains(int(v))
}

func (p *parser) decompose(members []dag.NodeID) *Node {
	if len(members) == 1 {
		return &Node{Kind: Leaf, Task: members[0], Members: members}
	}

	// Independent split: components of the comparability graph.
	if comps := p.components(members, false); len(comps) > 1 {
		node := &Node{Kind: Independent, Members: members}
		for _, c := range comps {
			node.Children = append(node.Children, p.decompose(c))
		}
		return node
	}

	// Linear split: components of the incomparability graph, merged
	// until the cross-block order is uniform.
	blocks := p.components(members, true)
	if len(blocks) > 1 {
		blocks = p.mergeNonUniform(blocks)
	}
	if len(blocks) > 1 {
		// Order the blocks: uniform reachability between blocks is a
		// strict total order (transitive via reachability).
		sort.Slice(blocks, func(i, j int) bool {
			return p.before(blocks[i][0], blocks[j][0])
		})
		node := &Node{Kind: Linear, Members: members}
		for _, b := range blocks {
			node.Children = append(node.Children, p.decompose(b))
		}
		return node
	}

	// Primitive: children are the individual vertices.
	node := &Node{Kind: Primitive, Members: members}
	for _, v := range members {
		node.Children = append(node.Children, &Node{Kind: Leaf, Task: v, Members: []dag.NodeID{v}})
	}
	return node
}

// mergeNonUniform repeatedly unions any two blocks whose cross pairs
// are not uniformly ordered, until every remaining pair of blocks is
// fully ordered in one direction.
func (p *parser) mergeNonUniform(blocks [][]dag.NodeID) [][]dag.NodeID {
	for {
		merged := false
	outer:
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				if p.uniform(blocks[i], blocks[j]) {
					continue
				}
				blocks[i] = mergeSorted(blocks[i], blocks[j])
				blocks = append(blocks[:j], blocks[j+1:]...)
				merged = true
				break outer
			}
		}
		if !merged {
			return blocks
		}
	}
}

// uniform reports whether every pair (a ∈ A, b ∈ B) is ordered the same
// way. Callers guarantee all cross pairs are comparable (they came from
// distinct incomparability components, possibly merged).
func (p *parser) uniform(a, b []dag.NodeID) bool {
	first := p.before(a[0], b[0])
	for _, x := range a {
		for _, y := range b {
			if p.before(x, y) != first {
				return false
			}
		}
	}
	return true
}

// components partitions members into connected components of the
// comparability relation (incomparable=false) or of its complement
// within the member set (incomparable=true).
//
// Rather than testing all O(k²) member pairs, each BFS step expands a
// whole neighbourhood word-parallel from the cached closures: u is
// comparable to exactly desc[u] ∪ anc[u], so the unvisited neighbours
// of u are (desc[u] ∪ anc[u]) ∩ unvisited, and under incomparability
// the complement, unvisited ∖ desc[u] ∖ anc[u].
//
// Components are returned with members ascending, ordered by their
// smallest member, so the result is deterministic: every caller passes
// members ascending, and BFS seeds are taken in that order.
func (p *parser) components(members []dag.NodeID, incomparable bool) [][]dag.NodeID {
	uv := p.unvisited
	uv.Clear()
	for _, v := range members {
		uv.Add(int(v))
	}
	tmp := p.tmp
	var out [][]dag.NodeID
	for _, seed := range members {
		if !uv.Contains(int(seed)) {
			continue
		}
		uv.Remove(int(seed))
		comp := []dag.NodeID{seed}
		p.stack = append(p.stack[:0], seed)
		grab := func(i int) {
			comp = append(comp, dag.NodeID(i))
			p.stack = append(p.stack, dag.NodeID(i))
		}
		for len(p.stack) > 0 {
			u := p.stack[len(p.stack)-1]
			p.stack = p.stack[:len(p.stack)-1]
			if incomparable {
				tmp.CopyFrom(uv)
				tmp.Subtract(p.desc[u])
				tmp.Subtract(p.anc[u])
			} else {
				tmp.CopyFrom(p.desc[u])
				tmp.Union(p.anc[u])
				tmp.Intersect(uv)
			}
			uv.Subtract(tmp)
			tmp.ForEach(grab)
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		out = append(out, comp)
	}
	return out
}

func mergeSorted(a, b []dag.NodeID) []dag.NodeID {
	out := make([]dag.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Walk visits every node of the tree in depth-first preorder.
func (t *Tree) Walk(f func(n *Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Counts returns the number of parse tree nodes of each kind.
func (t *Tree) Counts() map[Kind]int {
	out := map[Kind]int{}
	t.Walk(func(n *Node) { out[n.Kind]++ })
	return out
}

// String renders the tree with indentation, for debugging and golden
// tests.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if n == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		if n.Kind == Leaf {
			fmt.Fprintf(&b, "leaf %d\n", n.Task)
		} else {
			fmt.Fprintf(&b, "%s %v\n", n.Kind, n.Members)
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}

// IsClan reports whether the member set satisfies the clan definition
// in g: every external vertex is an ancestor of all members or of
// none, and a descendant of all members or of none.
func IsClan(g *dag.Graph, members []dag.NodeID) (bool, error) {
	desc, err := g.Descendants()
	if err != nil {
		return false, err
	}
	in := make([]bool, g.NumNodes())
	for _, m := range members {
		in[m] = true
	}
	if len(members) == 0 {
		return true, nil
	}
	first := members[0]
	for z := 0; z < g.NumNodes(); z++ {
		if in[z] {
			continue
		}
		ancFirst := desc[z].Contains(int(first))
		descFirst := desc[first].Contains(z)
		for _, m := range members[1:] {
			if desc[z].Contains(int(m)) != ancFirst {
				return false, nil
			}
			if desc[m].Contains(z) != descFirst {
				return false, nil
			}
		}
	}
	return true, nil
}

// Validate checks that every internal node of the parse tree is a
// valid clan of the graph and that children partition their parent.
func (t *Tree) Validate() error {
	if t.Root == nil {
		if t.Graph.NumNodes() != 0 {
			return fmt.Errorf("clan: nil root for non-empty graph")
		}
		return nil
	}
	if len(t.Root.Members) != t.Graph.NumNodes() {
		return fmt.Errorf("clan: root covers %d of %d nodes", len(t.Root.Members), t.Graph.NumNodes())
	}
	var err error
	t.Walk(func(n *Node) {
		if err != nil {
			return
		}
		ok, e := IsClan(t.Graph, n.Members)
		if e != nil {
			err = e
			return
		}
		if !ok {
			err = fmt.Errorf("clan: %s node %v is not a clan", n.Kind, n.Members)
			return
		}
		if n.Kind == Leaf {
			if len(n.Members) != 1 || len(n.Children) != 0 {
				err = fmt.Errorf("clan: malformed leaf %v", n.Members)
			}
			return
		}
		seen := map[dag.NodeID]bool{}
		total := 0
		for _, c := range n.Children {
			for _, m := range c.Members {
				if seen[m] {
					err = fmt.Errorf("clan: node %d in two children of %v", m, n.Members)
					return
				}
				seen[m] = true
			}
			total += len(c.Members)
		}
		if total != len(n.Members) {
			err = fmt.Errorf("clan: children of %v cover %d of %d members", n.Members, total, len(n.Members))
		}
	})
	return err
}
