package clan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/paperex"
)

func mustParse(t *testing.T, g *dag.Graph) *Tree {
	t.Helper()
	tree, err := Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPaperExampleDecomposition(t *testing.T) {
	// The paper's §A.5 walkthrough: non-trivial clans are the linear
	// clan C1{3,4}, the independent clan C2{2,{3,4}} and the linear
	// root C3{1, C2, 5} (zero-based: {2,3}, {1,2,3}, all).
	tree := mustParse(t, paperex.Graph())
	root := tree.Root
	if root.Kind != Linear {
		t.Fatalf("root kind = %v, want linear", root.Kind)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root has %d children, want 3", len(root.Children))
	}
	if root.Children[0].Kind != Leaf || root.Children[0].Task != 0 {
		t.Errorf("first child should be leaf node 0, got %v %v",
			root.Children[0].Kind, root.Children[0].Members)
	}
	c2 := root.Children[1]
	if c2.Kind != Independent || len(c2.Members) != 3 {
		t.Fatalf("middle child = %v %v, want independent {1,2,3}", c2.Kind, c2.Members)
	}
	if root.Children[2].Kind != Leaf || root.Children[2].Task != 4 {
		t.Errorf("last child should be leaf node 4")
	}
	// Inside C2: leaf {1} and linear {2,3}.
	var foundLinear bool
	for _, ch := range c2.Children {
		if ch.Kind == Linear {
			foundLinear = true
			if len(ch.Members) != 2 || ch.Members[0] != 2 || ch.Members[1] != 3 {
				t.Errorf("linear clan members = %v, want [2 3]", ch.Members)
			}
		}
	}
	if !foundLinear {
		t.Error("independent clan missing the linear child {3,4}")
	}
}

func TestChainIsLinear(t *testing.T) {
	g := dag.New("chain")
	var prev dag.NodeID = -1
	for i := 0; i < 5; i++ {
		v := g.AddNode(1)
		if prev >= 0 {
			g.MustAddEdge(prev, v, 1)
		}
		prev = v
	}
	tree := mustParse(t, g)
	if tree.Root.Kind != Linear || len(tree.Root.Children) != 5 {
		t.Errorf("chain root = %v with %d children", tree.Root.Kind, len(tree.Root.Children))
	}
	for _, c := range tree.Root.Children {
		if c.Kind != Leaf {
			t.Errorf("chain child kind = %v", c.Kind)
		}
	}
}

func TestDisjointTasksAreIndependent(t *testing.T) {
	g := dag.New("par")
	for i := 0; i < 4; i++ {
		g.AddNode(1)
	}
	tree := mustParse(t, g)
	if tree.Root.Kind != Independent || len(tree.Root.Children) != 4 {
		t.Errorf("root = %v with %d children", tree.Root.Kind, len(tree.Root.Children))
	}
}

func TestNStructureIsPrimitive(t *testing.T) {
	// The classic N: a->c, a->d, b->d; no 2-subset is a module.
	g := dag.New("N")
	a := g.AddNode(1)
	b := g.AddNode(1)
	c := g.AddNode(1)
	d := g.AddNode(1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(a, d, 1)
	g.MustAddEdge(b, d, 1)
	tree := mustParse(t, g)
	if tree.Root.Kind != Primitive {
		t.Errorf("N-structure root = %v, want primitive", tree.Root.Kind)
	}
	if len(tree.Root.Children) != 4 {
		t.Errorf("primitive children = %d, want 4 leaves", len(tree.Root.Children))
	}
}

func TestMixedOrderIsPrimitive(t *testing.T) {
	// Two chains a->b and c->d plus a->d: the incomparability graph
	// (edges a-c, b-c, b-d) is connected and so is the comparability
	// graph, leaving no uniform split — the whole set is primitive.
	g := dag.New("mixed")
	a := g.AddNode(1)
	b := g.AddNode(1)
	c := g.AddNode(1)
	d := g.AddNode(1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(c, d, 1)
	g.MustAddEdge(a, d, 1)
	tree := mustParse(t, g)
	if tree.Root.Kind != Primitive {
		t.Errorf("mixed-order root = %v, want primitive", tree.Root.Kind)
	}
}

func TestSeriesOfParallel(t *testing.T) {
	// fork -> {a,b,c} -> join: linear [fork, {a,b,c}, join].
	g := dag.New("spj")
	fork := g.AddNode(1)
	mids := []dag.NodeID{g.AddNode(1), g.AddNode(1), g.AddNode(1)}
	join := g.AddNode(1)
	for _, m := range mids {
		g.MustAddEdge(fork, m, 1)
		g.MustAddEdge(m, join, 1)
	}
	tree := mustParse(t, g)
	root := tree.Root
	if root.Kind != Linear || len(root.Children) != 3 {
		t.Fatalf("root = %v with %d children", root.Kind, len(root.Children))
	}
	mid := root.Children[1]
	if mid.Kind != Independent || len(mid.Children) != 3 {
		t.Errorf("middle = %v with %d children, want independent of 3", mid.Kind, len(mid.Children))
	}
}

func TestIsClan(t *testing.T) {
	g := paperex.Graph()
	cases := []struct {
		members []dag.NodeID
		want    bool
	}{
		{[]dag.NodeID{2, 3}, true},          // C1
		{[]dag.NodeID{1, 2, 3}, true},       // C2
		{[]dag.NodeID{0, 1, 2, 3, 4}, true}, // whole graph
		{[]dag.NodeID{0}, true},             // singletons always
		{[]dag.NodeID{1, 2}, false},         // 4 distinguishes (desc of 3-chain only)
		{[]dag.NodeID{0, 1}, false},
	}
	for _, c := range cases {
		got, err := IsClan(g, c.members)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("IsClan(%v) = %v, want %v", c.members, got, c.want)
		}
	}
}

func TestCountsAndString(t *testing.T) {
	tree := mustParse(t, paperex.Graph())
	counts := tree.Counts()
	if counts[Leaf] != 5 {
		t.Errorf("leaves = %d, want 5", counts[Leaf])
	}
	if counts[Linear] != 2 || counts[Independent] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if s := tree.String(); len(s) == 0 {
		t.Error("String empty")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty, err := Parse(dag.New("empty"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Root != nil {
		t.Error("empty graph should have nil root")
	}
	if err := empty.Validate(); err != nil {
		t.Error(err)
	}

	g := dag.New("one")
	g.AddNode(3)
	tree := mustParse(t, g)
	if tree.Root.Kind != Leaf {
		t.Errorf("single node root = %v", tree.Root.Kind)
	}
}

// randomDAG with forward edges only.
func randomDAG(rng *rand.Rand, n int, density float64) *dag.Graph {
	g := dag.New("random")
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + rng.Intn(9)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), 1)
			}
		}
	}
	return g
}

// Property: on arbitrary random DAGs the parse tree validates — every
// tree node is a genuine clan and children partition parents.
func TestQuickParseValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(30), 0.15+0.3*rng.Float64())
		tree, err := Parse(g)
		if err != nil {
			return false
		}
		return tree.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: linear children are fully ordered; independent children
// are fully incomparable.
func TestQuickKindSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(25), 0.2)
		tree, err := Parse(g)
		if err != nil {
			return false
		}
		desc, err := g.Descendants()
		if err != nil {
			return false
		}
		before := func(u, v dag.NodeID) bool { return desc[u].Contains(int(v)) }
		ok := true
		tree.Walk(func(n *Node) {
			if !ok {
				return
			}
			switch n.Kind {
			case Linear:
				for i := 0; i+1 < len(n.Children); i++ {
					for _, x := range n.Children[i].Members {
						for _, y := range n.Children[i+1].Members {
							if !before(x, y) {
								ok = false
							}
						}
					}
				}
			case Independent:
				for i := range n.Children {
					for j := i + 1; j < len(n.Children); j++ {
						for _, x := range n.Children[i].Members {
							for _, y := range n.Children[j].Members {
								if before(x, y) || before(y, x) {
									ok = false
								}
							}
						}
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
