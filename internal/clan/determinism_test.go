package clan

import (
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
)

// TestParseDeterministic pins the mapiter fix in components(): grouping
// by union-find root used to iterate a map, so the member order of
// parallel/independent blocks could differ between runs. The dense
// root-indexed grouping must yield an identical tree every time.
func TestParseDeterministic(t *testing.T) {
	graphs := []*dag.Graph{
		gen.MustGenerate(gen.Params{Nodes: 50, Anchor: 3, WMin: 20, WMax: 200, Gran: gen.PaperBands()[0]}, 11),
		gen.MustGenerate(gen.Params{Nodes: 70, Anchor: 5, WMin: 20, WMax: 400, Gran: gen.PaperBands()[4]}, 12),
		randomFanGraph(13),
	}
	for gi, g := range graphs {
		first, err := Parse(g)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		want := first.String()
		for run := 0; run < 25; run++ {
			again, err := Parse(g)
			if err != nil {
				t.Fatalf("graph %d run %d: %v", gi, run, err)
			}
			if got := again.String(); got != want {
				t.Fatalf("graph %d run %d: tree changed between parses\nfirst:\n%s\nnow:\n%s",
					gi, run, want, got)
			}
		}
	}
}

// randomFanGraph builds a graph with many independent components under
// a common ancestor — the shape that exercises the grouping path in
// components() hardest.
func randomFanGraph(seed int64) *dag.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dag.New("fan")
	root := g.AddNode(5)
	sink := g.AddNode(5)
	for i := 0; i < 30; i++ {
		v := g.AddNode(int64(1 + rng.Intn(50)))
		g.MustAddEdge(root, v, int64(1+rng.Intn(10)))
		g.MustAddEdge(v, sink, int64(1+rng.Intn(10)))
	}
	return g
}
