package clan

import (
	"sort"

	"schedcomp/internal/bitset"
	"schedcomp/internal/dag"
)

// SubClans partitions the members of a primitive clan into proper
// sub-clans where possible (singletons otherwise). The paper notes the
// comparison used "the best version of CLANS ... the weaknesses of the
// first version were removed"; recovering composite structure inside
// primitive clans is exactly such a strengthening: the scheduler can
// then cost a primitive's quotient over a few coherent blocks instead
// of over individual tasks.
//
// Method: for every edge (u,v) inside the member set, compute the
// module closure of {u,v} — repeatedly absorbing any member that
// distinguishes two current elements by reachability — giving the
// smallest clan of the induced substructure containing the pair.
// Closures that are proper subsets become candidate blocks; blocks are
// chosen greedily from smallest to largest so the finest discovered
// grouping wins, and remaining members stay singletons. Every returned
// block is a genuine clan of the whole graph (clans of a clan are
// clans); the partition is not guaranteed to be the canonical modular
// decomposition, only a sound refinement usable by the cost model.
//
// The search is skipped (all-singleton result) for member sets larger
// than maxSubClanMembers, keeping the scheduler's worst case bounded.
func SubClans(g *dag.Graph, members []dag.NodeID) ([][]dag.NodeID, error) {
	if len(members) <= 2 || len(members) > maxSubClanMembers {
		return singletons(members), nil
	}
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	inSet := bitset.New(n)
	for _, m := range members {
		inSet.Add(int(m))
	}

	// Candidate blocks from module closures of adjacent pairs.
	var candidates []*bitset.Set
	seen := map[string]bool{}
	for _, u := range members {
		for _, a := range g.Succs(u) {
			v := a.To
			if !inSet.Contains(int(v)) {
				continue
			}
			m := moduleClosure(desc, inSet, members, u, v)
			if m.Count() >= len(members) || m.Count() < 2 {
				continue
			}
			key := m.String()
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, m)
			}
		}
	}
	if len(candidates) == 0 {
		return singletons(members), nil
	}
	// Smallest candidates first: prefer the finest grouping.
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].Count() < candidates[j].Count()
	})

	assigned := bitset.New(n)
	var blocks [][]dag.NodeID
	for _, c := range candidates {
		if c.Intersects(assigned) {
			continue
		}
		var blk []dag.NodeID
		c.ForEach(func(i int) { blk = append(blk, dag.NodeID(i)) })
		blocks = append(blocks, blk)
		assigned.Union(c)
	}
	for _, m := range members {
		if !assigned.Contains(int(m)) {
			blocks = append(blocks, []dag.NodeID{m})
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i][0] < blocks[j][0] })
	return blocks, nil
}

// maxSubClanMembers bounds the closure search.
const maxSubClanMembers = 48

func singletons(members []dag.NodeID) [][]dag.NodeID {
	out := make([][]dag.NodeID, len(members))
	for i, m := range members {
		out[i] = []dag.NodeID{m}
	}
	return out
}

// moduleClosure grows {u,v} until no member outside the set
// distinguishes two elements of the set by reachability.
func moduleClosure(desc []*bitset.Set, inSet *bitset.Set, members []dag.NodeID, u, v dag.NodeID) *bitset.Set {
	n := inSet.Len()
	m := bitset.New(n)
	m.Add(int(u))
	m.Add(int(v))
	elems := []dag.NodeID{u, v}
	for changed := true; changed; {
		changed = false
		for _, zq := range members {
			z := int(zq)
			if m.Contains(z) {
				continue
			}
			// Does z distinguish any two elements?
			first := true
			var anc0, dsc0 bool
			distinguishes := false
			for _, x := range elems {
				anc := desc[z].Contains(int(x))
				dsc := desc[x].Contains(z)
				if first {
					anc0, dsc0, first = anc, dsc, false
					continue
				}
				if anc != anc0 || dsc != dsc0 {
					distinguishes = true
					break
				}
			}
			if distinguishes {
				m.Add(z)
				elems = append(elems, zq)
				changed = true
			}
		}
	}
	return m
}

// ParseMembers decomposes the induced substructure of a clan's member
// set, returning its parse subtree. members must form a clan of g
// (clans of a clan are clans of the graph, so global reachability is
// the correct internal relation).
func ParseMembers(g *dag.Graph, members []dag.NodeID) (*Node, error) {
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	anc, err := g.Ancestors()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	p := &parser{
		desc:      desc,
		anc:       anc,
		unvisited: bitset.New(n),
		tmp:       bitset.New(n),
	}
	sorted := append([]dag.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return p.decompose(sorted), nil
}
