package clan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/paperex"
)

// nGraph builds the primitive N-structure with a composite module: the
// classic N over blocks where one "corner" is a 2-chain. Vertices:
// a1->a2 (a chain), b, c, d with a2->c, a2->d, b->d — {a1,a2} is a
// proper clan inside an otherwise primitive structure.
func nGraphWithChain() (*dag.Graph, []dag.NodeID) {
	g := dag.New("n-chain")
	a1 := g.AddNode(1)
	a2 := g.AddNode(1)
	b := g.AddNode(1)
	c := g.AddNode(1)
	d := g.AddNode(1)
	g.MustAddEdge(a1, a2, 1)
	g.MustAddEdge(a2, c, 1)
	g.MustAddEdge(a2, d, 1)
	g.MustAddEdge(b, d, 1)
	return g, []dag.NodeID{a1, a2, b, c, d}
}

func TestSubClansFindsChainInsidePrimitive(t *testing.T) {
	g, members := nGraphWithChain()
	// Confirm the whole set really is primitive.
	tree, err := Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Kind != Primitive {
		t.Fatalf("root = %v, want primitive", tree.Root.Kind)
	}
	blocks, err := SubClans(g, members)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, blk := range blocks {
		if len(blk) == 2 && blk[0] == 0 && blk[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("blocks = %v, expected {0,1} extracted", blocks)
	}
	// Partition covers everything exactly once.
	seen := map[dag.NodeID]int{}
	for _, blk := range blocks {
		for _, m := range blk {
			seen[m]++
		}
	}
	if len(seen) != 5 {
		t.Errorf("partition covers %d of 5", len(seen))
	}
	for m, c := range seen {
		if c != 1 {
			t.Errorf("member %d in %d blocks", m, c)
		}
	}
}

func TestSubClansAllBlocksAreClans(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 4+rng.Intn(20), 0.25)
		n := g.NumNodes()
		members := make([]dag.NodeID, n)
		for i := range members {
			members[i] = dag.NodeID(i)
		}
		blocks, err := SubClans(g, members)
		if err != nil {
			return false
		}
		total := 0
		for _, blk := range blocks {
			total += len(blk)
			ok, err := IsClan(g, blk)
			if err != nil || !ok {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSubClansHugeSetSkipped(t *testing.T) {
	g := dag.New("big")
	var members []dag.NodeID
	for i := 0; i < maxSubClanMembers+5; i++ {
		members = append(members, g.AddNode(1))
	}
	blocks, err := SubClans(g, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != len(members) {
		t.Errorf("oversized set should return singletons, got %d blocks", len(blocks))
	}
}

func TestParseMembersSubtree(t *testing.T) {
	g := paperex.Graph()
	// {2,3} (paper nodes 3,4) is the linear clan C1.
	sub, err := ParseMembers(g, []dag.NodeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind != Linear || len(sub.Children) != 2 {
		t.Errorf("subtree = %v with %d children, want linear/2", sub.Kind, len(sub.Children))
	}
}
