package core

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

// emptySched schedules any graph onto zero processors; only valid for
// empty graphs, where it legitimately produces a zero makespan.
type emptySched struct{}

func (emptySched) Name() string { return "EMPTY" }
func (emptySched) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return sched.NewPlacement(g.NumNodes()), nil
}

// TestEvaluateGraphZeroBest is the regression test for the Best == 0
// "unset" sentinel: a graph whose best makespan is legitimately zero
// (an empty graph in a custom corpus) must yield RelTime 0, not
// NaN/±Inf from x/0 − 1.
func TestEvaluateGraphZeroBest(t *testing.T) {
	g := dag.New("empty")
	rec, err := evaluateGraph(g, []heuristics.Scheduler{emptySched{}, emptySched{}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best != 0 {
		t.Fatalf("Best = %d, want 0", rec.Best)
	}
	for i, m := range rec.ByHeur {
		if math.IsNaN(m.RelTime) || math.IsInf(m.RelTime, 0) {
			t.Fatalf("ByHeur[%d].RelTime = %v, want 0", i, m.RelTime)
		}
		if m.RelTime != 0 {
			t.Fatalf("ByHeur[%d].RelTime = %v, want 0", i, m.RelTime)
		}
	}
}

// failSched errors on every graph and counts its invocations.
type failSched struct{ calls *atomic.Int64 }

func (failSched) Name() string { return "FAIL" }
func (f failSched) Schedule(g *dag.Graph) (*sched.Placement, error) {
	f.calls.Add(1)
	return nil, errors.New("failsched: induced failure")
}

// TestEvaluateShortCircuitsOnError is the regression test for the
// dispatch loop: the first worker error must cancel outstanding
// dispatch instead of feeding the whole corpus to schedulers that can
// only fail.
func TestEvaluateShortCircuitsOnError(t *testing.T) {
	c := tinyCorpus(t, 7) // 60 sets x 1 graph
	total := c.NumGraphs()
	if total != 60 {
		t.Fatalf("corpus has %d graphs, want 60", total)
	}
	var calls atomic.Int64
	const workers = 2
	_, err := Evaluate(c, Options{
		Workers:   workers,
		Factories: []func() heuristics.Scheduler{func() heuristics.Scheduler { return failSched{&calls} }},
	})
	if err == nil {
		t.Fatal("Evaluate succeeded with an always-failing scheduler")
	}
	// At most the in-flight jobs (one per worker, unbuffered channel)
	// plus a small race window can be scheduled after the first error;
	// anywhere near the full corpus means dispatch was not cancelled.
	if got := calls.Load(); got > int64(total)/2 {
		t.Fatalf("failing factory was invoked %d times on a %d-graph corpus; dispatch did not short-circuit", got, total)
	}
}
