// Package core implements the paper's primary contribution: the
// numerical comparison testbed. It runs a set of scheduling heuristics
// over a corpus of classified PDGs under the common execution model,
// validates every schedule, and records per-graph measurements —
// parallel time, processors used, speedup, efficiency, and the
// normalized relative parallel time against the best heuristic on that
// graph — from which the experiment drivers aggregate the paper's
// tables and figures.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/obs"
)

// Testbed instruments. Per-worker counts are aggregated into a
// distribution histogram rather than per-worker labels (worker ids are
// unbounded across configurations — see the obs cardinality rules).
var (
	evalGraphs = obs.Default().Counter("core_eval_graphs_total",
		"Graphs fully evaluated by the testbed workers.")
	evalWorkers = obs.Default().Gauge("core_eval_workers",
		"Worker goroutines used by the most recent Evaluate call.")
	evalQueueWait = obs.Default().Histogram("core_eval_queue_wait_seconds",
		"Time a worker spends waiting to receive its next graph.", obs.DefTimeBuckets)
	evalWorkerGraphs = obs.Default().Histogram("core_eval_worker_graphs",
		"Distribution of graphs processed per worker per Evaluate call.",
		[]float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500})
)

// Measurement is one (graph, heuristic) outcome.
type Measurement struct {
	Heuristic string
	// ParallelTime is the schedule makespan.
	ParallelTime int64
	// Procs is the number of processors the schedule uses.
	Procs int
	// Speedup is serial time / parallel time.
	Speedup float64
	// Efficiency is speedup / processors used.
	Efficiency float64
	// RelTime is the normalized relative parallel time:
	// ParallelTime/BestParallelTime − 1, where the best is taken over
	// all heuristics on this graph.
	RelTime float64
}

// GraphRecord holds all heuristics' measurements for one graph.
type GraphRecord struct {
	SerialTime int64
	Best       int64 // best parallel time over the heuristics
	ByHeur     []Measurement
}

// SetRecord pairs a graph class with its per-graph records.
type SetRecord struct {
	Class  corpus.Class
	Graphs []GraphRecord
}

// Evaluation is the full testbed output.
type Evaluation struct {
	Heuristics []string
	Sets       []SetRecord
}

// Options configures an evaluation run.
type Options struct {
	// Workers bounds evaluation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Factories produce a fresh scheduler per worker; nil means the
	// five paper heuristics in paper order.
	Factories []func() heuristics.Scheduler
}

// defaultFactories runs once per Evaluate call; the per-name closures
// are setup cost, not per-graph work.
//
//lint:coldpath
func defaultFactories() []func() heuristics.Scheduler {
	fs := make([]func() heuristics.Scheduler, len(heuristics.PaperOrder))
	for i, name := range heuristics.PaperOrder {
		name := name
		fs[i] = func() heuristics.Scheduler {
			s, err := heuristics.New(name)
			if err != nil {
				panic("core: " + err.Error())
			}
			return s
		}
	}
	return fs
}

// Evaluate runs every heuristic on every graph of the corpus,
// validating each schedule, and returns the measurements. Work is
// spread over a pool of workers; the result does not depend on the
// worker count.
func Evaluate(c *corpus.Corpus, opts Options) (*Evaluation, error) {
	factories := opts.Factories
	if factories == nil {
		factories = defaultFactories()
	}
	names := make([]string, len(factories))
	for i, f := range factories {
		names[i] = f().Name()
	}
	ev := &Evaluation{Heuristics: names, Sets: make([]SetRecord, len(c.Sets))}
	for i, s := range c.Sets {
		ev.Sets[i] = SetRecord{Class: s.Class, Graphs: make([]GraphRecord, len(s.Graphs))}
	}

	type job struct{ set, idx int }
	jobs := make(chan job)
	errs := make(chan error, 1)
	// done is closed when the first worker reports an error: the
	// dispatcher stops feeding and the workers drain without
	// evaluating, so a failing factory short-circuits instead of
	// grinding through the whole corpus.
	done := make(chan struct{})
	var closeDone sync.Once
	stop := func() { closeDone.Do(func() { close(done) }) }
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evalWorkers.Set(int64(workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //lint:coldpath — one goroutine spawn per worker, not per graph
			defer wg.Done()
			scheds := make([]heuristics.Scheduler, len(factories))
			for i, f := range factories {
				scheds[i] = f()
			}
			enabled := obs.Default().Enabled()
			var processed uint64
			for {
				var t0 time.Time
				if enabled {
					t0 = time.Now()
				}
				j, ok := <-jobs
				if !ok {
					break
				}
				if enabled {
					evalQueueWait.Observe(time.Since(t0).Seconds())
				}
				select {
				case <-done:
					continue // error already recorded; drain without evaluating
				default:
				}
				rec, err := evaluateGraph(c.Sets[j.set].Graphs[j.idx], scheds)
				if err != nil {
					select {
					case errs <- fmt.Errorf("set %d graph %d: %w", j.set, j.idx, err):
					default:
					}
					stop()
					continue
				}
				processed++
				ev.Sets[j.set].Graphs[j.idx] = rec
			}
			evalGraphs.Add(processed)
			evalWorkerGraphs.Observe(float64(processed))
		}()
	}
dispatch:
	for si := range c.Sets {
		for gi := range c.Sets[si].Graphs {
			select {
			case jobs <- job{si, gi}:
			case <-done:
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return ev, nil
}

// evaluateGraph runs all schedulers on one graph and computes the
// relative measurements.
func evaluateGraph(g *dag.Graph, scheds []heuristics.Scheduler) (GraphRecord, error) {
	rec := GraphRecord{
		SerialTime: g.SerialTime(),
		ByHeur:     make([]Measurement, len(scheds)),
	}
	// Track "best seen" explicitly rather than treating Best == 0 as
	// unset: a zero makespan is legitimate (e.g. an empty graph in a
	// custom corpus) and must not poison RelTime with a division by
	// zero. The first heuristic's makespan wins outright.
	bestSet := false
	for i, s := range scheds {
		sc, err := heuristics.Run(s, g)
		if err != nil {
			return rec, err
		}
		rec.ByHeur[i] = Measurement{
			Heuristic:    s.Name(),
			ParallelTime: sc.Makespan,
			Procs:        sc.NumProcs,
			Speedup:      sc.Speedup(),
			Efficiency:   sc.Efficiency(),
		}
		if !bestSet || sc.Makespan < rec.Best {
			rec.Best = sc.Makespan
			bestSet = true
		}
	}
	for i := range rec.ByHeur {
		m := &rec.ByHeur[i]
		if rec.Best == 0 {
			// Every makespan is >= Best, so a zero best means this
			// heuristic also achieved zero: define RelTime as 0.
			m.RelTime = 0
			continue
		}
		m.RelTime = float64(m.ParallelTime)/float64(rec.Best) - 1
	}
	return rec, nil
}
