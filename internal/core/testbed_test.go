package core

import (
	"math"
	"testing"

	"schedcomp/internal/corpus"
	"schedcomp/internal/heuristics"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

func tinyCorpus(t *testing.T, seed int64) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{Seed: seed, GraphsPerSet: 1, MinNodes: 20, MaxNodes: 30})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvaluateShape(t *testing.T) {
	c := tinyCorpus(t, 3)
	ev, err := Evaluate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Heuristics) != 5 {
		t.Fatalf("heuristics = %v", ev.Heuristics)
	}
	for i, want := range heuristics.PaperOrder {
		if ev.Heuristics[i] != want {
			t.Errorf("heuristic %d = %s, want %s", i, ev.Heuristics[i], want)
		}
	}
	if len(ev.Sets) != 60 {
		t.Fatalf("sets = %d", len(ev.Sets))
	}
	for si, set := range ev.Sets {
		for gi, rec := range set.Graphs {
			if len(rec.ByHeur) != 5 {
				t.Fatalf("set %d graph %d: %d measurements", si, gi, len(rec.ByHeur))
			}
			if rec.Best <= 0 || rec.SerialTime <= 0 {
				t.Fatalf("set %d graph %d: best=%d serial=%d", si, gi, rec.Best, rec.SerialTime)
			}
			sawBest := false
			for _, m := range rec.ByHeur {
				if m.ParallelTime < rec.Best {
					t.Fatalf("measurement below best")
				}
				if m.ParallelTime == rec.Best {
					sawBest = true
					if math.Abs(m.RelTime) > 1e-12 {
						t.Fatalf("best heuristic RelTime = %v", m.RelTime)
					}
				}
				wantSpeed := float64(rec.SerialTime) / float64(m.ParallelTime)
				if math.Abs(m.Speedup-wantSpeed) > 1e-9 {
					t.Fatalf("speedup inconsistent")
				}
				if m.Procs < 1 {
					t.Fatalf("procs = %d", m.Procs)
				}
				wantEff := m.Speedup / float64(m.Procs)
				if math.Abs(m.Efficiency-wantEff) > 1e-9 {
					t.Fatalf("efficiency inconsistent")
				}
			}
			if !sawBest {
				t.Fatalf("no heuristic achieved the recorded best")
			}
		}
	}
}

func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	c := tinyCorpus(t, 4)
	a, err := Evaluate(c, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(c, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Sets {
		for gi := range a.Sets[si].Graphs {
			ra, rb := a.Sets[si].Graphs[gi], b.Sets[si].Graphs[gi]
			for hi := range ra.ByHeur {
				if ra.ByHeur[hi].ParallelTime != rb.ByHeur[hi].ParallelTime {
					t.Fatalf("set %d graph %d heur %d differs across worker counts", si, gi, hi)
				}
			}
		}
	}
}

func TestEvaluateCLANSNeverBelowSerial(t *testing.T) {
	c := tinyCorpus(t, 5)
	ev, err := Evaluate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range ev.Sets {
		for _, rec := range set.Graphs {
			if rec.ByHeur[0].Heuristic != "CLANS" {
				t.Fatal("CLANS not first")
			}
			if rec.ByHeur[0].Speedup < 1-1e-12 {
				t.Fatalf("CLANS speedup %v < 1 in %s", rec.ByHeur[0].Speedup, set.Class)
			}
		}
	}
}

func TestEvaluateCustomFactories(t *testing.T) {
	c := tinyCorpus(t, 6)
	mk := func(name string) func() heuristics.Scheduler {
		return func() heuristics.Scheduler {
			s, err := heuristics.New(name)
			if err != nil {
				panic(err)
			}
			return s
		}
	}
	ev, err := Evaluate(c, Options{Factories: []func() heuristics.Scheduler{mk("DSC"), mk("MCP")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Heuristics) != 2 || ev.Heuristics[0] != "DSC" {
		t.Fatalf("heuristics = %v", ev.Heuristics)
	}
}
