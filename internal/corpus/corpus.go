// Package corpus builds the paper's test population (Table 1): 2100
// random PDGs stratified into 60 sets by granularity band (5), anchor
// out-degree (4: 2..5) and node weight range (3), 35 graphs per set.
//
// Generation is deterministic for a given Spec (including its seed) and
// independent of the worker count: every graph's random stream is
// derived from the spec seed, the class index and the graph index.
package corpus

import (
	"fmt"
	"runtime"
	"sync"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
)

// WeightRange is a node weight interval.
type WeightRange struct {
	Min, Max int64
}

func (w WeightRange) String() string { return fmt.Sprintf("%d-%d", w.Min, w.Max) }

// PaperWeightRanges returns the three ranges of §3.3. (The paper's
// Table 1 prints 10-100/10-200/10-300; §3.3 and every results table use
// 20-100/20-200/20-400, which we follow.)
func PaperWeightRanges() []WeightRange {
	return []WeightRange{{20, 100}, {20, 200}, {20, 400}}
}

// PaperAnchors returns the anchor out-degrees of §3.2.
func PaperAnchors() []int { return []int{2, 3, 4, 5} }

// Class identifies one of the 60 graph sets.
type Class struct {
	Band   gen.Band
	Anchor int
	WRange WeightRange
}

func (c Class) String() string {
	return fmt.Sprintf("%s / anchor %d / weights %s", c.Band, c.Anchor, c.WRange)
}

// Classes enumerates the paper's 60 classes in band-major, then
// anchor, then weight-range order (the order of Table 1).
func Classes() []Class {
	var out []Class
	for _, b := range gen.PaperBands() {
		for _, a := range PaperAnchors() {
			for _, w := range PaperWeightRanges() {
				out = append(out, Class{Band: b, Anchor: a, WRange: w})
			}
		}
	}
	return out
}

// Spec describes a corpus to generate.
type Spec struct {
	// Seed drives all randomness.
	Seed int64
	// GraphsPerSet is the number of graphs in each of the 60 sets
	// (35 in the paper).
	GraphsPerSet int
	// MinNodes and MaxNodes bound the graph sizes (drawn uniformly
	// per graph). The paper does not state its sizes; see DESIGN.md.
	MinNodes, MaxNodes int
	// Workers bounds generation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// PaperSpec returns the full 2100-graph corpus specification.
func PaperSpec(seed int64) Spec {
	return Spec{Seed: seed, GraphsPerSet: 35, MinNodes: 40, MaxNodes: 120}
}

// SmallSpec returns a reduced corpus (same 60 classes, fewer and
// smaller graphs) used by tests and the testing.B benchmarks.
func SmallSpec(seed int64) Spec {
	return Spec{Seed: seed, GraphsPerSet: 4, MinNodes: 24, MaxNodes: 48}
}

func (s Spec) validate() error {
	if s.GraphsPerSet < 1 {
		return fmt.Errorf("corpus: GraphsPerSet must be positive, got %d", s.GraphsPerSet)
	}
	if s.MinNodes < 4 || s.MaxNodes < s.MinNodes {
		return fmt.Errorf("corpus: bad node range [%d,%d]", s.MinNodes, s.MaxNodes)
	}
	return nil
}

// Set is one graph class with its generated members.
type Set struct {
	Class  Class
	Graphs []*dag.Graph
}

// Corpus is the full generated population.
type Corpus struct {
	Spec Spec
	Sets []Set
}

// NumGraphs returns the total number of graphs.
func (c *Corpus) NumGraphs() int {
	n := 0
	for _, s := range c.Sets {
		n += len(s.Graphs)
	}
	return n
}

// Generate builds the corpus, fanning generation out over a worker
// pool. The result is independent of the worker count.
func Generate(spec Spec) (*Corpus, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	classes := Classes()
	c := &Corpus{Spec: spec, Sets: make([]Set, len(classes))}
	for i, cl := range classes {
		c.Sets[i] = Set{Class: cl, Graphs: make([]*dag.Graph, spec.GraphsPerSet)}
	}

	type job struct{ set, idx int }
	jobs := make(chan job)
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				c.Sets[j.set].Graphs[j.idx] = generateOne(spec, classes[j.set], j.set, j.idx)
			}
		}()
	}
	for si := range classes {
		for gi := 0; gi < spec.GraphsPerSet; gi++ {
			jobs <- job{si, gi}
		}
	}
	close(jobs)
	wg.Wait()
	return c, nil
}

func generateOne(spec Spec, cl Class, set, idx int) *dag.Graph {
	seed := graphSeed(spec.Seed, set, idx)
	// Node count drawn from the graph's own stream so it is stable.
	sizeSpan := int64(spec.MaxNodes - spec.MinNodes + 1)
	nodes := spec.MinNodes + int(uint64(seed)%uint64(sizeSpan))
	p := gen.Params{
		Nodes:  nodes,
		Anchor: cl.Anchor,
		WMin:   cl.WRange.Min,
		WMax:   cl.WRange.Max,
		Gran:   cl.Band,
	}
	g := gen.MustGenerate(p, seed)
	g.SetName(fmt.Sprintf("set%02d-g%02d", set, idx))
	return g
}

// graphSeed spreads (seed, set, idx) into a distinct stream seed.
func graphSeed(seed int64, set, idx int) int64 {
	z := uint64(seed)
	for _, k := range []uint64{uint64(set) + 1, uint64(idx) + 1} {
		z ^= k * 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
	}
	return int64(z >> 1)
}
