package corpus

import (
	"testing"

	"schedcomp/internal/dag"
)

func TestClassesEnumerates60(t *testing.T) {
	cs := Classes()
	if len(cs) != 60 {
		t.Fatalf("Classes = %d, want 60", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		key := c.String()
		if seen[key] {
			t.Errorf("duplicate class %s", key)
		}
		seen[key] = true
	}
	// Band-major order: the first 12 classes share the first band.
	first := cs[0].Band
	for i := 1; i < 12; i++ {
		if cs[i].Band != first {
			t.Errorf("class %d not in first band", i)
		}
	}
}

func TestPaperSpecShape(t *testing.T) {
	s := PaperSpec(1)
	if s.GraphsPerSet != 35 {
		t.Errorf("GraphsPerSet = %d, want 35", s.GraphsPerSet)
	}
	if s.MinNodes >= s.MaxNodes || s.MinNodes < 4 {
		t.Errorf("bad size range [%d,%d]", s.MinNodes, s.MaxNodes)
	}
}

func TestGenerateSmallCorpus(t *testing.T) {
	spec := Spec{Seed: 5, GraphsPerSet: 2, MinNodes: 24, MaxNodes: 36}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sets) != 60 || c.NumGraphs() != 120 {
		t.Fatalf("sets=%d graphs=%d", len(c.Sets), c.NumGraphs())
	}
	for _, set := range c.Sets {
		for _, g := range set.Graphs {
			if g == nil {
				t.Fatal("nil graph in corpus")
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: %v", set.Class, err)
			}
			if !set.Class.Band.Contains(g.Granularity()) {
				t.Errorf("%s: granularity %v outside band", set.Class, g.Granularity())
			}
			if g.AnchorOutDegree() != set.Class.Anchor {
				t.Errorf("%s: anchor %d", set.Class, g.AnchorOutDegree())
			}
			min, max := g.NodeWeightRange()
			if min < set.Class.WRange.Min || max > set.Class.WRange.Max {
				t.Errorf("%s: weights [%d,%d]", set.Class, min, max)
			}
			if n := g.NumNodes(); n < spec.MinNodes {
				t.Errorf("%s: %d nodes below minimum", set.Class, n)
			}
		}
	}
}

func TestGenerateDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := Generate(Spec{Seed: 9, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{Seed: 9, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 32, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Sets {
		ga, gb := a.Sets[si].Graphs[0], b.Sets[si].Graphs[0]
		if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("set %d differs across worker counts", si)
		}
		for i := 0; i < ga.NumNodes(); i++ {
			if ga.Weight(dag.NodeID(i)) != gb.Weight(dag.NodeID(i)) {
				t.Fatalf("set %d weights differ", si)
			}
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	for _, spec := range []Spec{
		{Seed: 1, GraphsPerSet: 0, MinNodes: 20, MaxNodes: 30},
		{Seed: 1, GraphsPerSet: 1, MinNodes: 2, MaxNodes: 30},
		{Seed: 1, GraphsPerSet: 1, MinNodes: 30, MaxNodes: 20},
	} {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec accepted: %+v", spec)
		}
	}
}

func TestWeightRangeString(t *testing.T) {
	if got := (WeightRange{20, 400}).String(); got != "20-400" {
		t.Errorf("String = %q", got)
	}
}

func TestGraphSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for set := 0; set < 60; set++ {
		for idx := 0; idx < 35; idx++ {
			s := graphSeed(1994, set, idx)
			if seen[s] {
				t.Fatalf("seed collision at set %d idx %d", set, idx)
			}
			seen[s] = true
		}
	}
}

func TestClassString(t *testing.T) {
	c := Classes()[0]
	s := c.String()
	if s == "" {
		t.Fatal("empty class string")
	}
}
