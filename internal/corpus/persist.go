package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
)

// Persistence: a corpus can be saved as a directory of graph JSON
// files plus a manifest, so an expensive population can be reused (or
// shipped to other tools) instead of regenerated.

// manifest is the on-disk description of a saved corpus.
type manifest struct {
	Spec Spec          `json:"spec"`
	Sets []manifestSet `json:"sets"`
}

type manifestSet struct {
	BandLo float64  `json:"band_lo"`
	BandHi float64  `json:"band_hi"`
	Anchor int      `json:"anchor"`
	WMin   int64    `json:"wmin"`
	WMax   int64    `json:"wmax"`
	Graphs []string `json:"graphs"`
}

const manifestName = "corpus.json"

// Save writes the corpus under dir: one JSON file per graph plus a
// manifest. dir is created if needed.
func (c *Corpus) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := manifest{Spec: c.Spec}
	for si, set := range c.Sets {
		ms := manifestSet{
			BandLo: set.Class.Band.Lo,
			BandHi: set.Class.Band.Hi,
			Anchor: set.Class.Anchor,
			WMin:   set.Class.WRange.Min,
			WMax:   set.Class.WRange.Max,
		}
		for gi, g := range set.Graphs {
			name := fmt.Sprintf("set%02d-g%03d.json", si, gi)
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			err = g.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			ms.Graphs = append(ms.Graphs, name)
		}
		m.Sets = append(m.Sets, ms)
	}
	f, err := os.Create(filepath.Join(dir, manifestName))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(m)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads a corpus previously written by Save, validating every
// graph and its class membership.
func Load(dir string) (*Corpus, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corpus: bad manifest: %w", err)
	}
	c := &Corpus{Spec: m.Spec}
	for si, ms := range m.Sets {
		set := Set{Class: Class{
			Band:   gen.Band{Lo: ms.BandLo, Hi: ms.BandHi},
			Anchor: ms.Anchor,
			WRange: WeightRange{Min: ms.WMin, Max: ms.WMax},
		}}
		for _, name := range ms.Graphs {
			// Manifest entries are plain file names written by Save;
			// refuse anything that could escape the corpus directory.
			if name == "" || filepath.Base(name) != name {
				return nil, fmt.Errorf("corpus: manifest references suspicious path %q", name)
			}
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			g, err := dag.ReadJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, fmt.Errorf("corpus: set %d graph %s: %w", si, name, err)
			}
			if !set.Class.Band.Contains(g.Granularity()) {
				return nil, fmt.Errorf("corpus: graph %s granularity %v outside its class band %v",
					name, g.Granularity(), set.Class.Band)
			}
			set.Graphs = append(set.Graphs, g)
		}
		c.Sets = append(c.Sets, set)
	}
	return c, nil
}
