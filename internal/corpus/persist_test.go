package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"schedcomp/internal/dag"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Seed: 12, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 30}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGraphs() != c.NumGraphs() || len(back.Sets) != len(c.Sets) {
		t.Fatalf("shape mismatch: %d/%d graphs, %d/%d sets",
			back.NumGraphs(), c.NumGraphs(), len(back.Sets), len(c.Sets))
	}
	for si := range c.Sets {
		if back.Sets[si].Class != c.Sets[si].Class {
			t.Fatalf("set %d class mismatch: %v vs %v", si, back.Sets[si].Class, c.Sets[si].Class)
		}
		ga, gb := c.Sets[si].Graphs[0], back.Sets[si].Graphs[0]
		if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("set %d graph mismatch", si)
		}
		for v := 0; v < ga.NumNodes(); v++ {
			if ga.Weight(dag.NodeID(v)) != gb.Weight(dag.NodeID(v)) {
				t.Fatalf("set %d weights differ", si)
			}
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing corpus")
	}
}

func TestLoadRejectsEscapingPaths(t *testing.T) {
	dir := t.TempDir()
	manifest := `{"spec":{"Seed":1,"GraphsPerSet":1,"MinNodes":4,"MaxNodes":8,"Workers":0},` +
		`"sets":[{"band_lo":0,"band_hi":0.08,"anchor":2,"wmin":20,"wmax":100,` +
		`"graphs":["../../etc/passwd"]}]}`
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected error for escaping manifest path")
	}
}

func TestLoadRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected error for corrupt manifest")
	}
}

func TestLoadRejectsMisclassifiedGraph(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Seed: 13, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 30}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt one graph file: replace with a graph of absurd
	// granularity for its class.
	g := dag.New("bogus")
	a := g.AddNode(1000000)
	b := g.AddNode(1000000)
	g.MustAddEdge(a, b, 1)
	f, err := os.Create(filepath.Join(dir, "set00-g000.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(dir); err == nil {
		t.Fatal("expected class-membership error")
	}
}
