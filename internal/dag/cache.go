package dag

import (
	"schedcomp/internal/bitset"
	"schedcomp/internal/obs"
)

// cacheCounters pairs the hit/miss counters for one analysis kind.
// The kind label set is the fixed list below — one value per memoized
// analysis — per the obs cardinality rules.
type cacheCounters struct{ hit, miss *obs.Counter }

func newCacheCounters(kind string) cacheCounters {
	reg := obs.Default()
	l := obs.L("kind", kind)
	return cacheCounters{
		hit:  reg.Counter("dag_cache_hits_total", "Analysis results served from the per-graph memo.", l),
		miss: reg.Counter("dag_cache_misses_total", "Analyses computed and memoized.", l),
	}
}

var (
	ccCSR      = newCacheCounters("csr")
	ccTopo     = newCacheCounters("topo")
	ccPos      = newCacheCounters("pos")
	ccBLComm   = newCacheCounters("blevels_comm")
	ccBLNoComm = newCacheCounters("blevels_nocomm")
	ccTLevels  = newCacheCounters("tlevels")
	ccALAP     = newCacheCounters("alap")
	ccCPLen    = newCacheCounters("cplen")
	ccCP       = newCacheCounters("cp")
	ccDesc     = newCacheCounters("desc")
	ccAnc      = newCacheCounters("anc")
	ccCanon    = newCacheCounters("canon")
)

// count records one lookup outcome.
func (cc cacheCounters) count(hit bool) {
	if hit {
		cc.hit.Inc()
	} else {
		cc.miss.Inc()
	}
}

// Analysis cache. Every O(V+E) analysis the heuristics share — the
// topological order and positions, b-levels with and without
// communication, t-levels, ALAP times, the critical path, and the
// descendant/ancestor closures — is computed at most once per graph
// revision and memoized on the Graph itself. A mutation generation
// counter guards the cache: every mutator (AddNode, AddEdge,
// RemoveEdge, SetWeight, SetEdgeWeight, MapEdgeWeights) discards the
// cached results, so a later read recomputes against the new shape.
//
// Thread-safety model: any number of goroutines may call the read-side
// accessors concurrently; the first one to need a result computes it
// under the graph's mutex and later ones return the shared memo.
// Mutations must not run concurrently with reads or other mutations —
// the same external-synchronization contract the adjacency slices
// always had — but the cache fields themselves are always accessed
// under the mutex, so a mutate-then-share handoff (gen, dup, the
// corpus builder) needs no extra fencing beyond the handoff itself.
//
// Slices and bit sets returned by the cached accessors are shared with
// the cache: callers must treat them as read-only. They remain valid
// after the graph mutates (holders keep a consistent snapshot of the
// revision they read), but they no longer describe the mutated graph.
type analysisCache struct {
	csr *CSR // flat adjacency view; nil until asked for

	hasTopo bool
	topo    []NodeID
	topoErr error

	pos []int // topo positions; nil until asked for

	blComm   []int64 // b-levels with communication
	blNoComm []int64 // b-levels without communication (Hu levels)
	tl       []int64 // t-levels
	alap     []int64 // ALAP start times

	hasCPLen bool
	cpLen    int64
	hasCP    bool
	cp       []NodeID

	desc []*bitset.Set
	anc  []*bitset.Set

	canon *canonInfo // canonical form (hash.go); nil until asked for
}

// invalidate discards all memoized analyses and bumps the revision
// counter. Every mutator calls it.
func (g *Graph) invalidate() {
	g.mu.Lock()
	g.gen++
	g.cache = nil
	g.mu.Unlock()
}

// Generation returns the graph's mutation revision counter. It
// increments on every mutation and exists so tests (and debugging
// aids) can assert cache invalidation behaviour.
func (g *Graph) Generation() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// ensureCache returns the cache for the current revision, allocating
// it on first use. The graph's mutex must be held.
func (g *Graph) ensureCache() *analysisCache {
	if g.cache == nil {
		g.cache = &analysisCache{}
	}
	return g.cache
}

// The xxxLocked accessors lazily fill one cache field each. The
// graph's mutex must be held; analyses freely call each other through
// these without re-locking.

func (g *Graph) topoLocked() ([]NodeID, error) {
	c := g.ensureCache()
	ccTopo.count(c.hasTopo)
	if !c.hasTopo {
		c.topo, c.topoErr = g.computeTopoOrder()
		c.hasTopo = true
	}
	return c.topo, c.topoErr
}

func (g *Graph) topoPositionsLocked() ([]int, error) {
	c := g.ensureCache()
	ccPos.count(c.pos != nil)
	if c.pos == nil {
		order, err := g.topoLocked()
		if err != nil {
			return nil, err
		}
		pos := make([]int, g.NumNodes())
		for i, v := range order {
			pos[v] = i
		}
		c.pos = pos
	}
	return c.pos, nil
}

func (g *Graph) blevelsLocked(withComm bool) ([]int64, error) {
	c := g.ensureCache()
	memo := &c.blComm
	cc := ccBLComm
	if !withComm {
		memo = &c.blNoComm
		cc = ccBLNoComm
	}
	cc.count(*memo != nil)
	if *memo == nil {
		order, err := g.topoLocked()
		if err != nil {
			return nil, err
		}
		*memo = g.computeBLevels(order, withComm)
	}
	return *memo, nil
}

func (g *Graph) tlevelsLocked() ([]int64, error) {
	c := g.ensureCache()
	ccTLevels.count(c.tl != nil)
	if c.tl == nil {
		order, err := g.topoLocked()
		if err != nil {
			return nil, err
		}
		c.tl = g.computeTLevels(order)
	}
	return c.tl, nil
}

func (g *Graph) criticalPathLengthLocked() (int64, error) {
	c := g.ensureCache()
	ccCPLen.count(c.hasCPLen)
	if !c.hasCPLen {
		lv, err := g.blevelsLocked(true)
		if err != nil {
			return 0, err
		}
		csr := g.csrLocked()
		var cp int64
		for i := range lv {
			if csr.InDegree(NodeID(i)) == 0 && lv[i] > cp {
				cp = lv[i]
			}
		}
		c.cpLen = cp
		c.hasCPLen = true
	}
	return c.cpLen, nil
}

func (g *Graph) alapLocked() ([]int64, error) {
	c := g.ensureCache()
	ccALAP.count(c.alap != nil)
	if c.alap == nil {
		lv, err := g.blevelsLocked(true)
		if err != nil {
			return nil, err
		}
		cp, err := g.criticalPathLengthLocked()
		if err != nil {
			return nil, err
		}
		alap := make([]int64, len(lv))
		for i := range lv {
			alap[i] = cp - lv[i]
		}
		c.alap = alap
	}
	return c.alap, nil
}

func (g *Graph) criticalPathLocked() ([]NodeID, error) {
	c := g.ensureCache()
	ccCP.count(c.hasCP)
	if !c.hasCP {
		lv, err := g.blevelsLocked(true)
		if err != nil {
			return nil, err
		}
		c.cp = g.computeCriticalPath(lv)
		c.hasCP = true
	}
	return c.cp, nil
}

func (g *Graph) descendantsLocked() ([]*bitset.Set, error) {
	c := g.ensureCache()
	ccDesc.count(c.desc != nil)
	if c.desc == nil {
		order, err := g.topoLocked()
		if err != nil {
			return nil, err
		}
		c.desc = g.computeDescendants(order)
	}
	return c.desc, nil
}

func (g *Graph) ancestorsLocked() ([]*bitset.Set, error) {
	c := g.ensureCache()
	ccAnc.count(c.anc != nil)
	if c.anc == nil {
		order, err := g.topoLocked()
		if err != nil {
			return nil, err
		}
		c.anc = g.computeAncestors(order)
	}
	return c.anc, nil
}
