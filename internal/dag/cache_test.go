package dag

import (
	"math/rand"
	"sync"
	"testing"
)

// buildDiamond returns the 4-node diamond a→{b,c}→d used by the
// invalidation tests.
func buildDiamond(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New("diamond")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	d := g.AddNode(40)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(a, c, 6)
	g.MustAddEdge(b, d, 7)
	g.MustAddEdge(c, d, 8)
	return g, a, b, c, d
}

func TestCacheMemoizesUntilMutation(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	o1, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := g.TopoOrder()
	if &o1[0] != &o2[0] {
		t.Error("TopoOrder not memoized: second call returned a fresh slice")
	}
	l1, _ := g.BLevels()
	l2, _ := g.BLevels()
	if &l1[0] != &l2[0] {
		t.Error("BLevels not memoized")
	}
	d1, _ := g.Descendants()
	d2, _ := g.Descendants()
	if d1[0] != d2[0] {
		t.Error("Descendants not memoized")
	}
}

// TestCacheInvalidationOnMutators mutates a graph after reading every
// cached analysis and asserts each mutator both bumps the generation
// counter and yields recomputed (correct) results.
func TestCacheInvalidationOnMutators(t *testing.T) {
	g, a, b, _, d := buildDiamond(t)

	read := func() (lv []int64, alap []int64, cp int64) {
		t.Helper()
		lv, err := g.BLevels()
		if err != nil {
			t.Fatal(err)
		}
		alap, err = g.ALAPTimes()
		if err != nil {
			t.Fatal(err)
		}
		cp, err = g.CriticalPathLength()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.TLevels(); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Ancestors(); err != nil {
			t.Fatal(err)
		}
		return lv, alap, cp
	}

	lv, _, cp := read()
	// a→c→d path: 10+6+30+8+40 = 94.
	if cp != 94 || lv[a] != 94 {
		t.Fatalf("baseline critical path = %d, level(a) = %d, want 94", cp, lv[a])
	}

	gen := g.Generation()
	g.SetWeight(b, 100)
	if g.Generation() == gen {
		t.Fatal("SetWeight did not bump the generation counter")
	}
	lv2, _, cp2 := read()
	// a→b→d path now dominates: 10+5+100+7+40 = 162.
	if cp2 != 162 {
		t.Fatalf("after SetWeight critical path = %d, want 162", cp2)
	}
	if &lv[0] == &lv2[0] {
		t.Fatal("BLevels slice reused across a mutation")
	}

	gen = g.Generation()
	if !g.SetEdgeWeight(a, b, 50) {
		t.Fatal("SetEdgeWeight failed")
	}
	if g.Generation() == gen {
		t.Fatal("SetEdgeWeight did not bump the generation counter")
	}
	if _, _, cp3 := read(); cp3 != 207 { // 10+50+100+7+40
		t.Fatalf("after SetEdgeWeight critical path = %d, want 207", cp3)
	}

	gen = g.Generation()
	if !g.RemoveEdge(a, b) {
		t.Fatal("RemoveEdge failed")
	}
	if g.Generation() == gen {
		t.Fatal("RemoveEdge did not bump the generation counter")
	}
	// b is now a source: 100+7+40 = 147.
	if _, _, cp4 := read(); cp4 != 147 {
		t.Fatalf("after RemoveEdge critical path = %d, want 147", cp4)
	}

	gen = g.Generation()
	e := g.AddNode(1000)
	if g.Generation() == gen {
		t.Fatal("AddNode did not bump the generation counter")
	}
	gen = g.Generation()
	g.MustAddEdge(d, e, 1)
	if g.Generation() == gen {
		t.Fatal("AddEdge did not bump the generation counter")
	}
	if _, _, cp5 := read(); cp5 != 1148 { // 147 + 1 + 1000
		t.Fatalf("after AddNode/AddEdge critical path = %d, want 1148", cp5)
	}

	gen = g.Generation()
	if !g.MapEdgeWeights(func(from, to NodeID, w int64) int64 { return w * 2 }) {
		t.Fatal("MapEdgeWeights reported no change")
	}
	if g.Generation() == gen {
		t.Fatal("MapEdgeWeights did not bump the generation counter")
	}
	// No-op rewrite must not invalidate.
	gen = g.Generation()
	if g.MapEdgeWeights(func(from, to NodeID, w int64) int64 { return w }) {
		t.Fatal("identity MapEdgeWeights reported a change")
	}
	if g.Generation() != gen {
		t.Fatal("identity MapEdgeWeights bumped the generation counter")
	}
}

func TestMapEdgeWeightsKeepsMirrorsConsistent(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	g.MapEdgeWeights(func(from, to NodeID, w int64) int64 { return w + 100 })
	for _, e := range g.Edges() {
		for _, p := range g.Preds(e.To) {
			if p.To == e.From && p.Weight != e.Weight {
				t.Fatalf("pred mirror of %d->%d holds %d, succ holds %d", e.From, e.To, p.Weight, e.Weight)
			}
		}
	}
	if w, _ := g.EdgeWeight(a, b); w != 105 {
		t.Fatalf("edge a->b = %d, want 105", w)
	}
	_ = c
	_ = d
}

// TestCacheSnapshotsSurviveMutation: holders of a cached slice keep a
// consistent snapshot of the revision they read even after the graph
// mutates (the gen adjuster relies on this for its descendant
// closure).
func TestCacheSnapshotsSurviveMutation(t *testing.T) {
	g, a, _, c, d := buildDiamond(t)
	desc, err := g.Descendants()
	if err != nil {
		t.Fatal(err)
	}
	before := desc[a].Count()
	e := g.AddNode(5)
	g.MustAddEdge(d, e, 1)
	if desc[a].Count() != before {
		t.Fatal("held snapshot changed under mutation")
	}
	fresh, err := g.Descendants()
	if err != nil {
		t.Fatal(err)
	}
	if fresh[a].Len() != 5 || !fresh[a].Contains(int(e)) {
		t.Fatal("fresh Descendants does not reflect the mutation")
	}
	_ = c
}

// TestConcurrentAnalysisReads hammers one graph's cached analyses from
// many goroutines at once. Run under -race this checks the
// thread-safety contract: concurrent lazy computation and cache hits
// must be free of data races, and every reader must observe identical
// results.
func TestConcurrentAnalysisReads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New("hammer")
	const n = 200
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + rng.Intn(50)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+12 && j < n; j++ {
			if rng.Intn(3) == 0 {
				g.MustAddEdge(NodeID(i), NodeID(j), int64(1+rng.Intn(30)))
			}
		}
	}
	wantCP, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	// Discard the warm cache so the workers race on first computation.
	g.invalidate()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				order, err := g.TopoOrder()
				if err != nil || len(order) != n {
					errs <- "bad topo order"
					return
				}
				switch (w + iter) % 6 {
				case 0:
					if _, err := g.BLevels(); err != nil {
						errs <- err.Error()
						return
					}
				case 1:
					if _, err := g.TLevels(); err != nil {
						errs <- err.Error()
						return
					}
				case 2:
					if _, err := g.ALAPTimes(); err != nil {
						errs <- err.Error()
						return
					}
				case 3:
					if _, err := g.Descendants(); err != nil {
						errs <- err.Error()
						return
					}
				case 4:
					if _, err := g.Ancestors(); err != nil {
						errs <- err.Error()
						return
					}
				case 5:
					if _, err := g.TopoPositions(); err != nil {
						errs <- err.Error()
						return
					}
				}
				cp, err := g.CriticalPathLength()
				if err != nil || cp != wantCP {
					errs <- "critical path diverged across goroutines"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestCachedErrorOnCycle(t *testing.T) {
	// Build a cyclic "graph" by reaching into the representation the
	// way the fuzz harness does: two nodes with mutual edges. AddEdge
	// forbids duplicates but not cycles (Validate's job).
	g := New("cycle")
	a := g.AddNode(1)
	b := g.AddNode(1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, a, 1)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cyclic graph ordered")
	}
	// The error must be memoized and consistently returned by every
	// dependent analysis.
	if _, err := g.BLevels(); err == nil {
		t.Fatal("BLevels succeeded on cyclic graph")
	}
	if _, err := g.Descendants(); err == nil {
		t.Fatal("Descendants succeeded on cyclic graph")
	}
	// Breaking the cycle must clear the cached error.
	if !g.RemoveEdge(b, a) {
		t.Fatal("RemoveEdge failed")
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatalf("acyclic graph failed to order after cache invalidation: %v", err)
	}
}
