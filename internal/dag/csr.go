package dag

// CSR is a flat, struct-of-arrays compressed-sparse-row view of a
// graph's adjacency: node v's outgoing arcs are SuccTo[SuccOff[v]:
// SuccOff[v+1]] with weights at the same indices of SuccW, and the
// incoming mirror works the same way through PredOff/PredFrom/PredW.
// Arc order matches the mutation-time [][]Arc representation exactly
// (insertion order per endpoint), so an algorithm ported from
// Succs/Preds to the CSR view visits neighbours in the identical
// sequence and produces byte-identical results.
//
// The view is materialized lazily into the graph's analysis cache and
// invalidated by the same generation counter as every other memoized
// analysis: [][]Arc stays the representation mutations work on, while
// every scheduler inner loop iterates these contiguous slices with no
// per-node pointer chase. Like the other cached results, a CSR is a
// shared read-only snapshot — callers must not write its slices, and a
// view obtained before a mutation keeps describing the old revision,
// not the mutated graph.
type CSR struct {
	n int

	SuccOff []int32
	SuccTo  []NodeID
	SuccW   []int64

	PredOff []int32
	// PredFrom holds the predecessor node of each incoming arc (what
	// Preds exposes as Arc.To).
	PredFrom []NodeID
	PredW    []int64
}

// NumNodes returns the number of nodes in the viewed revision.
func (c *CSR) NumNodes() int { return c.n }

// NumEdges returns the number of edges in the viewed revision.
func (c *CSR) NumEdges() int { return len(c.SuccTo) }

// Succs returns node v's successor IDs and the matching edge weights.
func (c *CSR) Succs(v NodeID) ([]NodeID, []int64) {
	lo, hi := c.SuccOff[v], c.SuccOff[v+1]
	return c.SuccTo[lo:hi], c.SuccW[lo:hi]
}

// Preds returns node v's predecessor IDs and the matching edge weights.
func (c *CSR) Preds(v NodeID) ([]NodeID, []int64) {
	lo, hi := c.PredOff[v], c.PredOff[v+1]
	return c.PredFrom[lo:hi], c.PredW[lo:hi]
}

// OutDegree returns the number of outgoing edges of v.
func (c *CSR) OutDegree(v NodeID) int { return int(c.SuccOff[v+1] - c.SuccOff[v]) }

// InDegree returns the number of incoming edges of v.
func (c *CSR) InDegree(v NodeID) int { return int(c.PredOff[v+1] - c.PredOff[v]) }

// CSR returns the flat adjacency view of the current revision,
// materializing it on first use. The result is memoized per graph
// revision and shared: callers must treat every slice as read-only.
func (g *Graph) CSR() *CSR {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.csrLocked()
}

func (g *Graph) csrLocked() *CSR {
	c := g.ensureCache()
	ccCSR.count(c.csr != nil)
	if c.csr == nil {
		c.csr = g.buildCSR()
	}
	return c.csr
}

// buildCSR flattens both adjacency mirrors into contiguous arrays. Two
// backing allocations per direction (IDs and weights) plus the offset
// arrays — six total, whatever the node count.
func (g *Graph) buildCSR() *CSR {
	n := len(g.weights)
	csr := &CSR{
		n:        n,
		SuccOff:  make([]int32, n+1),
		SuccTo:   make([]NodeID, g.edges),
		SuccW:    make([]int64, g.edges),
		PredOff:  make([]int32, n+1),
		PredFrom: make([]NodeID, g.edges),
		PredW:    make([]int64, g.edges),
	}
	var so, po int32
	for v := 0; v < n; v++ {
		csr.SuccOff[v] = so
		for _, a := range g.succ[v] {
			csr.SuccTo[so] = a.To
			csr.SuccW[so] = a.Weight
			so++
		}
		csr.PredOff[v] = po
		for _, a := range g.pred[v] {
			csr.PredFrom[po] = a.To
			csr.PredW[po] = a.Weight
			po++
		}
	}
	csr.SuccOff[n] = so
	csr.PredOff[n] = po
	return csr
}
