package dag

import (
	"math/rand"
	"sync"
	"testing"
)

// assertCSRMatches checks every field of the CSR view against the
// [][]Arc representation: adjacency contents in identical order, both
// mirrors, degrees, and the derived analyses that now sweep the view.
func assertCSRMatches(t *testing.T, g *Graph) {
	t.Helper()
	csr := g.CSR()
	n := g.NumNodes()
	if csr.NumNodes() != n {
		t.Fatalf("CSR has %d nodes, graph has %d", csr.NumNodes(), n)
	}
	if csr.NumEdges() != g.NumEdges() {
		t.Fatalf("CSR has %d edges, graph has %d", csr.NumEdges(), g.NumEdges())
	}
	for v := NodeID(0); int(v) < n; v++ {
		succs, sw := csr.Succs(v)
		arcs := g.Succs(v)
		if len(succs) != len(arcs) || csr.OutDegree(v) != len(arcs) {
			t.Fatalf("node %d: CSR out-degree %d, graph %d", v, len(succs), len(arcs))
		}
		for i, a := range arcs {
			if succs[i] != a.To || sw[i] != a.Weight {
				t.Fatalf("node %d succ[%d]: CSR (%d,%d), graph (%d,%d)",
					v, i, succs[i], sw[i], a.To, a.Weight)
			}
		}
		preds, pw := csr.Preds(v)
		parcs := g.Preds(v)
		if len(preds) != len(parcs) || csr.InDegree(v) != len(parcs) {
			t.Fatalf("node %d: CSR in-degree %d, graph %d", v, len(preds), len(parcs))
		}
		for i, a := range parcs {
			if preds[i] != a.To || pw[i] != a.Weight {
				t.Fatalf("node %d pred[%d]: CSR (%d,%d), graph (%d,%d)",
					v, i, preds[i], pw[i], a.To, a.Weight)
			}
		}
	}
}

// oracleTopoLevels recomputes the topological order and b-levels
// directly over the [][]Arc representation, bypassing the cache and
// the CSR sweep, as an independent oracle.
func oracleTopoLevels(t *testing.T, g *Graph) ([]NodeID, []int64) {
	t.Helper()
	n := g.NumNodes()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Preds(NodeID(i)))
	}
	var ready []NodeID
	push := func(v NodeID) {
		i := len(ready)
		ready = append(ready, v)
		for i > 0 && ready[i-1] > v {
			ready[i] = ready[i-1]
			i--
		}
		ready[i] = v
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			push(NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, a := range g.Succs(v) {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				push(a.To)
			}
		}
	}
	if len(order) != n {
		t.Fatalf("oracle: cycle (%d of %d ordered)", len(order), n)
	}
	lv := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		var best int64
		for _, a := range g.Succs(v) {
			if c := lv[a.To] + a.Weight; c > best {
				best = c
			}
		}
		lv[v] = g.Weight(v) + best
	}
	return order, lv
}

// TestCSRMatchesAdjacency interleaves random mutations with reads and
// asserts, after every generation bump, that the freshly materialized
// CSR view, the topological order and the levels all agree with the
// [][]Arc representation.
func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		g := New("csr-equiv")
		var nodes []NodeID
		for i := 0; i < 4; i++ {
			nodes = append(nodes, g.AddNode(int64(1+rng.Intn(9))))
		}
		for step := 0; step < 60; step++ {
			switch op := rng.Intn(6); {
			case op == 0:
				nodes = append(nodes, g.AddNode(int64(1+rng.Intn(9))))
			case op <= 2: // bias toward inserting edges
				u := nodes[rng.Intn(len(nodes))]
				v := nodes[rng.Intn(len(nodes))]
				if u < v { // forward in ID order keeps it acyclic
					_ = g.AddEdge(u, v, int64(rng.Intn(7)))
				}
			case op == 3:
				edges := g.Edges()
				if len(edges) > 0 {
					e := edges[rng.Intn(len(edges))]
					g.RemoveEdge(e.From, e.To)
				}
			case op == 4:
				g.SetWeight(nodes[rng.Intn(len(nodes))], int64(1+rng.Intn(9)))
			default:
				edges := g.Edges()
				if len(edges) > 0 {
					e := edges[rng.Intn(len(edges))]
					g.SetEdgeWeight(e.From, e.To, int64(rng.Intn(7)))
				}
			}
			if step%2 == 0 {
				continue // also exercise multi-mutation gaps between reads
			}
			assertCSRMatches(t, g)
			wantOrder, wantLv := oracleTopoLevels(t, g)
			gotOrder, err := g.TopoOrder()
			if err != nil {
				t.Fatal(err)
			}
			gotLv, err := g.BLevels()
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantOrder {
				if gotOrder[i] != wantOrder[i] {
					t.Fatalf("topo[%d] = %d, oracle %d", i, gotOrder[i], wantOrder[i])
				}
			}
			for i := range wantLv {
				if gotLv[i] != wantLv[i] {
					t.Fatalf("level[%d] = %d, oracle %d", i, gotLv[i], wantLv[i])
				}
			}
		}
	}
}

// TestCSRMemoizedUntilMutation pins the snapshot contract: the view is
// shared until the next generation bump, and a view captured before a
// mutation keeps describing the revision it was read from.
func TestCSRMemoizedUntilMutation(t *testing.T) {
	g, a, b, _, _ := buildDiamond(t)
	c1 := g.CSR()
	if c2 := g.CSR(); c1 != c2 {
		t.Fatal("CSR not memoized: second read returned a fresh view")
	}
	wantEdges := c1.NumEdges()
	if !g.RemoveEdge(a, b) {
		t.Fatal("RemoveEdge failed")
	}
	if c1.NumEdges() != wantEdges {
		t.Fatal("captured CSR snapshot changed under a mutation")
	}
	c3 := g.CSR()
	if c3 == c1 {
		t.Fatal("CSR view survived a generation bump")
	}
	if c3.NumEdges() != wantEdges-1 {
		t.Fatalf("post-mutation CSR has %d edges, want %d", c3.NumEdges(), wantEdges-1)
	}
	succs, _ := c3.Succs(a)
	for _, to := range succs {
		if to == b {
			t.Fatal("post-mutation CSR still lists the removed edge")
		}
	}
}

// TestCSRConcurrentReads hammers the lazy materialization: many
// goroutines race to be the first to build the view on a cold cache
// (and to read every other analysis through it) across repeated
// invalidation rounds. Run with -race in CI.
func TestCSRConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := New("csr-race")
	var nodes []NodeID
	for i := 0; i < 60; i++ {
		nodes = append(nodes, g.AddNode(int64(1+rng.Intn(9))))
	}
	for i := 0; i < 200; i++ {
		u := nodes[rng.Intn(len(nodes))]
		v := nodes[rng.Intn(len(nodes))]
		if u < v {
			_ = g.AddEdge(u, v, int64(rng.Intn(5)))
		}
	}

	for round := 0; round < 8; round++ {
		// Mutation between rounds (single-threaded, per the graph's
		// external-synchronization contract) leaves the cache cold.
		g.SetWeight(nodes[round], int64(10+round))

		var wg sync.WaitGroup
		start := make(chan struct{})
		errs := make(chan string, 16)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				csr := g.CSR()
				var touched int64
				for v := NodeID(0); int(v) < csr.NumNodes(); v++ {
					_, ws := csr.Succs(v)
					preds, _ := csr.Preds(v)
					for _, w := range ws {
						touched += w
					}
					touched += int64(len(preds))
				}
				if _, err := g.TopoOrder(); err != nil {
					errs <- err.Error()
				}
				if _, err := g.BLevels(); err != nil {
					errs <- err.Error()
				}
				if csr2 := g.CSR(); csr2 != csr {
					errs <- "CSR view changed without a mutation"
				}
				_ = touched
			}()
		}
		close(start)
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

// TestCSREmptyGraph covers the zero-node and zero-edge corners.
func TestCSREmptyGraph(t *testing.T) {
	g := New("empty")
	csr := g.CSR()
	if csr.NumNodes() != 0 || csr.NumEdges() != 0 {
		t.Fatalf("empty graph CSR: %d nodes, %d edges", csr.NumNodes(), csr.NumEdges())
	}
	v := g.AddNode(3)
	csr = g.CSR()
	if csr.NumNodes() != 1 || csr.OutDegree(v) != 0 || csr.InDegree(v) != 0 {
		t.Fatal("single isolated node CSR malformed")
	}
}
