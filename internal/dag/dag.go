// Package dag implements the weighted directed acyclic graphs used as
// program dependence graphs (PDGs) throughout the scheduling testbed.
//
// Each node carries a weight (its execution time) and each edge carries
// a weight (the communication cost paid when the two endpoints run on
// different processors). The package provides construction, validation,
// topological traversal, reachability, the classic path metrics used by
// the heuristics (b-level, t-level, ALAP time, critical path), the graph
// classification metrics from the paper (granularity, anchor out-degree,
// node weight range), and JSON/DOT serialization.
package dag

import (
	"errors"
	"fmt"
	"sync"
)

// NodeID identifies a node within one Graph. IDs are dense: a graph
// with n nodes uses IDs 0..n-1 in insertion order.
type NodeID int32

// Arc is one outgoing or incoming edge endpoint: the neighbour and the
// communication weight of the edge.
type Arc struct {
	To     NodeID
	Weight int64
}

// Edge is a fully specified edge, used for iteration and serialization.
type Edge struct {
	From   NodeID
	To     NodeID
	Weight int64
}

// Graph is a weighted DAG. The zero value is an empty graph ready for
// use, but most callers use New to attach a name.
//
// Graphs memoize their derived analyses (topological order, levels,
// reachability closures — see cache.go). Reads may run concurrently
// from any number of goroutines; mutations require the same external
// synchronization against reads that the adjacency accessors always
// required. Graphs must not be copied by value after first use.
type Graph struct {
	name    string
	weights []int64
	succ    [][]Arc
	pred    [][]Arc
	edges   int

	mu    sync.Mutex // guards gen and cache
	gen   uint64     // mutation revision counter
	cache *analysisCache
}

// New returns an empty graph with the given name.
func New(name string) *Graph { return &Graph{name: name} }

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName renames the graph. The name is reporting metadata, not an
// analysis input, so the rename deliberately leaves the cache
// generation alone.
//lint:nobump name does not feed any cached analysis
func (g *Graph) SetName(name string) { g.name = name }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.weights) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddNode appends a node with the given execution weight and returns
// its ID. Weights must be positive; AddNode panics otherwise, since a
// non-positive task time is always a construction bug.
func (g *Graph) AddNode(weight int64) NodeID {
	if weight <= 0 {
		panic(fmt.Sprintf("dag: non-positive node weight %d", weight))
	}
	g.weights = append(g.weights, weight)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.invalidate()
	return NodeID(len(g.weights) - 1)
}

// Errors returned by edge construction.
var (
	ErrSelfLoop      = errors.New("dag: self loop")
	ErrDuplicateEdge = errors.New("dag: duplicate edge")
	ErrNoSuchNode    = errors.New("dag: node out of range")
	ErrBadWeight     = errors.New("dag: edge weight must be non-negative")
	ErrCycle         = errors.New("dag: graph contains a cycle")
)

// AddEdge inserts the edge from→to with the given communication weight.
// It rejects self loops, duplicate edges, unknown endpoints and negative
// weights. It does not check acyclicity (Validate does).
func (g *Graph) AddEdge(from, to NodeID, weight int64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("%w: %d -> %d in graph of %d nodes", ErrNoSuchNode, from, to, g.NumNodes())
	}
	if from == to {
		return fmt.Errorf("%w: %d", ErrSelfLoop, from)
	}
	if weight < 0 {
		return fmt.Errorf("%w: %d", ErrBadWeight, weight)
	}
	for _, a := range g.succ[from] {
		if a.To == to {
			return fmt.Errorf("%w: %d -> %d", ErrDuplicateEdge, from, to)
		}
	}
	g.succ[from] = append(g.succ[from], Arc{To: to, Weight: weight})
	g.pred[to] = append(g.pred[to], Arc{To: from, Weight: weight})
	g.edges++
	g.invalidate()
	return nil
}

// addEdgeUnchecked inserts an edge whose endpoints, weight and
// uniqueness the caller has already verified. The wire decoder and the
// canonical clone use it to skip AddEdge's linear duplicate scan, which
// is quadratic in the out-degree for hub-shaped graphs.
func (g *Graph) addEdgeUnchecked(from, to NodeID, weight int64) {
	g.succ[from] = append(g.succ[from], Arc{To: to, Weight: weight})
	g.pred[to] = append(g.pred[to], Arc{To: from, Weight: weight})
	g.edges++
	g.invalidate()
}

// MustAddEdge is AddEdge that panics on error; for hand-built graphs in
// tests and examples.
func (g *Graph) MustAddEdge(from, to NodeID, weight int64) {
	if err := g.AddEdge(from, to, weight); err != nil {
		panic("dag: MustAddEdge: " + err.Error())
	}
}

// RemoveEdge deletes the edge from→to if present and reports whether it
// existed.
func (g *Graph) RemoveEdge(from, to NodeID) bool {
	if !g.valid(from) || !g.valid(to) {
		return false
	}
	found := false
	for i, a := range g.succ[from] {
		if a.To == to {
			g.succ[from] = append(g.succ[from][:i], g.succ[from][i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for i, a := range g.pred[to] {
		if a.To == from {
			g.pred[to] = append(g.pred[to][:i], g.pred[to][i+1:]...)
			break
		}
	}
	g.edges--
	g.invalidate()
	return true
}

// Weight returns the execution weight of node n.
func (g *Graph) Weight(n NodeID) int64 { return g.weights[n] }

// SetWeight changes the execution weight of node n.
func (g *Graph) SetWeight(n NodeID, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("dag: non-positive node weight %d", w))
	}
	g.weights[n] = w
	g.invalidate()
}

// EdgeWeight returns the weight of edge from→to and whether it exists.
func (g *Graph) EdgeWeight(from, to NodeID) (int64, bool) {
	if !g.valid(from) {
		return 0, false
	}
	for _, a := range g.succ[from] {
		if a.To == to {
			return a.Weight, true
		}
	}
	return 0, false
}

// SetEdgeWeight updates the weight of an existing edge and reports
// whether the edge was found.
func (g *Graph) SetEdgeWeight(from, to NodeID, w int64) bool {
	if !g.valid(from) || w < 0 {
		return false
	}
	for i, a := range g.succ[from] {
		if a.To == to {
			g.succ[from][i].Weight = w
			for j, p := range g.pred[to] {
				if p.To == from {
					g.pred[to][j].Weight = w
					break
				}
			}
			g.invalidate()
			return true
		}
	}
	return false
}

// MapEdgeWeights rewrites every edge weight in one pass: f receives
// each edge (in the deterministic Edges order) and returns its new
// weight, which must be non-negative. Both adjacency mirrors are
// updated and the analysis cache is invalidated once, so bulk
// recalibration (the generator's granularity walk) avoids the
// per-edge lookup and invalidation cost of SetEdgeWeight. It reports
// whether any weight changed.
func (g *Graph) MapEdgeWeights(f func(from, to NodeID, w int64) int64) bool {
	changed := false
	for u := range g.succ {
		for i := range g.succ[u] {
			a := &g.succ[u][i]
			nw := f(NodeID(u), a.To, a.Weight)
			if nw < 0 {
				panic(fmt.Sprintf("dag: MapEdgeWeights produced negative weight %d", nw))
			}
			if nw == a.Weight {
				continue
			}
			a.Weight = nw
			for j := range g.pred[a.To] {
				if g.pred[a.To][j].To == NodeID(u) {
					g.pred[a.To][j].Weight = nw
					break
				}
			}
			changed = true
		}
	}
	if changed {
		g.invalidate()
	}
	return changed
}

// Succs returns the outgoing arcs of n. Callers must not mutate the
// returned slice.
func (g *Graph) Succs(n NodeID) []Arc { return g.succ[n] }

// Preds returns the incoming arcs of n (Arc.To holds the predecessor).
// Callers must not mutate the returned slice.
func (g *Graph) Preds(n NodeID) []Arc { return g.pred[n] }

// OutDegree returns the number of outgoing edges of n.
func (g *Graph) OutDegree(n NodeID) int { return len(g.succ[n]) }

// InDegree returns the number of incoming edges of n.
func (g *Graph) InDegree(n NodeID) int { return len(g.pred[n]) }

// Sources returns the nodes with no predecessors, in ID order.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for i := range g.weights {
		if len(g.pred[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Sinks returns the nodes with no successors, in ID order.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for i := range g.weights {
		if len(g.succ[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Edges returns every edge, ordered by (From, insertion order).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.succ {
		for _, a := range g.succ[u] {
			out = append(out, Edge{From: NodeID(u), To: a.To, Weight: a.Weight})
		}
	}
	return out
}

// SerialTime returns the sum of all node weights: the completion time of
// the whole program on a single processor.
func (g *Graph) SerialTime() int64 {
	var t int64
	for _, w := range g.weights {
		t += w
	}
	return t
}

// Clone returns a deep copy of the graph. The copy starts with an
// empty analysis cache at revision zero.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:    g.name,
		weights: append([]int64(nil), g.weights...),
		succ:    make([][]Arc, len(g.succ)),
		pred:    make([][]Arc, len(g.pred)),
		edges:   g.edges,
	}
	for i := range g.succ {
		c.succ[i] = append([]Arc(nil), g.succ[i]...)
		c.pred[i] = append([]Arc(nil), g.pred[i]...)
	}
	return c
}

// Validate checks structural invariants: acyclicity and positive node
// weights. It returns nil for a well-formed PDG.
func (g *Graph) Validate() error {
	for i, w := range g.weights {
		if w <= 0 {
			return fmt.Errorf("dag: node %d has non-positive weight %d", i, w)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.weights) }
