package dag

import (
	"errors"
	"testing"
)

// diamond builds a 4-node diamond: 0 -> {1,2} -> 3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	d := g.AddNode(40)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 2)
	g.MustAddEdge(b, d, 3)
	g.MustAddEdge(c, d, 4)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New("t")
	for i := 0; i < 5; i++ {
		if id := g.AddNode(int64(i + 1)); id != NodeID(i) {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddNodeRejectsNonPositiveWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddNode(0) did not panic")
		}
	}()
	New("t").AddNode(0)
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("t")
	a := g.AddNode(1)
	b := g.AddNode(1)
	if err := g.AddEdge(a, a, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v", err)
	}
	if err := g.AddEdge(a, 99, 1); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("bad node: got %v", err)
	}
	if err := g.AddEdge(a, b, -1); !errors.Is(err, ErrBadWeight) {
		t.Errorf("bad weight: got %v", err)
	}
	if err := g.AddEdge(a, b, 7); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b, 7); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate: got %v", err)
	}
}

func TestEdgeAccessors(t *testing.T) {
	g := diamond(t)
	if w, ok := g.EdgeWeight(0, 2); !ok || w != 2 {
		t.Errorf("EdgeWeight(0,2) = %d,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(1, 2); ok {
		t.Error("nonexistent edge reported present")
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", d)
	}
	if d := g.InDegree(3); d != 2 {
		t.Errorf("InDegree(3) = %d, want 2", d)
	}
}

func TestSetEdgeWeightUpdatesBothDirections(t *testing.T) {
	g := diamond(t)
	if !g.SetEdgeWeight(0, 1, 42) {
		t.Fatal("SetEdgeWeight failed")
	}
	if w, _ := g.EdgeWeight(0, 1); w != 42 {
		t.Errorf("succ weight = %d", w)
	}
	for _, a := range g.Preds(1) {
		if a.To == 0 && a.Weight != 42 {
			t.Errorf("pred weight = %d", a.Weight)
		}
	}
	if g.SetEdgeWeight(1, 0, 5) {
		t.Error("SetEdgeWeight on missing edge returned true")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := diamond(t)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("second RemoveEdge returned true")
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if _, ok := g.EdgeWeight(0, 1); ok {
		t.Error("edge still present")
	}
	if g.InDegree(1) != 0 {
		t.Error("pred list not updated")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("Sinks = %v", s)
	}
}

func TestSerialTime(t *testing.T) {
	if got := diamond(t).SerialTime(); got != 100 {
		t.Errorf("SerialTime = %d, want 100", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.SetWeight(0, 99)
	c.RemoveEdge(0, 1)
	if g.Weight(0) != 10 || g.NumEdges() != 4 {
		t.Error("mutating the clone affected the original")
	}
	if c.Name() != g.Name() {
		t.Error("clone lost the name")
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := New("cyclic")
	a := g.AddNode(1)
	b := g.AddNode(1)
	c := g.AddNode(1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 0)
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate = %v, want cycle error", err)
	}
}

func TestValidateOK(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := diamond(t)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("Edges returned %d, want 4", len(es))
	}
	seen := map[[2]NodeID]int64{}
	for _, e := range es {
		seen[[2]NodeID{e.From, e.To}] = e.Weight
	}
	if seen[[2]NodeID{2, 3}] != 4 {
		t.Errorf("edge 2->3 weight = %d, want 4", seen[[2]NodeID{2, 3}])
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New("")
	if g.SerialTime() != 0 || g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("empty graph invalid: %v", err)
	}
	if order, err := g.TopoOrder(); err != nil || len(order) != 0 {
		t.Errorf("TopoOrder = %v, %v", order, err)
	}
}
