package dag_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"schedcomp/internal/dag"
)

// FuzzGraphJSONRoundTrip feeds arbitrary bytes to the JSON decoder.
// Inputs the decoder rejects are fine; inputs it accepts must survive a
// marshal/unmarshal round trip with identical structure, and the
// marshaled form must be a fixed point (marshal∘unmarshal∘marshal is
// the identity on the wire bytes).
func FuzzGraphJSONRoundTrip(f *testing.F) {
	seed := dag.New("seed")
	a := seed.AddNode(3)
	b := seed.AddNode(5)
	c := seed.AddNode(7)
	seed.MustAddEdge(a, b, 2)
	seed.MustAddEdge(a, c, 4)
	var buf bytes.Buffer
	if err := seed.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"name":"x","nodes":[1,2],"edges":[{"from":0,"to":1,"weight":0}]}`))
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":1,"to":0,"weight":1},{"from":0,"to":1,"weight":1}]}`))
	f.Add([]byte(`{"nodes":[-1]}`))
	f.Add([]byte(`not json at all`))
	// Wire-validation rejection paths: self loop, duplicate edge,
	// out-of-range endpoint, negative edge weight, oversized name, and
	// trailing data after a valid object.
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":0,"to":0,"weight":1}]}`))
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":0,"to":1,"weight":1},{"from":0,"to":1,"weight":2}]}`))
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":0,"to":5,"weight":1}]}`))
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":-1,"to":1,"weight":1}]}`))
	f.Add([]byte(`{"nodes":[1,2],"edges":[{"from":0,"to":1,"weight":-1}]}`))
	f.Add(append(append([]byte(`{"name":"`), bytes.Repeat([]byte("A"), dag.MaxWireName+1)...), []byte(`","nodes":[1]}`)...))
	f.Add([]byte(`{"nodes":[1],"edges":[]}{"nodes":[2],"edges":[]}`))
	f.Add([]byte(`{"nodes":[1],"edges":[]}garbage`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := dag.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input; the decoder just must not panic
		}
		out1, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("marshal of accepted graph failed: %v", err)
		}
		g2, err := dag.ReadJSON(bytes.NewReader(out1))
		if err != nil {
			t.Fatalf("re-decode of own output failed: %v\noutput: %s", err, out1)
		}
		out2, err := json.Marshal(g2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("marshal not a fixed point:\n first: %s\nsecond: %s", out1, out2)
		}
		if g.Name() != g2.Name() || g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			t.Fatalf("structure changed: (%q,%d,%d) vs (%q,%d,%d)",
				g.Name(), g.NumNodes(), g.NumEdges(), g2.Name(), g2.NumNodes(), g2.NumEdges())
		}
		for i := 0; i < g.NumNodes(); i++ {
			if g.Weight(dag.NodeID(i)) != g2.Weight(dag.NodeID(i)) {
				t.Fatalf("weight of node %d changed", i)
			}
		}
		for _, e := range g.Edges() {
			w, ok := g2.EdgeWeight(e.From, e.To)
			if !ok || w != e.Weight {
				t.Fatalf("edge %d->%d (weight %d) lost or changed", e.From, e.To, e.Weight)
			}
		}
	})
}
