package dag

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"slices"
	"sort"
)

// Canonical content hashing.
//
// A Fingerprint identifies a graph by structure and weights alone:
// two graphs receive the same fingerprint exactly when one can be
// turned into the other by renaming nodes (the graph name, node IDs
// and edge insertion order are all invisible to the hash; every node
// and edge weight is load-bearing). The construction is the classic
// iterated Weisfeiler–Leman (WL) colour refinement run over the CSR
// view, followed by a deterministic individualization cascade that
// turns the stable colour partition into a total node order, and a
// SHA-256 over the canonical wire encoding written in that order.
//
//   - Round 0 colours a node by its execution weight.
//   - Each round rehashes a node's colour with the sorted multisets of
//     (edge weight, neighbour colour) pairs over its successors and
//     predecessors; rounds repeat until the partition stops refining.
//   - While colour classes with more than one node remain, the
//     smallest class is split: each member is trial-individualized and
//     refined, and the member whose refined colour multiset is
//     lexicographically smallest wins. Automorphic members tie, and
//     picking any of them yields the identical canonical form.
//   - Any still-tied nodes (possible only for WL-indistinguishable,
//     non-automorphic nodes — pathological for weighted DAGs) are
//     ordered by original ID. Such graphs may hash differently under
//     relabeling, but never collide with a different graph: the
//     canonical encoding always describes the graph exactly, so
//     consumers that compare encodings (internal/schedcache) stay
//     sound even there.
//
// Like every other memoized analysis, the canonical form is computed
// at most once per graph revision and shared; CanonicalPerm and
// CanonicalEncoding return views the caller must treat as read-only.

// Fingerprint is the canonical content hash of a graph: SHA-256 over
// the canonical encoding.
type Fingerprint [32]byte

// String returns the fingerprint in hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// canonInfo is the memoized canonical form of one graph revision.
type canonInfo struct {
	hash Fingerprint
	perm []NodeID // perm[v] = v's index in canonical order
	enc  []byte   // canonical wire encoding
}

// CanonicalHash returns the graph's canonical content hash. The result
// is memoized per revision.
func (g *Graph) CanonicalHash() Fingerprint {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.canonicalLocked().hash
}

// CanonicalPerm returns the canonical relabeling: node v of this graph
// is node CanonicalPerm()[v] of the canonical form. The slice is a
// shared cache view; callers must not mutate it.
func (g *Graph) CanonicalPerm() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.canonicalLocked().perm
}

// CanonicalEncoding returns the canonical wire encoding the hash is
// computed over. Two graphs have equal encodings exactly when they are
// equal up to node renaming, which makes the encoding the collision-
// proof identity behind the fingerprint. The slice is a shared cache
// view; callers must not mutate it.
func (g *Graph) CanonicalEncoding() []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.canonicalLocked().enc
}

// CanonicalClone returns a fresh copy of the graph relabeled into
// canonical index space (node v of the receiver becomes node
// CanonicalPerm()[v] of the clone), with an empty name and edges
// inserted in canonical order. Any two graphs with equal canonical
// encodings produce byte-identical clones, so a deterministic
// algorithm run on the clone gives the same answer no matter which
// member of the isomorphism class it came from.
func (g *Graph) CanonicalClone() *Graph {
	g.mu.Lock()
	ci := g.canonicalLocked()
	perm := ci.perm
	n := len(g.weights)
	weights := make([]int64, n)
	for v, w := range g.weights {
		weights[perm[v]] = w
	}
	edges := make([]Edge, 0, g.edges)
	for u := range g.succ {
		for _, a := range g.succ[u] {
			edges = append(edges, Edge{From: perm[u], To: perm[a.To], Weight: a.Weight})
		}
	}
	g.mu.Unlock()

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	c := New("")
	for _, w := range weights {
		c.AddNode(w)
	}
	for _, e := range edges {
		c.addEdgeUnchecked(e.From, e.To, e.Weight)
	}
	return c
}

// canonicalLocked returns the memoized canonical form, computing it on
// first use. The graph's mutex must be held.
func (g *Graph) canonicalLocked() *canonInfo {
	c := g.ensureCache()
	ccCanon.count(c.canon != nil)
	if c.canon == nil {
		c.canon = g.computeCanonical()
	}
	return c.canon
}

// Mixing constants and stream tags. The exact values are arbitrary;
// changing any of them changes every fingerprint, so they are fixed
// for the life of the format version encoded in canonMagic.
const (
	canonMagic = "schedcanon\x01"

	canonSeedWeight = 0x9e3779b97f4a7c15
	canonSeedRound  = 0xbf58476d1ce4e5b9
	canonSeedSep    = 0x94d049bb133111eb
	canonSeedIndiv  = 0x2545f4914f6cdd1d
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mix2 combines two words order-sensitively.
func mix2(a, b uint64) uint64 {
	return mix64(a ^ (b*0x9e3779b97f4a7c15 + 0x165667b19e3779f9))
}

// colorArc is one (neighbour colour, edge weight) pair of a node's
// refinement signature.
type colorArc struct {
	c uint64
	w int64
}

// refiner holds the scratch state of one canonicalization.
type refiner struct {
	csr    *CSR
	colors []uint64
	next   []uint64
	pairs  []colorArc
	sorted []uint64 // scratch for countDistinct / multiset keys
}

// countDistinct returns the number of distinct values in colors,
// leaving the sorted copy in r.sorted.
func (r *refiner) countDistinct(colors []uint64) int {
	r.sorted = append(r.sorted[:0], colors...)
	slices.Sort(r.sorted)
	d := 0
	for i, c := range r.sorted {
		if i == 0 || c != r.sorted[i-1] {
			d++
		}
	}
	return d
}

// round computes one WL refinement round from colors into next.
func (r *refiner) round(colors, next []uint64) {
	for v := range colors {
		h := mix2(canonSeedRound, colors[v])
		sTo, sW := r.csr.Succs(NodeID(v))
		h = r.mixArcs(h, colors, sTo, sW)
		h = mix2(h, canonSeedSep)
		pTo, pW := r.csr.Preds(NodeID(v))
		h = r.mixArcs(h, colors, pTo, pW)
		next[v] = h
	}
}

// mixArcs folds one adjacency direction's sorted (weight, colour)
// multiset into h.
func (r *refiner) mixArcs(h uint64, colors []uint64, to []NodeID, w []int64) uint64 {
	pairs := r.pairs[:0]
	for i, u := range to {
		pairs = append(pairs, colorArc{c: colors[u], w: w[i]})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].c != pairs[j].c {
			return pairs[i].c < pairs[j].c
		}
		return pairs[i].w < pairs[j].w
	})
	for _, p := range pairs {
		h = mix2(h, mix2(uint64(p.w), p.c))
	}
	r.pairs = pairs
	return h
}

// refine runs WL rounds on colors until the partition stops refining,
// returning the final number of distinct colours. distinct must be the
// current count for colors.
func (r *refiner) refine(colors []uint64, distinct int) int {
	n := len(colors)
	for distinct < n {
		r.round(colors, r.next)
		nd := r.countDistinct(r.next)
		if nd <= distinct {
			return distinct // stable: a round that fails to refine never will
		}
		copy(colors, r.next)
		distinct = nd
	}
	return distinct
}

// computeCanonical runs refinement, individualization, and encoding.
// The graph's mutex must be held.
func (g *Graph) computeCanonical() *canonInfo {
	n := len(g.weights)
	r := &refiner{
		csr:    g.csrLocked(),
		colors: make([]uint64, n),
		next:   make([]uint64, n),
	}
	for v, w := range g.weights {
		r.colors[v] = mix2(canonSeedWeight, uint64(w))
	}
	distinct := r.countDistinct(r.colors)
	distinct = r.refine(r.colors, distinct)

	// Individualization cascade: split the smallest ambiguous colour
	// class by trial-individualizing each member and keeping the
	// refinement with the lexicographically smallest colour multiset.
	// Ties between members mean they are automorphic (or WL-twins, see
	// the package comment): committing the first tied trial is then
	// canonical-form-preserving. The loop is cold — weighted DAG
	// corpora almost always refine to a discrete partition directly.
	for distinct < n {
		// Refresh r.sorted from the committed colours: refine leaves it
		// holding the colours of a discarded (stable) round otherwise.
		r.countDistinct(r.colors)
		target, ok := smallestAmbiguousColor(r.sorted)
		if !ok {
			break
		}
		var bestColors, bestKey []uint64
		for v := range r.colors {
			if r.colors[v] != target {
				continue
			}
			trial := append([]uint64(nil), r.colors...) //lint:coldpath individualization only runs on WL-ambiguous graphs
			trial[v] = mix2(canonSeedIndiv, trial[v])
			r.refine(trial, r.countDistinct(trial))
			key := append([]uint64(nil), trial...) //lint:coldpath individualization only runs on WL-ambiguous graphs
			slices.Sort(key) //lint:outlined individualization only runs on WL-ambiguous graphs
			if bestColors == nil || slices.Compare(key, bestKey) < 0 { //lint:outlined individualization only runs on WL-ambiguous graphs
				bestColors, bestKey = trial, key
			}
		}
		copy(r.colors, bestColors)
		nd := r.countDistinct(r.colors)
		if nd <= distinct {
			break // no progress (hash collision); fall back to ID order
		}
		distinct = nd
	}

	// Total order: by colour, then (only for still-tied pathological
	// nodes) by original ID.
	byColor := make([]NodeID, n)
	for v := range byColor {
		byColor[v] = NodeID(v)
	}
	sort.Slice(byColor, func(i, j int) bool {
		a, b := byColor[i], byColor[j]
		if r.colors[a] != r.colors[b] {
			return r.colors[a] < r.colors[b]
		}
		return a < b
	})
	perm := make([]NodeID, n)
	for rank, v := range byColor {
		perm[v] = NodeID(rank)
	}

	enc := g.encodeCanonical(perm)
	return &canonInfo{hash: sha256.Sum256(enc), perm: perm, enc: enc}
}

// smallestAmbiguousColor returns the smallest colour value that labels
// more than one node, given the sorted colour slice.
func smallestAmbiguousColor(sorted []uint64) (uint64, bool) {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return sorted[i], true
		}
	}
	return 0, false
}

// encodeCanonical writes the canonical wire form: magic, node count,
// node weights in canonical order, edge count, and the edge triples
// (from, to, weight) in canonical index space sorted by (from, to).
// The graph's mutex must be held.
func (g *Graph) encodeCanonical(perm []NodeID) []byte {
	n := len(g.weights)
	enc := make([]byte, 0, len(canonMagic)+10*(n+1)+30*g.edges)
	enc = append(enc, canonMagic...)
	enc = binary.AppendUvarint(enc, uint64(n))
	inv := make([]NodeID, n)
	for v, cv := range perm {
		inv[cv] = NodeID(v)
	}
	for _, v := range inv {
		enc = binary.AppendUvarint(enc, uint64(g.weights[v]))
	}
	type triple struct {
		from, to NodeID
		w        int64
	}
	edges := make([]triple, 0, g.edges)
	for u := range g.succ {
		for _, a := range g.succ[u] {
			edges = append(edges, triple{from: perm[u], to: perm[a.To], w: a.Weight})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	enc = binary.AppendUvarint(enc, uint64(len(edges)))
	for _, e := range edges {
		enc = binary.AppendUvarint(enc, uint64(e.from))
		enc = binary.AppendUvarint(enc, uint64(e.to))
		enc = binary.AppendUvarint(enc, uint64(e.w))
	}
	return enc
}
