package dag_test

import (
	"bytes"
	"testing"

	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
)

// TestCanonicalHashCorpusCollisions hashes every graph of the
// schedbench corpus and requires all distinct graphs to get distinct
// fingerprints. Short mode uses the reduced corpus; the full run uses
// the paper's 2100-graph population. A fingerprint clash is only a bug
// if the canonical encodings differ too (equal encodings mean the
// graphs genuinely are isomorphic, which random generation never
// produces in practice — so both cases are reported fatally).
func TestCanonicalHashCorpusCollisions(t *testing.T) {
	spec := corpus.PaperSpec(42)
	if testing.Short() {
		spec = corpus.SmallSpec(42)
	}
	c, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[dag.Fingerprint]*dag.Graph, c.NumGraphs())
	graphs := 0
	for _, set := range c.Sets {
		for _, g := range set.Graphs {
			graphs++
			fp := g.CanonicalHash()
			prev, dup := seen[fp]
			if !dup {
				seen[fp] = g
				continue
			}
			if bytes.Equal(prev.CanonicalEncoding(), g.CanonicalEncoding()) {
				t.Fatalf("corpus graphs %q and %q are isomorphic (identical canonical encodings)",
					prev.Name(), g.Name())
			}
			t.Fatalf("fingerprint collision between distinct graphs %q and %q: %s",
				prev.Name(), g.Name(), fp)
		}
	}
	if len(seen) != graphs {
		t.Fatalf("%d graphs produced %d fingerprints", graphs, len(seen))
	}
	t.Logf("%d corpus graphs, %d distinct fingerprints", graphs, len(seen))
}
