package dag

import (
	"bytes"
	"math/rand"
	"testing"

	"schedcomp/internal/obs"
)

// permuted returns g with node IDs relabeled by a random permutation
// and edges inserted in shuffled order — the same graph up to naming.
func permuted(rng *rand.Rand, g *Graph) *Graph {
	n := g.NumNodes()
	perm := rng.Perm(n) // orig node v becomes node perm[v]
	weights := make([]int64, n)
	for v := 0; v < n; v++ {
		weights[perm[v]] = g.Weight(NodeID(v))
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	h := New("permuted")
	for _, w := range weights {
		h.AddNode(w)
	}
	for _, e := range edges {
		h.MustAddEdge(NodeID(perm[e.From]), NodeID(perm[e.To]), e.Weight)
	}
	return h
}

func TestCanonicalHashPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, 0.15+rng.Float64()*0.3)
		want := g.CanonicalHash()
		wantEnc := g.CanonicalEncoding()
		for rep := 0; rep < 4; rep++ {
			h := permuted(rng, g)
			if got := h.CanonicalHash(); got != want {
				t.Fatalf("trial %d rep %d: permuted graph hashed %s, original %s", trial, rep, got, want)
			}
			if !bytes.Equal(h.CanonicalEncoding(), wantEnc) {
				t.Fatalf("trial %d rep %d: permuted graph has different canonical encoding", trial, rep)
			}
		}
	}
}

func TestCanonicalHashNameBlind(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomDAG(rng, 20, 0.2)
	want := g.CanonicalHash()
	g.SetName("renamed-to-something-else")
	if got := g.CanonicalHash(); got != want {
		t.Fatalf("rename changed hash: %s != %s", got, want)
	}
}

func TestCanonicalHashPerturbationSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 3+rng.Intn(30), 0.25)
		base := g.CanonicalHash()

		// Node weight bump.
		nw := g.Clone()
		v := NodeID(rng.Intn(nw.NumNodes()))
		nw.SetWeight(v, nw.Weight(v)+1)
		if nw.CanonicalHash() == base {
			t.Fatalf("trial %d: node weight perturbation kept hash %s", trial, base)
		}

		edges := g.Edges()
		if len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]

			// Edge weight bump.
			ew := g.Clone()
			if !ew.SetEdgeWeight(e.From, e.To, e.Weight+1) {
				t.Fatalf("trial %d: edge %v vanished from clone", trial, e)
			}
			if ew.CanonicalHash() == base {
				t.Fatalf("trial %d: edge weight perturbation kept hash %s", trial, base)
			}

			// Edge removal.
			rm := g.Clone()
			if !rm.RemoveEdge(e.From, e.To) {
				t.Fatalf("trial %d: edge %v vanished from clone", trial, e)
			}
			if rm.CanonicalHash() == base {
				t.Fatalf("trial %d: edge removal kept hash %s", trial, base)
			}
		}

		// Extra node.
		xn := g.Clone()
		xn.AddNode(7)
		if xn.CanonicalHash() == base {
			t.Fatalf("trial %d: extra node kept hash %s", trial, base)
		}
	}
}

// TestCanonicalHashRegularTwins exercises the individualization
// cascade: uniform weights and symmetric structure leave WL with
// ambiguous colour classes that plain refinement cannot split.
func TestCanonicalHashRegularTwins(t *testing.T) {
	// Two independent, identical diamonds with all-equal weights: every
	// node is WL-equivalent to its twin in the other diamond.
	build := func(order []int) *Graph {
		g := New("")
		ids := make([]NodeID, 8)
		for _, i := range order {
			ids[i] = g.AddNode(10)
		}
		for d := 0; d < 2; d++ {
			b := 4 * d
			g.MustAddEdge(ids[b], ids[b+1], 5)
			g.MustAddEdge(ids[b], ids[b+2], 5)
			g.MustAddEdge(ids[b+1], ids[b+3], 5)
			g.MustAddEdge(ids[b+2], ids[b+3], 5)
		}
		return g
	}
	a := build([]int{0, 1, 2, 3, 4, 5, 6, 7})
	b := build([]int{4, 6, 5, 7, 0, 2, 1, 3})
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatalf("twin diamonds hash differently: %s vs %s", a.CanonicalHash(), b.CanonicalHash())
	}
	if !bytes.Equal(a.CanonicalEncoding(), b.CanonicalEncoding()) {
		t.Fatal("twin diamonds have different canonical encodings")
	}
	// An antichain (no edges, equal weights) is maximally symmetric.
	c := New("")
	d := New("")
	for i := 0; i < 6; i++ {
		c.AddNode(3)
		d.AddNode(3)
	}
	if c.CanonicalHash() != d.CanonicalHash() {
		t.Fatal("equal antichains hash differently")
	}
}

func TestCanonicalCloneProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 2+rng.Intn(30), 0.25)
		clone := g.CanonicalClone()
		if err := clone.Validate(); err != nil {
			t.Fatalf("trial %d: canonical clone invalid: %v", trial, err)
		}
		if clone.Name() != "" {
			t.Fatalf("trial %d: canonical clone kept name %q", trial, clone.Name())
		}
		if clone.CanonicalHash() != g.CanonicalHash() {
			t.Fatalf("trial %d: clone hash differs from original", trial)
		}
		// The clone is a fixed point: it is already canonically labeled.
		perm := clone.CanonicalPerm()
		for v, cv := range perm {
			if NodeID(v) != cv {
				t.Fatalf("trial %d: clone perm not identity at %d -> %d", trial, v, cv)
			}
		}
		// Isomorphic inputs produce byte-identical clones.
		h := permuted(rng, g)
		hc := h.CanonicalClone()
		if !bytes.Equal(encodeGraphForTest(clone), encodeGraphForTest(hc)) {
			t.Fatalf("trial %d: clones of isomorphic graphs differ", trial)
		}
		// The perm really maps g onto the clone.
		gp := g.CanonicalPerm()
		for v := 0; v < g.NumNodes(); v++ {
			if g.Weight(NodeID(v)) != clone.Weight(gp[v]) {
				t.Fatalf("trial %d: weight mismatch through perm at node %d", trial, v)
			}
		}
		for _, e := range g.Edges() {
			w, ok := clone.EdgeWeight(gp[e.From], gp[e.To])
			if !ok || w != e.Weight {
				t.Fatalf("trial %d: edge %v not mapped through perm", trial, e)
			}
		}
	}
}

// encodeGraphForTest renders a graph's full content (minus name) for
// byte comparison in tests.
func encodeGraphForTest(g *Graph) []byte {
	name := g.Name()
	g.SetName("")
	b, err := g.MarshalJSON()
	g.SetName(name)
	if err != nil {
		panic(err)
	}
	return b
}

func TestCanonicalHashMemoized(t *testing.T) {
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)

	g := New("memo")
	a := g.AddNode(5)
	b := g.AddNode(6)
	g.MustAddEdge(a, b, 2)

	h1 := g.CanonicalHash()
	h2 := g.CanonicalHash()
	if h1 != h2 {
		t.Fatal("hash not stable across calls")
	}
	gen := g.Generation()
	g.SetWeight(b, 7)
	if g.Generation() == gen {
		t.Fatal("mutation did not bump generation")
	}
	if g.CanonicalHash() == h1 {
		t.Fatal("hash not invalidated by mutation")
	}
}

func TestCanonicalHashEmptyAndTiny(t *testing.T) {
	e1, e2 := New("a"), New("b")
	if e1.CanonicalHash() != e2.CanonicalHash() {
		t.Fatal("empty graphs hash differently")
	}
	one := New("")
	one.AddNode(5)
	if one.CanonicalHash() == e1.CanonicalHash() {
		t.Fatal("one-node graph collides with empty graph")
	}
	two := New("")
	two.AddNode(5)
	if one.CanonicalHash() != two.CanonicalHash() {
		t.Fatal("identical one-node graphs hash differently")
	}
}
