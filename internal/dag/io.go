package dag

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	Name  string     `json:"name,omitempty"`
	Nodes []int64    `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	From   int32 `json:"from"`
	To     int32 `json:"to"`
	Weight int64 `json:"weight"`
}

// MarshalJSON encodes the graph as {name, nodes:[weights], edges:[...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name, Nodes: append([]int64(nil), g.weights...)}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{From: int32(e.From), To: int32(e.To), Weight: e.Weight})
	}
	return json.Marshal(jg)
}

// MaxWireWeight bounds node and edge weights accepted from JSON.
// Weights are summed along paths and across processors during
// scheduling; capping each term far below MaxInt64 keeps every such
// sum overflow-free for any graph that fits in a request body.
const MaxWireWeight = 1 << 40

// MaxWireName bounds the graph name accepted from JSON. The name is
// reporting metadata only; without a cap a request body could be
// almost entirely name and still parse as a "small" graph.
const MaxWireName = 1024

// ErrTrailingData is returned by ReadJSON when the input continues
// past the graph object. Accepting trailing bytes would let two
// callers disagree about what was submitted (and silently drop data),
// so the wire format is exactly one JSON value.
var ErrTrailingData = errors.New("dag: trailing data after graph JSON")

// UnmarshalJSON decodes a graph previously written by MarshalJSON. The
// decoded graph is fully validated: bounded name, positive bounded
// weights, in-range endpoints, no self loops or duplicate edges, and
// acyclic. Edge checks run in O(E) via a set — the AddEdge path's
// per-insert duplicate scan is O(out-degree), which an adversarial
// hub-shaped body turns into O(E²) work before validation can reject
// it.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	if len(jg.Name) > MaxWireName {
		return fmt.Errorf("dag: name of %d bytes exceeds limit %d", len(jg.Name), MaxWireName)
	}
	ng := New(jg.Name)
	for i, w := range jg.Nodes {
		if w <= 0 {
			return fmt.Errorf("dag: node %d has non-positive weight %d", i, w)
		}
		if w > MaxWireWeight {
			return fmt.Errorf("dag: node %d weight %d exceeds limit %d", i, w, int64(MaxWireWeight))
		}
		ng.AddNode(w)
	}
	n := len(jg.Nodes)
	seen := make(map[[2]int32]struct{}, len(jg.Edges))
	for _, e := range jg.Edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return fmt.Errorf("%w: %d -> %d in graph of %d nodes", ErrNoSuchNode, e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: %d", ErrSelfLoop, e.From)
		}
		if e.Weight < 0 {
			return fmt.Errorf("%w: %d", ErrBadWeight, e.Weight)
		}
		if e.Weight > MaxWireWeight {
			return fmt.Errorf("dag: edge %d->%d weight %d exceeds limit %d", e.From, e.To, e.Weight, int64(MaxWireWeight))
		}
		k := [2]int32{e.From, e.To}
		if _, dup := seen[k]; dup {
			return fmt.Errorf("%w: %d -> %d", ErrDuplicateEdge, e.From, e.To)
		}
		seen[k] = struct{}{}
		ng.addEdgeUnchecked(NodeID(e.From), NodeID(e.To), e.Weight)
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	// Field-wise assignment: Graph holds a mutex, so the struct must
	// not be copied as a value.
	g.name = ng.name
	g.weights = ng.weights
	g.succ = ng.succ
	g.pred = ng.pred
	g.edges = ng.edges
	g.invalidate()
	return nil
}

// WriteJSON writes the graph to w as a single JSON object.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g)
}

// ReadJSON decodes exactly one graph from r; anything but whitespace
// after the object is rejected with ErrTrailingData.
func ReadJSON(r io.Reader) (*Graph, error) {
	dec := json.NewDecoder(r)
	g := New("")
	if err := dec.Decode(g); err != nil {
		return nil, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, ErrTrailingData
	}
	return g, nil
}

// DOT renders the graph in Graphviz dot syntax with node and edge
// weights as labels. Output is deterministic.
func (g *Graph) DOT() string {
	var b strings.Builder
	name := g.name
	if name == "" {
		name = "pdg"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for i, w := range g.weights {
		fmt.Fprintf(&b, "  n%d [label=\"%d\\n(%d)\"];\n", i, i, w)
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", e.From, e.To, e.Weight)
	}
	b.WriteString("}\n")
	return b.String()
}
