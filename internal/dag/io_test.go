package dag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func graphsEqual(a, b *Graph) bool {
	if a.Name() != b.Name() || a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Weight(NodeID(i)) != b.Weight(NodeID(i)) {
			return false
		}
	}
	for _, e := range a.Edges() {
		w, ok := b.EdgeWeight(e.From, e.To)
		if !ok || w != e.Weight {
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	g := paperGraph()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, &back) {
		t.Error("round trip changed the graph")
	}
}

func TestWriteReadJSON(t *testing.T) {
	g := paperGraph()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Error("WriteJSON/ReadJSON round trip changed the graph")
	}
}

func TestUnmarshalRejectsBadGraphs(t *testing.T) {
	cases := map[string]string{
		"cycle":          `{"nodes":[1,1],"edges":[{"from":0,"to":1,"weight":0},{"from":1,"to":0,"weight":0}]}`,
		"bad weight":     `{"nodes":[0],"edges":[]}`,
		"missing node":   `{"nodes":[1],"edges":[{"from":0,"to":5,"weight":1}]}`,
		"negative edge":  `{"nodes":[1,1],"edges":[{"from":0,"to":1,"weight":-2}]}`,
		"duplicate edge": `{"nodes":[1,1],"edges":[{"from":0,"to":1,"weight":1},{"from":0,"to":1,"weight":2}]}`,
		"not json":       `{{{`,
	}
	for name, data := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(data), &g); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := paperGraph()
	dot := g.DOT()
	for _, want := range []string{
		"digraph", "n0", "n4", "n0 -> n1", "n3 -> n4", `label="10"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if g2 := New(""); !strings.Contains(g2.DOT(), "digraph") {
		t.Error("empty graph DOT malformed")
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := paperGraph()
	if g.DOT() != g.DOT() {
		t.Error("DOT output not deterministic")
	}
}

// Property: JSON round trip preserves any random DAG.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(30), 0.3)
		g.SetName("roundtrip")
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return graphsEqual(g, &back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
