package dag_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"schedcomp/internal/dag"
)

func mustReject(t *testing.T, body string, wantErr error) {
	t.Helper()
	_, err := dag.ReadJSON(strings.NewReader(body))
	if err == nil {
		t.Fatalf("accepted %q", body)
	}
	if wantErr != nil && !errors.Is(err, wantErr) {
		t.Fatalf("rejected %q with %v, want %v", body, err, wantErr)
	}
}

func TestWireRejectsMalformedGraphs(t *testing.T) {
	mustReject(t, `{"nodes":[1,2],"edges":[{"from":0,"to":0,"weight":1}]}`, dag.ErrSelfLoop)
	mustReject(t, `{"nodes":[1,2],"edges":[{"from":0,"to":1,"weight":1},{"from":0,"to":1,"weight":2}]}`, dag.ErrDuplicateEdge)
	mustReject(t, `{"nodes":[1,2],"edges":[{"from":0,"to":7,"weight":1}]}`, dag.ErrNoSuchNode)
	mustReject(t, `{"nodes":[1,2],"edges":[{"from":-3,"to":1,"weight":1}]}`, dag.ErrNoSuchNode)
	mustReject(t, `{"nodes":[1,2],"edges":[{"from":0,"to":1,"weight":-1}]}`, dag.ErrBadWeight)
	mustReject(t, `{"nodes":[0],"edges":[]}`, nil)  // non-positive node weight
	mustReject(t, `{"nodes":[-5],"edges":[]}`, nil) // negative node weight
	mustReject(t, fmt.Sprintf(`{"nodes":[%d],"edges":[]}`, int64(dag.MaxWireWeight)+1), nil)
	mustReject(t, fmt.Sprintf(`{"nodes":[1,1],"edges":[{"from":0,"to":1,"weight":%d}]}`, int64(dag.MaxWireWeight)+1), nil)
	// Cycle through the wire.
	mustReject(t, `{"nodes":[1,1],"edges":[{"from":0,"to":1,"weight":1},{"from":1,"to":0,"weight":1}]}`, dag.ErrCycle)
}

func TestWireRejectsOversizedName(t *testing.T) {
	body := `{"name":"` + strings.Repeat("A", dag.MaxWireName+1) + `","nodes":[1],"edges":[]}`
	mustReject(t, body, nil)
	// At the limit is fine.
	ok := `{"name":"` + strings.Repeat("A", dag.MaxWireName) + `","nodes":[1],"edges":[]}`
	if _, err := dag.ReadJSON(strings.NewReader(ok)); err != nil {
		t.Fatalf("rejected name at the limit: %v", err)
	}
}

func TestReadJSONRejectsTrailingData(t *testing.T) {
	mustReject(t, `{"nodes":[1],"edges":[]}{"nodes":[2],"edges":[]}`, dag.ErrTrailingData)
	mustReject(t, `{"nodes":[1],"edges":[]}garbage`, dag.ErrTrailingData)
	mustReject(t, `{"nodes":[1],"edges":[]} 0`, dag.ErrTrailingData)
	// Trailing whitespace (what WriteJSON emits) stays accepted.
	var buf bytes.Buffer
	g := dag.New("ws")
	g.AddNode(3)
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(" \n\t ")
	if _, err := dag.ReadJSON(&buf); err != nil {
		t.Fatalf("rejected trailing whitespace: %v", err)
	}
}

// TestWireDecodeHubGraphLinear guards the O(E) decode path: a star
// graph with one hub fanning out to every other node used to cost
// O(E²) in AddEdge's duplicate scan. 200k edges should decode in well
// under a second; the quadratic path took minutes.
func TestWireDecodeHubGraphLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("large decode in -short mode")
	}
	const n = 200_001
	var b strings.Builder
	b.WriteString(`{"nodes":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('1')
	}
	b.WriteString(`],"edges":[`)
	for i := 1; i < n; i++ {
		if i > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"from":0,"to":%d,"weight":1}`, i)
	}
	b.WriteString(`]}`)

	t0 := time.Now()
	g, err := dag.ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != n-1 {
		t.Fatalf("decoded %d edges, want %d", g.NumEdges(), n-1)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("hub decode took %v — duplicate scan is quadratic again", elapsed)
	}
}

func TestWireRoundTripStillWorks(t *testing.T) {
	g := dag.New("roundtrip")
	a := g.AddNode(3)
	b := g.AddNode(5)
	c := g.AddNode(7)
	g.MustAddEdge(a, b, 2)
	g.MustAddEdge(b, c, 0)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dag.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "roundtrip" || got.NumNodes() != 3 || got.NumEdges() != 2 {
		t.Fatalf("round trip lost structure: %q %d %d", got.Name(), got.NumNodes(), got.NumEdges())
	}
	if w, ok := got.EdgeWeight(b, c); !ok || w != 0 {
		t.Fatal("zero-weight edge lost")
	}
}
