package dag

import "math"

// Graph classification metrics from §3 of the paper.

// Granularity implements the paper's definition: the average, over all
// non-sink nodes, of node weight divided by the node's maximum outgoing
// edge weight. A graph whose non-sink nodes all have zero-weight
// outgoing edges has unbounded granularity; Granularity returns +Inf in
// that case (as a float64). A graph with no non-sink nodes (a single
// node, or the empty graph) also returns +Inf: there is no
// communication at all.
func (g *Graph) Granularity() float64 {
	var sum float64
	count := 0
	infinite := false
	for i := range g.weights {
		if len(g.succ[i]) == 0 {
			continue // sinks do not contribute communication delay
		}
		var maxOut int64
		for _, a := range g.succ[i] {
			if a.Weight > maxOut {
				maxOut = a.Weight
			}
		}
		count++
		if maxOut == 0 {
			infinite = true
			continue
		}
		sum += float64(g.weights[i]) / float64(maxOut)
	}
	if count == 0 || infinite {
		return math.Inf(1)
	}
	return sum / float64(count)
}

// SarkarGranularity is the pre-existing definition the paper cites
// (Sarkar): the average node weight, ignoring communication. Provided
// for the ablation benches contrasting the two metrics.
func (g *Graph) SarkarGranularity() float64 {
	if len(g.weights) == 0 {
		return 0
	}
	var sum int64
	for _, w := range g.weights {
		sum += w
	}
	return float64(sum) / float64(len(g.weights))
}

// AnchorOutDegree returns the mode of the out-degrees of the non-sink
// nodes (sinks have out-degree 0 and carry no branching information).
// Ties are broken toward the smaller degree so the result is
// deterministic. A graph with no edges has anchor 0.
func (g *Graph) AnchorOutDegree() int {
	maxDeg := 0
	for i := range g.weights {
		if d := len(g.succ[i]); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg == 0 {
		return 0
	}
	// Dense counting: the generator polls this once per adjustment
	// iteration, so avoid a map allocation for the common small-degree
	// case.
	var buf [64]int
	counts := buf[:]
	if maxDeg >= len(buf) {
		counts = make([]int, maxDeg+1)
	}
	for i := range g.weights {
		if d := len(g.succ[i]); d > 0 {
			counts[d]++
		}
	}
	anchor, best := 0, 0
	for d := 1; d <= maxDeg; d++ {
		if counts[d] > best {
			best = counts[d]
			anchor = d
		}
	}
	return anchor
}

// NodeWeightRange returns the minimum and maximum node weights. For an
// empty graph both are 0.
func (g *Graph) NodeWeightRange() (min, max int64) {
	if len(g.weights) == 0 {
		return 0, 0
	}
	min, max = g.weights[0], g.weights[0]
	for _, w := range g.weights[1:] {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return min, max
}

// MeanOutDegree returns the average out-degree over all nodes.
func (g *Graph) MeanOutDegree() float64 {
	if len(g.weights) == 0 {
		return 0
	}
	return float64(g.edges) / float64(len(g.weights))
}

// CCR returns the communication-to-computation ratio: total edge weight
// divided by total node weight. It is the inverse-flavoured cousin of
// granularity, reported by several later papers; exposed for the
// extension benches.
func (g *Graph) CCR() float64 {
	var nodes, comm int64
	for _, w := range g.weights {
		nodes += w
	}
	for u := range g.succ {
		for _, a := range g.succ[u] {
			comm += a.Weight
		}
	}
	if nodes == 0 {
		return 0
	}
	return float64(comm) / float64(nodes)
}
