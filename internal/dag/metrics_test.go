package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGranularityPaperExample(t *testing.T) {
	g := paperGraph()
	// Non-sink nodes and their max outgoing edge: 1: max(5,5)=5 ->
	// 10/5=2; 2: 4 -> 20/4=5; 3: 10 -> 30/10=3; 4: 5 -> 40/5=8.
	// Average = (2+5+3+8)/4 = 4.5.
	got := g.Granularity()
	if math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Granularity = %v, want 4.5", got)
	}
}

func TestGranularityExcludesSinks(t *testing.T) {
	g := New("t")
	a := g.AddNode(100)
	b := g.AddNode(7) // sink: must not contribute
	g.MustAddEdge(a, b, 50)
	if got := g.Granularity(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Granularity = %v, want 2.0", got)
	}
}

func TestGranularityInfiniteCases(t *testing.T) {
	// Single node: no communication at all.
	g := New("one")
	g.AddNode(5)
	if !math.IsInf(g.Granularity(), 1) {
		t.Error("single node granularity should be +Inf")
	}
	// Zero-weight edges: communication is free.
	g2 := New("zero-edges")
	a := g2.AddNode(5)
	b := g2.AddNode(5)
	g2.MustAddEdge(a, b, 0)
	if !math.IsInf(g2.Granularity(), 1) {
		t.Error("zero-weight-edge granularity should be +Inf")
	}
}

func TestSarkarGranularity(t *testing.T) {
	g := paperGraph()
	if got := g.SarkarGranularity(); math.Abs(got-30) > 1e-12 {
		t.Errorf("SarkarGranularity = %v, want 30 (mean node weight)", got)
	}
	if got := New("").SarkarGranularity(); got != 0 {
		t.Errorf("empty SarkarGranularity = %v", got)
	}
}

func TestAnchorOutDegree(t *testing.T) {
	g := New("t")
	// Three nodes of out-degree 2, one of out-degree 3 -> mode 2.
	hub := make([]NodeID, 4)
	for i := range hub {
		hub[i] = g.AddNode(1)
	}
	leaves := make([]NodeID, 9)
	for i := range leaves {
		leaves[i] = g.AddNode(1)
	}
	k := 0
	for i, deg := range []int{2, 2, 2, 3} {
		for j := 0; j < deg; j++ {
			g.MustAddEdge(hub[i], leaves[k], 1)
			k++
		}
	}
	if got := g.AnchorOutDegree(); got != 2 {
		t.Errorf("AnchorOutDegree = %d, want 2", got)
	}
}

func TestAnchorOutDegreeTieBreaksLow(t *testing.T) {
	g := New("t")
	a := g.AddNode(1)
	b := g.AddNode(1)
	s1 := g.AddNode(1)
	s2 := g.AddNode(1)
	s3 := g.AddNode(1)
	g.MustAddEdge(a, s1, 1) // degree 1
	g.MustAddEdge(b, s2, 1) // degree 2
	g.MustAddEdge(b, s3, 1)
	if got := g.AnchorOutDegree(); got != 1 {
		t.Errorf("tie should break to the smaller degree; got %d", got)
	}
}

func TestAnchorOutDegreeNoEdges(t *testing.T) {
	g := New("t")
	g.AddNode(1)
	if got := g.AnchorOutDegree(); got != 0 {
		t.Errorf("AnchorOutDegree = %d, want 0", got)
	}
}

func TestNodeWeightRange(t *testing.T) {
	g := paperGraph()
	min, max := g.NodeWeightRange()
	if min != 10 || max != 50 {
		t.Errorf("NodeWeightRange = [%d,%d], want [10,50]", min, max)
	}
	e := New("")
	if min, max = e.NodeWeightRange(); min != 0 || max != 0 {
		t.Error("empty graph range should be [0,0]")
	}
}

func TestMeanOutDegree(t *testing.T) {
	g := paperGraph()
	if got := g.MeanOutDegree(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("MeanOutDegree = %v, want 1.0 (5 edges / 5 nodes)", got)
	}
}

func TestCCR(t *testing.T) {
	g := paperGraph()
	// Total comm 29, total work 150.
	if got := g.CCR(); math.Abs(got-29.0/150.0) > 1e-12 {
		t.Errorf("CCR = %v, want %v", got, 29.0/150.0)
	}
}

// Property: multiplying every edge weight by k divides granularity by
// k (the invariant the generator's calibration loop relies on).
func TestGranularityScalesInversely(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 3+rng.Intn(30), 0.3)
		// Ensure all edges have positive weight.
		for _, e := range g.Edges() {
			g.SetEdgeWeight(e.From, e.To, e.Weight+1)
		}
		g0 := g.Granularity()
		if math.IsInf(g0, 1) {
			return true // no non-sink nodes
		}
		const k = 3
		for _, e := range g.Edges() {
			g.SetEdgeWeight(e.From, e.To, e.Weight*k)
		}
		g1 := g.Granularity()
		return math.Abs(g1-g0/k) < 1e-9*g0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
