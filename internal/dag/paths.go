package dag

// Path metrics. Following the paper (and Gerasoulis & Yang), a path
// weight sums both node weights and edge weights along the path; the
// critical path is the heaviest source→sink path under that measure.
//
//   - BLevels: level(n) = longest path weight from the start of n to an
//     exit node, including n's own weight and the communication weights
//     of the edges on the path. This is the "level" used by DSC, MH and
//     the communication-extended HU.
//   - BLevelsNoComm: the same but ignoring edge weights (the classical
//     Hu level).
//   - TLevels: longest path weight from a source to the start of n
//     (excluding n's weight, including edge weights on the way).
//   - CriticalPathLength = max over nodes of TLevel + BLevel; with the
//     definitions above this equals the heaviest source→sink path.
//   - ALAPTimes: latest possible start times used by MCP's ALAP
//     binding: T_L(n) = CP − BLevel(n).
//
// All of these are memoized per graph revision (see cache.go); the
// returned slices are shared with the cache and must not be mutated.

// BLevels returns level(n) for every node, with communication costs.
func (g *Graph) BLevels() ([]int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.blevelsLocked(true)
}

// BLevelsNoComm returns the classical (communication-free) levels.
func (g *Graph) BLevelsNoComm() ([]int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.blevelsLocked(false)
}

func (g *Graph) computeBLevels(order []NodeID, withComm bool) []int64 {
	csr := g.csrLocked()
	lv := make([]int64, g.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var best int64
		succs, ws := csr.Succs(v)
		for j, to := range succs {
			c := lv[to]
			if withComm {
				c += ws[j]
			}
			if c > best {
				best = c
			}
		}
		lv[v] = g.weights[v] + best
	}
	return lv
}

// TLevels returns, for every node, the weight of the heaviest path from
// a source to the start of the node (communication included).
func (g *Graph) TLevels() ([]int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tlevelsLocked()
}

func (g *Graph) computeTLevels(order []NodeID) []int64 {
	csr := g.csrLocked()
	tl := make([]int64, g.NumNodes())
	for _, v := range order {
		var best int64
		preds, ws := csr.Preds(v)
		for j, p := range preds {
			c := tl[p] + g.weights[p] + ws[j]
			if c > best {
				best = c
			}
		}
		tl[v] = best
	}
	return tl
}

// CriticalPathLength returns the weight of the heaviest source→sink
// path (nodes + edges).
func (g *Graph) CriticalPathLength() (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.criticalPathLengthLocked()
}

// CriticalPath returns one heaviest source→sink path as a node
// sequence. Ties are broken toward smaller node IDs, so the result is
// deterministic.
func (g *Graph) CriticalPath() ([]NodeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.criticalPathLocked()
}

func (g *Graph) computeCriticalPath(lv []int64) []NodeID {
	csr := g.csrLocked()
	// Start at the source with the greatest level.
	cur := NodeID(-1)
	var best int64 = -1
	for i := range g.weights {
		if csr.InDegree(NodeID(i)) == 0 && lv[i] > best {
			best = lv[i]
			cur = NodeID(i)
		}
	}
	if cur < 0 {
		return nil // empty graph
	}
	path := []NodeID{cur}
	for csr.OutDegree(cur) > 0 {
		// Follow the successor that realizes the level.
		next := NodeID(-1)
		var rest int64 = -1
		succs, ws := csr.Succs(cur)
		for j, to := range succs {
			c := ws[j] + lv[to]
			if c > rest {
				rest = c
				next = to
			}
		}
		if lv[cur] != g.weights[cur]+rest {
			// Heaviest continuation is not on the critical path tail;
			// cannot happen for consistent levels.
			break
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

// ALAPTimes returns the as-late-as-possible start time of every node:
// T_L(n) = CP − level(n). Nodes on the critical path have T_L equal to
// their earliest possible start; all T_L are ≥ 0.
func (g *Graph) ALAPTimes() ([]int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.alapLocked()
}
