package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGraph is the appendix example (see internal/paperex; duplicated
// here to avoid an import cycle): nodes 10,20,30,40,50 and edges
// 0-5->1, 0-5->2, 2-10->3, 1-4->4, 3-5->4. The paper's Figure 14
// prints its levels: 150, 74, 135, 95, 50.
func paperGraph() *Graph {
	g := New("paper")
	n := []NodeID{g.AddNode(10), g.AddNode(20), g.AddNode(30), g.AddNode(40), g.AddNode(50)}
	g.MustAddEdge(n[0], n[1], 5)
	g.MustAddEdge(n[0], n[2], 5)
	g.MustAddEdge(n[2], n[3], 10)
	g.MustAddEdge(n[1], n[4], 4)
	g.MustAddEdge(n[3], n[4], 5)
	return g
}

func TestBLevelsMatchPaperFigure14(t *testing.T) {
	g := paperGraph()
	lv, err := g.BLevels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{150, 74, 135, 95, 50}
	for i, w := range want {
		if lv[i] != w {
			t.Errorf("level(%d) = %d, want %d", i+1, lv[i], w)
		}
	}
}

func TestBLevelsNoComm(t *testing.T) {
	g := paperGraph()
	lv, err := g.BLevelsNoComm()
	if err != nil {
		t.Fatal(err)
	}
	// Longest node-weight-only paths: 5:50, 4:90, 3:120, 2:70, 1:130.
	want := []int64{130, 70, 120, 90, 50}
	for i, w := range want {
		if lv[i] != w {
			t.Errorf("no-comm level(%d) = %d, want %d", i+1, lv[i], w)
		}
	}
}

func TestTLevels(t *testing.T) {
	g := paperGraph()
	tl, err := g.TLevels()
	if err != nil {
		t.Fatal(err)
	}
	// t(1)=0; t(2)=10+5=15; t(3)=15; t(4)=15+30+10=55; t(5)=max(15+20+4, 55+40+5)=100.
	want := []int64{0, 15, 15, 55, 100}
	for i, w := range want {
		if tl[i] != w {
			t.Errorf("tlevel(%d) = %d, want %d", i+1, tl[i], w)
		}
	}
}

func TestCriticalPathLength(t *testing.T) {
	g := paperGraph()
	cp, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 150 {
		t.Errorf("CP = %d, want 150", cp)
	}
}

func TestCriticalPathNodes(t *testing.T) {
	g := paperGraph()
	path, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{0, 2, 3, 4} // 1 -> 3 -> 4 -> 5 in paper numbering
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestALAPTimes(t *testing.T) {
	g := paperGraph()
	alap, err := g.ALAPTimes()
	if err != nil {
		t.Fatal(err)
	}
	// T_L(n) = 150 - level(n).
	want := []int64{0, 76, 15, 55, 100}
	for i, w := range want {
		if alap[i] != w {
			t.Errorf("ALAP(%d) = %d, want %d", i+1, alap[i], w)
		}
	}
}

// Property: for every edge (u,v), level(u) >= w(u) + e(u,v) + level(v),
// tlevel(v) >= tlevel(u) + w(u) + e(u,v), and critical path = max over
// nodes of tlevel + level.
func TestPathInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), 0.2)
		lv, err := g.BLevels()
		if err != nil {
			return false
		}
		tl, err := g.TLevels()
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if lv[e.From] < g.Weight(e.From)+e.Weight+lv[e.To] {
				return false
			}
			if tl[e.To] < tl[e.From]+g.Weight(e.From)+e.Weight {
				return false
			}
		}
		cp, err := g.CriticalPathLength()
		if err != nil {
			return false
		}
		var maxSum int64
		for i := range lv {
			if s := tl[i] + lv[i]; s > maxSum {
				maxSum = s
			}
		}
		return cp == maxSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ALAP times are non-negative and respect edge slack.
func TestALAPInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), 0.2)
		alap, err := g.ALAPTimes()
		if err != nil {
			return false
		}
		for i := range alap {
			if alap[i] < 0 {
				return false
			}
		}
		for _, e := range g.Edges() {
			// A node must be able to finish and ship data before its
			// successor's latest start.
			if alap[e.From]+g.Weight(e.From)+e.Weight > alap[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the critical path's weight (nodes + edges) equals
// CriticalPathLength.
func TestCriticalPathWeightConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), 0.25)
		path, err := g.CriticalPath()
		if err != nil {
			return false
		}
		cp, err := g.CriticalPathLength()
		if err != nil {
			return false
		}
		var sum int64
		for i, v := range path {
			sum += g.Weight(v)
			if i+1 < len(path) {
				w, ok := g.EdgeWeight(v, path[i+1])
				if !ok {
					return false
				}
				sum += w
			}
		}
		return sum == cp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
