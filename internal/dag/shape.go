package dag

// Structural shape metrics, used by the generator's self-checks, the
// analysis report and the benches: how deep and how wide a PDG is
// bounds what any scheduler can do with it.

// Depth returns the number of nodes on the longest path (ignoring
// weights); 0 for the empty graph.
func (g *Graph) Depth() int {
	order, err := g.TopoOrder()
	if err != nil || len(order) == 0 {
		return 0
	}
	d := make([]int, g.NumNodes())
	max := 0
	for _, v := range order {
		best := 0
		for _, a := range g.pred[v] {
			if d[a.To] > best {
				best = d[a.To]
			}
		}
		d[v] = best + 1
		if d[v] > max {
			max = d[v]
		}
	}
	return max
}

// LevelWidths returns how many nodes sit at each depth level (level =
// longest incoming path length, 0-based). The slice length equals
// Depth().
func (g *Graph) LevelWidths() []int {
	order, err := g.TopoOrder()
	if err != nil || len(order) == 0 {
		return nil
	}
	d := make([]int, g.NumNodes())
	max := 0
	for _, v := range order {
		best := -1
		for _, a := range g.pred[v] {
			if d[a.To] > best {
				best = d[a.To]
			}
		}
		d[v] = best + 1
		if d[v] > max {
			max = d[v]
		}
	}
	widths := make([]int, max+1)
	for _, lv := range d {
		widths[lv]++
	}
	return widths
}

// MaxWidth returns the largest level width: an upper bound on how many
// processors level-structured parallelism can keep busy at once. (The
// true maximum antichain can be larger; this is the usual cheap
// proxy.)
func (g *Graph) MaxWidth() int {
	max := 0
	for _, w := range g.LevelWidths() {
		if w > max {
			max = w
		}
	}
	return max
}
