package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDepthChain(t *testing.T) {
	g := New("chain")
	var prev NodeID = -1
	for i := 0; i < 6; i++ {
		v := g.AddNode(1)
		if prev >= 0 {
			g.MustAddEdge(prev, v, 1)
		}
		prev = v
	}
	if got := g.Depth(); got != 6 {
		t.Errorf("Depth = %d, want 6", got)
	}
	if got := g.MaxWidth(); got != 1 {
		t.Errorf("MaxWidth = %d, want 1", got)
	}
}

func TestDepthAndWidthDiamond(t *testing.T) {
	g := diamond(t)
	if got := g.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	widths := g.LevelWidths()
	want := []int{1, 2, 1}
	if len(widths) != len(want) {
		t.Fatalf("LevelWidths = %v, want %v", widths, want)
	}
	for i := range want {
		if widths[i] != want[i] {
			t.Fatalf("LevelWidths = %v, want %v", widths, want)
		}
	}
	if got := g.MaxWidth(); got != 2 {
		t.Errorf("MaxWidth = %d, want 2", got)
	}
}

func TestShapeEmptyGraph(t *testing.T) {
	g := New("")
	if g.Depth() != 0 || g.MaxWidth() != 0 || g.LevelWidths() != nil {
		t.Error("empty graph shape metrics nonzero")
	}
}

// Property: level widths sum to the node count; depth equals the
// number of levels; independent nodes all sit at level 0.
func TestQuickShapeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(40), 0.2)
		widths := g.LevelWidths()
		sum := 0
		for _, w := range widths {
			if w <= 0 {
				return false // every level in range must be populated
			}
			sum += w
		}
		if sum != g.NumNodes() {
			return false
		}
		return g.Depth() == len(widths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
