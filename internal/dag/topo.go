package dag

import (
	"fmt"

	"schedcomp/internal/bitset"
)

// TopoOrder returns the nodes in a deterministic topological order
// (Kahn's algorithm, smallest-ID-first among ready nodes) or ErrCycle
// if the graph is cyclic. The result is memoized per graph revision;
// callers must not mutate the returned slice.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.topoLocked()
}

// computeTopoOrder is the raw Kahn's-algorithm pass behind TopoOrder.
// It sweeps the flat CSR view rather than the [][]Arc mutation-time
// representation, as do all the cached analyses below.
func (g *Graph) computeTopoOrder() ([]NodeID, error) {
	csr := g.csrLocked()
	n := g.NumNodes()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = csr.InDegree(NodeID(i))
	}
	// A simple ordered worklist: ready nodes kept sorted by scanning.
	// For determinism we use a min-heap behaviour via a sorted insert;
	// graphs here are small (tens to hundreds of nodes), so the O(n^2)
	// worst case is irrelevant and the constant factor tiny.
	var ready []NodeID
	push := func(v NodeID) {
		i := len(ready)
		ready = append(ready, v)
		for i > 0 && ready[i-1] > v {
			ready[i] = ready[i-1]
			i--
		}
		ready[i] = v
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		succs, _ := csr.Succs(v)
		for _, to := range succs {
			indeg[to]--
			if indeg[to] == 0 {
				push(to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w: %d of %d nodes ordered", ErrCycle, len(order), n)
	}
	return order, nil
}

// TopoPositions returns pos such that pos[n] is node n's index in the
// deterministic topological order. The result is memoized per graph
// revision (and shares the cached TopoOrder); callers must not mutate
// the returned slice.
func (g *Graph) TopoPositions() ([]int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.topoPositionsLocked()
}

// Descendants returns, for each node, the bit set of nodes strictly
// reachable from it (the node itself is excluded). The graph must be
// acyclic. The closure is memoized per graph revision; callers must
// not mutate the returned sets.
func (g *Graph) Descendants() ([]*bitset.Set, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.descendantsLocked()
}

func (g *Graph) computeDescendants(order []NodeID) []*bitset.Set {
	csr := g.csrLocked()
	n := g.NumNodes()
	desc := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		desc[i] = bitset.New(n)
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		succs, _ := csr.Succs(v)
		for _, to := range succs {
			desc[v].Add(int(to))
			desc[v].Union(desc[to])
		}
	}
	return desc
}

// Ancestors returns, for each node, the bit set of nodes that strictly
// reach it. The graph must be acyclic. The closure is memoized per
// graph revision; callers must not mutate the returned sets.
func (g *Graph) Ancestors() ([]*bitset.Set, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ancestorsLocked()
}

func (g *Graph) computeAncestors(order []NodeID) []*bitset.Set {
	csr := g.csrLocked()
	n := g.NumNodes()
	anc := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		anc[i] = bitset.New(n)
	}
	for _, v := range order {
		preds, _ := csr.Preds(v)
		for _, from := range preds {
			anc[v].Add(int(from))
			anc[v].Union(anc[from])
		}
	}
	return anc
}

// HasPath reports whether v is reachable from u by a non-empty path.
// It runs a DFS; for repeated queries use Descendants.
func (g *Graph) HasPath(u, v NodeID) bool {
	if u == v {
		return false
	}
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.succ[x] {
			if a.To == v {
				return true
			}
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return false
}
