package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random DAG with n nodes where every edge goes from
// a smaller to a larger ID (hence acyclic by construction).
func randomDAG(rng *rand.Rand, n int, density float64) *Graph {
	g := New("random")
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + rng.Intn(100)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.MustAddEdge(NodeID(i), NodeID(j), int64(rng.Intn(50)))
			}
		}
	}
	return g
}

func TestTopoOrderIsTopological(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), 0.2)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, g.NumNodes())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(order) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(7)), 30, 0.15)
	a, _ := g.TopoOrder()
	b, _ := g.TopoOrder()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopoOrder not deterministic")
		}
	}
}

func TestTopoPositions(t *testing.T) {
	g := New("chain")
	a := g.AddNode(1)
	b := g.AddNode(1)
	c := g.AddNode(1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	pos, err := g.TopoPositions()
	if err != nil {
		t.Fatal(err)
	}
	if pos[a] != 0 || pos[b] != 1 || pos[c] != 2 {
		t.Errorf("positions = %v", pos)
	}
}

func TestDescendantsAncestorsChain(t *testing.T) {
	g := New("chain")
	a := g.AddNode(1)
	b := g.AddNode(1)
	c := g.AddNode(1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	desc, err := g.Descendants()
	if err != nil {
		t.Fatal(err)
	}
	if desc[a].Count() != 2 || !desc[a].Contains(int(c)) {
		t.Errorf("desc[a] = %v", desc[a])
	}
	if desc[c].Count() != 0 {
		t.Errorf("desc[c] = %v", desc[c])
	}
	anc, err := g.Ancestors()
	if err != nil {
		t.Fatal(err)
	}
	if anc[c].Count() != 2 || !anc[c].Contains(int(a)) {
		t.Errorf("anc[c] = %v", anc[c])
	}
	if anc[a].Count() != 0 {
		t.Errorf("anc[a] = %v", anc[a])
	}
}

// Property: v in desc[u] iff u in anc[v], and both agree with HasPath.
func TestClosureConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(25), 0.25)
		desc, err := g.Descendants()
		if err != nil {
			return false
		}
		anc, err := g.Ancestors()
		if err != nil {
			return false
		}
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				d := desc[u].Contains(v)
				if d != anc[v].Contains(u) {
					return false
				}
				if d != g.HasPath(NodeID(u), NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHasPathSelf(t *testing.T) {
	g := New("one")
	a := g.AddNode(1)
	if g.HasPath(a, a) {
		t.Error("HasPath(a,a) should be false (no non-empty path)")
	}
}
