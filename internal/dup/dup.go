// Package dup implements task-duplication scheduling, the technique
// the paper's assumptions explicitly exclude ("duplication of tasks in
// separate grains is not allowed", §2, noting heuristics [2,12,16] use
// it). It exists as an extension experiment: how much parallel time
// does the no-duplication rule cost the five compared heuristics?
//
// Because a task may now run on several processors, the ordinary
// sched.Schedule cannot represent the result; this package has its own
// schedule type and validator. A task copy is valid when, for every
// predecessor, some copy of that predecessor either ran earlier on the
// same processor or finished early enough on another processor for its
// message to arrive.
//
// The heuristic is a simplified Duplication Scheduling Heuristic (DSH,
// Kruatrachue & Lewis): list scheduling by communication-weighted
// level; each task goes to the processor giving the earliest start,
// and while the start time is bound by a cross-processor message the
// binding predecessor is greedily duplicated onto the processor if
// that strictly reduces the start.
package dup

import (
	"fmt"
	"sort"

	"schedcomp/internal/dag"
)

// Assignment is one executed copy of a task.
type Assignment struct {
	Node   dag.NodeID
	Proc   int
	Start  int64
	Finish int64
}

// Schedule is a duplication schedule: one or more copies per task.
type Schedule struct {
	Graph    *dag.Graph
	Copies   [][]Assignment // indexed by node; at least one copy each
	NumProcs int
	Makespan int64
}

// ParallelTime returns the makespan.
func (s *Schedule) ParallelTime() int64 { return s.Makespan }

// Speedup returns serial time / parallel time.
func (s *Schedule) Speedup() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.Graph.SerialTime()) / float64(s.Makespan)
}

// Duplicates returns the number of extra task copies beyond one per
// task.
func (s *Schedule) Duplicates() int {
	d := 0
	for _, cs := range s.Copies {
		d += len(cs) - 1
	}
	return d
}

// Validate checks the duplication execution model.
func (s *Schedule) Validate() error {
	g := s.Graph
	n := g.NumNodes()
	if len(s.Copies) != n {
		return fmt.Errorf("dup: schedule covers %d of %d tasks", len(s.Copies), n)
	}
	type slot struct{ start, finish int64 }
	perProc := map[int][]slot{}
	for v := 0; v < n; v++ {
		if len(s.Copies[v]) == 0 {
			return fmt.Errorf("dup: task %d has no copy", v)
		}
		for _, c := range s.Copies[v] {
			if int(c.Node) != v {
				return fmt.Errorf("dup: copy of %d labelled %d", v, c.Node)
			}
			if c.Proc < 0 || c.Proc >= s.NumProcs {
				return fmt.Errorf("dup: task %d on processor %d outside [0,%d)", v, c.Proc, s.NumProcs)
			}
			if c.Finish != c.Start+g.Weight(c.Node) || c.Start < 0 {
				return fmt.Errorf("dup: task %d copy has bad interval [%d,%d)", v, c.Start, c.Finish)
			}
			if c.Finish > s.Makespan {
				return fmt.Errorf("dup: task %d finishes at %d beyond makespan %d", v, c.Finish, s.Makespan)
			}
			perProc[c.Proc] = append(perProc[c.Proc], slot{c.Start, c.Finish})
			// Every predecessor must be satisfiable by some copy.
			for _, e := range g.Preds(c.Node) {
				ok := false
				for _, pc := range s.Copies[e.To] {
					ready := pc.Finish
					if pc.Proc != c.Proc {
						ready += e.Weight
					}
					if ready <= c.Start {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("dup: task %d copy on proc %d starts at %d before any copy of pred %d supplies it",
						v, c.Proc, c.Start, e.To)
				}
			}
		}
	}
	for p, slots := range perProc {
		sort.Slice(slots, func(i, j int) bool { return slots[i].start < slots[j].start })
		for i := 1; i < len(slots); i++ {
			if slots[i].start < slots[i-1].finish {
				return fmt.Errorf("dup: processor %d overlap at %d", p, slots[i].start)
			}
		}
	}
	return nil
}

// DSH is the duplication scheduler. MaxDupsPerTask bounds the greedy
// duplication chain per placement decision: 0 means the default of 3,
// and a negative value disables duplication entirely (turning DSH into
// a plain earliest-start list scheduler, the ablation baseline).
type DSH struct {
	MaxDupsPerTask int
}

// New returns a DSH scheduler with default limits.
func New() *DSH { return &DSH{MaxDupsPerTask: 3} }

// Name identifies the scheduler in reports.
func (d *DSH) Name() string { return "DSH" }

type procState struct {
	free   int64
	copies map[dag.NodeID]int64 // finish time of the local copy
}

// Schedule runs the heuristic and returns a validated duplication
// schedule.
func (d *DSH) Schedule(g *dag.Graph) (*Schedule, error) {
	maxDups := d.MaxDupsPerTask
	if maxDups == 0 {
		maxDups = 3
	} else if maxDups < 0 {
		maxDups = 0
	}
	n := g.NumNodes()
	s := &Schedule{Graph: g, Copies: make([][]Assignment, n)}
	if n == 0 {
		return s, nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Priority list: level descending, topologically consistent (a
	// node's level strictly exceeds its successors', so sorting by
	// level is automatically topological; ties by ID).
	list := append([]dag.NodeID(nil), order...)
	sort.SliceStable(list, func(i, j int) bool {
		if level[list[i]] != level[list[j]] {
			return level[list[i]] > level[list[j]]
		}
		return list[i] < list[j]
	})

	var procs []*procState
	// earliestFinish[v] is the earliest finish over v's copies.
	earliestFinish := make([]int64, n)

	// arrive computes when v could start on processor p, and which
	// predecessor binds it from off-processor.
	arrive := func(v dag.NodeID, p *procState) (int64, dag.NodeID) {
		var t int64
		binding := dag.NodeID(-1)
		for _, e := range g.Preds(v) {
			var at int64
			if f, local := p.copies[e.To]; local {
				at = f
			} else {
				at = earliestFinish[e.To] + e.Weight
			}
			if at > t {
				t = at
				if _, local := p.copies[e.To]; !local {
					binding = e.To
				} else {
					binding = -1
				}
			}
		}
		return t, binding
	}

	addCopy := func(v dag.NodeID, pi int, start int64) {
		p := procs[pi]
		f := start + g.Weight(v)
		s.Copies[v] = append(s.Copies[v], Assignment{Node: v, Proc: pi, Start: start, Finish: f})
		p.copies[v] = f
		if start < p.free {
			panic("dup: overlapping copy")
		}
		p.free = f
		if f > s.Makespan {
			s.Makespan = f
		}
		if earliestFinish[v] == 0 || f < earliestFinish[v] {
			earliestFinish[v] = f
		}
	}

	for _, v := range list {
		// Evaluate each used processor plus one fresh.
		bestP := -1
		var bestStart int64
		var bestDups []dag.NodeID
		cand := len(procs) + 1
		for pi := 0; pi < cand; pi++ {
			var p *procState
			if pi < len(procs) {
				p = procs[pi]
			} else {
				p = &procState{copies: map[dag.NodeID]int64{}}
			}
			// Simulate greedy duplication on a scratch copy of the
			// processor state.
			scratch := &procState{free: p.free, copies: map[dag.NodeID]int64{}}
			for k, f := range p.copies {
				scratch.copies[k] = f
			}
			var dups []dag.NodeID
			start, binding := arrive(v, scratch)
			if scratch.free > start {
				start = scratch.free
			}
			for len(dups) < maxDups && binding >= 0 {
				// Duplicate the binding predecessor locally if that
				// strictly helps.
				ds, _ := arrive(binding, scratch)
				if scratch.free > ds {
					ds = scratch.free
				}
				df := ds + g.Weight(binding)
				scratch.copies[binding] = df
				oldFree := scratch.free
				scratch.free = df
				ns, nbind := arrive(v, scratch)
				if scratch.free > ns {
					ns = scratch.free
				}
				if ns < start {
					start = ns
					dups = append(dups, binding)
					binding = nbind
				} else {
					delete(scratch.copies, binding)
					scratch.free = oldFree
					break
				}
			}
			if bestP == -1 || start < bestStart {
				bestP, bestStart, bestDups = pi, start, dups
			}
		}
		if bestP == len(procs) {
			procs = append(procs, &procState{copies: map[dag.NodeID]int64{}})
		}
		// Commit duplications then the task itself.
		p := procs[bestP]
		for _, dv := range bestDups {
			ds, _ := arrive(dv, p)
			if p.free > ds {
				ds = p.free
			}
			addCopy(dv, bestP, ds)
		}
		start, _ := arrive(v, p)
		if p.free > start {
			start = p.free
		}
		addCopy(v, bestP, start)
	}
	s.NumProcs = len(procs)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
