package dup

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/paperex"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

func mustSchedule(t *testing.T, g *dag.Graph) *Schedule {
	t.Helper()
	s, err := New().Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEmptyAndSingle(t *testing.T) {
	if s := mustSchedule(t, dag.New("empty")); s.Makespan != 0 {
		t.Error("empty graph nonzero makespan")
	}
	g := dag.New("one")
	g.AddNode(7)
	s := mustSchedule(t, g)
	if s.Makespan != 7 || s.NumProcs != 1 || s.Duplicates() != 0 {
		t.Errorf("single task: makespan %d procs %d dups %d", s.Makespan, s.NumProcs, s.Duplicates())
	}
}

func TestDuplicationBeatsCommBoundFork(t *testing.T) {
	// root(10) -> 4 children(10) with edges of 100. Without
	// duplication the best schedule is serial (50): any split pays a
	// 100-unit message. With duplication every processor runs its own
	// root copy: parallel time 20.
	g := dag.New("fork")
	r := g.AddNode(10)
	for i := 0; i < 4; i++ {
		v := g.AddNode(10)
		g.MustAddEdge(r, v, 100)
	}
	s := mustSchedule(t, g)
	if s.Makespan != 20 {
		t.Errorf("makespan = %d, want 20 (duplicated root)", s.Makespan)
	}
	if s.Duplicates() < 3 {
		t.Errorf("duplicates = %d, want >= 3", s.Duplicates())
	}
	// Every no-duplication heuristic must be strictly worse here.
	for _, h := range heuristics.All() {
		sc, err := heuristics.Run(h, g)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Makespan <= s.Makespan {
			t.Errorf("%s makespan %d should exceed DSH's 20", h.Name(), sc.Makespan)
		}
	}
}

func TestPaperExample(t *testing.T) {
	// On the appendix example the no-duplication optimum is 130; DSH
	// must do at least as well (duplication only adds options).
	s := mustSchedule(t, paperex.Graph())
	if s.Makespan > 130 {
		t.Errorf("makespan = %d, want <= 130", s.Makespan)
	}
}

func TestChainNoDuplication(t *testing.T) {
	g := dag.New("chain")
	var prev dag.NodeID = -1
	for i := 0; i < 6; i++ {
		v := g.AddNode(10)
		if prev >= 0 {
			g.MustAddEdge(prev, v, 50)
		}
		prev = v
	}
	s := mustSchedule(t, g)
	if s.Makespan != 60 || s.NumProcs != 1 || s.Duplicates() != 0 {
		t.Errorf("chain: makespan %d procs %d dups %d", s.Makespan, s.NumProcs, s.Duplicates())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := dag.New("pair")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 100)
	s := mustSchedule(t, g)
	// Corrupt: move b's copy earlier than its input allows.
	s.Copies[b][0].Start = 0
	s.Copies[b][0].Finish = 10
	if err := s.Validate(); err == nil {
		t.Fatal("expected validation failure")
	}
}

func TestMaxDupsBound(t *testing.T) {
	g := paperex.Graph()
	strict := &DSH{MaxDupsPerTask: 0} // treated as default
	if _, err := strict.Schedule(g); err != nil {
		t.Fatal(err)
	}
}

// Property: DSH schedules validate on arbitrary random graphs, with
// and without duplication, and disabling duplication yields zero extra
// copies.
func TestQuickSchedulesValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := dag.New("q")
		for i := 0; i < n; i++ {
			g.AddNode(int64(1 + rng.Intn(60)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(100) < 25 {
					g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(100)))
				}
			}
		}
		withDup, err := New().Schedule(g)
		if err != nil || withDup.Validate() != nil {
			return false
		}
		noDup, err := (&DSH{MaxDupsPerTask: -1}).Schedule(g)
		if err != nil || noDup.Validate() != nil {
			return false
		}
		return noDup.Duplicates() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOnGeneratedPDGs(t *testing.T) {
	for i, band := range gen.PaperBands() {
		g := gen.MustGenerate(gen.Params{
			Nodes: 50, Anchor: 3, WMin: 20, WMax: 100, Gran: band,
		}, int64(900+i))
		s := mustSchedule(t, g)
		if s.Makespan <= 0 {
			t.Errorf("band %v: makespan %d", band, s.Makespan)
		}
	}
}
