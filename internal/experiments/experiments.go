// Package experiments regenerates every table and figure of the
// paper's evaluation section (§4) from a testbed evaluation. Each
// TableN function corresponds to the same-numbered table in the paper;
// the figures are the same aggregates plotted (Fig 1 = Table 3, Fig 2 =
// Table 4, Fig 3 = Table 5, Fig 4 = Table 7, Fig 5 = Table 8, Fig 6 =
// Table 9), for which FigureN functions render ASCII charts.
package experiments

import (
	"fmt"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
	"schedcomp/internal/gen"
	"schedcomp/internal/stats"
)

// bandKey returns the index of the granularity band a class belongs
// to, matching gen.PaperBands order.
func bandKey(bands []gen.Band, c corpus.Class) int {
	for i, b := range bands {
		if b == c.Band {
			return i
		}
	}
	return -1
}

// wrangeKey returns the index of the class's weight range.
func wrangeKey(ranges []corpus.WeightRange, c corpus.Class) int {
	for i, w := range ranges {
		if w == c.WRange {
			return i
		}
	}
	return -1
}

// anchorKey returns the index of the class's anchor out-degree.
func anchorKey(anchors []int, c corpus.Class) int {
	for i, a := range anchors {
		if a == c.Anchor {
			return i
		}
	}
	return -1
}

// groupAcc accumulates one statistic per (group, heuristic).
type groupAcc struct {
	acc [][]stats.Acc
}

func newGroupAcc(groups, heurs int) *groupAcc {
	g := &groupAcc{acc: make([][]stats.Acc, groups)}
	for i := range g.acc {
		g.acc[i] = make([]stats.Acc, heurs)
	}
	return g
}

// gather folds value(m) for every measurement into the group returned
// by key.
func gather(ev *core.Evaluation, key func(corpus.Class) int, groups int,
	value func(core.Measurement) float64) *groupAcc {
	ga := newGroupAcc(groups, len(ev.Heuristics))
	for _, set := range ev.Sets {
		k := key(set.Class)
		if k < 0 {
			continue
		}
		for _, g := range set.Graphs {
			for hi, m := range g.ByHeur {
				ga.acc[k][hi].Add(value(m))
			}
		}
	}
	return ga
}

// meanTable renders per-group means, one row per group.
func meanTable(title string, rowLabels []string, heurs []string, ga *groupAcc) *stats.Table {
	t := stats.NewTable(title, append([]string{""}, heurs...)...)
	for gi, label := range rowLabels {
		row := []string{label}
		for hi := range heurs {
			row = append(row, stats.F(ga.acc[gi][hi].Mean()))
		}
		t.AddRow(row...)
	}
	return t
}

// countTable renders per-group sums (used for the speedup<1 counts;
// the paper prints them with two decimals, e.g. "234.00").
func countTable(title string, rowLabels []string, heurs []string, ga *groupAcc) *stats.Table {
	t := stats.NewTable(title, append([]string{""}, heurs...)...)
	for gi, label := range rowLabels {
		row := []string{label}
		for hi := range heurs {
			row = append(row, stats.F(ga.acc[gi][hi].Sum()))
		}
		t.AddRow(row...)
	}
	return t
}

func bandLabels() []string {
	bands := gen.PaperBands()
	out := make([]string, len(bands))
	for i, b := range bands {
		out[i] = b.String()
	}
	return out
}

func wrangeLabels() []string {
	ranges := corpus.PaperWeightRanges()
	out := make([]string, len(ranges))
	for i, w := range ranges {
		out[i] = w.String()
	}
	return out
}

func anchorLabels() []string {
	anchors := corpus.PaperAnchors()
	out := make([]string, len(anchors))
	for i, a := range anchors {
		out[i] = fmt.Sprintf("A = %d", a)
	}
	return out
}

func speedupLT1(m core.Measurement) float64 {
	if m.Speedup < 1 {
		return 1
	}
	return 0
}

func relTime(m core.Measurement) float64    { return m.RelTime }
func speedup(m core.Measurement) float64    { return m.Speedup }
func efficiency(m core.Measurement) float64 { return m.Efficiency }

// Table1 reports the corpus composition (Table 1 of the paper).
func Table1(c *corpus.Corpus) *stats.Table {
	t := stats.NewTable("Table 1: corpus composition",
		"Granularity", "Anchor", "Node Weight Range", "# of Graphs")
	for _, s := range c.Sets {
		t.AddRow(s.Class.Band.String(), stats.I(s.Class.Anchor),
			s.Class.WRange.String(), stats.I(len(s.Graphs)))
	}
	return t
}

// Table2 counts schedules with speedup < 1 per granularity band.
func Table2(ev *core.Evaluation) *stats.Table {
	bands := gen.PaperBands()
	ga := gather(ev, func(c corpus.Class) int { return bandKey(bands, c) }, len(bands), speedupLT1)
	return countTable("Table 2: number of schedules with speedup < 1, by granularity",
		bandLabels(), ev.Heuristics, ga)
}

// Table3 reports average normalized relative parallel time per
// granularity band (also Figure 1).
func Table3(ev *core.Evaluation) *stats.Table {
	bands := gen.PaperBands()
	ga := gather(ev, func(c corpus.Class) int { return bandKey(bands, c) }, len(bands), relTime)
	return meanTable("Table 3 / Figure 1: average normalized relative parallel time, by granularity",
		bandLabels(), ev.Heuristics, ga)
}

// Table4 reports average speedup per granularity band (also Figure 2).
func Table4(ev *core.Evaluation) *stats.Table {
	bands := gen.PaperBands()
	ga := gather(ev, func(c corpus.Class) int { return bandKey(bands, c) }, len(bands), speedup)
	return meanTable("Table 4 / Figure 2: average speedup, by granularity",
		bandLabels(), ev.Heuristics, ga)
}

// Table5 reports average efficiency per granularity band (also
// Figure 3).
func Table5(ev *core.Evaluation) *stats.Table {
	bands := gen.PaperBands()
	ga := gather(ev, func(c corpus.Class) int { return bandKey(bands, c) }, len(bands), efficiency)
	return meanTable("Table 5 / Figure 3: average efficiency, by granularity",
		bandLabels(), ev.Heuristics, ga)
}

// Table6 counts schedules with speedup < 1 per node weight range.
func Table6(ev *core.Evaluation) *stats.Table {
	ranges := corpus.PaperWeightRanges()
	ga := gather(ev, func(c corpus.Class) int { return wrangeKey(ranges, c) }, len(ranges), speedupLT1)
	return countTable("Table 6: number of schedules with speedup < 1, by node weight range",
		wrangeLabels(), ev.Heuristics, ga)
}

// Table7 reports average relative parallel time per node weight range
// (also Figure 4).
func Table7(ev *core.Evaluation) *stats.Table {
	ranges := corpus.PaperWeightRanges()
	ga := gather(ev, func(c corpus.Class) int { return wrangeKey(ranges, c) }, len(ranges), relTime)
	return meanTable("Table 7 / Figure 4: average normalized relative parallel time, by node weight range",
		wrangeLabels(), ev.Heuristics, ga)
}

// Table8 reports average speedup per node weight range (also
// Figure 5).
func Table8(ev *core.Evaluation) *stats.Table {
	ranges := corpus.PaperWeightRanges()
	ga := gather(ev, func(c corpus.Class) int { return wrangeKey(ranges, c) }, len(ranges), speedup)
	return meanTable("Table 8 / Figure 5: average speedup, by node weight range",
		wrangeLabels(), ev.Heuristics, ga)
}

// Table9 reports average efficiency per node weight range (also
// Figure 6).
func Table9(ev *core.Evaluation) *stats.Table {
	ranges := corpus.PaperWeightRanges()
	ga := gather(ev, func(c corpus.Class) int { return wrangeKey(ranges, c) }, len(ranges), efficiency)
	return meanTable("Table 9 / Figure 6: average efficiency, by node weight range",
		wrangeLabels(), ev.Heuristics, ga)
}

// Table10 counts schedules with speedup < 1 per anchor out-degree.
func Table10(ev *core.Evaluation) *stats.Table {
	anchors := corpus.PaperAnchors()
	ga := gather(ev, func(c corpus.Class) int { return anchorKey(anchors, c) }, len(anchors), speedupLT1)
	return countTable("Table 10: number of schedules with speedup < 1, by anchor out-degree",
		anchorLabels(), ev.Heuristics, ga)
}

// Table11 reports average relative parallel time per anchor
// out-degree.
func Table11(ev *core.Evaluation) *stats.Table {
	anchors := corpus.PaperAnchors()
	ga := gather(ev, func(c corpus.Class) int { return anchorKey(anchors, c) }, len(anchors), relTime)
	return meanTable("Table 11: normalized average relative parallel time, by anchor out-degree",
		anchorLabels(), ev.Heuristics, ga)
}

// AllTables regenerates Tables 2..11 in paper order.
func AllTables(ev *core.Evaluation) []*stats.Table {
	return []*stats.Table{
		Table2(ev), Table3(ev), Table4(ev), Table5(ev),
		Table6(ev), Table7(ev), Table8(ev), Table9(ev),
		Table10(ev), Table11(ev),
	}
}
