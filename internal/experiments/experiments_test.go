package experiments

import (
	"strconv"
	"strings"
	"testing"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
	"schedcomp/internal/stats"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dcp"
	_ "schedcomp/internal/heuristics/dls"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/ez"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

var evCache *core.Evaluation
var corpCache *corpus.Corpus

func evaluation(t *testing.T) (*corpus.Corpus, *core.Evaluation) {
	t.Helper()
	if evCache != nil {
		return corpCache, evCache
	}
	c, err := corpus.Generate(corpus.Spec{Seed: 11, GraphsPerSet: 2, MinNodes: 24, MaxNodes: 40})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	corpCache, evCache = c, ev
	return c, ev
}

func rows(t *testing.T, tbl *stats.Table, want int) {
	t.Helper()
	if len(tbl.Rows) != want {
		t.Fatalf("%s: %d rows, want %d", tbl.Title, len(tbl.Rows), want)
	}
	for _, r := range tbl.Rows {
		if len(r) != 6 { // label + 5 heuristics
			t.Fatalf("%s: row %v has %d cells", tbl.Title, r, len(r))
		}
	}
}

func TestTable1CorpusComposition(t *testing.T) {
	c, _ := evaluation(t)
	tbl := Table1(c)
	if len(tbl.Rows) != 60 {
		t.Fatalf("Table 1 rows = %d, want 60", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[3] != "2" {
			t.Errorf("graphs per set = %s, want 2", r[3])
		}
	}
}

func TestGranularityTablesShape(t *testing.T) {
	_, ev := evaluation(t)
	rows(t, Table2(ev), 5)
	rows(t, Table3(ev), 5)
	rows(t, Table4(ev), 5)
	rows(t, Table5(ev), 5)
}

func TestWeightRangeTablesShape(t *testing.T) {
	_, ev := evaluation(t)
	rows(t, Table6(ev), 3)
	rows(t, Table7(ev), 3)
	rows(t, Table8(ev), 3)
	rows(t, Table9(ev), 3)
}

func TestAnchorTablesShape(t *testing.T) {
	_, ev := evaluation(t)
	rows(t, Table10(ev), 4)
	rows(t, Table11(ev), 4)
}

func TestTable2CLANSColumnIsZero(t *testing.T) {
	// The paper's headline: CLANS never yields speedup < 1.
	_, ev := evaluation(t)
	tbl := Table2(ev)
	for _, r := range tbl.Rows {
		if r[1] != "0.00" {
			t.Errorf("CLANS count in %q = %s, want 0.00", r[0], r[1])
		}
	}
}

func TestTable2CountsBounded(t *testing.T) {
	_, ev := evaluation(t)
	tbl := Table2(ev)
	// Each granularity row covers 4 anchors × 3 ranges × 2 graphs = 24.
	for _, r := range tbl.Rows {
		for _, cell := range r[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("cell %q: %v", cell, err)
			}
			if v < 0 || v > 24 {
				t.Errorf("count %v out of [0,24]", v)
			}
		}
	}
}

func TestTable4SpeedupIncreasesWithGranularity(t *testing.T) {
	// The paper's key trend: every heuristic speeds up as granularity
	// grows. With a tiny test corpus we allow small non-monotonic
	// wobbles but require the last band to beat the first.
	_, ev := evaluation(t)
	tbl := Table4(ev)
	for col := 1; col <= 5; col++ {
		first, _ := strconv.ParseFloat(tbl.Rows[0][col], 64)
		last, _ := strconv.ParseFloat(tbl.Rows[4][col], 64)
		if last <= first {
			t.Errorf("column %s: speedup %v at high G not above %v at low G",
				tbl.Columns[col], last, first)
		}
	}
}

func TestTable3BestHeuristicIsZeroish(t *testing.T) {
	// In every band some heuristic must be close to the best (its mean
	// relative time bounded), and all relative times are >= 0.
	_, ev := evaluation(t)
	tbl := Table3(ev)
	for _, r := range tbl.Rows {
		min := 1e18
		for _, cell := range r[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 {
				t.Errorf("negative relative time %v", v)
			}
			if v < min {
				min = v
			}
		}
		if min > 0.5 {
			t.Errorf("band %q: best mean relative time %v suspiciously high", r[0], min)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	_, ev := evaluation(t)
	figs := AllFigures(ev)
	if len(figs) != 6 {
		t.Fatalf("figures = %d", len(figs))
	}
	for i, f := range figs {
		if !strings.Contains(f, "Figure") || !strings.Contains(f, "legend") {
			t.Errorf("figure %d malformed:\n%s", i+1, f)
		}
	}
}

func TestAllTablesCount(t *testing.T) {
	_, ev := evaluation(t)
	if got := len(AllTables(ev)); got != 10 {
		t.Fatalf("AllTables = %d, want 10 (Tables 2-11)", got)
	}
}
