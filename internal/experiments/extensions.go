package experiments

// Extension experiments beyond the paper's Tables 1-11, implementing
// the follow-ups its conclusion proposes:
//
//   - OptimalityGap: "no baseline is available" — for tiny graphs an
//     exact optimum is computable (internal/opt), so measure each
//     heuristic's true distance from optimal per granularity band.
//   - WiderWeightRanges: "study of both more selective and wider
//     ranges is called for".
//   - MetricComparison: is the paper's granularity metric actually a
//     better speedup predictor than Sarkar's (communication-blind)
//     definition it argues against?

import (
	"errors"
	"fmt"
	"math"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
	"schedcomp/internal/dup"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/opt"
	"schedcomp/internal/stats"
)

// OptimalityGap generates perBand tiny graphs (≤ 12 tasks) in each
// granularity band, solves each exactly, and reports the mean ratio of
// each heuristic's parallel time to the optimum. Graphs whose exact
// search exceeds its budget are skipped (counted in the last column).
func OptimalityGap(seed int64, perBand int) (*stats.Table, error) {
	scheds := heuristics.All()
	cols := append([]string{""}, heuristics.PaperOrder...)
	cols = append(cols, "solved")
	t := stats.NewTable("Extension: mean parallel time / optimal parallel time (12-task graphs)", cols...)

	for bi, band := range gen.PaperBands() {
		accs := make([]stats.Acc, len(scheds))
		solved := 0
		for i := 0; i < perBand; i++ {
			g := gen.MustGenerate(gen.Params{
				Nodes: 12, Anchor: 2 + i%2, WMin: 20, WMax: 200, Gran: band,
			}, seed+int64(bi*1000+i))
			if g.NumNodes() > 12 {
				continue
			}
			// Seed the exact search with the best heuristic schedule.
			var times []int64
			var best int64
			for _, s := range scheds {
				sc, err := heuristics.Run(s, g)
				if err != nil {
					return nil, err
				}
				times = append(times, sc.Makespan)
				if best == 0 || sc.Makespan < best {
					best = sc.Makespan
				}
			}
			res, err := opt.Solve(g, opt.Options{Incumbent: best, MaxStates: 5_000_000})
			if errors.Is(err, opt.ErrBudget) {
				continue
			}
			if err != nil {
				return nil, err
			}
			solved++
			for hi, pt := range times {
				accs[hi].Add(float64(pt) / float64(res.Makespan))
			}
		}
		row := []string{band.String()}
		for hi := range scheds {
			row = append(row, stats.F(accs[hi].Mean()))
		}
		row = append(row, stats.I(solved))
		t.AddRow(row...)
	}
	return t, nil
}

// WiderWeightRanges extends Tables 6-9's domain with ranges up to
// 20-1600, reporting mean speedup per range (graphs drawn across the
// same five granularity bands as the main corpus).
func WiderWeightRanges(seed int64, graphsPerCell int) (*stats.Table, error) {
	ranges := []corpus.WeightRange{
		{Min: 20, Max: 50}, {Min: 20, Max: 100}, {Min: 20, Max: 200},
		{Min: 20, Max: 400}, {Min: 20, Max: 800}, {Min: 20, Max: 1600},
	}
	scheds := heuristics.All()
	t := stats.NewTable("Extension: average speedup over selective and wider node weight ranges",
		append([]string{""}, heuristics.PaperOrder...)...)
	bands := gen.PaperBands()
	for ri, wr := range ranges {
		accs := make([]stats.Acc, len(scheds))
		for bi, band := range bands {
			for i := 0; i < graphsPerCell; i++ {
				g := gen.MustGenerate(gen.Params{
					Nodes: 60, Anchor: 3, WMin: wr.Min, WMax: wr.Max, Gran: band,
				}, seed+int64(ri*100000+bi*1000+i))
				for hi, s := range scheds {
					sc, err := heuristics.Run(s, g)
					if err != nil {
						return nil, err
					}
					accs[hi].Add(sc.Speedup())
				}
			}
		}
		row := []string{wr.String()}
		for hi := range scheds {
			row = append(row, stats.F(accs[hi].Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtendedOrder is the column order of the extended comparison: the
// paper's five plus ETF, EZ (Sarkar), LC (Kim & Browne), DLS (Sih &
// Lee) and DCP (mobility-driven, Kwok & Ahmad-inspired).
var ExtendedOrder = []string{"CLANS", "DSC", "MCP", "MH", "HU", "ETF", "EZ", "LC", "DLS", "DCP"}

// ExtendedComparison reruns the granularity study (the paper's
// conclusive domain) with eight heuristics: the compared five plus the
// three classic schedulers the paper's conclusion invites in. It
// reports mean speedup per granularity band.
func ExtendedComparison(seed int64, perBand int) (*stats.Table, error) {
	scheds := make([]heuristics.Scheduler, len(ExtendedOrder))
	for i, name := range ExtendedOrder {
		s, err := heuristics.New(name)
		if err != nil {
			return nil, err
		}
		scheds[i] = s
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension: average speedup with %d heuristics, by granularity", len(ExtendedOrder)),
		append([]string{""}, ExtendedOrder...)...)
	for bi, band := range gen.PaperBands() {
		accs := make([]stats.Acc, len(scheds))
		for i := 0; i < perBand; i++ {
			g := gen.MustGenerate(gen.Params{
				Nodes: 70, Anchor: 2 + i%4, WMin: 20, WMax: 200, Gran: band,
			}, seed+int64(bi*1000+i))
			for hi, s := range scheds {
				sc, err := heuristics.Run(s, g)
				if err != nil {
					return nil, err
				}
				accs[hi].Add(sc.Speedup())
			}
		}
		row := []string{band.String()}
		for hi := range scheds {
			row = append(row, stats.F(accs[hi].Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// DuplicationGain quantifies the paper's no-duplication assumption:
// per granularity band, the mean speedup of the best of the five
// compared heuristics versus a duplication scheduler (simplified DSH),
// plus the mean number of extra task copies DSH spent.
func DuplicationGain(seed int64, perBand int) (*stats.Table, error) {
	scheds := heuristics.All()
	t := stats.NewTable("Extension: best no-duplication heuristic vs duplication (DSH)",
		"", "best-of-5 speedup", "DSH speedup", "DSH wins", "mean extra copies")
	for bi, band := range gen.PaperBands() {
		var best, dsh, copies stats.Acc
		wins := 0
		for i := 0; i < perBand; i++ {
			g := gen.MustGenerate(gen.Params{
				Nodes: 60, Anchor: 2 + i%4, WMin: 20, WMax: 200, Gran: band,
			}, seed+int64(bi*1000+i))
			var bestTime int64
			for _, s := range scheds {
				sc, err := heuristics.Run(s, g)
				if err != nil {
					return nil, err
				}
				if bestTime == 0 || sc.Makespan < bestTime {
					bestTime = sc.Makespan
				}
			}
			ds, err := dup.New().Schedule(g)
			if err != nil {
				return nil, err
			}
			best.Add(float64(g.SerialTime()) / float64(bestTime))
			dsh.Add(ds.Speedup())
			copies.Add(float64(ds.Duplicates()))
			if ds.Makespan < bestTime {
				wins++
			}
		}
		t.AddRow(band.String(), stats.F(best.Mean()), stats.F(dsh.Mean()),
			fmt.Sprintf("%d/%d", wins, perBand), stats.F(copies.Mean()))
	}
	return t, nil
}

// SpeedupQuantiles reports, per granularity band and heuristic, the
// 10th/50th/90th percentile of speedup over the evaluated corpus —
// the distributional view the paper's means hide (a mean of 1.2 can be
// "always 1.2" or "half 0.4, half 2.0", which matters for a compiler
// picking a scheduler).
func SpeedupQuantiles(ev *core.Evaluation) *stats.Table {
	bands := gen.PaperBands()
	t := stats.NewTable("Extension: speedup percentiles p10/p50/p90, by granularity",
		append([]string{""}, ev.Heuristics...)...)
	// Collect raw speedups per (band, heuristic).
	raw := make([][][]float64, len(bands))
	for i := range raw {
		raw[i] = make([][]float64, len(ev.Heuristics))
	}
	for _, set := range ev.Sets {
		k := bandKey(bands, set.Class)
		if k < 0 {
			continue
		}
		for _, g := range set.Graphs {
			for hi, m := range g.ByHeur {
				raw[k][hi] = append(raw[k][hi], m.Speedup)
			}
		}
	}
	for bi, band := range bands {
		row := []string{band.String()}
		for hi := range ev.Heuristics {
			xs := raw[bi][hi]
			row = append(row, fmt.Sprintf("%.2f/%.2f/%.2f",
				stats.Quantile(xs, 0.1), stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.9)))
		}
		t.AddRow(row...)
	}
	return t
}

// SizeScaling reports mean speedup per heuristic as graph size grows,
// at a fixed mid-granularity class — how much usable parallelism the
// generator's structure exposes with scale, and which heuristics
// capture it.
func SizeScaling(seed int64, perSize int) (*stats.Table, error) {
	sizes := []int{25, 50, 100, 200, 400}
	scheds := heuristics.All()
	t := stats.NewTable("Extension: average speedup vs graph size (0.2 < G < 0.8, anchor 3)",
		append([]string{"nodes"}, heuristics.PaperOrder...)...)
	for si, size := range sizes {
		accs := make([]stats.Acc, len(scheds))
		for i := 0; i < perSize; i++ {
			g := gen.MustGenerate(gen.Params{
				Nodes: size, Anchor: 3, WMin: 20, WMax: 200,
				Gran: gen.Band{Lo: 0.2, Hi: 0.8},
			}, seed+int64(si*1000+i))
			for hi, s := range scheds {
				sc, err := heuristics.Run(s, g)
				if err != nil {
					return nil, err
				}
				accs[hi].Add(sc.Speedup())
			}
		}
		row := []string{stats.I(size)}
		for hi := range scheds {
			row = append(row, stats.F(accs[hi].Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// MetricComparison measures, per heuristic, the Pearson correlation of
// achieved speedup with (a) log of the paper's granularity and (b) log
// of Sarkar's granularity (mean node weight, communication-blind),
// over a mixed-class corpus. The paper's closing claim is that its
// metric "gives a very good overall measure of the useful parallelism"
// — this quantifies it against the alternative it cites.
func MetricComparison(seed int64, graphs int) (*stats.Table, error) {
	scheds := heuristics.All()
	bands := gen.PaperBands()
	speed := make([][]float64, len(scheds))
	var paperG, sarkarG []float64
	for i := 0; i < graphs; i++ {
		band := bands[i%len(bands)]
		g := gen.MustGenerate(gen.Params{
			Nodes: 50, Anchor: 2 + i%4, WMin: 20, WMax: 100 + int64(i%3)*150, Gran: band,
		}, seed+int64(i))
		paperG = append(paperG, math.Log(g.Granularity()))
		sarkarG = append(sarkarG, math.Log(g.SarkarGranularity()))
		for hi, s := range scheds {
			sc, err := heuristics.Run(s, g)
			if err != nil {
				return nil, err
			}
			speed[hi] = append(speed[hi], sc.Speedup())
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension: Pearson correlation of speedup with granularity metrics (%d graphs)", graphs),
		"", "paper granularity", "Sarkar granularity")
	for hi, s := range scheds {
		t.AddRow(s.Name(),
			stats.F(stats.Pearson(paperG, speed[hi])),
			stats.F(stats.Pearson(sarkarG, speed[hi])))
	}
	return t, nil
}
