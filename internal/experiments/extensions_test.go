package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestOptimalityGap(t *testing.T) {
	tbl, err := OptimalityGap(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		solved, err := strconv.Atoi(r[len(r)-1])
		if err != nil {
			t.Fatal(err)
		}
		if solved == 0 {
			continue // nothing solved in this band (budget); ratios are 0
		}
		for hi, cell := range r[1 : len(r)-1] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < 1-1e-9 {
				t.Errorf("band %q heuristic %d: ratio %v below 1 (beat the optimum?)",
					r[0], hi, v)
			}
			if v > 100 {
				t.Errorf("band %q heuristic %d: ratio %v absurd", r[0], hi, v)
			}
		}
		// CLANS (first column) should be near-optimal on tiny graphs.
		clans, _ := strconv.ParseFloat(r[1], 64)
		if clans > 2.0 {
			t.Errorf("band %q: CLANS ratio %v unexpectedly high", r[0], clans)
		}
	}
}

func TestWiderWeightRanges(t *testing.T) {
	tbl, err := WiderWeightRanges(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		for _, cell := range r[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v <= 0 || v > 64 {
				t.Errorf("range %q: speedup %v out of sane bounds", r[0], v)
			}
		}
	}
}

func TestExtendedComparison(t *testing.T) {
	tbl, err := ExtendedComparison(17, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if len(tbl.Columns) != 11 {
		t.Fatalf("columns = %d, want label + 10 heuristics", len(tbl.Columns))
	}
	for _, r := range tbl.Rows {
		for ci, cell := range r[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v <= 0 || v > 64 {
				t.Errorf("%s %s: speedup %v out of bounds", r[0], tbl.Columns[ci+1], v)
			}
		}
	}
}

func TestDuplicationGain(t *testing.T) {
	tbl, err := DuplicationGain(21, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		bo5, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if bo5 <= 0 || ds <= 0 {
			t.Errorf("band %q: speedups %v / %v", r[0], bo5, ds)
		}
	}
}

func TestSpeedupQuantiles(t *testing.T) {
	_, ev := evaluation(t)
	tbl := SpeedupQuantiles(ev)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		for _, cell := range r[1:] {
			parts := strings.Split(cell, "/")
			if len(parts) != 3 {
				t.Fatalf("cell %q not p10/p50/p90", cell)
			}
			var prev float64 = -1
			for _, p := range parts {
				v, err := strconv.ParseFloat(p, 64)
				if err != nil {
					t.Fatal(err)
				}
				if v < prev {
					t.Errorf("quantiles not monotone in %q", cell)
				}
				prev = v
			}
		}
	}
}

func TestSizeScaling(t *testing.T) {
	tbl, err := SizeScaling(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Speedup for the best heuristic should grow with size: compare
	// CLANS at 25 vs 400 nodes.
	first, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][1], 64)
	if last <= first {
		t.Errorf("CLANS speedup did not grow with size: %v -> %v", first, last)
	}
}

func TestMetricComparison(t *testing.T) {
	tbl, err := MetricComparison(13, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		paperR, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if paperR < -1 || paperR > 1 {
			t.Errorf("%s: correlation %v outside [-1,1]", r[0], paperR)
		}
		// The paper's metric should correlate positively with speedup
		// for every heuristic (its central claim).
		if paperR < 0.2 {
			t.Errorf("%s: paper-granularity correlation %v too weak", r[0], paperR)
		}
	}
}
