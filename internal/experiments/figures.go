package experiments

import (
	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
	"schedcomp/internal/gen"
	"schedcomp/internal/stats"
)

// figure renders one of the paper's figures: the chosen statistic
// plotted per group for every heuristic.
func figure(ev *core.Evaluation, title string, key func(corpus.Class) int,
	labels []string, value func(core.Measurement) float64) string {
	ga := gather(ev, key, len(labels), value)
	series := make([]stats.Series, len(ev.Heuristics))
	for hi, name := range ev.Heuristics {
		vals := make([]float64, len(labels))
		for gi := range labels {
			vals[gi] = ga.acc[gi][hi].Mean()
		}
		series[hi] = stats.Series{Name: name, Values: vals}
	}
	return stats.Chart(title, labels, series, 14)
}

func byBand(ev *core.Evaluation, title string, value func(core.Measurement) float64) string {
	bands := gen.PaperBands()
	return figure(ev, title, func(c corpus.Class) int { return bandKey(bands, c) }, bandLabels(), value)
}

func byWRange(ev *core.Evaluation, title string, value func(core.Measurement) float64) string {
	ranges := corpus.PaperWeightRanges()
	return figure(ev, title, func(c corpus.Class) int { return wrangeKey(ranges, c) }, wrangeLabels(), value)
}

// Figure1 plots average relative parallel time against granularity.
func Figure1(ev *core.Evaluation) string {
	return byBand(ev, "Figure 1: average relative parallel time vs granularity", relTime)
}

// Figure2 plots average speedup against granularity.
func Figure2(ev *core.Evaluation) string {
	return byBand(ev, "Figure 2: average speedup vs granularity", speedup)
}

// Figure3 plots average efficiency against granularity.
func Figure3(ev *core.Evaluation) string {
	return byBand(ev, "Figure 3: average efficiency vs granularity", efficiency)
}

// Figure4 plots average relative parallel time against node weight
// range.
func Figure4(ev *core.Evaluation) string {
	return byWRange(ev, "Figure 4: average relative parallel time vs node weight range", relTime)
}

// Figure5 plots average speedup against node weight range.
func Figure5(ev *core.Evaluation) string {
	return byWRange(ev, "Figure 5: average speedup vs node weight range", speedup)
}

// Figure6 plots average efficiency against node weight range.
func Figure6(ev *core.Evaluation) string {
	return byWRange(ev, "Figure 6: average efficiency vs node weight range", efficiency)
}

// AllFigures renders Figures 1..6.
func AllFigures(ev *core.Evaluation) []string {
	return []string{
		Figure1(ev), Figure2(ev), Figure3(ev),
		Figure4(ev), Figure5(ev), Figure6(ev),
	}
}
