package experiments

import (
	"testing"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
)

// TestGoldenHeadline pins exact values from a small seeded corpus as a
// regression tripwire: generation and every heuristic are
// deterministic, so these numbers change only when an algorithm or the
// generator changes. If you change one deliberately, re-record the
// numbers here and note the change in EXPERIMENTS.md.
func TestGoldenHeadline(t *testing.T) {
	c, err := corpus.Generate(corpus.Spec{Seed: 424242, GraphsPerSet: 1, MinNodes: 30, MaxNodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(c, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Record the first graph's parallel times per heuristic.
	rec := ev.Sets[0].Graphs[0]
	t.Logf("set0 graph0: serial %d, times %v", rec.SerialTime,
		[]int64{rec.ByHeur[0].ParallelTime, rec.ByHeur[1].ParallelTime,
			rec.ByHeur[2].ParallelTime, rec.ByHeur[3].ParallelTime, rec.ByHeur[4].ParallelTime})

	// Structural invariants that must never drift.
	for si, set := range ev.Sets {
		for gi, g := range set.Graphs {
			if g.ByHeur[0].Speedup < 1-1e-12 {
				t.Errorf("set %d graph %d: CLANS speedup %v < 1", si, gi, g.ByHeur[0].Speedup)
			}
			if g.Best <= 0 {
				t.Errorf("set %d graph %d: best %d", si, gi, g.Best)
			}
		}
	}

	// Exact pinned values (recorded from the current implementation).
	if rec.SerialTime != goldenSerial {
		t.Errorf("serial time drifted: %d, recorded %d", rec.SerialTime, goldenSerial)
	}
	for i, want := range goldenTimes {
		if got := rec.ByHeur[i].ParallelTime; got != want {
			t.Errorf("%s parallel time drifted: %d, recorded %d",
				ev.Heuristics[i], got, want)
		}
	}
}

// Values recorded from the implementation at release; see
// TestGoldenHeadline for the re-recording policy. The graph is
// fine-grained (first band), hence the heuristic spread: CLANS beats
// serial, DSC/MCP retard slightly, MH lands exactly serial via its
// guardless luck, HU spreads catastrophically.
const goldenSerial = 2136

var goldenTimes = []int64{1717, 2740, 2709, 2136, 14905}
