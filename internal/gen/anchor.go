package gen

import (
	"math/rand"

	"schedcomp/internal/arena"
	"schedcomp/internal/bitset"
	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
)

// Closure-maintenance instruments: cheap incremental patches vs full
// O(V·E/64) rebuilds inside the out-degree adjustment loop.
var (
	genClosurePatches = obs.Default().Counter("gen_closure_patch_total",
		"Reachability closures repaired incrementally after an edge insert.")
	genClosureRebuilds = obs.Default().Counter("gen_closure_rebuild_total",
		"Reachability closures rebuilt in full after an edge removal.")
)

// adjustAnchor inserts and removes random edges until the mode of the
// non-sink out-degrees equals the target anchor, following the paper's
// description of the graph generation system.
//
// Inserted edges always go forward in a fixed topological order, so
// acyclicity is preserved by construction. Most insertions (a tunable
// bias) target an existing strict descendant of the source: such edges
// change the degree distribution and the communication structure but
// leave reachability — and therefore the clan structure — untouched,
// mirroring the paper's observation that the adjusted graphs keep
// coarse independent subgraphs exploitable by macro-level schedulers
// while their fine structure no longer matches the generating parse
// tree. The remaining insertions pick arbitrary later nodes and do
// perturb reachability.
func adjustAnchor(g *dag.Graph, anchor int, branch map[dag.NodeID]int, descendantBias int, rng *rand.Rand) error {
	// All of the adjuster's working storage — the private closure copy,
	// the candidate buffers, the position index — lives in pooled arena
	// scratch; nothing of it survives the adjustment.
	scratch := arena.Get()
	defer scratch.Release()
	a := &adjuster{g: g, rng: rng, branch: branch, bias: descendantBias, scratch: scratch}
	if err := a.refresh(); err != nil {
		return err
	}
	n := g.NumNodes()
	for iter := 0; iter < 60*n; iter++ {
		mode := g.AnchorOutDegree()
		if mode == anchor {
			return nil
		}
		if mode < anchor {
			if !a.bumpUp(mode) {
				return ErrGaveUp
			}
		} else {
			if !a.trimDown(mode) {
				// Cannot remove safely; grow the anchor class instead.
				if !a.bumpUp(anchor - 1) {
					return ErrGaveUp
				}
			}
		}
	}
	return ErrGaveUp
}

// defaultDescendantBias is the default percentage of insertions that
// target an existing descendant (reachability-preserving).
const defaultDescendantBias = 75

type adjuster struct {
	g       *dag.Graph
	rng     *rand.Rand
	branch  map[dag.NodeID]int
	bias    int
	scratch *arena.Scratch
	pos     []int
	byPo    []dag.NodeID
	desc    []bitset.Set
	// cand and opts are scratch reused across the (serial) adjustment
	// loop; the loop runs up to 60·n times per graph.
	cand []dag.NodeID
	opts []dag.NodeID
}

// refresh computes the topological order and a private copy of the
// descendant closure. The copy is owned by the adjuster: it is updated
// incrementally on edge insertion and rebuilt in place on removal, so
// the 60·n-iteration adjustment loop allocates no closure storage after
// this call (the graph's own cached closure must not be mutated — other
// holders may share it).
func (a *adjuster) refresh() error {
	pos, err := a.g.TopoPositions()
	if err != nil {
		return err
	}
	// Read-only snapshot: the adjuster never writes a.pos, and refresh
	// re-fetches it after every mutation that could invalidate it.
	a.pos = pos //lint:ownedcopy
	a.byPo = a.scratch.NodeIDs(len(pos))
	for v, p := range pos {
		a.byPo[p] = dag.NodeID(v)
	}
	shared, err := a.g.Descendants()
	if err != nil {
		return err
	}
	n := a.g.NumNodes()
	a.desc = a.scratch.Bitsets(len(shared), n)
	for i, s := range shared {
		a.desc[i].CopyFrom(s)
	}
	a.cand = a.scratch.NodeIDs(n)[:0]
	a.opts = a.scratch.NodeIDs(n)[:0]
	return nil
}

// recomputeDesc rebuilds the private closure in place by walking the
// fixed topological order backwards. Edge removals never invalidate a
// topological order, so a.byPo stays usable for the whole adjustment.
func (a *adjuster) recomputeDesc() {
	genClosureRebuilds.Inc()
	for i := len(a.byPo) - 1; i >= 0; i-- {
		x := a.byPo[i]
		d := &a.desc[x]
		d.Clear()
		for _, arc := range a.g.Succs(x) {
			d.Add(int(arc.To))
			d.Union(&a.desc[arc.To])
		}
	}
}

// bumpUp adds one outgoing edge to a random node of the given
// out-degree (sinks excluded), moving it one degree class higher.
func (a *adjuster) bumpUp(degree int) bool {
	if degree < 1 {
		return false
	}
	candidates := a.nodesWithOutDegree(degree)
	a.shuffle(candidates)
	for _, u := range candidates {
		if a.rng.Intn(100) < a.bias && a.addToDescendant(u) {
			return true
		}
		if a.addToLater(u, true) {
			return true
		}
	}
	// Small or saturated graphs: permit cross-branch targets rather
	// than failing the whole generation attempt.
	for _, u := range candidates {
		if a.addToDescendant(u) {
			return true
		}
		if a.addToLater(u, false) {
			return true
		}
	}
	return false
}

// addToDescendant links u to a random strict descendant it is not yet
// adjacent to. Reachability is unchanged, so the cached closure stays
// valid.
func (a *adjuster) addToDescendant(u dag.NodeID) bool {
	a.opts = a.opts[:0]
	a.desc[u].ForEach(func(i int) {
		v := dag.NodeID(i)
		if _, dup := a.g.EdgeWeight(u, v); !dup {
			a.opts = append(a.opts, v)
		}
	})
	if len(a.opts) == 0 {
		return false
	}
	v := a.opts[a.rng.Intn(len(a.opts))]
	a.g.MustAddEdge(u, v, 1)
	return true
}

// addToLater links u to a random topologically later node within the
// same fat branch, perturbing reachability locally. Confining the
// perturbation to one branch scrambles the fine structure (the paper
// notes the adjusted graphs' parse trees no longer resemble the
// generating ones) without destroying the coarse independence between
// the fat branches, which the paper's CLANS results show survived.
func (a *adjuster) addToLater(u dag.NodeID, sameBranch bool) bool {
	n := a.g.NumNodes()
	lo := a.pos[u] + 1
	if lo >= n {
		return false
	}
	for try := 0; try < 12; try++ {
		v := a.byPo[lo+a.rng.Intn(n-lo)]
		if sameBranch && a.branch[u] != a.branch[v] {
			continue
		}
		if _, dup := a.g.EdgeWeight(u, v); dup {
			continue
		}
		reachable := a.desc[u].Contains(int(v))
		a.g.MustAddEdge(u, v, 1)
		// The fixed order is still topological. If v was not already
		// reachable from u, every node that reaches u (and u itself)
		// now also reaches v and all of v's descendants; nothing else
		// changes, so the closure is patched without a recompute. (v
		// cannot be an ancestor of u — the edge goes forward in the
		// order — so desc[v] is never mutated mid-loop.)
		if !reachable {
			genClosurePatches.Inc()
			for x := range a.desc {
				if dag.NodeID(x) == u || a.desc[x].Contains(int(u)) {
					a.desc[x].Add(int(v))
					a.desc[x].Union(&a.desc[v])
				}
			}
		}
		return true
	}
	return false
}

// trimDown removes one outgoing edge from a random node of the given
// out-degree, provided the target keeps at least one other
// predecessor.
func (a *adjuster) trimDown(degree int) bool {
	candidates := a.nodesWithOutDegree(degree)
	a.shuffle(candidates)
	for _, u := range candidates {
		arcs := a.g.Succs(u)
		for _, i := range a.rng.Perm(len(arcs)) {
			v := arcs[i].To
			if a.g.InDegree(v) >= 2 {
				a.g.RemoveEdge(u, v)
				a.recomputeDesc()
				return true
			}
		}
	}
	return false
}

// nodesWithOutDegree returns the nodes of the given out-degree in the
// reused a.cand buffer; the result is only valid until the next call.
func (a *adjuster) nodesWithOutDegree(degree int) []dag.NodeID {
	a.cand = a.cand[:0]
	if degree < 1 {
		return a.cand
	}
	for v := 0; v < a.g.NumNodes(); v++ {
		if a.g.OutDegree(dag.NodeID(v)) == degree {
			a.cand = append(a.cand, dag.NodeID(v))
		}
	}
	return a.cand
}

func (a *adjuster) shuffle(s []dag.NodeID) {
	for i := len(s) - 1; i > 0; i-- {
		j := a.rng.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
