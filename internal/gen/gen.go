// Package gen implements the paper's random PDG generator (§5.1): a
// random parse-tree (series-parallel) generator materializes a DAG,
// random edges are then removed and inserted until the out-degree mode
// matches the requested anchor, and finally node and edge weights are
// assigned and calibrated so the graph's granularity lands in the
// requested band.
//
// As the paper itself observes, after the out-degree adjustment "its
// parse tree does not resemble the randomly generated parse tree" — the
// perturbation is substantial and the resulting graphs are general
// DAGs, not clean series-parallel ones.
//
// Generation is fully deterministic for a given Params and seed.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
)

// Generator instruments: how many graphs the process produced, how
// often a draw had to be abandoned, and how many extra MustGenerate
// attempts the retry loop burned (Canon et al. argue generator
// behaviour must itself be measured, not assumed).
var (
	genGraphs = obs.Default().Counter("gen_graphs_total",
		"Graphs successfully generated.")
	genGiveups = obs.Default().Counter("gen_giveups_total",
		"Generation draws abandoned because the class could not be reached.")
	genRetries = obs.Default().Counter("gen_retries_total",
		"MustGenerate attempts beyond the first.")
)

// Band is a granularity interval. Hi <= 0 means unbounded above.
type Band struct {
	Lo, Hi float64
}

// Contains reports whether g lies inside the band (Lo exclusive at 0,
// inclusive bounds otherwise — band edges never coincide with generated
// values in practice).
func (b Band) Contains(g float64) bool {
	if g < b.Lo {
		return false
	}
	return b.Hi <= 0 || g <= b.Hi
}

// Target returns the granularity the calibrator aims for: the geometric
// midpoint of the band, with sensible choices for the open-ended ones.
func (b Band) Target() float64 {
	lo, hi := b.Lo, b.Hi
	if lo <= 0 {
		lo = hi / 2
	}
	if hi <= 0 {
		hi = lo * 4
	}
	return math.Sqrt(lo * hi)
}

// String renders the band the way the paper's tables label it.
func (b Band) String() string {
	switch {
	case b.Lo <= 0:
		return fmt.Sprintf("G < %g", b.Hi)
	case b.Hi <= 0:
		return fmt.Sprintf("%g < G", b.Lo)
	default:
		return fmt.Sprintf("%g < G < %g", b.Lo, b.Hi)
	}
}

// PaperBands returns the five granularity classes of §3.1, in table
// order.
func PaperBands() []Band {
	return []Band{
		{Lo: 0, Hi: 0.08},
		{Lo: 0.08, Hi: 0.2},
		{Lo: 0.2, Hi: 0.8},
		{Lo: 0.8, Hi: 2.0},
		{Lo: 2.0, Hi: 0},
	}
}

// Params describes one graph to generate.
type Params struct {
	// Nodes is the approximate node count (the parse tree stops
	// splitting when its budget is spent; the final count is within a
	// few nodes of this).
	Nodes int
	// Anchor is the target out-degree mode, 2..5 in the paper.
	Anchor int
	// WMin and WMax bound the node weights (inclusive).
	WMin, WMax int64
	// Gran is the target granularity band.
	Gran Band

	// DescendantBias is the percentage of out-degree-adjustment edge
	// insertions that target an existing descendant (changing no
	// reachability, hence no clan structure); the remainder pick
	// arbitrary later nodes within the same fat branch. 0 means the
	// default of 75. Negative values mean 0 (every insertion
	// perturbs). The perturbation-strength ablation bench sweeps this.
	DescendantBias int
	// TrapRate is the percentage chance, per branch-body step, of
	// emitting a small parallel group (the myopic-scheduler traps);
	// 0 means the default of 40, negative means none.
	TrapRate int
}

func (p Params) descendantBias() int {
	switch {
	case p.DescendantBias == 0:
		return defaultDescendantBias
	case p.DescendantBias < 0:
		return 0
	case p.DescendantBias > 100:
		return 100
	}
	return p.DescendantBias
}

func (p Params) trapRate() int {
	switch {
	case p.TrapRate == 0:
		return defaultTrapRate
	case p.TrapRate < 0:
		return 0
	case p.TrapRate > 95:
		return 95
	}
	return p.TrapRate
}

func (p Params) validate() error {
	if p.Nodes < 4 {
		return fmt.Errorf("gen: need at least 4 nodes, got %d", p.Nodes)
	}
	if p.Anchor < 1 {
		return fmt.Errorf("gen: anchor must be positive, got %d", p.Anchor)
	}
	if p.WMin < 1 || p.WMax < p.WMin {
		return fmt.Errorf("gen: bad weight range [%d,%d]", p.WMin, p.WMax)
	}
	if p.Gran.Lo < 0 || (p.Gran.Hi > 0 && p.Gran.Hi <= p.Gran.Lo) {
		return fmt.Errorf("gen: bad granularity band %+v", p.Gran)
	}
	return nil
}

// ErrGaveUp is returned when the generator cannot steer a particular
// random draw into the requested class; callers retry with a fresh
// seed.
var ErrGaveUp = errors.New("gen: could not reach requested graph class")

// Generate produces one PDG in the requested class, using rng as the
// sole source of randomness. On ErrGaveUp the caller should retry with
// a different stream; other errors are parameter mistakes.
func Generate(p Params, rng *rand.Rand) (*dag.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	g, sh := materialize(p, rng)
	if err := adjustAnchor(g, p.Anchor, sh.branch, p.descendantBias(), rng); err != nil {
		if errors.Is(err, ErrGaveUp) {
			genGiveups.Inc()
		}
		return nil, err
	}
	if err := assignWeights(g, p, sh, rng); err != nil {
		if errors.Is(err, ErrGaveUp) {
			genGiveups.Inc()
		}
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gen: produced invalid graph: %w", err)
	}
	genGraphs.Inc()
	return g, nil
}

// MustGenerate retries Generate with successive sub-streams of seed
// until a graph in the class is produced. It panics on parameter
// errors; with valid parameters it always succeeds (each retry is an
// independent draw).
func MustGenerate(p Params, seed int64) *dag.Graph {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			genRetries.Inc()
		}
		rng := rand.New(rand.NewSource(mix(seed, int64(attempt))))
		g, err := Generate(p, rng)
		if err == nil {
			return g
		}
		if !errors.Is(err, ErrGaveUp) {
			panic("gen: " + err.Error())
		}
		if attempt > 200 {
			panic(fmt.Sprintf("gen: no graph in class after %d attempts: %+v", attempt, p))
		}
	}
}

// mix combines a seed and a counter into a well-spread 63-bit stream
// seed (splitmix64 finalizer).
func mix(seed, k int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(k) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1)
}
