package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
)

func TestBandContains(t *testing.T) {
	b := Band{Lo: 0.2, Hi: 0.8}
	for v, want := range map[float64]bool{0.1: false, 0.2: true, 0.5: true, 0.8: true, 0.9: false} {
		if got := b.Contains(v); got != want {
			t.Errorf("Contains(%v) = %v, want %v", v, got, want)
		}
	}
	open := Band{Lo: 2.0}
	if !open.Contains(100) || open.Contains(1.9) {
		t.Error("open-ended band wrong")
	}
	low := Band{Hi: 0.08}
	if !low.Contains(0.05) || low.Contains(0.09) {
		t.Error("low band wrong")
	}
}

func TestBandTargetInsideBand(t *testing.T) {
	for _, b := range PaperBands() {
		tgt := b.Target()
		if !b.Contains(tgt) {
			t.Errorf("Target %v outside band %v", tgt, b)
		}
	}
}

func TestBandString(t *testing.T) {
	bands := PaperBands()
	if bands[0].String() != "G < 0.08" {
		t.Errorf("got %q", bands[0].String())
	}
	if bands[4].String() != "2 < G" {
		t.Errorf("got %q", bands[4].String())
	}
	if bands[2].String() != "0.2 < G < 0.8" {
		t.Errorf("got %q", bands[2].String())
	}
}

func TestPaperBandsCoverPositiveReals(t *testing.T) {
	bands := PaperBands()
	if len(bands) != 5 {
		t.Fatalf("got %d bands", len(bands))
	}
	for i := 0; i+1 < len(bands); i++ {
		if bands[i].Hi != bands[i+1].Lo {
			t.Errorf("gap between band %d and %d", i, i+1)
		}
	}
}

func TestGenerateHitsRequestedClass(t *testing.T) {
	for _, band := range PaperBands() {
		for _, anchor := range []int{2, 3, 4, 5} {
			p := Params{Nodes: 60, Anchor: anchor, WMin: 20, WMax: 200, Gran: band}
			g := MustGenerate(p, 42)
			if err := g.Validate(); err != nil {
				t.Fatalf("%v anchor %d: %v", band, anchor, err)
			}
			if got := g.Granularity(); !band.Contains(got) {
				t.Errorf("%v anchor %d: granularity %v outside band", band, anchor, got)
			}
			if got := g.AnchorOutDegree(); got != anchor {
				t.Errorf("%v anchor %d: anchor out-degree %d", band, anchor, got)
			}
			min, max := g.NodeWeightRange()
			if min < 20 || max > 200 {
				t.Errorf("weight range [%d,%d] outside [20,200]", min, max)
			}
		}
	}
}

func TestGenerateSizeApproximation(t *testing.T) {
	p := Params{Nodes: 80, Anchor: 3, WMin: 20, WMax: 100, Gran: Band{Lo: 0.2, Hi: 0.8}}
	g := MustGenerate(p, 7)
	n := g.NumNodes()
	if n < 40 || n > 160 {
		t.Errorf("node count %d far from requested 80", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Nodes: 50, Anchor: 3, WMin: 20, WMax: 100, Gran: Band{Lo: 0.8, Hi: 2}}
	a := MustGenerate(p, 123)
	b := MustGenerate(p, 123)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Weight(dag.NodeID(i)) != b.Weight(dag.NodeID(i)) {
			t.Fatal("same seed produced different weights")
		}
	}
	for _, e := range a.Edges() {
		w, ok := b.EdgeWeight(e.From, e.To)
		if !ok || w != e.Weight {
			t.Fatal("same seed produced different edges")
		}
	}
	c := MustGenerate(p, 124)
	if c.NumNodes() == a.NumNodes() && c.NumEdges() == a.NumEdges() {
		// Sizes can coincide; require at least one differing weight.
		same := true
		for i := 0; i < a.NumNodes() && same; i++ {
			if a.Weight(dag.NodeID(i)) != c.Weight(dag.NodeID(i)) {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Params{
		{Nodes: 2, Anchor: 2, WMin: 1, WMax: 2, Gran: Band{Hi: 0.08}},
		{Nodes: 50, Anchor: 0, WMin: 1, WMax: 2, Gran: Band{Hi: 0.08}},
		{Nodes: 50, Anchor: 2, WMin: 0, WMax: 2, Gran: Band{Hi: 0.08}},
		{Nodes: 50, Anchor: 2, WMin: 5, WMax: 2, Gran: Band{Hi: 0.08}},
		{Nodes: 50, Anchor: 2, WMin: 1, WMax: 2, Gran: Band{Lo: 0.5, Hi: 0.2}},
	}
	for i, p := range bad {
		if _, err := Generate(p, rng); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestGeneratedGraphsAreConnectedEnough(t *testing.T) {
	// Every generated graph should have a small number of sources and
	// sinks (the spine construction guarantees one entry and one
	// exit).
	p := Params{Nodes: 70, Anchor: 3, WMin: 20, WMax: 100, Gran: Band{Lo: 0.2, Hi: 0.8}}
	for seed := int64(0); seed < 10; seed++ {
		g := MustGenerate(p, seed)
		if len(g.Sources()) != 1 {
			t.Errorf("seed %d: %d sources", seed, len(g.Sources()))
		}
		if len(g.Sinks()) != 1 {
			t.Errorf("seed %d: %d sinks", seed, len(g.Sinks()))
		}
	}
}

// Property: generation never produces an invalid DAG, regardless of
// class.
func TestQuickGenerateValid(t *testing.T) {
	bands := PaperBands()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			Nodes:  20 + rng.Intn(80),
			Anchor: 2 + rng.Intn(4),
			WMin:   10 + int64(rng.Intn(20)),
			WMax:   100 + int64(rng.Intn(300)),
			Gran:   bands[rng.Intn(len(bands))],
		}
		g := MustGenerate(p, seed)
		return g.Validate() == nil && p.Gran.Contains(g.Granularity())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKnobDefaults(t *testing.T) {
	p := Params{}
	if p.descendantBias() != defaultDescendantBias {
		t.Errorf("default bias = %d", p.descendantBias())
	}
	if p.trapRate() != defaultTrapRate {
		t.Errorf("default trap rate = %d", p.trapRate())
	}
	p = Params{DescendantBias: -1, TrapRate: -1}
	if p.descendantBias() != 0 || p.trapRate() != 0 {
		t.Error("negative knobs should disable")
	}
	p = Params{DescendantBias: 150, TrapRate: 150}
	if p.descendantBias() != 100 || p.trapRate() != 95 {
		t.Error("knobs not clamped")
	}
}

func TestTrapRateZeroYieldsNoTraps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Params{Nodes: 60, Anchor: 3, WMin: 20, WMax: 100,
		Gran: Band{Lo: 0.2, Hi: 0.8}, TrapRate: -1}
	_, sh := materialize(p, rng)
	if len(sh.trap) != 0 {
		t.Errorf("TrapRate -1 still produced %d trap nodes", len(sh.trap))
	}
}

func TestBiasKnobStillGeneratesValidClasses(t *testing.T) {
	for _, bias := range []int{-1, 50, 100} {
		p := Params{Nodes: 50, Anchor: 3, WMin: 20, WMax: 100,
			Gran: Band{Lo: 0.2, Hi: 0.8}, DescendantBias: bias}
		g := MustGenerate(p, 44)
		if g.AnchorOutDegree() != 3 || !p.Gran.Contains(g.Granularity()) {
			t.Errorf("bias %d: class missed (anchor %d, G %v)",
				bias, g.AnchorOutDegree(), g.Granularity())
		}
	}
}

func TestRescaleEdgesFloorsAtOne(t *testing.T) {
	g := dag.New("t")
	a := g.AddNode(1)
	b := g.AddNode(1)
	g.MustAddEdge(a, b, 3)
	rescaleEdges(g, 0.0001)
	if w, _ := g.EdgeWeight(a, b); w != 1 {
		t.Errorf("weight = %d, want floor 1", w)
	}
	if rescaleEdges(g, 1.0) {
		t.Error("no-op rescale reported change")
	}
}

func TestMixSpreadsSeeds(t *testing.T) {
	seen := map[int64]bool{}
	for k := int64(0); k < 100; k++ {
		v := mix(1, k)
		if v < 0 {
			t.Fatalf("mix produced negative seed %d", v)
		}
		if seen[v] {
			t.Fatalf("mix collision at k=%d", k)
		}
		seen[v] = true
	}
}

func TestGranularityTargetAccuracy(t *testing.T) {
	// The calibration loop should land reasonably close to the band
	// target on average, not just inside the band.
	band := Band{Lo: 0.2, Hi: 0.8}
	p := Params{Nodes: 60, Anchor: 3, WMin: 20, WMax: 100, Gran: band}
	var sum float64
	const n = 10
	for seed := int64(0); seed < n; seed++ {
		sum += MustGenerate(p, seed).Granularity()
	}
	mean := sum / n
	if mean < band.Lo || mean > band.Hi {
		t.Errorf("mean granularity %v outside band", mean)
	}
	if math.IsNaN(mean) {
		t.Error("NaN granularity")
	}
}
