package gen

import (
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
)

func TestMaterializeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Params{Nodes: 80, Anchor: 3, WMin: 20, WMax: 100, Gran: Band{Lo: 0.2, Hi: 0.8}}
	g, sh := materialize(p, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	if n < 40 || n > 160 {
		t.Errorf("materialized %d nodes for budget 80", n)
	}
	// Every node has a branch id; several distinct fat branches exist.
	branches := map[int]int{}
	for v := 0; v < n; v++ {
		id, ok := sh.branch[dag.NodeID(v)]
		if !ok {
			t.Fatalf("node %d missing branch id", v)
		}
		branches[id]++
	}
	fat := 0
	for id, count := range branches {
		if id != 0 && count >= 5 {
			fat++
		}
	}
	if fat < 2 {
		t.Errorf("expected at least 2 fat branches, got %d (%v)", fat, branches)
	}
	// Macro-boundary nodes exist and are a small minority.
	if len(sh.light) == 0 {
		t.Error("no macro-boundary nodes marked")
	}
	if len(sh.light) > n/3 {
		t.Errorf("too many light nodes: %d of %d", len(sh.light), n)
	}
	// Trap nodes are marked and weights placeholders are 1.
	if len(sh.trap) == 0 {
		t.Error("no trap nodes marked (small groups missing)")
	}
	if g.Weight(0) != 1 {
		t.Errorf("placeholder weight = %d, want 1", g.Weight(0))
	}
	// One source, one sink (the spine).
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("sources/sinks = %d/%d", len(g.Sources()), len(g.Sinks()))
	}
}

func TestAdjustAnchorReachesTarget(t *testing.T) {
	for _, anchor := range []int{2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(anchor)))
		p := Params{Nodes: 60, Anchor: anchor, WMin: 20, WMax: 100, Gran: Band{Lo: 0.2, Hi: 0.8}}
		g, sh := materialize(p, rng)
		if err := adjustAnchor(g, anchor, sh.branch, defaultDescendantBias, rng); err != nil {
			t.Fatalf("anchor %d: %v", anchor, err)
		}
		if got := g.AnchorOutDegree(); got != anchor {
			t.Errorf("anchor = %d, want %d", got, anchor)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("anchor %d left an invalid graph: %v", anchor, err)
		}
	}
}

func TestAdjustAnchorPreservesAcyclicity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := Params{Nodes: 50, Anchor: 5, WMin: 20, WMax: 100, Gran: Band{Lo: 0.8, Hi: 2}}
	g, sh := materialize(p, rng)
	before := g.NumNodes()
	if err := adjustAnchor(g, 5, sh.branch, defaultDescendantBias, rng); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != before {
		t.Error("adjustAnchor changed the node count")
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignWeightsRespectsRangeAndBand(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Params{Nodes: 60, Anchor: 3, WMin: 30, WMax: 90, Gran: Band{Lo: 0.8, Hi: 2}}
	g, sh := materialize(p, rng)
	if err := adjustAnchor(g, 3, sh.branch, defaultDescendantBias, rng); err != nil {
		t.Fatal(err)
	}
	if err := assignWeights(g, p, sh, rng); err != nil {
		t.Fatal(err)
	}
	min, max := g.NodeWeightRange()
	if min < 30 || max > 90 {
		t.Errorf("weights [%d,%d] outside [30,90]", min, max)
	}
	if got := g.Granularity(); !p.Gran.Contains(got) {
		t.Errorf("granularity %v outside band", got)
	}
	for _, e := range g.Edges() {
		if e.Weight < 1 {
			t.Fatalf("edge %v has weight %d", e, e.Weight)
		}
	}
}

func TestLightNodesSendLighterMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := Params{Nodes: 100, Anchor: 3, WMin: 20, WMax: 100, Gran: Band{Lo: 0, Hi: 0.08}}
	g, sh := materialize(p, rng)
	if err := adjustAnchor(g, 3, sh.branch, defaultDescendantBias, rng); err != nil {
		t.Fatal(err)
	}
	if err := assignWeights(g, p, sh, rng); err != nil {
		t.Fatal(err)
	}
	// Mean max-out-edge of light nodes should be clearly below that of
	// interior non-sink nodes.
	meanMax := func(light bool) float64 {
		var sum float64
		count := 0
		for v := 0; v < g.NumNodes(); v++ {
			u := dag.NodeID(v)
			if g.OutDegree(u) == 0 || sh.light[u] != light {
				continue
			}
			var m int64
			for _, a := range g.Succs(u) {
				if a.Weight > m {
					m = a.Weight
				}
			}
			sum += float64(m)
			count++
		}
		if count == 0 {
			return 0
		}
		return sum / float64(count)
	}
	lightMean, interiorMean := meanMax(true), meanMax(false)
	if lightMean <= 0 || interiorMean <= 0 {
		t.Fatalf("means %v/%v", lightMean, interiorMean)
	}
	if lightMean*2 > interiorMean {
		t.Errorf("light nodes not clearly lighter: %v vs %v", lightMean, interiorMean)
	}
}
