package gen

import (
	"math/rand"

	"schedcomp/internal/dag"
)

// materialize builds the initial series-parallel DAG from a random
// parse tree. Node weights are placeholders (1) and edge weights
// placeholders (1); assignWeights replaces both.
//
// Shape: the root is a linear composition dominated by one or two fat
// parallel groups (a few large independent branches), and each branch
// is a sequence of tasks interleaved with small parallel groups, with
// occasional medium recursive groups that multiply the usable width.
// This mix is what gives the paper its signature results:
//
//   - the fat top-level branches are coarse independent subgraphs that
//     a macro-level scheduler (CLANS) can parallelize profitably even
//     when node-level granularity is tiny;
//   - the many small groups are traps for myopic schedulers: splitting
//     one looks free at fork time, but the join edge collected later
//     costs more than the split saved, which is how the critical-path
//     and list schedulers end up below speedup 1 on fine-grained
//     graphs;
//   - the nested medium groups multiply width so coarse-grained graphs
//     support speedups well beyond the branch factor.
//
// materialize returns the unweighted DAG and the set of macro-boundary
// nodes: the sequencing tasks around the fat top-level groups and the
// exit frontiers of the fat branches. assignWeights draws their
// outgoing edges lighter than interior ones (the paper's low-G CLANS
// results require coarse splits to be cheaper than the node-level
// average while the within-branch traps stay expensive; the global
// granularity calibration keeps the class average in band either way).
func materialize(p Params, rng *rand.Rand) (*dag.Graph, *shape) {
	g := dag.New("")
	b := &spBuilder{g: g, rng: rng, anchor: p.Anchor, trapRate: p.trapRate(),
		shape: &shape{
			light:  map[dag.NodeID]bool{},
			branch: map[dag.NodeID]int{},
			trap:   map[dag.NodeID]bool{},
		}}
	b.root(p.Nodes)
	return g, b.shape
}

// defaultTrapRate is the default per-step chance of a small trap group
// in a branch body.
const defaultTrapRate = 40

// shape records structural metadata the later generation stages use:
// which nodes sit on a macro boundary (light outgoing edges) and which
// fat top-level branch each node belongs to (-1 for the sequencing
// spine). Reachability-perturbing edge insertions stay within one
// branch so the coarse independence the paper's graphs exhibit
// survives the out-degree adjustment.
type shape struct {
	light  map[dag.NodeID]bool
	branch map[dag.NodeID]int
	trap   map[dag.NodeID]bool
	nextID int
}

type spBuilder struct {
	g        *dag.Graph
	rng      *rand.Rand
	anchor   int
	trapRate int
	shape    *shape
	curBr    int // current fat branch id; 0 means the spine
}

func (b *spBuilder) task() ([]dag.NodeID, []dag.NodeID) {
	v := b.g.AddNode(1)
	b.shape.branch[v] = b.curBr
	return []dag.NodeID{v}, []dag.NodeID{v}
}

// connect joins two consecutive frontiers with complete bipartite
// edges.
func (b *spBuilder) connect(from, to []dag.NodeID) {
	for _, u := range from {
		for _, v := range to {
			b.g.MustAddEdge(u, v, 1)
		}
	}
}

// root builds the top-level sequence: a prologue task, one or two fat
// parallel groups separated by tasks, and an epilogue task.
func (b *spBuilder) root(budget int) {
	groups := 1
	if budget >= 60 && b.rng.Intn(100) < 35 {
		groups = 2
	}
	// Reserve the sequencing tasks.
	seqTasks := groups + 1
	groupBudget := budget - seqTasks
	if groupBudget < 2*b.anchor {
		groupBudget = 2 * b.anchor
	}

	_, prev := b.task()
	for i := 0; i < groups; i++ {
		b.mark(prev)
		share := groupBudget / groups
		entry, exit := b.fatGroup(share)
		b.connect(prev, entry)
		b.mark(exit)
		e, x := b.task()
		b.connect(exit, e)
		prev = x
	}
}

// mark records macro-boundary nodes whose outgoing edges should be
// light.
func (b *spBuilder) mark(nodes []dag.NodeID) {
	for _, v := range nodes {
		b.shape.light[v] = true
	}
}

// fatGroup builds one top-level parallel group: a few large branches,
// each with its own branch id.
func (b *spBuilder) fatGroup(budget int) (entry, exit []dag.NodeID) {
	m := b.branchCount(budget)
	for i := 0; i < m; i++ {
		share := budget / m
		if i < budget%m {
			share++
		}
		if share < 1 {
			share = 1
		}
		b.shape.nextID++
		b.curBr = b.shape.nextID
		e, x := b.branch(share, 1)
		entry = append(entry, e...)
		exit = append(exit, x...)
	}
	b.curBr = 0
	return entry, exit
}

// branch builds one branch body: a sequence of tasks, small groups and
// occasional medium recursive groups.
func (b *spBuilder) branch(budget, depth int) (entry, exit []dag.NodeID) {
	if budget <= 1 || depth > 8 {
		return b.task()
	}
	var prevExit []dag.NodeID
	remaining := budget
	first := true
	for remaining > 0 {
		var e, x []dag.NodeID
		switch {
		case remaining >= 3*b.anchor && b.rng.Intn(100) < 25:
			// Medium recursive group: multiplies width.
			share := remaining * (50 + b.rng.Intn(30)) / 100
			if share < 2*b.anchor {
				share = 2 * b.anchor
			}
			e, x = b.mediumGroup(share, depth+1)
			remaining -= share
		case remaining >= b.anchor && b.rng.Intn(100) < b.trapRate:
			// Small group: branches of 1-2 tasks — the myopic trap.
			share := b.anchor
			if remaining >= 2*b.anchor && b.rng.Intn(2) == 0 {
				share = 2 * b.anchor
			}
			e, x = b.smallGroup(share)
			remaining -= share
		default:
			e, x = b.task()
			remaining--
		}
		if first {
			entry = e
			first = false
		} else {
			b.connect(prevExit, e)
		}
		prevExit = x
	}
	return entry, prevExit
}

// mediumGroup builds a recursive parallel group whose branches are
// themselves branch sequences.
func (b *spBuilder) mediumGroup(budget, depth int) (entry, exit []dag.NodeID) {
	m := b.branchCount(budget)
	for i := 0; i < m; i++ {
		share := budget / m
		if i < budget%m {
			share++
		}
		var e, x []dag.NodeID
		if share <= 1 || depth > 8 {
			e, x = b.task()
		} else {
			e, x = b.branch(share, depth+1)
		}
		entry = append(entry, e...)
		exit = append(exit, x...)
	}
	return entry, exit
}

// smallGroup builds a group of single-task or two-task chains. Its
// tasks are marked as fine-grained: the weight assignment skews them
// toward the bottom of the node weight range, so widening the range
// makes these myopic traps relatively more expensive to split — the
// mechanism behind the paper's node-weight-range observations.
func (b *spBuilder) smallGroup(budget int) (entry, exit []dag.NodeID) {
	m := b.branchCount(budget)
	for i := 0; i < m; i++ {
		share := budget / m
		if i < budget%m {
			share++
		}
		e, x := b.task()
		b.shape.trap[e[0]] = true
		for k := 1; k < share; k++ {
			e2, x2 := b.task()
			b.shape.trap[e2[0]] = true
			b.connect(x, e2)
			x = x2
		}
		entry = append(entry, e...)
		exit = append(exit, x...)
	}
	return entry, exit
}

// branchCount draws the width of a parallel group, biased so the mode
// sits at the anchor.
func (b *spBuilder) branchCount(budget int) int {
	m := b.anchor
	switch b.rng.Intn(6) {
	case 0:
		m--
	case 1:
		m++
	}
	if m < 2 {
		m = 2
	}
	if m > budget {
		m = budget
	}
	if m < 2 {
		m = 2
	}
	return m
}
