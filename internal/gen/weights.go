package gen

import (
	"math"
	"math/rand"

	"schedcomp/internal/dag"
)

// assignWeights draws node weights uniformly from the requested range
// and calibrates edge weights so the graph's granularity lands in the
// requested band.
//
// Edge weights are seeded per node: each non-sink node's heaviest
// outgoing edge is sized near nodeWeight / (target granularity ×
// jitter), the remaining out-edges get a random fraction of that, and a
// global multiplicative rescale then walks the measured granularity
// into the band (scaling all edges by s divides the measured value by
// exactly s, up to integer rounding).
func assignWeights(g *dag.Graph, p Params, sh *shape, rng *rand.Rand) error {
	n := g.NumNodes()
	span := float64(p.WMax - p.WMin)
	for v := 0; v < n; v++ {
		u := dag.NodeID(v)
		var w int64
		if sh.trap[u] {
			// Fine-grained tasks: skewed toward the bottom of the
			// range (u² skew), so the trap structure gets relatively
			// nastier as the range widens.
			f := rng.Float64()
			w = p.WMin + int64(f*f*span)
		} else {
			w = p.WMin + int64(rng.Int63n(p.WMax-p.WMin+1))
		}
		g.SetWeight(u, w)
	}

	target := p.Gran.Target()
	// Edges are sized against the midpoint of the weight range, not the
	// individual sender's weight. Individual node/edge ratios therefore
	// spread as the weight range widens — a 20-weight node next to a
	// 400-weight node sees the same message sizes — which is the
	// mechanism behind the paper's node-weight-range results: wider
	// ranges leave the average granularity unchanged but plant more
	// pathologically fine-grained nodes for the local schedulers to
	// trip over.
	refW := float64(p.WMin+p.WMax) / 2
	for v := 0; v < n; v++ {
		u := dag.NodeID(v)
		arcs := g.Succs(u)
		if len(arcs) == 0 {
			continue
		}
		// Per-node jitter spreads individual ratios around the target
		// without moving the average much. Macro-boundary nodes (the
		// fork/join frontier of the fat top-level branches) send
		// messages several times lighter than interior nodes, so
		// coarse splits are cheap while fine-grain splits stay
		// expensive; with only a handful of boundary nodes per graph
		// the class average barely moves and the calibration loop
		// below absorbs the rest.
		jitter := math.Exp((rng.Float64() - 0.5) * 1.0) // ×/÷ ~1.65
		if sh.light[u] {
			jitter *= 4
		}
		desired := refW / (target * jitter)
		maxW := int64(math.Round(desired))
		if maxW < 1 {
			maxW = 1
		}
		heavy := rng.Intn(len(arcs))
		for i, a := range arcs {
			var ew int64
			if i == heavy {
				ew = maxW
			} else {
				frac := 0.3 + 0.7*rng.Float64()
				ew = int64(math.Round(frac * float64(maxW)))
				if ew < 1 {
					ew = 1
				}
				if ew > maxW {
					ew = maxW
				}
			}
			g.SetEdgeWeight(u, a.To, ew)
		}
	}

	// Walk the measured granularity into the band.
	for iter := 0; iter < 40; iter++ {
		got := g.Granularity()
		if p.Gran.Contains(got) {
			return nil
		}
		s := got / target
		if math.IsInf(got, 1) || s <= 0 {
			return ErrGaveUp
		}
		changed := rescaleEdges(g, s)
		if !changed {
			return ErrGaveUp
		}
	}
	return ErrGaveUp
}

// rescaleEdges multiplies every edge weight by s (min 1) and reports
// whether any weight changed. The bulk rewrite touches both adjacency
// mirrors in one pass and costs a single cache invalidation, instead of
// materialising the edge list and invalidating per SetEdgeWeight call
// (the calibration loop runs this up to 40 times per graph).
func rescaleEdges(g *dag.Graph, s float64) bool {
	return g.MapEdgeWeights(func(from, to dag.NodeID, w int64) int64 {
		nw := int64(math.Round(float64(w) * s))
		if nw < 1 {
			nw = 1
		}
		return nw
	})
}
