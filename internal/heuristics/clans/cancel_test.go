package clans

import (
	"context"
	"errors"
	"sync"
	"testing"

	"schedcomp/internal/dag"
)

// pollTripContext cancels after a fixed number of Err polls, landing
// the cancellation deterministically inside the clan-tree walk.
type pollTripContext struct {
	context.Context
	mu    sync.Mutex
	calls int
	fuse  int
}

func (c *pollTripContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.fuse {
		return context.Canceled
	}
	return nil
}

// Regression: a cancellation landing between two children of a linear
// or independent clan used to leave an empty fragment whose lanes were
// then indexed, panicking instead of returning ctx's error.
func TestMidTreeCancellationDoesNotPanic(t *testing.T) {
	g := dag.New("fork")
	root := g.AddNode(10)
	for i := 0; i < 24; i++ {
		v := g.AddNode(100)
		g.MustAddEdge(root, v, 500)
	}
	for fuse := 1; fuse < 30; fuse++ {
		ctx := &pollTripContext{Context: context.Background(), fuse: fuse}
		pl, err := New().ScheduleContext(ctx, g)
		if err == nil {
			// The fuse outlived the walk; larger fuses only finish
			// sooner.
			if pl == nil {
				t.Fatalf("fuse %d: nil placement without error", fuse)
			}
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fuse %d: err = %v, want context.Canceled", fuse, err)
		}
		if pl != nil {
			t.Fatalf("fuse %d: partial placement returned alongside error", fuse)
		}
	}
}
