// Package clans implements the clan-based graph decomposition scheduler
// of McCreary & Gill (Appendix A.5 of the paper).
//
// The PDG is first parsed into its clan tree (internal/clan). Costs are
// then assigned bottom-up:
//
//   - a leaf costs its task weight;
//   - a linear clan sequences its children on a shared "home" lane; for
//     each independent child it decides between clustering (children
//     concatenated on the home lane, cost = sum of child costs) and
//     parallelization (each child on its own processor group, cost =
//     max over children of child cost plus the communication paid for
//     moving it off the home processor), keeping the cheaper option;
//   - following the paper's worked example, the child with the largest
//     cost-plus-communication stays on the home processor, so its
//     boundary communication is never paid;
//   - a primitive clan is scheduled by an internal earliest-start list
//     scheduler, and kept only if it beats executing the clan serially.
//
// The "keep the cheaper option" rule is the paper's speedup check at
// every linear node: it gives CLANS macro-level control and is the
// reason CLANS never produces a schedule slower than serial execution
// (Table 2's column of zeros). As a final guard — the bottom-up costs
// are estimates, the timed schedule is exact — the scheduler falls back
// to the single-processor schedule if the built schedule ever exceeds
// serial time.
package clans

import (
	"context"
	"sort"

	"schedcomp/internal/clan"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("CLANS", func() heuristics.Scheduler { return New() })
}

// CLANS is the scheduler. SpeedupCheck enables the per-decision
// serialization guard (the paper's configuration); the ablation benches
// disable it to quantify its effect. DeepPrimitives additionally
// extracts proper sub-clans inside primitive clans and schedules their
// quotient (see primitiveDeep) — the strengthened variant alluded to
// by the paper's "best version of CLANS" remark; off by default to
// match the flat cost model.
type CLANS struct {
	SpeedupCheck   bool
	DeepPrimitives bool
}

// New returns a CLANS scheduler with the speedup check enabled.
func New() *CLANS { return &CLANS{SpeedupCheck: true} }

// Name implements heuristics.Scheduler.
func (c *CLANS) Name() string { return "CLANS" }

// fragment is a relative schedule for one clan: an ordered set of
// processor lanes. lanes[0] is the "home" lane that merges with the
// surrounding linear sequence; the remaining lanes become processors of
// their own. cost estimates the fragment's completion time.
type fragment struct {
	lanes [][]dag.NodeID
	cost  int64
}

type builder struct {
	c       *CLANS
	g       *dag.Graph
	ctx     context.Context
	err     error // sticky cancellation error; lanes are garbage once set
	topoPos []int
	member  []bool // scratch: membership of the current child clan
}

// Schedule implements heuristics.Scheduler.
func (c *CLANS) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return c.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll at every clan-tree node and once per task
// committed by the primitive-clan list scheduler.
func (c *CLANS) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	if n == 0 {
		return sched.NewPlacement(0), nil
	}
	tree, err := clan.Parse(g)
	if err != nil {
		return nil, err
	}
	pos, err := g.TopoPositions()
	if err != nil {
		return nil, err
	}
	b := &builder{c: c, g: g, ctx: ctx, topoPos: pos, member: make([]bool, n)}
	frag := b.schedule(tree.Root)
	if b.err != nil {
		return nil, b.err
	}

	pl := sched.NewPlacement(n)
	for p, lane := range frag.lanes {
		for _, v := range lane {
			pl.Assign(v, p)
		}
	}
	s, err := sched.Build(g, pl)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if c.SpeedupCheck && s.Makespan > g.SerialTime() {
		return sched.Serial(g)
	}
	return pl, nil
}

func (b *builder) schedule(n *clan.Node) fragment {
	if b.err != nil {
		return fragment{}
	}
	if err := b.ctx.Err(); err != nil {
		b.err = err
		return fragment{}
	}
	switch n.Kind {
	case clan.Leaf:
		return fragment{lanes: [][]dag.NodeID{{n.Task}}, cost: b.g.Weight(n.Task)}
	case clan.Linear:
		return b.linear(n)
	case clan.Independent:
		return b.independent(n)
	case clan.Primitive:
		return b.primitive(n)
	}
	panic("clans: unknown clan kind")
}

// linear sequences the children on a shared home lane. Extra lanes
// produced by children (parallelized independents, primitive
// schedules) become separate processors.
func (b *builder) linear(n *clan.Node) fragment {
	var home []dag.NodeID
	var extra [][]dag.NodeID
	var cost int64
	for _, child := range n.Children {
		f := b.schedule(child)
		if b.err != nil {
			// A cancelled child returns an empty fragment; indexing
			// its lanes would panic, so bail out before touching it.
			return fragment{}
		}
		home = append(home, f.lanes[0]...)
		extra = append(extra, f.lanes[1:]...)
		cost += f.cost
	}
	return fragment{lanes: append([][]dag.NodeID{home}, extra...), cost: cost}
}

// independent decides between clustering and parallelizing the
// children, the core trade-off of the cost model.
func (b *builder) independent(n *clan.Node) fragment {
	frags := make([]fragment, len(n.Children))
	penalty := make([]int64, len(n.Children))
	var serialCost int64
	for i, child := range n.Children {
		frags[i] = b.schedule(child)
		if b.err != nil {
			// See linear: never index a cancelled child's lanes.
			return fragment{}
		}
		serialCost += frags[i].cost
		in, out := b.boundaryComm(child.Members)
		penalty[i] = in + out
	}

	// The child with the greatest cost-plus-communication stays home
	// (the paper's example keeps the heavier C1 on the shared
	// processor and moves node 2 off).
	h := 0
	for i := range frags {
		if frags[i].cost+penalty[i] > frags[h].cost+penalty[h] {
			h = i
		}
	}
	parCost := frags[h].cost
	for i := range frags {
		if i == h {
			continue
		}
		if c := frags[i].cost + penalty[i]; c > parCost {
			parCost = c
		}
	}

	if !b.c.SpeedupCheck || parCost < serialCost {
		lanes := [][]dag.NodeID{frags[h].lanes[0]}
		lanes = append(lanes, frags[h].lanes[1:]...)
		for i := range frags {
			if i != h {
				lanes = append(lanes, frags[i].lanes...)
			}
		}
		return fragment{lanes: lanes, cost: parCost}
	}

	// Cluster: concatenate home lanes (children are mutually
	// independent, so any order is valid); keep children's own extra
	// lanes.
	var home []dag.NodeID
	var extra [][]dag.NodeID
	for _, f := range frags {
		home = append(home, f.lanes[0]...)
		extra = append(extra, f.lanes[1:]...)
	}
	return fragment{lanes: append([][]dag.NodeID{home}, extra...), cost: serialCost}
}

// boundaryComm returns the heaviest edge entering and leaving the
// member set: the communication a child pays when moved to its own
// processor (messages multicast in parallel, so the max governs).
func (b *builder) boundaryComm(members []dag.NodeID) (in, out int64) {
	for _, m := range members {
		b.member[m] = true
	}
	for _, m := range members {
		for _, a := range b.g.Preds(m) {
			if !b.member[a.To] && a.Weight > in {
				in = a.Weight
			}
		}
		for _, a := range b.g.Succs(m) {
			if !b.member[a.To] && a.Weight > out {
				out = a.Weight
			}
		}
	}
	for _, m := range members {
		b.member[m] = false
	}
	return in, out
}

// primitive schedules a structureless clan with an earliest-start list
// scheduler over the induced subgraph, falling back to serial order
// when that does not win. With DeepPrimitives the quotient handler is
// tried first.
func (b *builder) primitive(n *clan.Node) fragment {
	if b.c.DeepPrimitives {
		if f, ok := b.primitiveDeep(n); ok {
			return f
		}
	}
	lanes, makespan := b.etf(n.Members)
	var serial int64
	for _, m := range n.Members {
		serial += b.g.Weight(m)
	}
	if b.c.SpeedupCheck && makespan >= serial {
		flat := append([]dag.NodeID(nil), n.Members...)
		sort.Slice(flat, func(i, j int) bool { return b.topoPos[flat[i]] < b.topoPos[flat[j]] })
		return fragment{lanes: [][]dag.NodeID{flat}, cost: serial}
	}
	return fragment{lanes: lanes, cost: makespan}
}

// etf runs an earliest-task-first list schedule of the subgraph induced
// by members (external edges ignored: they are uniform for a clan and
// handled by the enclosing cost model). It returns the lanes and the
// internal makespan estimate.
func (b *builder) etf(members []dag.NodeID) ([][]dag.NodeID, int64) {
	for _, m := range members {
		b.member[m] = true
	}
	defer func() {
		for _, m := range members {
			b.member[m] = false
		}
	}()

	remainingPreds := map[dag.NodeID]int{}
	for _, m := range members {
		cnt := 0
		for _, a := range b.g.Preds(m) {
			if b.member[a.To] {
				cnt++
			}
		}
		remainingPreds[m] = cnt
	}
	ready := make([]dag.NodeID, 0, len(members))
	for _, m := range members {
		if remainingPreds[m] == 0 {
			ready = append(ready, m)
		}
	}

	proc := map[dag.NodeID]int{}
	finish := map[dag.NodeID]int64{}
	var laneFree []int64
	var lanes [][]dag.NodeID
	var makespan int64

	for len(ready) > 0 {
		if err := b.ctx.Err(); err != nil {
			b.err = err
			return [][]dag.NodeID{nil}, 0
		}
		// Earliest start over (ready task, lane) pairs, one fresh lane
		// allowed; ties to the heavier task, then the smaller ID, then
		// the lower lane.
		bestT, bestL := -1, -1
		var bestStart int64
		for ti, t := range ready {
			for l := 0; l <= len(lanes); l++ {
				var start int64
				if l < len(laneFree) {
					start = laneFree[l]
				}
				for _, a := range b.g.Preds(t) {
					if !b.member[a.To] {
						continue
					}
					at := finish[a.To]
					if proc[a.To] != l {
						at += a.Weight
					}
					if at > start {
						start = at
					}
				}
				better := bestT == -1 || start < bestStart
				if !better && start == bestStart && ti != bestT {
					prev := ready[bestT]
					if b.g.Weight(t) != b.g.Weight(prev) {
						better = b.g.Weight(t) > b.g.Weight(prev)
					} else {
						better = t < prev
					}
				}
				if better {
					bestT, bestL, bestStart = ti, l, start
				}
			}
		}
		t := ready[bestT]
		ready = append(ready[:bestT], ready[bestT+1:]...)
		if bestL == len(lanes) {
			lanes = append(lanes, nil)
			laneFree = append(laneFree, 0)
		}
		proc[t] = bestL
		f := bestStart + b.g.Weight(t)
		finish[t] = f
		laneFree[bestL] = f
		lanes[bestL] = append(lanes[bestL], t)
		if f > makespan {
			makespan = f
		}
		for _, a := range b.g.Succs(t) {
			if !b.member[a.To] {
				continue
			}
			remainingPreds[a.To]--
			if remainingPreds[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	if len(lanes) == 0 {
		lanes = [][]dag.NodeID{nil}
	}
	return lanes, makespan
}
