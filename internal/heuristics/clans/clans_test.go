package clans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExampleMatchesFigure16(t *testing.T) {
	// The paper's CLANS walkthrough ends with parallel time 130 on two
	// processors: node 2 runs concurrently with the {3,4} chain.
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != paperex.CLANSParallelTime {
		t.Errorf("makespan = %d, want %d", sc.Makespan, paperex.CLANSParallelTime)
	}
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
	// Node 2 (paper numbering; ID 1) must sit alone on its processor.
	alone := sc.ByNode[1].Proc
	for v, a := range sc.ByNode {
		if v != 1 && a.Proc == alone {
			t.Errorf("node %d shares processor with node 2", v)
		}
	}
}

func TestSerializesWhenCommDominates(t *testing.T) {
	// Same shape as the paper example but with a crushing edge into
	// node 2: parallelization can no longer win, so everything lands
	// on one processor at exactly serial time.
	g := dag.New("comm-heavy")
	n := make([]dag.NodeID, 5)
	for i, w := range []int64{10, 20, 30, 40, 50} {
		n[i] = g.AddNode(w)
	}
	g.MustAddEdge(n[0], n[1], 500)
	g.MustAddEdge(n[0], n[2], 500)
	g.MustAddEdge(n[2], n[3], 500)
	g.MustAddEdge(n[1], n[4], 500)
	g.MustAddEdge(n[3], n[4], 500)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != g.SerialTime() {
		t.Errorf("makespan = %d, want serial %d", sc.Makespan, g.SerialTime())
	}
	if sc.NumProcs != 1 {
		t.Errorf("procs = %d, want 1", sc.NumProcs)
	}
}

// TestNeverBelowSerial is the paper's Table 2 headline: CLANS can never
// produce a speedup below 1.
func TestNeverBelowSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := schedtest.RandomDAG(rng, 1+rng.Intn(60), 0.05+0.4*rng.Float64())
		sc, err := heuristics.Run(New(), g)
		if err != nil {
			return false
		}
		return sc.Makespan <= g.SerialTime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNeverBelowSerialOnGeneratedPDGs(t *testing.T) {
	for i, band := range gen.PaperBands() {
		for seed := int64(0); seed < 6; seed++ {
			g := schedtest.GeneratedDAG(1000*int64(i)+seed, 2+int(seed)%4, band)
			sc, err := heuristics.Run(New(), g)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Makespan > g.SerialTime() {
				t.Errorf("band %v seed %d: makespan %d > serial %d",
					band, seed, sc.Makespan, g.SerialTime())
			}
		}
	}
}

func TestPrimitiveGraphHandled(t *testing.T) {
	// The N-structure is primitive; CLANS must still schedule it
	// validly and not exceed serial time.
	g := dag.New("N")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	d := g.AddNode(40)
	g.MustAddEdge(a, c, 2)
	g.MustAddEdge(a, d, 2)
	g.MustAddEdge(b, d, 2)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan > g.SerialTime() {
		t.Errorf("primitive makespan %d > serial %d", sc.Makespan, g.SerialTime())
	}
	// With cheap edges it should actually find parallelism.
	if sc.NumProcs < 2 {
		t.Errorf("expected parallel schedule for cheap-comm N, got %d procs", sc.NumProcs)
	}
}

func TestIndependentTasksParallelize(t *testing.T) {
	g := dag.New("indep")
	for i := 0; i < 4; i++ {
		g.AddNode(100)
	}
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != 100 || sc.NumProcs != 4 {
		t.Errorf("independent tasks: makespan %d on %d procs, want 100 on 4",
			sc.Makespan, sc.NumProcs)
	}
}

func TestSpeedupCheckDisabled(t *testing.T) {
	// Without the speedup check CLANS always parallelizes; schedules
	// must still validate, and on the comm-heavy graph the makespan
	// must exceed the guarded scheduler's.
	g := dag.New("comm-heavy")
	n := make([]dag.NodeID, 5)
	for i, w := range []int64{10, 20, 30, 40, 50} {
		n[i] = g.AddNode(w)
	}
	g.MustAddEdge(n[0], n[1], 500)
	g.MustAddEdge(n[0], n[2], 500)
	g.MustAddEdge(n[2], n[3], 500)
	g.MustAddEdge(n[1], n[4], 500)
	g.MustAddEdge(n[3], n[4], 500)

	unguarded := &CLANS{SpeedupCheck: false}
	sc := schedtest.BuildAndValidate(t, unguarded, g)
	if sc.Makespan <= g.SerialTime() {
		t.Errorf("unguarded CLANS should pay the communication: makespan %d vs serial %d",
			sc.Makespan, g.SerialTime())
	}
}

func TestRegistered(t *testing.T) {
	s, err := heuristics.New("CLANS")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "CLANS" {
		t.Errorf("Name = %q", s.Name())
	}
}
