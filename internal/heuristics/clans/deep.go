package clans

import (
	"sort"

	"schedcomp/internal/clan"
	"schedcomp/internal/dag"
)

// primitiveDeep is the strengthened primitive handler used when
// DeepPrimitives is set: it partitions the primitive clan's members
// into proper sub-clans (clan.SubClans), schedules each composite
// block through the ordinary bottom-up machinery, and then runs the
// earliest-start list scheduler over the *quotient* — blocks as
// macro-tasks with their fragment costs and the heaviest inter-block
// edge as communication. This recovers clustering decisions the flat
// per-task scheduler cannot see, which is the kind of strengthening
// the paper alludes to when it says the comparison used "the best
// version of CLANS".
//
// It reports ok = false when no composite sub-clan exists (the flat
// handler is then used).
func (b *builder) primitiveDeep(n *clan.Node) (fragment, bool) {
	blocks, err := clan.SubClans(b.g, n.Members)
	if err != nil || len(blocks) <= 1 || len(blocks) == len(n.Members) {
		return fragment{}, false
	}

	frags := make([]fragment, len(blocks))
	composite := false
	for i, blk := range blocks {
		if len(blk) == 1 {
			frags[i] = fragment{lanes: [][]dag.NodeID{{blk[0]}}, cost: b.g.Weight(blk[0])}
			continue
		}
		sub, err := clan.ParseMembers(b.g, blk)
		if err != nil {
			return fragment{}, false
		}
		frags[i] = b.schedule(sub)
		if b.err != nil {
			// Cancelled mid-block: the fragment is empty and must not
			// be indexed; the caller's b.err check surfaces the error.
			return fragment{}, true
		}
		composite = true
	}
	if !composite {
		return fragment{}, false
	}

	// Quotient structure: block index per member, heaviest edge and
	// predecessor counts between blocks.
	blockOf := map[dag.NodeID]int{}
	for i, blk := range blocks {
		for _, m := range blk {
			blockOf[m] = i
		}
	}
	k := len(blocks)
	comm := make(map[[2]int]int64)
	predCount := make([]int, k)
	succs := make([][]int, k)
	for _, blk := range blocks {
		for _, m := range blk {
			for _, a := range b.g.Succs(m) {
				j, inside := blockOf[a.To]
				if !inside {
					continue
				}
				i := blockOf[m]
				if i == j {
					continue
				}
				key := [2]int{i, j}
				if _, known := comm[key]; !known {
					predCount[j]++
					succs[i] = append(succs[i], j)
				}
				if a.Weight > comm[key] {
					comm[key] = a.Weight
				}
			}
		}
	}

	// Earliest-start list schedule of the quotient (blocks cannot form
	// cycles: modules are convex, so the quotient of a DAG is a DAG).
	ready := make([]int, 0, k)
	for i := 0; i < k; i++ {
		if predCount[i] == 0 {
			ready = append(ready, i)
		}
	}
	laneOf := make([]int, k)
	finish := make([]int64, k)
	var laneFree []int64
	var laneBlocks [][]int
	var makespan int64
	for len(ready) > 0 {
		bestI, bestL := -1, -1
		var bestStart int64
		for ri, blk := range ready {
			for l := 0; l <= len(laneBlocks); l++ {
				var start int64
				if l < len(laneFree) {
					start = laneFree[l]
				}
				for _, pre := range predsOf(blk, succs, k) {
					t := finish[pre]
					if laneOf[pre] != l {
						t += comm[[2]int{pre, blk}]
					}
					if t > start {
						start = t
					}
				}
				better := bestI == -1 || start < bestStart
				if !better && start == bestStart && ri != bestI {
					if frags[blk].cost != frags[ready[bestI]].cost {
						better = frags[blk].cost > frags[ready[bestI]].cost
					} else {
						better = blk < ready[bestI]
					}
				}
				if better {
					bestI, bestL, bestStart = ri, l, start
				}
			}
		}
		blk := ready[bestI]
		ready = append(ready[:bestI], ready[bestI+1:]...)
		if bestL == len(laneBlocks) {
			laneBlocks = append(laneBlocks, nil)
			laneFree = append(laneFree, 0)
		}
		laneOf[blk] = bestL
		f := bestStart + frags[blk].cost
		finish[blk] = f
		laneFree[bestL] = f
		laneBlocks[bestL] = append(laneBlocks[bestL], blk)
		if f > makespan {
			makespan = f
		}
		for _, j := range succs[blk] {
			predCount[j]--
			if predCount[j] == 0 {
				ready = append(ready, j)
			}
		}
	}

	var serial int64
	for _, m := range n.Members {
		serial += b.g.Weight(m)
	}
	if b.c.SpeedupCheck && makespan >= serial {
		flat := append([]dag.NodeID(nil), n.Members...)
		sort.Slice(flat, func(i, j int) bool { return b.topoPos[flat[i]] < b.topoPos[flat[j]] })
		return fragment{lanes: [][]dag.NodeID{flat}, cost: serial}, true
	}

	// Materialize: concatenate block home lanes per quotient lane;
	// blocks' extra lanes become processors of their own.
	lanes := make([][]dag.NodeID, 0, len(laneBlocks))
	extra := make([][]dag.NodeID, 0, k)
	for _, lb := range laneBlocks {
		size := 0
		for _, blk := range lb {
			size += len(frags[blk].lanes[0])
		}
		lane := make([]dag.NodeID, 0, size)
		for _, blk := range lb {
			lane = append(lane, frags[blk].lanes[0]...)
			extra = append(extra, frags[blk].lanes[1:]...)
		}
		lanes = append(lanes, lane)
	}
	return fragment{lanes: append(lanes, extra...), cost: makespan}, true
}

// predsOf scans the quotient successor lists for blk's predecessors.
// Quotients are tiny (a handful of blocks), so the linear scan is
// cheaper than maintaining a reverse index.
func predsOf(blk int, succs [][]int, k int) []int {
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		for _, j := range succs[i] {
			if j == blk {
				out = append(out, i)
				break
			}
		}
	}
	return out
}
