package clans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
)

func deep() *CLANS { return &CLANS{SpeedupCheck: true, DeepPrimitives: true} }

func TestDeepConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return deep() })
}

func TestDeepNeverBelowSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := schedtest.RandomDAG(rng, 1+rng.Intn(45), 0.05+0.4*rng.Float64())
		sc, err := heuristics.Run(deep(), g)
		if err != nil {
			return false
		}
		return sc.Makespan <= g.SerialTime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// primitiveWithFatModules builds a primitive quotient (N-structure)
// whose four corners are heavy chains connected by cheap edges: the
// flat per-task scheduler sees 12 loose tasks, while the deep variant
// can cluster each chain and parallelize the quotient.
func primitiveWithFatModules() *dag.Graph {
	g := dag.New("n-of-chains")
	chain := func() (dag.NodeID, dag.NodeID) {
		a := g.AddNode(100)
		b := g.AddNode(100)
		c := g.AddNode(100)
		g.MustAddEdge(a, b, 1)
		g.MustAddEdge(b, c, 1)
		return a, c
	}
	aHead, aTail := chain()
	bHead, bTail := chain()
	cHead, _ := chain()
	dHead, _ := chain()
	_ = aHead
	_ = bHead
	// N: A->C, A->D, B->D (connect tails to heads).
	g.MustAddEdge(aTail, cHead, 5)
	g.MustAddEdge(aTail, dHead, 5)
	g.MustAddEdge(bTail, dHead, 5)
	return g
}

func TestDeepSchedulesQuotient(t *testing.T) {
	g := primitiveWithFatModules()
	flat := schedtest.BuildAndValidate(t, New(), g)
	dp := schedtest.BuildAndValidate(t, deep(), g)
	if dp.Makespan > g.SerialTime() {
		t.Fatalf("deep makespan %d exceeds serial %d", dp.Makespan, g.SerialTime())
	}
	// Both must find substantial parallelism here; deep must not be
	// worse than, say, 20% off flat (it usually matches or beats it).
	if dp.Makespan > flat.Makespan*12/10 {
		t.Errorf("deep %d much worse than flat %d", dp.Makespan, flat.Makespan)
	}
	if dp.NumProcs < 2 {
		t.Errorf("deep found no parallelism: %d procs", dp.NumProcs)
	}
}

func TestDeepOnGeneratedPDGsGuarded(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := schedtest.GeneratedDAG(seed, 3, gen.Band{Lo: 0.2, Hi: 0.8})
		sc := schedtest.BuildAndValidate(t, deep(), g)
		if sc.Makespan > g.SerialTime() {
			t.Errorf("seed %d: deep exceeded serial time", seed)
		}
	}
}
