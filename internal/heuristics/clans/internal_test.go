package clans

import (
	"context"
	"testing"

	"schedcomp/internal/clan"
	"schedcomp/internal/dag"
	"schedcomp/internal/paperex"
)

func newBuilder(t *testing.T, g *dag.Graph) *builder {
	t.Helper()
	pos, err := g.TopoPositions()
	if err != nil {
		t.Fatal(err)
	}
	return &builder{c: New(), g: g, ctx: context.Background(), topoPos: pos, member: make([]bool, g.NumNodes())}
}

func TestBoundaryCommPaperExample(t *testing.T) {
	g := paperex.Graph()
	b := newBuilder(t, g)
	// Node 2 (ID 1): in-edge 1->2 weight 5, out-edge 2->5 weight 4 —
	// the paper's 5 + 20 + 4 = 29 walkthrough.
	in, out := b.boundaryComm([]dag.NodeID{1})
	if in != 5 || out != 4 {
		t.Errorf("node 2 boundary = %d/%d, want 5/4", in, out)
	}
	// Clan {3,4} (IDs 2,3): in 1->3 weight 5, out 4->5 weight 5; the
	// internal 3->4 edge must not count.
	in, out = b.boundaryComm([]dag.NodeID{2, 3})
	if in != 5 || out != 5 {
		t.Errorf("clan {3,4} boundary = %d/%d, want 5/5", in, out)
	}
}

func TestRootFragmentCostMatchesPaper(t *testing.T) {
	// The paper's bottom-up walkthrough ends with cost
	// 10 + 70 + 50 = 130 at the root.
	g := paperex.Graph()
	tree, err := clan.Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, g)
	frag := b.schedule(tree.Root)
	if frag.cost != 130 {
		t.Errorf("root cost = %d, want 130", frag.cost)
	}
	if len(frag.lanes) != 2 {
		t.Errorf("lanes = %d, want 2", len(frag.lanes))
	}
}

func TestIndependentDecisionSerializesWhenCommWins(t *testing.T) {
	// Two tiny parallel tasks behind huge boundary edges: clustering
	// must win, producing a single lane with both tasks.
	g := dag.New("serialize")
	src := g.AddNode(10)
	a := g.AddNode(10)
	bb := g.AddNode(10)
	sink := g.AddNode(10)
	g.MustAddEdge(src, a, 500)
	g.MustAddEdge(src, bb, 500)
	g.MustAddEdge(a, sink, 500)
	g.MustAddEdge(bb, sink, 500)
	tree, err := clan.Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, g)
	frag := b.schedule(tree.Root)
	if len(frag.lanes) != 1 {
		t.Errorf("lanes = %d, want 1 (everything clustered)", len(frag.lanes))
	}
	if frag.cost != 40 {
		t.Errorf("cost = %d, want serial 40", frag.cost)
	}
}

func TestIndependentKeepsHeaviestChildHome(t *testing.T) {
	// Heavy chain and a light task in an independent clan: the chain
	// stays on the home lane (lane 0), the light task moves off.
	g := dag.New("home")
	src := g.AddNode(5)
	h1 := g.AddNode(100)
	h2 := g.AddNode(100)
	light := g.AddNode(10)
	sink := g.AddNode(5)
	g.MustAddEdge(src, h1, 2)
	g.MustAddEdge(h1, h2, 2)
	g.MustAddEdge(src, light, 2)
	g.MustAddEdge(h2, sink, 2)
	g.MustAddEdge(light, sink, 2)
	tree, err := clan.Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, g)
	frag := b.schedule(tree.Root)
	if len(frag.lanes) != 2 {
		t.Fatalf("lanes = %d, want 2", len(frag.lanes))
	}
	home := frag.lanes[0]
	foundHeavy := false
	for _, v := range home {
		if v == h1 {
			foundHeavy = true
		}
		if v == light {
			t.Error("light task ended up on the home lane")
		}
	}
	if !foundHeavy {
		t.Error("heavy chain not on the home lane")
	}
}

func TestEtfSerializesExpensiveSubgraph(t *testing.T) {
	// The internal ETF must report a makespan >= serial only when
	// parallelism does not pay; on a comm-heavy pair of independent
	// chains joined crosswise (a primitive), the guarded primitive
	// handler returns the serial fragment.
	g := dag.New("prim")
	a := g.AddNode(10)
	bb := g.AddNode(10)
	c := g.AddNode(10)
	d := g.AddNode(10)
	g.MustAddEdge(a, c, 500)
	g.MustAddEdge(a, d, 500)
	g.MustAddEdge(bb, d, 500)
	tree, err := clan.Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Kind != clan.Primitive {
		t.Fatalf("expected primitive root, got %v", tree.Root.Kind)
	}
	b := newBuilder(t, g)
	frag := b.primitive(tree.Root)
	if len(frag.lanes) != 1 || frag.cost != 40 {
		t.Errorf("primitive fragment: %d lanes cost %d, want 1/40", len(frag.lanes), frag.cost)
	}
}
