package heuristics_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/sched"
)

// trippingContext reports cancellation after a fixed number of Err
// polls, so tests can cancel a scheduler deterministically in the
// middle of its main loop (wall-clock cancellation would be racy).
type trippingContext struct {
	context.Context
	mu    sync.Mutex
	calls int
	fuse  int
}

func (c *trippingContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.fuse {
		return context.Canceled
	}
	return nil
}

func (c *trippingContext) polled() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestEveryHeuristicImplementsContextScheduler(t *testing.T) {
	for _, name := range heuristics.Names() {
		s, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.(heuristics.ContextScheduler); !ok {
			t.Errorf("%s does not implement ContextScheduler", name)
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := schedtest.RandomDAG(rand.New(rand.NewSource(1)), 30, 0.2)
	for _, name := range heuristics.Names() {
		s, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := heuristics.RunContext(ctx, s, g)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if sc != nil {
			t.Errorf("%s: got a schedule from a cancelled context", name)
		}
	}
}

// TestRunContextMidScheduleCancellation is the regression test for the
// cancellation contract: a context that trips part-way through the
// scheduling loop must surface context.Canceled — never a partial
// placement — and the scheduler must actually have been polling (the
// fuse is consumed past its threshold).
func TestRunContextMidScheduleCancellation(t *testing.T) {
	g := schedtest.RandomDAG(rand.New(rand.NewSource(2)), 60, 0.15)
	for _, name := range heuristics.Names() {
		// Trip after a few polls: RunContext itself polls once up
		// front, so a fuse of 5 cancels inside the scheduling loop.
		ctx := &trippingContext{Context: context.Background(), fuse: 5}
		s, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := heuristics.RunContext(ctx, s, g)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if sc != nil {
			t.Errorf("%s: got a partial schedule after mid-run cancellation", name)
		}
		if ctx.polled() <= 5 {
			t.Errorf("%s: context polled only %d times — cancellation not checked inside the loop", name, ctx.polled())
		}
	}
}

func TestRunContextDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	s, err := heuristics.New("MCP")
	if err != nil {
		t.Fatal(err)
	}
	g := schedtest.RandomDAG(rand.New(rand.NewSource(3)), 20, 0.2)
	if _, err := heuristics.RunContext(ctx, s, g); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// plainSched ignores contexts entirely, standing in for an external
// Scheduler written against the pre-context interface.
type plainSched struct{ cancel context.CancelFunc }

func (p plainSched) Name() string { return "PLAIN" }
func (p plainSched) Schedule(g *dag.Graph) (*sched.Placement, error) {
	// Cancel mid-run: the placement below is complete and valid, but
	// RunContext must still drop it because the request is gone.
	p.cancel()
	return sched.Serial(g)
}

// TestRunContextPostChecksPlainScheduler proves the fix for callers
// that ignore context: even when a legacy scheduler runs to completion
// after its request was cancelled, RunContext returns context.Canceled
// rather than the stale schedule.
func TestRunContextPostChecksPlainScheduler(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := schedtest.RandomDAG(rand.New(rand.NewSource(4)), 10, 0.3)
	sc, err := heuristics.RunContext(ctx, plainSched{cancel: cancel}, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sc != nil {
		t.Fatal("stale schedule leaked past a cancelled context")
	}
}

// TestRunContextBackgroundUnchanged pins the plain-Run path: no
// context means no cancellation, identical schedules.
func TestRunContextBackgroundUnchanged(t *testing.T) {
	g := schedtest.RandomDAG(rand.New(rand.NewSource(5)), 40, 0.2)
	for _, name := range heuristics.Names() {
		s1, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := heuristics.Run(s1, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := heuristics.RunContext(context.Background(), s2, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Makespan != b.Makespan {
			t.Errorf("%s: Run and RunContext disagree: %d vs %d", name, a.Makespan, b.Makespan)
		}
	}
}
