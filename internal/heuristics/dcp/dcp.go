// Package dcp implements a mobility-driven list scheduler inspired by
// Kwok & Ahmad's Dynamic Critical Path algorithm. Each step recomputes
// earliest and latest start times (AEST/ALST) over the partial
// schedule; among the ready tasks it picks the one with the smallest
// mobility (ALST − AEST — zero mobility means the task sits on the
// current dynamic critical path), places it with gap insertion on the
// processor that minimizes its start, and breaks processor ties with a
// one-step lookahead toward the task's critical child (preferring the
// processor from which that child could start earliest).
//
// Deviation from the original DCP: the original may reserve slots for
// tasks whose parents are not yet scheduled; the common placement
// model used by this testbed (per-processor orders replayed by one
// greedy builder, §2 of the paper) cannot express such reservations,
// so selection is restricted to ready tasks. The registry name "DCP"
// refers to this variant throughout.
package dcp

import (
	"context"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("DCP", func() heuristics.Scheduler { return New() })
}

// DCP is the scheduler. The zero value is ready to use.
type DCP struct{}

// New returns a DCP scheduler.
func New() *DCP { return &DCP{} }

// Name implements heuristics.Scheduler.
func (d *DCP) Name() string { return "DCP" }

type slot struct {
	node   dag.NodeID
	start  int64
	finish int64
}

// Schedule implements heuristics.Scheduler.
func (d *DCP) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return d.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per committed task.
func (d *DCP) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	scheduled := make([]bool, n)
	proc := make([]int, n)
	start := make([]int64, n)
	finish := make([]int64, n)
	missing := make([]int, n)
	for v := 0; v < n; v++ {
		missing[v] = g.InDegree(dag.NodeID(v))
	}
	var timelines [][]slot

	aest := make([]int64, n)
	alst := make([]int64, n)

	recompute := func() {
		// AEST forward: scheduled tasks are pinned; unscheduled ones
		// assume full communication from every predecessor (their
		// processor is unknown).
		for _, v := range order {
			if scheduled[v] {
				aest[v] = start[v]
				continue
			}
			var e int64
			for _, a := range g.Preds(v) {
				p := a.To
				var t int64
				if scheduled[p] {
					t = finish[p] + a.Weight
				} else {
					t = aest[p] + g.Weight(p) + a.Weight
				}
				if t > e {
					e = t
				}
			}
			aest[v] = e
		}
		// Schedule-length bound, then ALST backward.
		var bound int64
		for v := 0; v < n; v++ {
			if c := aest[v] + g.Weight(dag.NodeID(v)); c > bound {
				bound = c
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if scheduled[v] {
				alst[v] = start[v]
				continue
			}
			l := bound - g.Weight(v)
			for _, a := range g.Succs(v) {
				s := a.To
				var t int64
				if scheduled[s] {
					t = start[s] - a.Weight - g.Weight(v)
				} else {
					t = alst[s] - a.Weight - g.Weight(v)
				}
				if t < l {
					l = t
				}
			}
			alst[v] = l
		}
	}

	earliestOn := func(v dag.NodeID, p int) int64 {
		var ready int64
		for _, a := range g.Preds(v) {
			t := finish[a.To]
			if proc[a.To] != p {
				t += a.Weight
			}
			if t > ready {
				ready = t
			}
		}
		// Gap insertion.
		w := g.Weight(v)
		cur := ready
		for _, s := range timelines[p] {
			if cur+w <= s.start {
				return cur
			}
			if s.finish > cur {
				cur = s.finish
			}
		}
		return cur
	}

	// criticalChild returns v's unscheduled successor with the least
	// mobility (the one the dynamic critical path runs through).
	criticalChild := func(v dag.NodeID) (dag.NodeID, int64, bool) {
		best := dag.NodeID(-1)
		var bestMob, edge int64
		for _, a := range g.Succs(v) {
			if scheduled[a.To] {
				continue
			}
			mob := alst[a.To] - aest[a.To]
			if best < 0 || mob < bestMob || (mob == bestMob && a.To < best) {
				best, bestMob, edge = a.To, mob, a.Weight
			}
		}
		return best, edge, best >= 0
	}

	for done := 0; done < n; done++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		recompute()
		// Ready task with minimal mobility; ties to smaller AEST, then
		// smaller ID.
		pick := dag.NodeID(-1)
		var pickMob int64
		for v := 0; v < n; v++ {
			if scheduled[v] || missing[v] != 0 {
				continue
			}
			mob := alst[v] - aest[v]
			node := dag.NodeID(v)
			better := pick < 0 || mob < pickMob ||
				(mob == pickMob && aest[node] < aest[pick]) ||
				(mob == pickMob && aest[node] == aest[pick] && node < pick)
			if better {
				pick, pickMob = node, mob
			}
		}

		// Processor choice: minimize start; among starts within the
		// critical child's edge weight of the best, prefer the
		// processor minimizing the child's estimated local start.
		cc, ccEdge, hasCC := criticalChild(pick)
		bestP, bestStart := -1, int64(0)
		var bestLook int64
		for p := 0; p <= len(timelines); p++ {
			var st int64
			if p < len(timelines) {
				st = earliestOn(pick, p)
			} else {
				// Fresh processor: pure data-ready time.
				for _, a := range g.Preds(pick) {
					if t := finish[a.To] + a.Weight; t > st {
						st = t
					}
				}
			}
			look := st + g.Weight(pick)
			if hasCC {
				// If the child follows on this processor the edge is
				// free; its other parents are approximated by AEST.
				childLocal := look
				if childAEST := aest[cc]; childAEST > childLocal {
					childLocal = childAEST
				}
				look = childLocal
				_ = ccEdge
			}
			better := bestP == -1 || st < bestStart ||
				(st == bestStart && look < bestLook)
			if p == len(timelines) && bestP != -1 && st >= bestStart {
				better = false // open a new processor only when strictly earlier
			}
			if better {
				bestP, bestStart, bestLook = p, st, look
			}
		}
		if bestP == len(timelines) {
			timelines = append(timelines, nil)
		}
		scheduled[pick] = true
		proc[pick] = bestP
		start[pick] = bestStart
		finish[pick] = bestStart + g.Weight(pick)
		tl := timelines[bestP]
		// Binary search for the insertion point by hand: a sort.Search
		// closure here would capture bestStart and allocate on every
		// scheduling step.
		i, hi := 0, len(tl)
		for i < hi {
			mid := int(uint(i+hi) >> 1)
			if tl[mid].start >= bestStart {
				hi = mid
			} else {
				i = mid + 1
			}
		}
		tl = append(tl, slot{})
		copy(tl[i+1:], tl[i:])
		tl[i] = slot{node: pick, start: bestStart, finish: finish[pick]}
		timelines[bestP] = tl
		for _, a := range g.Succs(pick) {
			missing[a.To]--
		}
	}

	for p, tl := range timelines {
		for _, s := range tl {
			pl.Assign(s.node, p)
		}
	}
	return pl, nil
}
