package dcp

import (
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	sc := schedtest.BuildAndValidate(t, New(), paperex.Graph())
	if sc.Makespan != 130 {
		t.Errorf("makespan = %d, want 130 (golden; equals the optimum)", sc.Makespan)
	}
}

func TestZeroMobilityMeansCriticalPathFirst(t *testing.T) {
	// On the paper example the communication-inclusive critical path
	// is 1-3-4-5; DCP must schedule node 1 first and keep the path
	// together on one processor.
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	p := sc.ByNode[0].Proc
	for _, v := range []dag.NodeID{2, 3, 4} {
		if sc.ByNode[v].Proc != p {
			t.Errorf("critical path node %d not co-located", v)
		}
	}
}

func TestHeavyChainSerializes(t *testing.T) {
	g := dag.New("chain")
	var prev dag.NodeID = -1
	for i := 0; i < 6; i++ {
		v := g.AddNode(10)
		if prev >= 0 {
			g.MustAddEdge(prev, v, 300)
		}
		prev = v
	}
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 1 || sc.Makespan != 60 {
		t.Errorf("%d procs makespan %d, want 1/60", sc.NumProcs, sc.Makespan)
	}
}

func TestCheapForkParallelizes(t *testing.T) {
	g := dag.New("fork")
	r := g.AddNode(10)
	for i := 0; i < 3; i++ {
		v := g.AddNode(100)
		g.MustAddEdge(r, v, 1)
	}
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs < 3 {
		t.Errorf("procs = %d, want >= 3", sc.NumProcs)
	}
	if sc.Makespan != 111 {
		t.Errorf("makespan = %d, want 111", sc.Makespan)
	}
}
