// Package dls implements Dynamic Level Scheduling (Sih & Lee), another
// classic candidate for the paper's open testbed. At every step it
// examines all (ready task, processor) pairs and commits the pair with
// the greatest dynamic level
//
//	DL(n, p) = SL(n) − start(n, p)
//
// where SL is the static level (communication-weighted longest path to
// an exit) and start(n, p) the earliest start of n on p given current
// commitments. Maximizing DL balances "urgent task" against "early
// slot": a high-level task may wait for a good processor while a
// low-level one takes an immediate slot elsewhere.
package dls

import (
	"context"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("DLS", func() heuristics.Scheduler { return New() })
}

// DLS is the scheduler. MaxProcs bounds the machine (0 = unbounded).
type DLS struct {
	MaxProcs int
}

// New returns a DLS scheduler on an unbounded machine.
func New() *DLS { return &DLS{} }

// Name implements heuristics.Scheduler.
func (d *DLS) Name() string { return "DLS" }

// Schedule implements heuristics.Scheduler.
func (d *DLS) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return d.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per committed task.
func (d *DLS) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}
	missing := make([]int, n)
	ready := make([]dag.NodeID, 0, n)
	for v := 0; v < n; v++ {
		missing[v] = g.InDegree(dag.NodeID(v))
		if missing[v] == 0 {
			ready = append(ready, dag.NodeID(v))
		}
	}
	proc := make([]int, n)
	finish := make([]int64, n)
	var procFree []int64

	for len(ready) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestI, bestP := -1, -1
		var bestDL, bestStart int64
		cand := len(procFree)
		if d.MaxProcs == 0 || cand < d.MaxProcs {
			cand++
		}
		for ri, v := range ready {
			for p := 0; p < cand; p++ {
				var start int64
				if p < len(procFree) {
					start = procFree[p]
				}
				for _, a := range g.Preds(v) {
					t := finish[a.To]
					if proc[a.To] != p {
						t += a.Weight
					}
					if t > start {
						start = t
					}
				}
				dl := level[v] - start
				better := bestI == -1 || dl > bestDL
				if !better && dl == bestDL && ri != bestI {
					prev := ready[bestI]
					if v != prev {
						better = v < prev
					}
				}
				if better {
					bestI, bestP, bestDL, bestStart = ri, p, dl, start
				}
			}
		}
		v := ready[bestI]
		ready = append(ready[:bestI], ready[bestI+1:]...)
		if bestP == len(procFree) {
			procFree = append(procFree, 0)
		}
		proc[v] = bestP
		finish[v] = bestStart + g.Weight(v)
		procFree[bestP] = finish[v]
		pl.Assign(v, bestP)
		for _, a := range g.Succs(v) {
			missing[a.To]--
			if missing[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	return pl, nil
}
