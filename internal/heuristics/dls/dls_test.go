package dls

import (
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	sc := schedtest.BuildAndValidate(t, New(), paperex.Graph())
	if sc.Makespan != 130 {
		t.Errorf("makespan = %d, want 130 (golden; equals the optimum)", sc.Makespan)
	}
}

func TestMaxProcsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := schedtest.RandomDAG(rng, 40, 0.1)
	sc := schedtest.BuildAndValidate(t, &DLS{MaxProcs: 2}, g)
	if sc.NumProcs > 2 {
		t.Errorf("procs = %d, bound 2", sc.NumProcs)
	}
}

func TestDynamicLevelPrefersUrgentTask(t *testing.T) {
	// Two ready tasks with equal start options: the one with the
	// higher static level has the greater dynamic level and commits
	// first (processor 0).
	g := dag.New("dl")
	hot := g.AddNode(10)
	tail := g.AddNode(200)
	g.MustAddEdge(hot, tail, 1)
	cold := g.AddNode(10)
	_ = cold
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.ByNode[hot].Proc != 0 || sc.ByNode[hot].Start != 0 {
		t.Errorf("urgent task not first: %+v", sc.ByNode[hot])
	}
}

func TestDLTradesUrgencyForEarlySlot(t *testing.T) {
	// A ready low-level task with an immediate slot can beat a
	// high-level task that would have to wait for communication:
	// construct hot's successor (level high, but gated by a heavy
	// message) vs a free independent task.
	g := dag.New("trade")
	a := g.AddNode(10)
	b := g.AddNode(50) // succ of a via heavy edge
	g.MustAddEdge(a, b, 1000)
	free := g.AddNode(10)
	sc := schedtest.BuildAndValidate(t, New(), g)
	// free must not be delayed behind the heavy chain.
	if sc.ByNode[free].Start != 0 {
		t.Errorf("independent task delayed to %d", sc.ByNode[free].Start)
	}
}
