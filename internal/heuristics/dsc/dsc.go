// Package dsc implements Dominant Sequence Clustering (Yang &
// Gerasoulis), following the pseudocode in Appendix A.1 of the paper.
//
// DSC is an edge-zeroing clustering algorithm: it repeatedly examines
// the highest-priority free task (priority = startbound + level, where
// level includes both node and communication weights) and either merges
// it into the parent cluster that minimizes its start time (zeroing the
// connecting edges) or starts a new cluster. Two acceptance tests guard
// the zeroing:
//
//	CT1: merging into a parent cluster must not delay the task beyond
//	     the start time it would get on a fresh cluster (its
//	     startbound). Note the comparison in the paper's Figure 7 is
//	     written inverted relative to its own stated guarantee
//	     ("parallel time is not increased"); we implement the
//	     guarantee.
//	CT2: when a partially free task (some predecessors scheduled, some
//	     not) outranks the free task, the merge must additionally not
//	     delay that task's eventual start through the cluster it would
//	     use (the paper's "dominant sequence reduction warranty").
//
// Each resulting cluster becomes one processor.
package dsc

import (
	"context"

	"schedcomp/internal/arena"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("DSC", func() heuristics.Scheduler { return New() })
}

// DSC is the scheduler. The zero value is ready to use.
//
// Levels are maintained incrementally: placing a task on a fresh
// cluster zeroes no edges and changes no level, and merging a task
// into a parent cluster only lowers levels inside the ancestor cone of
// the zeroed edges, which is repaired in reverse topological order
// (see refreshCone). fullRecompute switches back to the original
// whole-graph refresh every round; the two paths produce identical
// placements (asserted by TestIncrementalMatchesFullRecompute) and the
// slow one is kept as the test oracle.
type DSC struct {
	fullRecompute bool
}

// New returns a DSC scheduler.
func New() *DSC { return &DSC{} }

// newFullRecompute returns the reference scheduler that refreshes all
// levels every round — the pre-incremental O(V·(V+E)) path, kept as
// the oracle for the equivalence tests.
func newFullRecompute() *DSC { return &DSC{fullRecompute: true} }

// Name implements heuristics.Scheduler.
func (d *DSC) Name() string { return "DSC" }

type state struct {
	g       *dag.Graph
	csr     *dag.CSR       // flat adjacency view of g, same revision
	cluster []int          // node -> cluster, -1 unscheduled
	members [][]dag.NodeID // cluster -> ordered tasks
	free    []int64        // cluster -> time it becomes free
	st      []int64        // node -> scheduled start time
	nsched  []int          // node -> count of scheduled predecessors
	level   []int64        // maintained with zeroed edges

	// Epoch-stamped cluster marks: bestParentCluster and ct2
	// deduplicate parent clusters against mark (slot live when equal to
	// markEp), replacing a per-call map without changing which cluster
	// wins — the map only answered membership, never ordered anything.
	mark   []int32
	markEp int32

	// Incremental-maintenance state; nil when running the full
	// recompute reference path (and in the hand-built unit-test
	// states, which call recomputeLevels directly).
	pos    []int        // cached topo position of each node
	dirty  []dag.NodeID // max-heap of pending nodes, keyed by pos
	inHeap []bool       // heap membership, to coalesce duplicates
}

// Schedule implements heuristics.Scheduler.
func (d *DSC) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return d.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per placed task.
func (d *DSC) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	// Per-call working arrays come from the pooled arena; only the
	// Placement escapes.
	scratch := arena.Get()
	defer scratch.Release()
	s := &state{
		g:       g,
		csr:     g.CSR(),
		cluster: scratch.Ints(n),
		st:      scratch.Int64s(n),
		nsched:  scratch.Ints(n),
		level:   scratch.Int64s(n),
		mark:    scratch.Int32s(n),
	}
	for i := range s.cluster {
		s.cluster[i] = -1
	}
	if !d.fullRecompute {
		pos, err := g.TopoPositions()
		if err != nil {
			return nil, err
		}
		bl, err := g.BLevels()
		if err != nil {
			return nil, err
		}
		// With no clusters yet, no edge is zeroed: the initial levels
		// are exactly the graph's b-levels (shared cached slice —
		// copied because place() lowers them in place).
		copy(s.level, bl)
		// Read-only snapshot of the topo positions captured with the
		// same generation as `order`; DSC never writes through it.
		s.pos = pos //lint:ownedcopy
		s.inHeap = scratch.Bools(n)
		s.dirty = scratch.NodeIDs(n)[:0]
	}

	for scheduled := 0; scheduled < n; scheduled++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d.fullRecompute {
			s.recomputeLevels(order)
		}

		nx := s.topFree()
		ny := s.topPartialFree()

		target := -1 // cluster to merge nx into; -1 = new cluster
		if ny < 0 || s.priority(nx) > s.priority(ny) {
			if c, ok := s.bestParentCluster(nx); ok && s.startOn(c, nx) <= s.startBound(nx) {
				target = c // CT1 holds
			}
		} else {
			// The partially free task outranks nx: zero only when both
			// CT1 and CT2 hold.
			if c, ok := s.bestParentCluster(nx); ok &&
				s.startOn(c, nx) <= s.startBound(nx) && s.ct2(c, nx, ny) {
				target = c
			}
		}
		s.place(nx, target)
	}

	pl := sched.NewPlacement(n)
	for c, ms := range s.members {
		for _, v := range ms {
			pl.Assign(v, c)
		}
	}
	return pl, nil
}

// recomputeLevels refreshes level(n) = longest remaining path including
// communication, where edges internal to a cluster are already zeroed.
// It is the whole-graph reference path; the incremental path repairs
// only the affected ancestor cone (refreshCone).
func (s *state) recomputeLevels(order []dag.NodeID) {
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		s.level[v] = s.levelOf(v)
	}
}

// levelOf recomputes one node's level from its successors' current
// levels and effective (cluster-aware) edge weights.
func (s *state) levelOf(v dag.NodeID) int64 {
	var best int64
	succs, ws := s.csr.Succs(v)
	for j, to := range succs {
		c := s.level[to] + s.effWeight(v, to, ws[j])
		if c > best {
			best = c
		}
	}
	return s.g.Weight(v) + best
}

// refreshCone restores the level invariant after v was merged into
// cluster c: the edges from v's cluster-c predecessors to v just went
// to zero, so only those predecessors — and transitively their
// ancestors, when a level actually drops — can change. Nodes are
// repaired in decreasing topological position (a max-heap keyed by the
// cached topo order), so every node's successors are final before the
// node itself is recomputed, exactly as in the full reverse-topo
// sweep.
func (s *state) refreshCone(v dag.NodeID, c int) {
	preds, _ := s.csr.Preds(v)
	for _, p := range preds {
		if s.cluster[p] == c {
			s.pushDirty(p)
		}
	}
	for len(s.dirty) > 0 {
		u := s.popDirty()
		nl := s.levelOf(u)
		if nl == s.level[u] {
			continue
		}
		s.level[u] = nl
		ups, _ := s.csr.Preds(u)
		for _, p := range ups {
			s.pushDirty(p)
		}
	}
}

// pushDirty adds v to the pending max-heap unless already queued.
func (s *state) pushDirty(v dag.NodeID) {
	if s.inHeap[v] {
		return
	}
	s.inHeap[v] = true
	h, pos := s.dirty, s.pos
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if pos[h[p]] >= pos[h[i]] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.dirty = h
}

// popDirty removes and returns the pending node with the greatest
// topological position.
func (s *state) popDirty() dag.NodeID {
	h, pos := s.dirty, s.pos
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && pos[h[l]] > pos[h[big]] {
			big = l
		}
		if r < len(h) && pos[h[r]] > pos[h[big]] {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	s.dirty = h
	s.inHeap[top] = false
	return top
}

func (s *state) effWeight(u, v dag.NodeID, w int64) int64 {
	if s.cluster[u] != -1 && s.cluster[u] == s.cluster[v] {
		return 0
	}
	return w
}

// isFree reports whether v is unscheduled with every predecessor
// scheduled.
func (s *state) isFree(v dag.NodeID) bool {
	return s.cluster[v] == -1 && s.nsched[v] == s.csr.InDegree(v)
}

// isPartialFree reports whether v is unscheduled with at least one
// scheduled and at least one unscheduled predecessor.
func (s *state) isPartialFree(v dag.NodeID) bool {
	return s.cluster[v] == -1 && s.nsched[v] > 0 && s.nsched[v] < s.csr.InDegree(v)
}

// startBound is the paper's startbound: the earliest v could start on a
// fresh cluster, i.e. the max arrival time over scheduled predecessors.
func (s *state) startBound(v dag.NodeID) int64 {
	var b int64
	preds, ws := s.csr.Preds(v)
	for j, p := range preds {
		if s.cluster[p] == -1 {
			continue
		}
		t := s.st[p] + s.g.Weight(p) + ws[j]
		if t > b {
			b = t
		}
	}
	return b
}

// priority(v) = startbound(v) + level(v).
func (s *state) priority(v dag.NodeID) int64 { return s.startBound(v) + s.level[v] }

// topFree returns the free node with the highest priority (ties to the
// lower ID). There is always at least one free node in a DAG with
// unscheduled nodes.
func (s *state) topFree() dag.NodeID {
	best := dag.NodeID(-1)
	var bp int64
	for i := 0; i < s.g.NumNodes(); i++ {
		v := dag.NodeID(i)
		if !s.isFree(v) {
			continue
		}
		if p := s.priority(v); best < 0 || p > bp {
			best, bp = v, p
		}
	}
	if best < 0 {
		panic("dsc: no free node in acyclic graph with unscheduled nodes")
	}
	return best
}

// topPartialFree returns the partially free node with the highest
// priority, or -1 if none exists.
func (s *state) topPartialFree() dag.NodeID {
	best := dag.NodeID(-1)
	var bp int64
	for i := 0; i < s.g.NumNodes(); i++ {
		v := dag.NodeID(i)
		if !s.isPartialFree(v) {
			continue
		}
		if p := s.priority(v); best < 0 || p > bp {
			best, bp = v, p
		}
	}
	return best
}

// startOn returns ST(c, v): the start time v would get appended to
// cluster c, with edges from predecessors inside c zeroed.
func (s *state) startOn(c int, v dag.NodeID) int64 {
	t := s.free[c]
	preds, ws := s.csr.Preds(v)
	for j, p := range preds {
		if s.cluster[p] == -1 {
			continue
		}
		arrive := s.st[p] + s.g.Weight(p)
		if s.cluster[p] != c {
			arrive += ws[j]
		}
		if arrive > t {
			t = arrive
		}
	}
	return t
}

// bestParentCluster returns the parent cluster minimizing ST(c, v), or
// ok == false when v has no scheduled predecessors.
func (s *state) bestParentCluster(v dag.NodeID) (int, bool) {
	best, ok := -1, false
	var bt int64
	s.markEp++
	preds, _ := s.csr.Preds(v)
	for _, p := range preds {
		c := s.cluster[p]
		if c == -1 || s.mark[c] == s.markEp {
			continue
		}
		s.mark[c] = s.markEp
		t := s.startOn(c, v)
		if !ok || t < bt || (t == bt && c < best) {
			best, bt, ok = c, t, true
		}
	}
	return best, ok
}

// ct2 checks the paper's warranty for the top partially free node ny:
// for every scheduled parent cluster of ny, the start time ny would get
// there must not exceed ny's startbound — evaluated as if nx had
// already been appended to cluster c.
func (s *state) ct2(c int, nx, ny dag.NodeID) bool {
	bound := s.startBound(ny)
	newFreeC := s.startOn(c, nx) + s.g.Weight(nx)
	s.markEp++
	preds, _ := s.csr.Preds(ny)
	for _, p := range preds {
		ci := s.cluster[p]
		if ci == -1 || s.mark[ci] == s.markEp {
			continue
		}
		s.mark[ci] = s.markEp
		st := s.startOn(ci, ny)
		if ci == c && newFreeC > st {
			st = newFreeC
		}
		if st > bound {
			return false
		}
	}
	return true
}

// place commits v to cluster c (or a new cluster when c < 0).
func (s *state) place(v dag.NodeID, c int) {
	merged := c >= 0
	if c < 0 {
		c = len(s.members)
		s.members = append(s.members, nil)
		s.free = append(s.free, 0)
	}
	start := s.startOn(c, v)
	s.cluster[v] = c
	s.st[v] = start
	s.free[c] = start + s.g.Weight(v)
	s.members[c] = append(s.members[c], v)
	succs, _ := s.csr.Succs(v)
	for _, to := range succs {
		s.nsched[to]++
	}
	// A fresh cluster zeroes no edges, so levels are untouched; a
	// merge zeroes the edges from v's cluster-c predecessors.
	// (inHeap is nil on the full-recompute path, which refreshes all
	// levels at the top of each round instead.)
	if merged && s.inHeap != nil {
		s.refreshCone(v, c)
	}
}
