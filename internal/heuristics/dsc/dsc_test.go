package dsc

import (
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	// On the appendix example DSC finds the same two-processor
	// schedule as CLANS: parallel time 130 (golden value recorded from
	// this implementation and equal to the graph's best known
	// schedule).
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != 130 {
		t.Errorf("makespan = %d, want 130", sc.Makespan)
	}
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
}

func TestZeroesHeavyEdge(t *testing.T) {
	// Two-node chain with an enormous edge: DSC must put both tasks in
	// one cluster (zero the edge).
	g := dag.New("heavy")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 1000)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 1 {
		t.Errorf("procs = %d, want 1 (edge should be zeroed)", sc.NumProcs)
	}
	if sc.Makespan != 20 {
		t.Errorf("makespan = %d, want 20", sc.Makespan)
	}
}

func TestKeepsCheapForkParallel(t *testing.T) {
	// Fork into two heavy tasks over cheap edges: separate clusters
	// win.
	g := dag.New("cheap-fork")
	a := g.AddNode(10)
	b := g.AddNode(100)
	c := g.AddNode(100)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
	if sc.Makespan != 111 {
		t.Errorf("makespan = %d, want 111 (10 + 1 + 100)", sc.Makespan)
	}
}

func TestJoinPicksMinStartCluster(t *testing.T) {
	// Join with one heavy and one light incoming edge: the join should
	// land in the cluster that minimizes its start time (the one
	// feeding it the expensive message).
	g := dag.New("join")
	a := g.AddNode(50)
	b := g.AddNode(50)
	j := g.AddNode(10)
	g.MustAddEdge(a, j, 100) // expensive from a
	g.MustAddEdge(b, j, 1)   // cheap from b
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.ByNode[j].Proc != sc.ByNode[a].Proc {
		t.Errorf("join on proc %d, want with its expensive parent on %d",
			sc.ByNode[j].Proc, sc.ByNode[a].Proc)
	}
	// Start = max(finish(a), finish(b)+1) = max(50, 51) = 51.
	if sc.ByNode[j].Start != 51 {
		t.Errorf("join start = %d, want 51", sc.ByNode[j].Start)
	}
}

func TestLinearClusterOrder(t *testing.T) {
	// Within a cluster tasks must appear in a precedence-compatible
	// order (Build would fail otherwise); exercise via a ladder graph.
	g := dag.New("ladder")
	var prev dag.NodeID = -1
	for i := 0; i < 10; i++ {
		v := g.AddNode(5)
		if prev >= 0 {
			g.MustAddEdge(prev, v, 50)
		}
		prev = v
	}
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 1 || sc.Makespan != 50 {
		t.Errorf("chain: %d procs makespan %d, want 1 proc 50", sc.NumProcs, sc.Makespan)
	}
}
