package dsc

import (
	"fmt"
	"math/rand"
	"testing"

	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"
)

// canon serializes a placement so byte equality means identical
// scheduling decisions (processor assignment and per-cluster order).
func canon(pl *sched.Placement) string {
	return fmt.Sprintf("proc=%v order=%v", pl.Proc, pl.Order)
}

// requireSamePlacement schedules g with both the incremental DSC and
// the full-recompute reference and fails on any divergence.
func requireSamePlacement(t *testing.T, g *dag.Graph, label string) {
	t.Helper()
	fast, err := New().Schedule(g)
	if err != nil {
		t.Fatalf("%s: incremental: %v", label, err)
	}
	slow, err := newFullRecompute().Schedule(g)
	if err != nil {
		t.Fatalf("%s: full recompute: %v", label, err)
	}
	if a, b := canon(fast), canon(slow); a != b {
		t.Fatalf("%s: incremental and full-recompute DSC diverge\n incremental: %s\n reference:   %s", label, a, b)
	}
}

// TestIncrementalMatchesFullRecompute is the golden equivalence suite:
// the incremental cone repair must reproduce the original whole-graph
// level refresh byte-for-byte across the paper worked example, the
// determinism corpus, dense random DAGs, and a reduced generated
// corpus covering all 60 classes.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	requireSamePlacement(t, paperex.Graph(), "paper worked example")

	for gi, g := range schedtest.DeterminismCorpus(t, 20260805) {
		requireSamePlacement(t, g, fmt.Sprintf("determinism corpus graph %d (%s)", gi, g.Name()))
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		n := 5 + rng.Intn(60)
		g := schedtest.RandomDAG(rng, n, 0.15+0.5*rng.Float64())
		requireSamePlacement(t, g, fmt.Sprintf("random DAG %d (n=%d)", i, n))
	}

	spec := corpus.Spec{Seed: 7, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 56}
	c, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range c.Sets {
		for _, g := range set.Graphs {
			requireSamePlacement(t, g, "corpus "+set.Class.String()+" "+g.Name())
		}
	}
}

// TestIncrementalLevelInvariant hammers the internal invariant
// directly: after every placement the incrementally maintained levels
// must equal a from-scratch recomputation over the current cluster
// assignment.
func TestIncrementalLevelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := schedtest.RandomDAG(rng, 4+rng.Intn(40), 0.3)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos, err := g.TopoPositions()
		if err != nil {
			t.Fatal(err)
		}
		bl, err := g.BLevels()
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		s := &state{
			g:       g,
			csr:     g.CSR(),
			cluster: make([]int, n),
			st:      make([]int64, n),
			nsched:  make([]int, n),
			level:   make([]int64, n),
			mark:    make([]int32, n),
			pos:     pos,
			inHeap:  make([]bool, n),
		}
		for i := range s.cluster {
			s.cluster[i] = -1
		}
		copy(s.level, bl)

		ref := &state{g: g, csr: g.CSR(), cluster: s.cluster, level: make([]int64, n)}
		for scheduled := 0; scheduled < n; scheduled++ {
			nx := s.topFree()
			target := -1
			// Exercise merges aggressively: always merge when CT1
			// alone allows it, regardless of the CT2 policy, so the
			// cone repair runs on many more edge-zeroing rounds than
			// the real algorithm would trigger.
			if c, ok := s.bestParentCluster(nx); ok && s.startOn(c, nx) <= s.startBound(nx) {
				target = c
			}
			s.place(nx, target)
			ref.recomputeLevels(order)
			for v := 0; v < n; v++ {
				if s.level[v] != ref.level[v] {
					t.Fatalf("trial %d: after placing %d levels diverge at node %d: incremental %d, recompute %d",
						trial, nx, v, s.level[v], ref.level[v])
				}
			}
		}
	}
}
