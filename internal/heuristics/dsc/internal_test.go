package dsc

import (
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/paperex"
)

func newState(t *testing.T, g *dag.Graph) (*state, []dag.NodeID) {
	t.Helper()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	s := &state{
		g:       g,
		csr:     g.CSR(),
		cluster: make([]int, n),
		st:      make([]int64, n),
		nsched:  make([]int, n),
		level:   make([]int64, n),
		mark:    make([]int32, n),
	}
	for i := range s.cluster {
		s.cluster[i] = -1
	}
	s.recomputeLevels(order)
	return s, order
}

func TestInitialLevelsMatchBLevels(t *testing.T) {
	g := paperex.Graph()
	s, _ := newState(t, g)
	want := []int64{150, 74, 135, 95, 50} // paper Figure 14
	for i, w := range want {
		if s.level[i] != w {
			t.Errorf("level(%d) = %d, want %d", i+1, s.level[i], w)
		}
	}
}

func TestLevelsDropAfterZeroing(t *testing.T) {
	g := paperex.Graph()
	s, order := newState(t, g)
	// Put nodes 3 and 4 (IDs 2,3) in the same cluster: the 10-weight
	// edge between them is zeroed, so level(3) falls from 135 to 125
	// and level(1) from 150 to 140.
	s.cluster[2] = 0
	s.cluster[3] = 0
	s.recomputeLevels(order)
	if s.level[2] != 125 {
		t.Errorf("level(3) after zeroing = %d, want 125", s.level[2])
	}
	if s.level[0] != 140 {
		t.Errorf("level(1) after zeroing = %d, want 140", s.level[0])
	}
}

func TestStartBoundAndPriority(t *testing.T) {
	g := paperex.Graph()
	s, _ := newState(t, g)
	// Before anything is scheduled, every node's startbound is 0 and
	// priority equals its level; node 1 (ID 0) tops the free list.
	if got := s.startBound(0); got != 0 {
		t.Errorf("startBound = %d, want 0", got)
	}
	if top := s.topFree(); top != 0 {
		t.Errorf("topFree = %d, want 0", top)
	}
	// Schedule node 1 on a fresh cluster at time 0.
	s.place(0, -1)
	if s.st[0] != 0 || s.free[0] != 10 {
		t.Fatalf("place: st=%d free=%v", s.st[0], s.free)
	}
	// Node 2 (ID 1): startbound = finish(1) + edge = 10 + 5 = 15.
	if got := s.startBound(1); got != 15 {
		t.Errorf("startBound(2) = %d, want 15", got)
	}
	// startOn cluster 0 zeroes the edge: max(free=10, 10+0) = 10.
	if got := s.startOn(0, 1); got != 10 {
		t.Errorf("startOn(c0, 2) = %d, want 10", got)
	}
}

func TestFreeAndPartialFreeClassification(t *testing.T) {
	g := dag.New("classify")
	a := g.AddNode(10)
	b := g.AddNode(10)
	j := g.AddNode(10)
	g.MustAddEdge(a, j, 5)
	g.MustAddEdge(b, j, 5)
	s, _ := newState(t, g)
	if !s.isFree(a) || !s.isFree(b) {
		t.Error("sources should be free")
	}
	if s.isFree(j) || s.isPartialFree(j) {
		t.Error("join with no scheduled preds is neither free nor partially free")
	}
	s.place(a, -1)
	if !s.isPartialFree(j) {
		t.Error("join should be partially free after one pred scheduled")
	}
	s.place(b, -1)
	if !s.isFree(j) {
		t.Error("join should be free after all preds scheduled")
	}
	if s.isPartialFree(j) {
		t.Error("free node must not also be partially free")
	}
}

func TestBestParentClusterPicksMinStart(t *testing.T) {
	g := dag.New("pick")
	a := g.AddNode(50) // finishes at 50
	b := g.AddNode(10) // finishes at 10
	j := g.AddNode(10)
	g.MustAddEdge(a, j, 100) // via a: on a's cluster start max(50, 10+100)=...
	g.MustAddEdge(b, j, 1)
	s, _ := newState(t, g)
	s.place(a, -1) // cluster 0, finish 50
	s.place(b, -1) // cluster 1, finish 10
	// startOn(c0, j) = max(50, arrive from b = 10+1 = 11) = 50.
	// startOn(c1, j) = max(10, arrive from a = 50+100 = 150) = 150.
	c, ok := s.bestParentCluster(j)
	if !ok || c != 0 {
		t.Errorf("bestParentCluster = %d,%v, want cluster 0", c, ok)
	}
}
