// Package etf implements the Earliest Task First list scheduler
// (Hwang, Chow, Anger & Lee). Where MH allocates the highest-level
// ready task first and then picks its best processor, ETF examines
// every (ready task, processor) pair and commits the globally earliest
// start, breaking ties toward the higher level. The paper invites
// "heuristics developed by all other research teams that use execution
// and architectural models similar to [those] described here" into the
// testbed; ETF is the most cited such candidate.
package etf

import (
	"context"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("ETF", func() heuristics.Scheduler { return New() })
}

// ETF is the scheduler. MaxProcs bounds the machine (0 = unbounded).
type ETF struct {
	MaxProcs int
}

// New returns an ETF scheduler on an unbounded machine.
func New() *ETF { return &ETF{} }

// Name implements heuristics.Scheduler.
func (e *ETF) Name() string { return "ETF" }

// Schedule implements heuristics.Scheduler.
func (e *ETF) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return e.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per committed task.
func (e *ETF) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}
	missing := make([]int, n)
	ready := make([]dag.NodeID, 0, n)
	for v := 0; v < n; v++ {
		missing[v] = g.InDegree(dag.NodeID(v))
		if missing[v] == 0 {
			ready = append(ready, dag.NodeID(v))
		}
	}
	proc := make([]int, n)
	finish := make([]int64, n)
	var procFree []int64

	for len(ready) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestI, bestP := -1, -1
		var bestStart int64
		cand := len(procFree)
		if e.MaxProcs == 0 || cand < e.MaxProcs {
			cand++
		}
		for ri, v := range ready {
			for p := 0; p < cand; p++ {
				var start int64
				if p < len(procFree) {
					start = procFree[p]
				}
				for _, a := range g.Preds(v) {
					t := finish[a.To]
					if proc[a.To] != p {
						t += a.Weight
					}
					if t > start {
						start = t
					}
				}
				better := bestI == -1 || start < bestStart
				if !better && start == bestStart && ri != bestI {
					prev := ready[bestI]
					if level[v] != level[prev] {
						better = level[v] > level[prev]
					} else {
						better = v < prev
					}
				}
				if better {
					bestI, bestP, bestStart = ri, p, start
				}
			}
		}
		v := ready[bestI]
		ready = append(ready[:bestI], ready[bestI+1:]...)
		if bestP == len(procFree) {
			procFree = append(procFree, 0)
		}
		proc[v] = bestP
		finish[v] = bestStart + g.Weight(v)
		procFree[bestP] = finish[v]
		pl.Assign(v, bestP)
		for _, a := range g.Succs(v) {
			missing[a.To]--
			if missing[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	return pl, nil
}
