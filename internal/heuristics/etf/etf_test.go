package etf

import (
	"math/rand"
	"testing"

	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	// ETF finds the same two-processor 130 schedule the other
	// earliest-start methods find (golden value of this
	// implementation; equal to the known optimum).
	sc := schedtest.BuildAndValidate(t, New(), paperex.Graph())
	if sc.Makespan != 130 {
		t.Errorf("makespan = %d, want 130", sc.Makespan)
	}
}

func TestMaxProcsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := schedtest.RandomDAG(rng, 40, 0.1)
	sc := schedtest.BuildAndValidate(t, &ETF{MaxProcs: 3}, g)
	if sc.NumProcs > 3 {
		t.Errorf("procs = %d, bound 3", sc.NumProcs)
	}
}

func TestGlobalEarliestStartOrder(t *testing.T) {
	// Two ready tasks: low-level task can start at 0 on a fresh
	// processor, high-level task also at 0. ETF commits by earliest
	// start with level tiebreak; both start at 0 — the higher-level
	// one must land on processor 0 (committed first).
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.ByNode[0].Proc != 0 || sc.ByNode[0].Start != 0 {
		t.Errorf("root not committed first: %+v", sc.ByNode[0])
	}
}

func TestRegistered(t *testing.T) {
	if _, err := heuristics.New("ETF"); err != nil {
		t.Fatal(err)
	}
}
