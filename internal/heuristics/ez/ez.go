// Package ez implements Sarkar's Edge Zeroing clustering heuristic
// (reference [1] of the paper, the work whose granularity definition
// §3.1 extends). Edges are visited in decreasing weight order; each
// edge's endpoint clusters are tentatively merged, and the merge is
// kept only if the estimated parallel time does not increase. Clusters
// become processors.
//
// The parallel-time estimate orders each cluster by descending
// communication-weighted level (a topologically consistent order,
// since a predecessor's level strictly exceeds its successors') and
// replays the common greedy timing model.
package ez

import (
	"context"
	"sort"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("EZ", func() heuristics.Scheduler { return New() })
}

// EZ is the scheduler. The zero value is ready to use.
type EZ struct{}

// New returns an EZ scheduler.
func New() *EZ { return &EZ{} }

// Name implements heuristics.Scheduler.
func (e *EZ) Name() string { return "EZ" }

// find resolves x's cluster root with path compression local to p.
func find(p []int, x int) int {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// Schedule implements heuristics.Scheduler.
func (e *EZ) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return e.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per examined edge (each trial merge
// replays the full timing model, the algorithm's dominant step).
func (e *EZ) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	if n == 0 {
		return sched.NewPlacement(0), nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}

	clusters := make([]int, n)
	for i := range clusters {
		clusters[i] = i
	}

	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})

	current, err := e.estimate(g, level, clusters)
	if err != nil {
		return nil, err
	}
	for _, edge := range edges {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ra, rb := find(clusters, int(edge.From)), find(clusters, int(edge.To))
		if ra == rb {
			continue // already zeroed transitively
		}
		// Trial merge on a copy: undoing a union under path
		// compression is error-prone, cloning is cheap at these sizes.
		trial := append([]int(nil), clusters...)
		trial[ra] = rb
		merged, err := e.estimate(g, level, trial)
		if err != nil {
			return nil, err
		}
		if merged <= current {
			current = merged
			clusters = trial
		}
	}
	return e.placement(g, level, clusters), nil
}

// placement lays each cluster on its own processor, ordered by
// descending level (ties to the smaller ID).
func (e *EZ) placement(g *dag.Graph, level []int64, clusters []int) *sched.Placement {
	n := g.NumNodes()
	byRoot := map[int][]dag.NodeID{}
	var roots []int
	for v := 0; v < n; v++ {
		r := find(clusters, v)
		if len(byRoot[r]) == 0 {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], dag.NodeID(v))
	}
	sort.Ints(roots)
	pl := sched.NewPlacement(n)
	// The comparator is hoisted out of the loop (capturing the shared
	// members variable) so each cluster sort reuses one function value.
	var members []dag.NodeID
	byLevel := func(i, j int) bool {
		if level[members[i]] != level[members[j]] {
			return level[members[i]] > level[members[j]]
		}
		return members[i] < members[j]
	}
	for pi, r := range roots {
		members = byRoot[r]
		sort.Slice(members, byLevel)
		for _, v := range members {
			pl.Assign(v, pi)
		}
	}
	return pl
}

// estimate returns the parallel time of the clustering.
func (e *EZ) estimate(g *dag.Graph, level []int64, clusters []int) (int64, error) {
	s, err := sched.Build(g, e.placement(g, level, clusters))
	if err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	return s.Makespan, nil
}
