// Package ez implements Sarkar's Edge Zeroing clustering heuristic
// (reference [1] of the paper, the work whose granularity definition
// §3.1 extends). Edges are visited in decreasing weight order; each
// edge's endpoint clusters are tentatively merged, and the merge is
// kept only if the estimated parallel time does not increase. Clusters
// become processors.
//
// The parallel-time estimate orders each cluster by descending
// communication-weighted level (a topologically consistent order,
// since a predecessor's level strictly exceeds its successors') and
// replays the common greedy timing model.
//
// Estimator. Every cluster queue is the restriction of one global
// (level desc, id asc) order to the cluster's members, for every
// clustering the algorithm can reach. Under that queue discipline the
// greedy timing model has a closed form: finish(v) = weight(v) +
// max(finish(queue predecessor), max over preds u of finish(u) + comm),
// and because node weights are strictly positive, level(u) > level(v)
// for every edge u→v, so both kinds of dependency point backward in
// the global order and one forward sweep solves the recurrence. A
// trial merge therefore does not rescan the graph: it re-times the two
// affected clusters and propagates along graph edges and queue links
// only while finish times actually change (a min-heap keyed by global
// rank keeps the cone in order), reading everything else from the
// committed timing. The full-rescan estimator is retained behind
// newFullRescan as the oracle the incremental one is tested against.
package ez

import (
	"context"
	"sort"

	"schedcomp/internal/arena"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("EZ", func() heuristics.Scheduler { return New() })
}

// EZ is the scheduler. The zero value is ready to use.
type EZ struct {
	// fullRescan switches to the retained full-rescan estimator (one
	// sched.Build per trial merge). Kept as the oracle for the
	// incremental estimator's equivalence test.
	fullRescan bool
	// estLog, when non-nil, records the initial estimate followed by
	// the trial estimate of every examined edge, in examination order.
	// Test hook: the oracle test compares the two estimators' logs.
	estLog *[]int64
}

// New returns an EZ scheduler.
func New() *EZ { return &EZ{} }

// newFullRescan returns an EZ that estimates by full rescan. Oracle
// for tests; behaviourally identical to the incremental estimator.
func newFullRescan() *EZ { return &EZ{fullRescan: true} }

// Name implements heuristics.Scheduler.
func (e *EZ) Name() string { return "EZ" }

// find resolves x's cluster root with path compression local to p.
//
//lint:boundedidx parent entries only ever hold node indexes in [0,n)
func find(p []int, x int) int {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// Schedule implements heuristics.Scheduler.
func (e *EZ) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return e.ScheduleContext(context.Background(), g)
}

// sortedEdges returns the graph's edges in EZ's examination order:
// decreasing weight, ties toward the smaller (From, To) pair.
func sortedEdges(g *dag.Graph) []dag.Edge {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per examined edge.
func (e *EZ) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	if e.fullRescan {
		return e.scheduleFullRescan(ctx, g)
	}
	n := g.NumNodes()
	if n == 0 {
		return sched.NewPlacement(0), nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}

	scratch := arena.Get()
	defer scratch.Release()
	st := newState(g, level, scratch)
	current := st.initialTiming()
	if e.estLog != nil {
		*e.estLog = append(*e.estLog, current)
	}
	for _, edge := range sortedEdges(g) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ra, rb := find(st.parent, int(edge.From)), find(st.parent, int(edge.To)) //lint:boundedidx edge endpoints are node IDs in [0,n)
		if ra == rb {
			continue // already zeroed transitively
		}
		merged := st.trial(ra, rb)
		if e.estLog != nil {
			*e.estLog = append(*e.estLog, merged)
		}
		if merged <= current {
			current = merged
			st.commit(ra, rb)
		}
	}
	return st.placement(), nil
}

// state is the incremental estimator: the committed clustering with
// its exact greedy timing, plus an epoch-stamped overlay that prices a
// trial merge without touching the committed arrays. All of it lives
// in pooled arena scratch for the duration of one Schedule call.
type state struct {
	g   *dag.Graph
	csr *dag.CSR
	n   int

	ord  []dag.NodeID // all nodes, (level desc, id asc)
	rank []int32      // rank[v] = position of v in ord

	parent []int // union-find over committed merges; rb survives

	// Committed cluster chains in global order: qprev/qnext link each
	// cluster's members, head/tail index the ends per live root.
	qprev, qnext []int32
	head, tail   []int32

	roots   []int32 // live roots, unordered (swap-removed on merge)
	rootPos []int32 // position of each live root in roots

	fin []int64 // committed finish time of every node

	// Trial overlay. Epoch stamps make every trial O(cone) with no
	// clearing: a slot is live only when its stamp equals epoch.
	epoch   int32
	tf      []int64 // trial finish
	tfEp    []int32
	member  []int32      // stamp: node is in one of the two merging clusters
	inHeap  []int32      // stamp: rank already pushed this trial
	heap    []int32      // min-heap of ranks → retime in global order
	touched []dag.NodeID // nodes stamped this trial, for commit
}

// Every index used by the state methods is a NodeID or a rank in
// [0,n) by construction — ord is a permutation of the node IDs, the
// chain links and root arrays only ever store committed NodeIDs, and
// every state slice is carved at length n — but the slices come out of
// arena scratch, so the proof is beyond the compiler.
//
//lint:boundedidx indexes are NodeIDs/ranks in [0,n), slices carved at n
func newState(g *dag.Graph, level []int64, sc *arena.Scratch) *state {
	n := g.NumNodes()
	st := &state{
		g:       g,
		csr:     g.CSR(),
		n:       n,
		ord:     sc.NodeIDs(n),
		rank:    sc.Int32s(n),
		parent:  sc.Ints(n),
		qprev:   sc.Int32s(n),
		qnext:   sc.Int32s(n),
		head:    sc.Int32s(n),
		tail:    sc.Int32s(n),
		roots:   sc.Int32s(n),
		rootPos: sc.Int32s(n),
		fin:     sc.Int64s(n),
		tf:      sc.Int64s(n),
		tfEp:    sc.Int32s(n),
		member:  sc.Int32s(n),
		inHeap:  sc.Int32s(n),
		heap:    sc.Int32s(n)[:0],
		touched: sc.NodeIDs(n)[:0],
	}
	for i := range st.ord {
		st.ord[i] = dag.NodeID(i)
	}
	sort.Slice(st.ord, func(i, j int) bool {
		if level[st.ord[i]] != level[st.ord[j]] {
			return level[st.ord[i]] > level[st.ord[j]]
		}
		return st.ord[i] < st.ord[j]
	})
	for i, v := range st.ord {
		st.rank[v] = int32(i)
	}
	for v := 0; v < n; v++ {
		st.parent[v] = v
		st.qprev[v] = -1
		st.qnext[v] = -1
		st.head[v] = int32(v)
		st.tail[v] = int32(v)
		st.roots[v] = int32(v)
		st.rootPos[v] = int32(v)
	}
	return st
}

// initialTiming times the all-singletons clustering (no queue
// predecessors, every edge pays its communication weight) and returns
// its makespan.
//
//lint:boundedidx indexes are NodeIDs in [0,n), slices carved at n
func (s *state) initialTiming() int64 {
	var ms int64
	for _, v := range s.ord {
		var start int64
		preds, ws := s.csr.Preds(v)
		for j, u := range preds {
			if t := s.fin[u] + ws[j]; t > start {
				start = t
			}
		}
		s.fin[v] = start + s.g.Weight(v)
		if s.fin[v] > ms {
			ms = s.fin[v]
		}
	}
	return ms
}

// finOf reads a node's finish time through the trial overlay.
func (s *state) finOf(v dag.NodeID) int64 {
	if s.tfEp[v] == s.epoch {
		return s.tf[v]
	}
	return s.fin[v]
}

// trialRoot is the clustering's root map under the pending ra→rb merge.
func (s *state) trialRoot(x, ra, rb int) int {
	if r := find(s.parent, x); r != ra {
		return r
	}
	return rb
}

// push schedules node v for retiming this trial (deduplicated).
//
//lint:boundedidx heap indexes stay below len(h); ranks are in [0,n)
func (s *state) push(v dag.NodeID) {
	if s.inHeap[v] == s.epoch {
		return
	}
	s.inHeap[v] = s.epoch
	h := append(s.heap, s.rank[v])
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.heap = h
}

// pop removes and returns the smallest pending rank.
//
//lint:boundedidx child/parent heap indexes are guarded against len(h)
func (s *state) pop() int32 {
	h := s.heap
	r := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	if len(h) > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= len(h) {
				break
			}
			if rc := c + 1; rc < len(h) && h[rc] < h[c] {
				c = rc
			}
			if last <= h[c] {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	s.heap = h
	return r
}

// trial prices merging the clusters rooted at ra and rb and returns
// the resulting makespan, leaving the committed state untouched. It
// seeds the retiming heap with both clusters' members and then chases
// the change cone: a node is re-timed only if a predecessor's finish,
// its queue predecessor's finish, or one of its communication costs
// may have changed, and propagation stops wherever the recomputed
// finish equals the committed one.
//
//lint:boundedidx indexes are NodeIDs/ranks in [0,n), slices carved at n
func (s *state) trial(ra, rb int) int64 {
	s.epoch++
	s.heap = s.heap[:0]
	s.touched = s.touched[:0]
	for x := s.head[ra]; x != -1; x = s.qnext[x] {
		s.member[x] = s.epoch
		s.push(dag.NodeID(x))
	}
	for x := s.head[rb]; x != -1; x = s.qnext[x] {
		s.member[x] = s.epoch
		s.push(dag.NodeID(x))
	}

	lastMerged := dag.NodeID(-1) // most recently re-timed member: v's trial queue predecessor
	for len(s.heap) > 0 {
		v := s.ord[s.pop()]
		isMember := s.member[v] == s.epoch
		var start int64
		if isMember {
			if lastMerged >= 0 {
				start = s.finOf(lastMerged)
			}
		} else if p := s.qprev[v]; p >= 0 {
			start = s.finOf(dag.NodeID(p))
		}
		rv := s.trialRoot(int(v), ra, rb)
		preds, ws := s.csr.Preds(v)
		for j, u := range preds {
			t := s.finOf(u)
			if s.trialRoot(int(u), ra, rb) != rv {
				t += ws[j]
			}
			if t > start {
				start = t
			}
		}
		f := start + s.g.Weight(v)
		if isMember {
			lastMerged = v
		}
		if f == s.fin[v] {
			continue // unchanged: nothing downstream can move through v
		}
		s.tf[v] = f
		s.tfEp[v] = s.epoch
		s.touched = append(s.touched, v)
		succs, _ := s.csr.Succs(v)
		for _, t := range succs {
			s.push(t)
		}
		// Members' queue successors are members too (same committed
		// chain) and already seeded; only foreign chains need the push.
		if nx := s.qnext[v]; nx >= 0 {
			s.push(dag.NodeID(nx))
		}
	}

	// Finish times grow along every queue, so the makespan is the max
	// over live cluster tails; the merged tail is whichever of the two
	// old tails comes later in global order.
	mergedTail := s.tail[ra]
	if s.rank[s.tail[rb]] > s.rank[mergedTail] {
		mergedTail = s.tail[rb]
	}
	var ms int64
	for _, r := range s.roots {
		t := s.tail[r]
		switch int(r) {
		case ra:
			continue
		case rb:
			t = mergedTail
		}
		if f := s.finOf(dag.NodeID(t)); f > ms {
			ms = f
		}
	}
	return ms
}

// commit applies the most recent trial: overlay finish times become
// committed, the two chains are merged in global order, and ra's
// cluster is absorbed into rb's.
//
//lint:boundedidx indexes are NodeIDs/root positions in [0,n)
func (s *state) commit(ra, rb int) {
	for _, v := range s.touched {
		s.fin[v] = s.tf[v]
	}
	a, b := s.head[ra], s.head[rb]
	var h, t int32 = -1, -1
	for a != -1 || b != -1 {
		var x int32
		if b == -1 || (a != -1 && s.rank[a] < s.rank[b]) {
			x, a = a, s.qnext[a]
		} else {
			x, b = b, s.qnext[b]
		}
		if t == -1 {
			h = x
		} else {
			s.qnext[t] = x
		}
		s.qprev[x] = t
		t = x
	}
	s.qnext[t] = -1
	s.head[rb], s.tail[rb] = h, t
	s.parent[ra] = rb
	i := s.rootPos[ra]
	lastRoot := s.roots[len(s.roots)-1]
	s.roots[i] = lastRoot
	s.rootPos[lastRoot] = i
	s.roots = s.roots[:len(s.roots)-1]
}

// placement lays each committed cluster on its own processor, roots in
// ascending ID order, members in chain (level desc, id asc) order —
// the identical layout the full-rescan placement computes by sorting.
//
//lint:boundedidx chain links only hold NodeIDs in [0,n)
func (s *state) placement() *sched.Placement {
	sort.Slice(s.roots, func(i, j int) bool { return s.roots[i] < s.roots[j] })
	pl := sched.NewPlacement(s.n)
	for pi, r := range s.roots {
		for v := s.head[r]; v != -1; v = s.qnext[v] {
			pl.Assign(dag.NodeID(v), pi)
		}
	}
	return pl
}

// scheduleFullRescan is the pre-incremental implementation: every
// trial merge rebuilds a placement and replays the full timing model.
// Retained as the estimator oracle; only the oracle tests and an
// explicit newFullRescan construction reach it.
//
//lint:coldescape cold oracle path, never on the production schedule route
func (e *EZ) scheduleFullRescan(ctx context.Context, g *dag.Graph) (*sched.Placement, error) { //lint:boundedidx cold oracle path, indexes are node IDs in [0,n)
	n := g.NumNodes()
	if n == 0 {
		return sched.NewPlacement(0), nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}

	clusters := make([]int, n)
	for i := range clusters {
		clusters[i] = i
	}

	current, err := e.estimate(g, level, clusters)
	if err != nil {
		return nil, err
	}
	if e.estLog != nil {
		*e.estLog = append(*e.estLog, current)
	}
	for _, edge := range sortedEdges(g) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ra, rb := find(clusters, int(edge.From)), find(clusters, int(edge.To))
		if ra == rb {
			continue // already zeroed transitively
		}
		// Trial merge on a copy: undoing a union under path
		// compression is error-prone, cloning is cheap at these sizes.
		trial := append([]int(nil), clusters...)
		trial[ra] = rb
		merged, err := e.estimate(g, level, trial)
		if err != nil {
			return nil, err
		}
		if e.estLog != nil {
			*e.estLog = append(*e.estLog, merged)
		}
		if merged <= current {
			current = merged
			clusters = trial
		}
	}
	return e.fullPlacement(g, level, clusters), nil
}

// fullPlacement lays each cluster on its own processor, ordered by
// descending level (ties to the smaller ID).
//
//lint:coldescape cold oracle path, never on the production schedule route
func (e *EZ) fullPlacement(g *dag.Graph, level []int64, clusters []int) *sched.Placement { //lint:boundedidx cold oracle path, indexes are node IDs in [0,n)
	n := g.NumNodes()
	byRoot := map[int][]dag.NodeID{}
	var roots []int
	for v := 0; v < n; v++ {
		r := find(clusters, v)
		if len(byRoot[r]) == 0 {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], dag.NodeID(v))
	}
	sort.Ints(roots)
	pl := sched.NewPlacement(n)
	// The comparator is hoisted out of the loop (capturing the shared
	// members variable) so each cluster sort reuses one function value.
	var members []dag.NodeID
	byLevel := func(i, j int) bool {
		if level[members[i]] != level[members[j]] {
			return level[members[i]] > level[members[j]]
		}
		return members[i] < members[j]
	}
	for pi, r := range roots {
		members = byRoot[r]
		sort.Slice(members, byLevel)
		for _, v := range members {
			pl.Assign(v, pi)
		}
	}
	return pl
}

// estimate returns the parallel time of the clustering (full rescan).
func (e *EZ) estimate(g *dag.Graph, level []int64, clusters []int) (int64, error) {
	s, err := sched.Build(g, e.fullPlacement(g, level, clusters))
	if err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	return s.Makespan, nil
}
