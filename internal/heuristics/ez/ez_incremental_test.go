package ez

import (
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"
)

// runLogged schedules g with e and returns the estimate log (initial
// estimate followed by every examined edge's trial estimate) and the
// placement.
func runLogged(t *testing.T, e *EZ, g *dag.Graph) ([]int64, *sched.Placement) {
	t.Helper()
	var log []int64
	e.estLog = &log
	pl, err := e.Schedule(g)
	if err != nil {
		t.Fatalf("%s schedule: %v", map[bool]string{true: "full-rescan", false: "incremental"}[e.fullRescan], err)
	}
	return log, pl
}

func samePlacement(a, b *sched.Placement) bool {
	if len(a.Proc) != len(b.Proc) || len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Proc {
		if a.Proc[i] != b.Proc[i] {
			return false
		}
	}
	for p := range a.Order {
		if len(a.Order[p]) != len(b.Order[p]) {
			return false
		}
		for i := range a.Order[p] {
			if a.Order[p][i] != b.Order[p][i] {
				return false
			}
		}
	}
	return true
}

// TestIncrementalMatchesFullRescan is the estimator oracle: on random
// graphs the incremental retimer must report the identical parallel
// time for the identical trial sequence — every estimate, not just the
// final one, since a single divergent estimate flips a merge decision
// and changes the schedule — and land on the identical placement.
func TestIncrementalMatchesFullRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(40)
		g := schedtest.RandomDAG(rng, n, 0.05+0.45*rng.Float64())
		fastLog, fastPl := runLogged(t, New(), g)
		slowLog, slowPl := runLogged(t, newFullRescan(), g)
		if len(fastLog) != len(slowLog) {
			t.Fatalf("trial %d (n=%d): %d incremental estimates, %d full-rescan",
				trial, n, len(fastLog), len(slowLog))
		}
		for i := range fastLog {
			if fastLog[i] != slowLog[i] {
				t.Fatalf("trial %d (n=%d): estimate %d of %d diverges: incremental %d, full-rescan %d",
					trial, n, i, len(fastLog), fastLog[i], slowLog[i])
			}
		}
		if !samePlacement(fastPl, slowPl) {
			t.Fatalf("trial %d (n=%d): placements diverge", trial, n)
		}
	}
}

// TestIncrementalMatchesFullRescanZeroComm forces zero-weight edges
// (free communication everywhere): every merge trial then estimates
// the same time and the tie-breaking path (merge kept on equality) is
// exercised on every edge.
func TestIncrementalMatchesFullRescanZeroComm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		g := dag.New("zero-comm")
		var nodes []dag.NodeID
		for i := 0; i < n; i++ {
			nodes = append(nodes, g.AddNode(int64(1+rng.Intn(9))))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.MustAddEdge(nodes[i], nodes[j], 0)
				}
			}
		}
		fastLog, fastPl := runLogged(t, New(), g)
		slowLog, slowPl := runLogged(t, newFullRescan(), g)
		for i := range fastLog {
			if fastLog[i] != slowLog[i] {
				t.Fatalf("trial %d: estimate %d diverges: incremental %d, full-rescan %d",
					trial, i, fastLog[i], slowLog[i])
			}
		}
		if !samePlacement(fastPl, slowPl) {
			t.Fatalf("trial %d: placements diverge", trial)
		}
	}
}

// TestFullRescanPaperExample pins the retained oracle itself to the
// hand-traced golden value, so the oracle cannot silently drift.
func TestFullRescanPaperExample(t *testing.T) {
	sc := schedtest.BuildAndValidate(t, newFullRescan(), paperex.Graph())
	if sc.Makespan != 135 {
		t.Errorf("makespan = %d, want 135", sc.Makespan)
	}
}
