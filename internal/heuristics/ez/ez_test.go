package ez

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	// EZ zeroes edges greedily by weight: 3→4 (10), then 1→2 (5), then
	// 4→5 (5), leaving clusters {1,2} and {3,4,5} at parallel time 135
	// — close to, but not at, the optimum of 130 (hand-traced golden
	// value; EZ's merge order cannot discover the 130 schedule).
	sc := schedtest.BuildAndValidate(t, New(), paperex.Graph())
	if sc.Makespan != 135 {
		t.Errorf("makespan = %d, want 135", sc.Makespan)
	}
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
}

// EZ's defining invariant: every accepted merge kept the estimated
// parallel time non-increasing, so the final schedule is never worse
// than the fully spread one (every task on its own processor).
func TestNeverWorseThanFullSpread(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := schedtest.RandomDAG(rng, 1+rng.Intn(35), 0.05+0.3*rng.Float64())
		sc, err := heuristics.Run(New(), g)
		if err != nil {
			return false
		}
		// Full spread baseline.
		spread, err := heuristics.Run(spreadScheduler{}, g)
		if err != nil {
			return false
		}
		return sc.Makespan <= spread.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroesHeaviestEdgeFirst(t *testing.T) {
	// A two-task chain with a huge edge must collapse to one cluster.
	g := dag.New("pair")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 1000)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 1 || sc.Makespan != 20 {
		t.Errorf("procs %d makespan %d, want 1/20", sc.NumProcs, sc.Makespan)
	}
}

func TestKeepsProfitableParallelism(t *testing.T) {
	g := dag.New("cheap-fork")
	a := g.AddNode(10)
	b := g.AddNode(100)
	c := g.AddNode(100)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
}

// spreadScheduler puts every task on its own processor — the state EZ
// starts from before any merge.
type spreadScheduler struct{}

func (spreadScheduler) Name() string { return "spread" }
func (spreadScheduler) Schedule(g *dag.Graph) (*sched.Placement, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	pl := sched.NewPlacement(g.NumNodes())
	for i, v := range order {
		pl.Assign(v, i)
	}
	return pl, nil
}
