// Package heuristics defines the Scheduler interface implemented by the
// five heuristics under comparison (CLANS, DSC, MCP, MH, HU) and a
// name-based registry used by the harness and the CLIs.
package heuristics

import (
	"fmt"
	"sort"
	"sync"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// Scheduler partitions and schedules a PDG, producing a placement
// (processor assignment and per-processor order). Timing is always
// computed afterwards by sched.Build so that every heuristic is
// evaluated under the identical execution model (paper §2).
//
// Implementations must be deterministic: the same graph must always
// produce the same placement.
type Scheduler interface {
	Name() string
	Schedule(g *dag.Graph) (*sched.Placement, error)
}

// Run schedules g with s, builds the timed schedule, and validates it
// against the execution model.
func Run(s Scheduler, g *dag.Graph) (*sched.Schedule, error) {
	pl, err := s.Schedule(g)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	sc, err := sched.Build(g, pl)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	return sc, nil
}

var (
	mu       sync.RWMutex
	registry = map[string]func() Scheduler{}
)

// Register installs a scheduler factory under its name. Each heuristic
// package registers itself in an init function; Register panics on a
// duplicate name, which is always a programming error.
func Register(name string, factory func() Scheduler) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("heuristics: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New returns a fresh scheduler instance by name.
func New(name string) (Scheduler, error) {
	mu.RLock()
	factory, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("heuristics: unknown scheduler %q (have %v)", name, Names())
	}
	return factory(), nil
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry { //lint:sorted
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperOrder is the column order used in every table of the paper.
var PaperOrder = []string{"CLANS", "DSC", "MCP", "MH", "HU"}

// All returns fresh instances of the five heuristics in the paper's
// column order. It panics if any of them is not linked in (the harness
// imports all five packages).
func All() []Scheduler {
	out := make([]Scheduler, 0, len(PaperOrder))
	for _, n := range PaperOrder {
		s, err := New(n)
		if err != nil {
			panic("heuristics: " + err.Error())
		}
		out = append(out, s)
	}
	return out
}
