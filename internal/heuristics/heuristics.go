// Package heuristics defines the Scheduler interface implemented by the
// five heuristics under comparison (CLANS, DSC, MCP, MH, HU) and a
// name-based registry used by the harness and the CLIs.
package heuristics

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
)

// Scheduler partitions and schedules a PDG, producing a placement
// (processor assignment and per-processor order). Timing is always
// computed afterwards by sched.Build so that every heuristic is
// evaluated under the identical execution model (paper §2).
//
// Implementations must be deterministic: the same graph must always
// produce the same placement.
type Scheduler interface {
	Name() string
	Schedule(g *dag.Graph) (*sched.Placement, error)
}

// ContextScheduler is implemented by schedulers that can abandon work
// cooperatively when the context is cancelled. Implementations poll
// ctx once per committed task (topo-order granularity), so a cancelled
// request stops burning CPU within one scheduling step rather than
// running the graph to completion. On cancellation they return ctx's
// error (context.Canceled or context.DeadlineExceeded), never a
// partial placement.
//
// Every heuristic in this module implements it; the interface stays
// optional so external Scheduler implementations keep working — they
// are then only cancellable at stage boundaries (see RunContext).
type ContextScheduler interface {
	ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error)
}

// runMetrics holds one heuristic's obs instruments. Per-heuristic
// labels are bounded by the registry of scheduler names, satisfying
// the obs cardinality rules.
type runMetrics struct {
	seconds      *obs.Histogram
	schedules    *obs.Counter
	cancelled    *obs.Counter
	failSchedule *obs.Counter
	failBuild    *obs.Counter
	failValidate *obs.Counter
}

// runMetricsCache maps heuristic name -> *runMetrics so the Run hot
// path does one lock-free load instead of a registry lookup.
var runMetricsCache sync.Map

func metricsFor(name string) *runMetrics {
	if m, ok := runMetricsCache.Load(name); ok {
		return m.(*runMetrics)
	}
	reg := obs.Default()
	heur := obs.L("heuristic", name)
	m := &runMetrics{
		seconds: reg.Histogram("sched_schedule_seconds",
			"Time to schedule, build and validate one graph.", obs.DefTimeBuckets, heur),
		schedules: reg.Counter("sched_schedules_total",
			"Validated schedules produced.", heur),
		cancelled: reg.Counter("sched_run_cancellations_total",
			"Runs abandoned because the context was cancelled or expired.", heur),
		failSchedule: reg.Counter("sched_run_failures_total",
			"Run failures by pipeline stage.", heur, obs.L("stage", "schedule")),
		failBuild: reg.Counter("sched_run_failures_total",
			"Run failures by pipeline stage.", heur, obs.L("stage", "build")),
		failValidate: reg.Counter("sched_run_failures_total",
			"Run failures by pipeline stage.", heur, obs.L("stage", "validate")),
	}
	// The registry lookups above are idempotent, so a racing
	// initializer builds an identical wrapper; keep whichever landed.
	got, _ := runMetricsCache.LoadOrStore(name, m)
	return got.(*runMetrics)
}

// Run schedules g with s, builds the timed schedule, and validates it
// against the execution model.
func Run(s Scheduler, g *dag.Graph) (*sched.Schedule, error) {
	return RunContext(context.Background(), s, g)
}

// IsCancellation reports whether err is a context cancellation or
// deadline error (possibly wrapped).
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunContext is Run under a cancellable context. Cancellation is
// cooperative: schedulers implementing ContextScheduler abandon work
// at topo-order granularity, plain Schedulers only between pipeline
// stages. A cancelled run returns ctx's error — satisfying
// errors.Is(err, context.Canceled) or context.DeadlineExceeded — and
// never a partial schedule. Cancellations are counted separately from
// failures: the heuristic did nothing wrong.
func RunContext(ctx context.Context, s Scheduler, g *dag.Graph) (*sched.Schedule, error) {
	m := metricsFor(s.Name())
	enabled := obs.Default().Enabled()
	var t0 time.Time
	if enabled {
		t0 = time.Now()
	}
	if err := ctx.Err(); err != nil {
		m.cancelled.Inc()
		return nil, err
	}
	var pl *sched.Placement
	var err error
	if cs, ok := s.(ContextScheduler); ok {
		pl, err = cs.ScheduleContext(ctx, g)
	} else {
		pl, err = s.Schedule(g)
	}
	if err != nil {
		if IsCancellation(err) {
			m.cancelled.Inc()
			return nil, err
		}
		m.failSchedule.Inc()
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	// A scheduler without context support runs to completion; drop its
	// placement here so an expired request never yields a result built
	// after its deadline.
	if err := ctx.Err(); err != nil {
		m.cancelled.Inc()
		return nil, err
	}
	sc, err := sched.Build(g, pl)
	if err != nil {
		m.failBuild.Inc()
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	if err := sc.Validate(); err != nil {
		m.failValidate.Inc()
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	if enabled {
		m.seconds.Observe(time.Since(t0).Seconds())
	}
	m.schedules.Inc()
	return sc, nil
}

var (
	mu       sync.RWMutex
	registry = map[string]func() Scheduler{}
)

// Register installs a scheduler factory under its name. Each heuristic
// package registers itself in an init function; Register panics on a
// duplicate name, which is always a programming error.
func Register(name string, factory func() Scheduler) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("heuristics: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New returns a fresh scheduler instance by name.
func New(name string) (Scheduler, error) {
	mu.RLock()
	factory, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("heuristics: unknown scheduler %q (have %v)", name, Names())
	}
	return factory(), nil
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry { //lint:sorted
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperOrder is the column order used in every table of the paper.
var PaperOrder = []string{"CLANS", "DSC", "MCP", "MH", "HU"}

// All returns fresh instances of the five heuristics in the paper's
// column order. It panics if any of them is not linked in (the harness
// imports all five packages).
func All() []Scheduler {
	out := make([]Scheduler, 0, len(PaperOrder))
	for _, n := range PaperOrder {
		s, err := New(n)
		if err != nil {
			panic("heuristics: " + err.Error())
		}
		out = append(out, s)
	}
	return out
}
