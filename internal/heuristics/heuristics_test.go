package heuristics_test

import (
	"strings"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

func TestNamesContainPaperFive(t *testing.T) {
	names := heuristics.Names()
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, want := range heuristics.PaperOrder {
		if !set[want] {
			t.Errorf("registry missing %s (have %v)", want, names)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	_, err := heuristics.New("NOPE")
	if err == nil {
		t.Fatal("expected error for unknown scheduler")
	}
	if !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("error should name the scheduler: %v", err)
	}
}

func TestAllReturnsPaperOrder(t *testing.T) {
	all := heuristics.All()
	if len(all) != 5 {
		t.Fatalf("All returned %d schedulers", len(all))
	}
	for i, want := range heuristics.PaperOrder {
		if all[i].Name() != want {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name(), want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	heuristics.Register("CLANS", nil)
}

func TestRunValidatesAndBuilds(t *testing.T) {
	g := paperex.Graph()
	for _, s := range heuristics.All() {
		sc, err := heuristics.Run(s, g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// badScheduler returns an invalid placement to prove Run rejects it.
type badScheduler struct{}

func (badScheduler) Name() string { return "bad" }
func (badScheduler) Schedule(g *dag.Graph) (*sched.Placement, error) {
	pl := sched.NewPlacement(g.NumNodes())
	// Leave everything unassigned.
	return pl, nil
}

func TestRunRejectsBadPlacement(t *testing.T) {
	g := paperex.Graph()
	if _, err := heuristics.Run(badScheduler{}, g); err == nil {
		t.Fatal("Run accepted an incomplete placement")
	}
}
