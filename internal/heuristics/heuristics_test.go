package heuristics_test

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"

	"schedcomp/internal/heuristics/schedtest"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dcp"
	_ "schedcomp/internal/heuristics/dls"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/ez"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
	_ "schedcomp/internal/heuristics/random"
)

func TestNamesContainPaperFive(t *testing.T) {
	names := heuristics.Names()
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, want := range heuristics.PaperOrder {
		if !set[want] {
			t.Errorf("registry missing %s (have %v)", want, names)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	_, err := heuristics.New("NOPE")
	if err == nil {
		t.Fatal("expected error for unknown scheduler")
	}
	if !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("error should name the scheduler: %v", err)
	}
}

func TestAllReturnsPaperOrder(t *testing.T) {
	all := heuristics.All()
	if len(all) != 5 {
		t.Fatalf("All returned %d schedulers", len(all))
	}
	for i, want := range heuristics.PaperOrder {
		if all[i].Name() != want {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name(), want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	heuristics.Register("CLANS", nil)
}

func TestRunValidatesAndBuilds(t *testing.T) {
	g := paperex.Graph()
	for _, s := range heuristics.All() {
		sc, err := heuristics.Run(s, g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// badScheduler returns an invalid placement to prove Run rejects it.
type badScheduler struct{}

func (badScheduler) Name() string { return "bad" }
func (badScheduler) Schedule(g *dag.Graph) (*sched.Placement, error) {
	pl := sched.NewPlacement(g.NumNodes())
	// Leave everything unassigned.
	return pl, nil
}

// TestAllRegisteredHeuristicsDeterministic is the dynamic twin of the
// schedlint static suite: every registered heuristic (all eleven, via
// the blank imports above) is run twice over a seeded corpus slice and
// must reproduce byte-identical placements.
func TestAllRegisteredHeuristicsDeterministic(t *testing.T) {
	if len(heuristics.Names()) < 11 {
		t.Fatalf("expected all 11 heuristics registered, have %v", heuristics.Names())
	}
	schedtest.RequireDeterministic(t)
}

// TestNamesSortedAndStable pins the mapiter fix in Names(): the
// registry is a map, so Names must sort after collecting and return
// the same slice on every call.
func TestNamesSortedAndStable(t *testing.T) {
	first := heuristics.Names()
	if !sort.StringsAreSorted(first) {
		t.Fatalf("Names() not sorted: %v", first)
	}
	for i := 0; i < 20; i++ {
		again := heuristics.Names()
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("Names() unstable: %v then %v", first, again)
		}
	}
}

func TestRunRejectsBadPlacement(t *testing.T) {
	g := paperex.Graph()
	if _, err := heuristics.Run(badScheduler{}, g); err == nil {
		t.Fatal("Run accepted an incomplete placement")
	}
}
