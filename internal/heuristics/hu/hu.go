// Package hu implements Lewis & El-Rewini's communication-extended
// version of Hu's classical list scheduling algorithm (Appendix A.4 of
// the paper).
//
// Each task's priority is its level (longest path to an exit node,
// including communication weights — the Lewis/El-Rewini modification).
// Tasks with no unscheduled predecessors sit in a free list ordered by
// priority; the first task goes to the first processor, and every
// subsequent task goes to the processor that is *available* earliest.
//
// Interpretation note (see DESIGN.md): the paper's Figure 13 is
// superficially close to MH, yet HU is by far the worst performer in
// every table of the paper — exactly the behaviour of the classical,
// communication-oblivious Hu placement rule, which ignores where the
// predecessors live when picking a processor. We therefore implement
// the placement choice as "earliest available processor" (on an
// unbounded machine this spreads tasks maximally), while the final
// timing — like every other heuristic — pays full communication costs.
// The comm-aware alternative and a bounded machine are available as
// knobs for the ablation benches.
package hu

import (
	"context"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/pq"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("HU", func() heuristics.Scheduler { return New() })
}

// Policy selects how HU picks a processor for the next task.
type Policy int

const (
	// EarliestAvailable picks the processor that becomes idle first,
	// ignoring communication (the classical Hu rule; default).
	EarliestAvailable Policy = iota
	// EarliestStart picks the processor on which the task can start
	// first, accounting for communication from predecessors (the
	// comm-aware ablation; this makes HU behave like a non-event-driven
	// MH).
	EarliestStart
)

// HU is the scheduler. The zero value uses the EarliestAvailable policy
// on an unbounded machine, matching the paper's results.
type HU struct {
	Policy Policy
	// MaxProcs bounds the machine size; 0 means unbounded.
	MaxProcs int
}

// New returns an HU scheduler in the paper's configuration.
func New() *HU { return &HU{} }

// Name implements heuristics.Scheduler.
func (h *HU) Name() string { return "HU" }

// Schedule implements heuristics.Scheduler.
func (h *HU) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return h.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per committed task.
func (h *HU) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}

	higher := func(a, b dag.NodeID) bool {
		if level[a] != level[b] {
			return level[a] > level[b]
		}
		return a < b
	}
	free := pq.New(higher)
	for _, v := range g.Sources() {
		free.Push(v)
	}

	proc := make([]int, n)
	finish := make([]int64, n)
	scheduledPreds := make([]int, n)
	var procFree []int64

	arrive := func(v dag.NodeID, p int) int64 {
		var t int64
		for _, a := range g.Preds(v) {
			at := finish[a.To]
			if proc[a.To] != p {
				at += a.Weight
			}
			if at > t {
				t = at
			}
		}
		return t
	}

	place := func(v dag.NodeID, p int) {
		if p == len(procFree) {
			procFree = append(procFree, 0)
		}
		start := arrive(v, p)
		if procFree[p] > start {
			start = procFree[p]
		}
		proc[v] = p
		finish[v] = start + g.Weight(v)
		procFree[p] = finish[v]
		pl.Assign(v, p)
		for _, a := range g.Succs(v) {
			scheduledPreds[a.To]++
			if scheduledPreds[a.To] == g.InDegree(a.To) {
				free.Push(a.To)
			}
		}
	}

	pick := func(v dag.NodeID) int {
		candidates := len(procFree)
		if h.MaxProcs == 0 || candidates < h.MaxProcs {
			candidates++ // one fresh processor
		}
		bestP := -1
		var bestKey int64
		for p := 0; p < candidates; p++ {
			var key int64
			var idle int64
			if p < len(procFree) {
				idle = procFree[p]
			}
			switch h.Policy {
			case EarliestAvailable:
				key = idle
			case EarliestStart:
				key = arrive(v, p)
				if idle > key {
					key = idle
				}
			}
			if bestP == -1 || key < bestKey {
				bestP, bestKey = p, key
			}
		}
		return bestP
	}

	// The first task goes to the first processor.
	first := free.Pop()
	place(first, 0)
	for !free.Empty() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v := free.Pop()
		place(v, pick(v))
	}
	return pl, nil
}
