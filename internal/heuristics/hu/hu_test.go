package hu

import (
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExampleSpreads(t *testing.T) {
	// HU's comm-oblivious placement puts every task on its own (first
	// idle) processor; on the appendix example that costs the full
	// serial time 150 across 5 processors — the behaviour behind HU's
	// uniformly poor numbers in the paper.
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != 150 {
		t.Errorf("makespan = %d, want 150", sc.Makespan)
	}
	if sc.NumProcs != 5 {
		t.Errorf("procs = %d, want 5", sc.NumProcs)
	}
}

func TestFirstTaskOnFirstProcessor(t *testing.T) {
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	// Node 1 (ID 0) has the highest level (150) and no predecessors.
	if sc.ByNode[0].Proc != 0 || sc.ByNode[0].Start != 0 {
		t.Errorf("first task at proc %d start %d, want proc 0 start 0",
			sc.ByNode[0].Proc, sc.ByNode[0].Start)
	}
}

func TestMaxProcsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := schedtest.RandomDAG(rng, 50, 0.1)
	h := &HU{MaxProcs: 4}
	sc := schedtest.BuildAndValidate(t, h, g)
	if sc.NumProcs > 4 {
		t.Errorf("used %d procs, bound was 4", sc.NumProcs)
	}
}

func TestEarliestStartPolicyAvoidsComm(t *testing.T) {
	// The comm-aware ablation should keep a heavy chain together,
	// unlike the default policy.
	g := dag.New("chain")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 1000)
	def := schedtest.BuildAndValidate(t, New(), g)
	aware := schedtest.BuildAndValidate(t, &HU{Policy: EarliestStart}, g)
	if aware.NumProcs != 1 || aware.Makespan != 20 {
		t.Errorf("EarliestStart: %d procs makespan %d, want 1/20",
			aware.NumProcs, aware.Makespan)
	}
	if def.Makespan <= aware.Makespan && def.NumProcs == 1 {
		t.Error("default HU unexpectedly comm-aware")
	}
}

func TestCommOblivousSpreadPaysDearly(t *testing.T) {
	// Wide fork with heavy edges: HU spreads and pays each edge; a
	// serial schedule would be cheaper. This is exactly the paper's
	// "retardation" phenomenon.
	g := dag.New("fork")
	root := g.AddNode(10)
	for i := 0; i < 4; i++ {
		v := g.AddNode(10)
		g.MustAddEdge(root, v, 500)
	}
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan <= g.SerialTime() {
		t.Errorf("expected retardation: makespan %d vs serial %d",
			sc.Makespan, g.SerialTime())
	}
}

func TestPriorityUsesCommLevel(t *testing.T) {
	// Two sources: one with a small weight but a heavy out-edge (high
	// level), one heavy standalone. The high-level source must be
	// scheduled first (processor 0).
	g := dag.New("prio")
	hot := g.AddNode(5)
	tail := g.AddNode(5)
	g.MustAddEdge(hot, tail, 1000) // level(hot) = 1010
	cold := g.AddNode(500)         // level 500
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.ByNode[hot].Proc != 0 {
		t.Errorf("hot source should go first on proc 0, got %d", sc.ByNode[hot].Proc)
	}
	if sc.ByNode[cold].Proc == 0 {
		t.Errorf("cold source should have landed on a later processor")
	}
}
