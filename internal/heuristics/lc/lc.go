// Package lc implements Linear Clustering (Kim & Browne), the third
// classic clustering heuristic family the literature compares against
// DSC and EZ: repeatedly take the heaviest remaining path (nodes plus
// communication edges) among unclustered tasks, make it one cluster
// (zeroing its internal edges), and repeat until every task is
// clustered. Clusters become processors; cluster order is by
// descending communication-weighted level.
package lc

import (
	"context"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("LC", func() heuristics.Scheduler { return New() })
}

// LC is the scheduler. The zero value is ready to use.
type LC struct{}

// New returns an LC scheduler.
func New() *LC { return &LC{} }

// Name implements heuristics.Scheduler.
func (l *LC) Name() string { return "LC" }

// Schedule implements heuristics.Scheduler.
func (l *LC) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return l.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per extracted path (each extraction is
// a whole-graph sweep, the algorithm's natural step).
func (l *LC) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	clustered := make([]bool, n)
	remaining := n
	cluster := 0
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := heaviestPath(g, order, clustered)
		if len(path) == 0 {
			break // unreachable for a DAG with unclustered nodes
		}
		// The path is already in precedence order.
		for _, v := range path {
			pl.Assign(v, cluster)
			clustered[v] = true
			remaining--
		}
		cluster++
	}
	// Defensive: anything missed becomes its own cluster.
	for v := 0; v < n; v++ {
		if !clustered[v] {
			pl.Assign(dag.NodeID(v), cluster)
			cluster++
		}
	}
	return pl, nil
}

// heaviestPath returns the maximum-weight path (node weights plus edge
// weights) through unclustered nodes only, in precedence order.
func heaviestPath(g *dag.Graph, order []dag.NodeID, clustered []bool) []dag.NodeID {
	n := g.NumNodes()
	best := make([]int64, n) // heaviest path weight starting at v
	next := make([]dag.NodeID, n)
	for i := range next {
		next[i] = -1
	}
	var head dag.NodeID = -1
	var headW int64 = -1
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if clustered[v] {
			continue
		}
		best[v] = g.Weight(v)
		for _, a := range g.Succs(v) {
			if clustered[a.To] {
				continue
			}
			c := g.Weight(v) + a.Weight + best[a.To]
			if c > best[v] || (c == best[v] && next[v] != -1 && a.To < next[v]) {
				best[v] = c
				next[v] = a.To
			}
		}
		if best[v] > headW || (best[v] == headW && (head < 0 || v < head)) {
			headW = best[v]
			head = v
		}
	}
	if head < 0 {
		return nil
	}
	var path []dag.NodeID
	for v := head; v >= 0; v = next[v] {
		path = append(path, v)
	}
	return path
}
