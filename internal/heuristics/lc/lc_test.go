package lc

import (
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	// LC clusters the critical path 1-3-4-5 first, leaving node 2 as
	// its own cluster: the same optimal 130 schedule.
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != 130 {
		t.Errorf("makespan = %d, want 130", sc.Makespan)
	}
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
	// The critical path must share a processor.
	p := sc.ByNode[0].Proc
	for _, v := range []dag.NodeID{2, 3, 4} {
		if sc.ByNode[v].Proc != p {
			t.Errorf("critical path node %d off the CP cluster", v)
		}
	}
}

func TestChainSingleCluster(t *testing.T) {
	g := dag.New("chain")
	var prev dag.NodeID = -1
	for i := 0; i < 7; i++ {
		v := g.AddNode(10)
		if prev >= 0 {
			g.MustAddEdge(prev, v, 30)
		}
		prev = v
	}
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 1 || sc.Makespan != 70 {
		t.Errorf("chain: %d procs makespan %d, want 1/70", sc.NumProcs, sc.Makespan)
	}
}

func TestParallelChains(t *testing.T) {
	// Two disjoint chains: two clusters running concurrently.
	g := dag.New("two-chains")
	for c := 0; c < 2; c++ {
		var prev dag.NodeID = -1
		for i := 0; i < 4; i++ {
			v := g.AddNode(10)
			if prev >= 0 {
				g.MustAddEdge(prev, v, 5)
			}
			prev = v
		}
	}
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 2 || sc.Makespan != 40 {
		t.Errorf("%d procs makespan %d, want 2/40", sc.NumProcs, sc.Makespan)
	}
}

func TestEveryClusterIsAPath(t *testing.T) {
	// Linear clustering's defining property: each cluster is a chain
	// in the graph (each consecutive pair connected by an edge).
	g := schedtest.GeneratedDAG(33, 3, gen.Band{Lo: 0.2, Hi: 0.8})
	pl, err := New().Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, lane := range pl.Order {
		for i := 0; i+1 < len(lane); i++ {
			if _, ok := g.EdgeWeight(lane[i], lane[i+1]); !ok {
				t.Fatalf("cluster %v is not a path: no edge %d->%d", lane, lane[i], lane[i+1])
			}
		}
	}
}
