// Package mcp implements the Modified Critical Path heuristic of Wu &
// Gajski, as described in Appendix A.2 of the paper.
//
// MCP computes the ALAP (as-late-as-possible) start time T_L of every
// node from the communication-weighted critical path, associates with
// each node the list of T_L values of itself and all its descendants,
// orders the nodes by comparing those lists, and then schedules them
// one by one onto the processor that allows the earliest start time,
// using insertion into idle gaps; a new processor is opened when it
// strictly beats every existing one.
//
// Ordering note: the paper's Figure 9 says to sort both the per-node
// lists and the global list "in decreasing order", which would schedule
// the least critical node first and contradicts the algorithm's own
// worked example. We follow Wu & Gajski (and the standard descriptions
// of MCP): per-node lists ascending, global order ascending
// lexicographic, so the node with the smallest ALAP time — the most
// critical one — is scheduled first. Because a node's own T_L is
// strictly smaller than every descendant's, this order is topologically
// consistent.
package mcp

import (
	"context"
	"slices"
	"sort"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("MCP", func() heuristics.Scheduler { return New() })
}

// MCP is the scheduler. Insertion controls whether tasks may be placed
// into idle gaps between already scheduled tasks (the classic MCP
// behaviour) or only appended after the last task of a processor; the
// ablation benches compare the two.
type MCP struct {
	Insertion bool
}

// New returns an MCP scheduler with gap insertion enabled.
func New() *MCP { return &MCP{Insertion: true} }

// Name implements heuristics.Scheduler.
func (m *MCP) Name() string { return "MCP" }

// slot is a scheduled interval on a processor timeline.
type slot struct {
	node   dag.NodeID
	start  int64
	finish int64
}

// Schedule implements heuristics.Scheduler.
func (m *MCP) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return m.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per committed task.
func (m *MCP) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	order, err := m.order(g)
	if err != nil {
		return nil, err
	}

	proc := make([]int, n) // node -> processor
	start := make([]int64, n)
	finish := make([]int64, n)
	var timelines [][]slot // per processor, sorted by start

	for _, v := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Earliest data-ready time on a fresh processor: every incoming
		// edge pays communication.
		var bound int64
		for _, a := range g.Preds(v) {
			t := finish[a.To] + a.Weight
			if t > bound {
				bound = t
			}
		}
		bestP, bestStart := -1, int64(0)
		for p := range timelines {
			st := m.earliestOn(g, timelines[p], proc, finish, v, p)
			if bestP == -1 || st < bestStart {
				bestP, bestStart = p, st
			}
		}
		if bestP == -1 || bound < bestStart {
			// A new processor strictly beats every existing one.
			bestP, bestStart = len(timelines), bound
			timelines = append(timelines, nil)
		}
		proc[v] = bestP
		start[v] = bestStart
		finish[v] = bestStart + g.Weight(v)
		timelines[bestP] = insertSlot(timelines[bestP], slot{node: v, start: start[v], finish: finish[v]})
	}

	for p, tl := range timelines {
		for _, s := range tl {
			pl.Assign(s.node, p)
		}
	}
	return pl, nil
}

// earliestOn computes the earliest start of v on processor p given the
// current timeline, honouring communication costs from predecessors on
// other processors. With Insertion enabled it may use an idle gap.
func (m *MCP) earliestOn(g *dag.Graph, tl []slot, proc []int, finish []int64, v dag.NodeID, p int) int64 {
	var ready int64
	for _, a := range g.Preds(v) {
		t := finish[a.To]
		if proc[a.To] != p {
			t += a.Weight
		}
		if t > ready {
			ready = t
		}
	}
	w := g.Weight(v)
	if !m.Insertion {
		if len(tl) > 0 {
			if f := tl[len(tl)-1].finish; f > ready {
				return f
			}
		}
		return ready
	}
	// Scan gaps in start order for the first hole of length ≥ w at or
	// after ready.
	cur := ready
	for _, s := range tl {
		if cur+w <= s.start {
			return cur
		}
		if s.finish > cur {
			cur = s.finish
		}
	}
	return cur
}

func insertSlot(tl []slot, s slot) []slot {
	i := sort.Search(len(tl), func(i int) bool { return tl[i].start >= s.start })
	tl = append(tl, slot{})
	copy(tl[i+1:], tl[i:])
	tl[i] = s
	return tl
}

// order returns the MCP scheduling order: nodes sorted by ascending
// lexicographic comparison of their ALAP-time lists (own T_L plus all
// descendants', each list ascending). Ties break to the smaller node
// ID so the result is deterministic.
func (m *MCP) order(g *dag.Graph) ([]dag.NodeID, error) {
	alap, err := g.ALAPTimes()
	if err != nil {
		return nil, err
	}
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	lists := make([][]int64, n)
	// One collect closure serves every node; each list is preallocated
	// from the descendant count and sorted without a comparator closure.
	var l []int64
	collect := func(j int) { l = append(l, alap[j]) }
	for i := 0; i < n; i++ {
		l = make([]int64, 0, desc[i].Count()+1)
		l = append(l, alap[i])
		desc[i].ForEach(collect)
		slices.Sort(l)
		lists[i] = l
	}
	order := make([]dag.NodeID, n)
	for i := range order {
		order[i] = dag.NodeID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := lists[order[a]], lists[order[b]]
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				return la[i] < lb[i]
			}
		}
		if len(la) != len(lb) {
			return len(la) < len(lb)
		}
		return order[a] < order[b]
	})
	return order, nil
}
