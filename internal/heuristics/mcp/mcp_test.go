package mcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != 130 {
		t.Errorf("makespan = %d, want 130", sc.Makespan)
	}
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
}

func TestOrderOnPaperExample(t *testing.T) {
	// ALAP times are 0, 76, 15, 55, 100; ascending lexicographic
	// comparison of the descendant lists yields 0, 2, 3, 1, 4
	// (zero-based), i.e. the critical path first.
	g := paperex.Graph()
	order, err := New().order(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []dag.NodeID{0, 2, 3, 1, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: the MCP scheduling order is topologically consistent (a
// node's own ALAP is strictly below all its descendants').
func TestOrderTopological(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := schedtest.RandomDAG(rng, 2+rng.Intn(40), 0.2)
		order, err := New().order(g)
		if err != nil {
			return false
		}
		pos := make([]int, g.NumNodes())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionFillsGap(t *testing.T) {
	// Fork: root -> heavy path and a cheap independent task. With
	// insertion the cheap task can slot into the idle gap left on a
	// processor; without insertion it must queue at the end or open a
	// new processor. Both must validate; insertion must never be
	// worse.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		g := schedtest.RandomDAG(rng, 25, 0.25)
		with := schedtest.BuildAndValidate(t, &MCP{Insertion: true}, g)
		without := schedtest.BuildAndValidate(t, &MCP{Insertion: false}, g)
		// Insertion is a strictly larger search space per decision but
		// greedy, so no strict dominance holds graph-by-graph; just
		// check both are valid and record that they can differ.
		_ = with
		_ = without
	}
}

func TestNewProcessorOnlyWhenStrictlyBetter(t *testing.T) {
	// Two independent equal tasks: the second can start at time w on
	// processor 0 or time 0 on a new processor — strictly better, so
	// MCP must open it.
	g := dag.New("pair")
	g.AddNode(10)
	g.AddNode(10)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 2 || sc.Makespan != 10 {
		t.Errorf("got %d procs makespan %d, want 2 procs 10", sc.NumProcs, sc.Makespan)
	}
}

func TestStaysTogetherWhenCommHuge(t *testing.T) {
	// Fork with huge edges: waiting on the parent's processor beats
	// paying communication, so everything serializes.
	g := dag.New("huge")
	a := g.AddNode(10)
	b := g.AddNode(10)
	c := g.AddNode(10)
	g.MustAddEdge(a, b, 10000)
	g.MustAddEdge(a, c, 10000)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.NumProcs != 1 {
		t.Errorf("procs = %d, want 1", sc.NumProcs)
	}
	if sc.Makespan != 30 {
		t.Errorf("makespan = %d, want 30", sc.Makespan)
	}
}
