// Package mh implements the Mapping Heuristic of Lewis & El-Rewini
// (Appendix A.3 of the paper), an event-driven list scheduler.
//
// Every task gets priority level(n) — the communication-weighted
// longest path to an exit node. All currently free tasks are allocated
// in priority order, each to the processor on which it could start (and
// so finish) the earliest; completions are then replayed from an event
// list, releasing successor tasks into the free list.
//
// MH was designed to account for processor interconnection topology and
// link contention. The paper's experiments use a fully connected
// network, where both features are inert; they are implemented here
// (via internal/topology) and exercised by the topology example and the
// ablation benches.
package mh

import (
	"context"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/pq"
	"schedcomp/internal/sched"
	"schedcomp/internal/topology"
)

func init() {
	heuristics.Register("MH", func() heuristics.Scheduler { return New() })
}

// MH is the scheduler. The zero value schedules on an unbounded fully
// connected network without contention, which is the paper's setting.
type MH struct {
	// Net is the processor network; nil means unbounded fully
	// connected.
	Net *topology.Network
	// Contention, when true, serializes messages crossing the same
	// link (store-and-forward, unit-capacity links).
	Contention bool
}

// New returns an MH scheduler in the paper's configuration.
func New() *MH { return &MH{} }

// Name implements heuristics.Scheduler.
func (m *MH) Name() string { return "MH" }

type event struct {
	finish int64
	node   dag.NodeID
}

// Schedule implements heuristics.Scheduler.
func (m *MH) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return m.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per allocation round.
func (m *MH) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	level, err := g.BLevels()
	if err != nil {
		return nil, err
	}

	net := m.Net
	if net == nil {
		net = topology.FullyConnected(0)
	}
	var traffic *topology.Traffic
	if m.Contention {
		traffic = topology.NewTraffic(net)
	}

	// Free list: highest level first, ties to the smaller ID.
	higher := func(a, b dag.NodeID) bool {
		if level[a] != level[b] {
			return level[a] > level[b]
		}
		return a < b
	}
	free := pq.New(higher)
	for _, v := range g.Sources() {
		free.Push(v)
	}
	events := pq.New(func(a, b event) bool {
		if a.finish != b.finish {
			return a.finish < b.finish
		}
		return a.node < b.node
	})

	proc := make([]int, n)
	finish := make([]int64, n)
	scheduledPreds := make([]int, n)
	done := make([]bool, n)
	var procFree []int64
	usedProcs := 0

	maxProcs := net.NumProcs()
	if net.Unbounded() {
		maxProcs = 0
	}

	arrive := func(v dag.NodeID, p int) int64 {
		var t int64
		for _, a := range g.Preds(v) {
			at := finish[a.To]
			if proc[a.To] != p {
				if traffic != nil {
					at = traffic.Peek(proc[a.To], p, at, a.Weight)
				} else {
					at += net.Delay(proc[a.To], p, a.Weight)
				}
			}
			if at > t {
				t = at
			}
		}
		return t
	}

	allocate := func(v dag.NodeID) {
		// Candidate processors: every opened processor plus, when the
		// network allows, one fresh processor.
		candidates := usedProcs
		if maxProcs == 0 || candidates < maxProcs {
			candidates++
		}
		bestP, bestStart := -1, int64(0)
		for p := 0; p < candidates; p++ {
			start := arrive(v, p)
			if p < len(procFree) && procFree[p] > start {
				start = procFree[p]
			}
			if bestP == -1 || start < bestStart {
				bestP, bestStart = p, start
			}
		}
		if bestP >= usedProcs {
			usedProcs = bestP + 1
			for len(procFree) < usedProcs {
				procFree = append(procFree, 0)
			}
		}
		if traffic != nil {
			// Reserve the links actually used by the incoming messages.
			for _, a := range g.Preds(v) {
				if proc[a.To] != bestP {
					traffic.Send(proc[a.To], bestP, finish[a.To], a.Weight)
				}
			}
		}
		proc[v] = bestP
		finish[v] = bestStart + g.Weight(v)
		procFree[bestP] = finish[v]
		done[v] = true
		pl.Assign(v, bestP)
		events.Push(event{finish: finish[v], node: v})
	}

	scheduled := 0
	for scheduled < n {
		for !free.Empty() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			allocate(free.Pop())
			scheduled++
		}
		if scheduled == n {
			break
		}
		if events.Empty() {
			panic("mh: free and event lists empty with tasks remaining")
		}
		e := events.Pop()
		for _, a := range g.Succs(e.node) {
			scheduledPreds[a.To]++
			if !done[a.To] && scheduledPreds[a.To] == g.InDegree(a.To) {
				free.Push(a.To)
			}
		}
	}
	return pl, nil
}
