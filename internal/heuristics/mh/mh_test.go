package mh

import (
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/paperex"
	"schedcomp/internal/topology"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestPaperExample(t *testing.T) {
	g := paperex.Graph()
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.Makespan != 130 {
		t.Errorf("makespan = %d, want 130", sc.Makespan)
	}
	if sc.NumProcs != 2 {
		t.Errorf("procs = %d, want 2", sc.NumProcs)
	}
}

func TestBoundedNetworkRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := schedtest.RandomDAG(rng, 40, 0.1)
	m := &MH{Net: topology.FullyConnected(3)}
	sc := schedtest.BuildAndValidate(t, m, g)
	if sc.NumProcs > 3 {
		t.Errorf("used %d procs on a 3-processor machine", sc.NumProcs)
	}
}

func TestLevelPriorityDrivesOrder(t *testing.T) {
	// Two independent chains, one much longer: its head has the higher
	// level and must be allocated first (ends up on processor 0).
	g := dag.New("prio")
	short := g.AddNode(10)
	longHead := g.AddNode(10)
	longTail := g.AddNode(100)
	g.MustAddEdge(longHead, longTail, 1)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.ByNode[longHead].Proc != 0 {
		t.Errorf("high-level task should be allocated first (proc 0), got %d",
			sc.ByNode[longHead].Proc)
	}
	if sc.ByNode[short].Proc == sc.ByNode[longHead].Proc && sc.ByNode[short].Start == 0 {
		t.Error("short task should not preempt the long chain's head")
	}
}

func TestEventDrivenRelease(t *testing.T) {
	// Diamond: the join must wait for both branches; MH's event list
	// releases it only after both complete.
	g := dag.New("diamond")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	d := g.AddNode(10)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, d, 1)
	g.MustAddEdge(c, d, 1)
	sc := schedtest.BuildAndValidate(t, New(), g)
	if sc.ByNode[d].Start < 40 {
		t.Errorf("join starts at %d, before slow branch finishes", sc.ByNode[d].Start)
	}
}

func TestContentionDelaysSharedLinks(t *testing.T) {
	// On a star, concurrent cross-messages share the hub links. The
	// contention-aware MH must still produce a valid placement; its
	// processor usage may differ from the uncontended one.
	rng := rand.New(rand.NewSource(11))
	g := schedtest.RandomDAG(rng, 30, 0.15)
	plain := schedtest.BuildAndValidate(t, &MH{Net: topology.Star(4)}, g)
	cont := schedtest.BuildAndValidate(t, &MH{Net: topology.Star(4), Contention: true}, g)
	if plain.NumProcs > 4 || cont.NumProcs > 4 {
		t.Error("star(4) machine exceeded")
	}
}

func TestRegisteredDefaultIsUnboundedUniform(t *testing.T) {
	s, err := heuristics.New("MH")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := s.(*MH)
	if !ok {
		t.Fatalf("registry returned %T", s)
	}
	if m.Net != nil || m.Contention {
		t.Error("registered MH should be the paper configuration")
	}
}
