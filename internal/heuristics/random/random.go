// Package random provides the RAND control scheduler: a deterministic
// pseudo-random topological placement onto a square-root-sized
// processor pool. It exists as a floor for the comparisons — any
// heuristic worth publishing must clearly beat random placement — and
// as a stress source for the schedule validator. The stream is seeded
// from the graph's structure, so the "random" placement is still a
// deterministic function of the input, as the Scheduler contract
// requires.
package random

import (
	"context"
	"math"
	"math/rand"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

func init() {
	heuristics.Register("RAND", func() heuristics.Scheduler { return New() })
}

// RAND is the control scheduler. Procs fixes the pool size; 0 means
// ceil(sqrt(n)).
type RAND struct {
	Procs int
	// Salt perturbs the derived stream, for drawing several
	// independent placements of the same graph.
	Salt int64
}

// New returns a RAND scheduler with the default pool size.
func New() *RAND { return &RAND{} }

// Name implements heuristics.Scheduler.
func (r *RAND) Name() string { return "RAND" }

// Schedule implements heuristics.Scheduler.
func (r *RAND) Schedule(g *dag.Graph) (*sched.Placement, error) {
	return r.ScheduleContext(context.Background(), g)
}

// ScheduleContext implements heuristics.ContextScheduler: Schedule
// with a cancellation poll once per placed task.
func (r *RAND) ScheduleContext(ctx context.Context, g *dag.Graph) (*sched.Placement, error) {
	n := g.NumNodes()
	pl := sched.NewPlacement(n)
	if n == 0 {
		return pl, nil
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	procs := r.Procs
	if procs <= 0 {
		procs = int(math.Ceil(math.Sqrt(float64(n))))
	}
	rng := rand.New(rand.NewSource(r.seed(g)))
	for _, v := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pl.Assign(v, rng.Intn(procs))
	}
	return pl, nil
}

// seed hashes the graph structure (and the salt) into a stream seed.
func (r *RAND) seed(g *dag.Graph) int64 {
	h := uint64(1469598103934665603) // FNV offset
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(g.NumNodes()))
	for _, e := range g.Edges() {
		mix(uint64(e.From)<<32 | uint64(uint32(e.To)))
		mix(uint64(e.Weight))
	}
	for v := 0; v < g.NumNodes(); v++ {
		mix(uint64(g.Weight(dag.NodeID(v))))
	}
	mix(uint64(r.Salt))
	return int64(h >> 1)
}
