package random

import (
	"testing"

	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"

	_ "schedcomp/internal/heuristics/mcp"
)

func TestConformance(t *testing.T) {
	schedtest.Conform(t, func() heuristics.Scheduler { return New() })
}

func TestProcsBound(t *testing.T) {
	g := schedtest.GeneratedDAG(4, 3, gen.Band{Lo: 0.8, Hi: 2})
	sc := schedtest.BuildAndValidate(t, &RAND{Procs: 3}, g)
	if sc.NumProcs > 3 {
		t.Errorf("procs = %d, bound 3", sc.NumProcs)
	}
}

func TestSaltVariesPlacement(t *testing.T) {
	g := schedtest.GeneratedDAG(5, 3, gen.Band{Lo: 0.8, Hi: 2})
	a, err := (&RAND{Salt: 1}).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&RAND{Salt: 2}).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Proc {
		if a.Proc[i] != b.Proc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different salts produced identical placements")
	}
}

// RAND is the floor: a real heuristic should beat it comfortably on a
// coarse-grained graph.
func TestRealHeuristicBeatsRandom(t *testing.T) {
	g := schedtest.GeneratedDAG(6, 3, gen.Band{Lo: 2.0})
	rnd := schedtest.BuildAndValidate(t, New(), g)
	mcp, err := heuristics.New("MCP")
	if err != nil {
		t.Fatal(err)
	}
	good := schedtest.BuildAndValidate(t, mcp, g)
	if good.Makespan >= rnd.Makespan {
		t.Errorf("MCP %d did not beat RAND %d", good.Makespan, rnd.Makespan)
	}
}
