package schedtest

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"schedcomp/internal/anytime"
	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// anytimeTrajectory runs one fixed-seed, fixed-generation anytime
// optimization and flattens everything observable — the per-generation
// (best makespan, lower bound) trace, the result's statistics and the
// final schedule's full timing — into one byte string. Two runs are
// identical iff their trajectory strings match.
func anytimeTrajectory(t *testing.T, g *dag.Graph) string {
	t.Helper()
	var b strings.Builder
	res, err := anytime.Optimize(context.Background(), g, anytime.Options{
		Seed:        20260809,
		Generations: 8,
		Population:  16,
		ProbeStates: 512,
		OnGeneration: func(gen int, best *sched.Schedule, lb int64) {
			fmt.Fprintf(&b, "g%d:%d:%d;", gen, best.Makespan, lb)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "mk=%d lb=%d gap=%d proven=%v gens=%d impr=%d seed=%s states=%d ",
		res.Schedule.Makespan, res.LowerBound, res.Gap, res.Proven,
		res.Generations, res.Improvements, res.SeedName, res.ProbeStates)
	fmt.Fprintf(&b, "sched=%v", res.Schedule.ByNode)
	return b.String()
}

// RequireDeterministicAnytime extends the determinism suite to the
// anytime path: with a fixed seed (structure-hashed like RAND) and a
// fixed budget-in-generations, the whole trajectory — every
// generation's best makespan and lower bound, the improvement counts,
// and the final schedule byte for byte — must be identical across
// runs, including under GOMAXPROCS(1). The corpus covers both graphs
// small enough to engage the branch-and-bound probe and corpus-sized
// graphs where the GA runs alone.
func RequireDeterministicAnytime(t *testing.T) {
	graphs := DeterminismCorpus(t, 20260805)
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 3; i++ {
		// Small graphs: the probe interleave participates in the
		// trajectory, so its determinism is covered too.
		graphs = append(graphs, RandomDAG(rng, 8+2*i, 0.3))
	}
	for gi, g := range graphs {
		a := anytimeTrajectory(t, g)
		b := anytimeTrajectory(t, g)
		if a != b {
			t.Fatalf("graph %d (%s): anytime trajectories differ between runs\n run 1: %s\n run 2: %s",
				gi, g.Name(), a, b)
		}
		prev := runtime.GOMAXPROCS(1)
		c := anytimeTrajectory(t, g)
		runtime.GOMAXPROCS(prev)
		if c != a {
			t.Fatalf("graph %d (%s): anytime trajectory depends on GOMAXPROCS\n default: %s\n procs=1: %s",
				gi, g.Name(), a, c)
		}
	}
}
