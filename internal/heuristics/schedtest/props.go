package schedtest

import (
	"testing"

	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
)

// Props declares which metamorphic properties a heuristic is expected
// to satisfy. Two properties hold unconditionally for every registered
// heuristic and are not represented here: the makespan never drops
// below the no-communication critical path (a lower bound no valid
// schedule can beat), and every produced schedule passes
// sched.Validate.
type Props struct {
	// SerialBound: makespan never exceeds the serial time. This is
	// the paper's Table 2 ("percent of schedules worse than
	// sequential execution"), where CLANS is the only heuristic with
	// a column of zeros: its speedup check compares every clustering
	// decision — and the finished schedule — against serial
	// execution. Every other heuristic commits to spreading work
	// before the communication bill is known and can land past
	// serial time on fine-grained graphs.
	SerialBound bool
	// ScaleInvariant: multiplying every node and edge weight by k
	// multiplies the makespan by exactly k. Holds for any heuristic
	// whose decisions compare only linear combinations of weights.
	ScaleInvariant bool
	// IsolatedNodeInvariant: appending a disconnected weight-1 node
	// (the lightest weight dag.AddNode accepts — zero-weight nodes
	// are rejected) changes the makespan by at most
	// IsolatedNodeSlack, since the extra node fits inside any
	// existing schedule's idle time or on a processor of its own.
	IsolatedNodeInvariant bool
	// IsolatedNodeSlack is the allowed makespan delta when
	// IsolatedNodeInvariant is set; 0 demands exact invariance.
	IsolatedNodeSlack int64
}

// PropsFor returns the property set a registered heuristic is expected
// to satisfy. The table is the documented capability matrix: a false
// entry is a waiver with a structural reason, not a bug.
func PropsFor(name string) Props {
	switch name {
	case "RAND":
		// RAND seeds its stream from the graph structure — node
		// count, weights, edges — so both metamorphic perturbations
		// (scaling weights, appending a node) reseed the stream and
		// produce an unrelated placement. It also places without
		// regard to cost, so nothing bounds it by serial time. Only
		// the unconditional properties apply.
		return Props{}
	case "CLANS":
		// The only heuristic with the serial-time guarantee (Table
		// 2). The flip side: when the speedup check rejects every
		// parallelization, the schedule IS the serial schedule, so
		// an appended weight-1 node adds its weight to the makespan
		// — hence one unit of slack.
		return Props{SerialBound: true, ScaleInvariant: true,
			IsolatedNodeInvariant: true, IsolatedNodeSlack: 1}
	default:
		// List and clustering schedulers alike (HU, ETF, DLS, MCP,
		// MH, DCP, DSC, LC, EZ) commit placements before the full
		// communication cost is visible, so none is bounded by
		// serial time — the experiment Table 2 quantifies. Their
		// decisions are linear in the weights, so the metamorphic
		// properties hold exactly.
		return Props{ScaleInvariant: true, IsolatedNodeInvariant: true}
	}
}

// PropertyCorpus generates the stratified mini-corpus the property
// suite runs on: one small graph from every one of the paper's 60
// classes, so all five granularity bands, four anchors, and three
// weight ranges are exercised.
func PropertyCorpus(t *testing.T, seed int64) []*dag.Graph {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{Seed: seed, GraphsPerSet: 1, MinNodes: 10, MaxNodes: 24})
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*dag.Graph, 0, len(c.Sets))
	for _, s := range c.Sets {
		graphs = append(graphs, s.Graphs...)
	}
	return graphs
}

// scaled returns a copy of g with every node and edge weight
// multiplied by k.
func scaled(g *dag.Graph, k int64) *dag.Graph {
	c := g.Clone()
	for v := 0; v < c.NumNodes(); v++ {
		c.SetWeight(dag.NodeID(v), g.Weight(dag.NodeID(v))*k)
	}
	c.MapEdgeWeights(func(_, _ dag.NodeID, w int64) int64 { return w * k })
	return c
}

// withIsolatedNode returns a copy of g with one extra weight-1 node
// and no edges touching it.
func withIsolatedNode(g *dag.Graph) *dag.Graph {
	c := g.Clone()
	c.AddNode(1)
	return c
}

// lowerBound is the no-communication critical path: the weight of the
// heaviest dependency chain, which no schedule on any number of
// processors can beat.
func lowerBound(t *testing.T, g *dag.Graph) int64 {
	t.Helper()
	levels, err := g.BLevelsNoComm()
	if err != nil {
		t.Fatal(err)
	}
	var max int64
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	return max
}

// RunProperties checks every registered heuristic against the
// metamorphic property suite over the stratified mini-corpus. The
// unconditional properties (critical-path lower bound, validation —
// heuristics.Run validates internally and this suite re-asserts it)
// run for all heuristics; the table-gated ones follow PropsFor.
func RunProperties(t *testing.T) {
	graphs := PropertyCorpus(t, 20260805)
	const k = 3
	for _, name := range heuristics.Names() {
		name := name
		props := PropsFor(name)
		t.Run(name, func(t *testing.T) {
			for gi, g := range graphs {
				sc, err := heuristics.Run(mustNew(t, name), g)
				if err != nil {
					t.Fatalf("graph %d (%s): %v", gi, g.Name(), err)
				}
				if err := sc.Validate(); err != nil {
					t.Fatalf("graph %d (%s): schedule failed validation: %v", gi, g.Name(), err)
				}
				if lb := lowerBound(t, g); sc.Makespan < lb {
					t.Errorf("graph %d (%s): makespan %d below critical-path bound %d",
						gi, g.Name(), sc.Makespan, lb)
				}
				if props.SerialBound && sc.Makespan > g.SerialTime() {
					t.Errorf("graph %d (%s): makespan %d exceeds serial time %d",
						gi, g.Name(), sc.Makespan, g.SerialTime())
				}
				if props.ScaleInvariant {
					ssc, err := heuristics.Run(mustNew(t, name), scaled(g, k))
					if err != nil {
						t.Fatalf("graph %d (%s) scaled: %v", gi, g.Name(), err)
					}
					if ssc.Makespan != k*sc.Makespan {
						t.Errorf("graph %d (%s): weights ×%d took makespan %d → %d, want %d",
							gi, g.Name(), k, sc.Makespan, ssc.Makespan, k*sc.Makespan)
					}
				}
				if props.IsolatedNodeInvariant {
					isc, err := heuristics.Run(mustNew(t, name), withIsolatedNode(g))
					if err != nil {
						t.Fatalf("graph %d (%s) +isolated: %v", gi, g.Name(), err)
					}
					delta := isc.Makespan - sc.Makespan
					if delta < 0 {
						delta = -delta
					}
					if delta > props.IsolatedNodeSlack {
						t.Errorf("graph %d (%s): isolated weight-1 node moved makespan %d → %d (slack %d)",
							gi, g.Name(), sc.Makespan, isc.Makespan, props.IsolatedNodeSlack)
					}
				}
			}
		})
	}
}
