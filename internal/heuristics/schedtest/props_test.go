package schedtest_test

import (
	"testing"

	"schedcomp/internal/heuristics/schedtest"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dcp"
	_ "schedcomp/internal/heuristics/dls"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/ez"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
	_ "schedcomp/internal/heuristics/random"
)

// TestProperties runs the metamorphic property suite for every
// registered heuristic over the stratified 60-class mini-corpus.
func TestProperties(t *testing.T) {
	schedtest.RunProperties(t)
}
