// Package schedtest provides the shared conformance suite every
// scheduling heuristic must pass: valid schedules on arbitrary random
// DAGs, determinism, and sane behaviour on degenerate inputs. Each
// heuristic package runs it from its own tests.
package schedtest

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
)

// RandomDAG builds a random DAG whose edges all go from smaller to
// larger IDs.
func RandomDAG(rng *rand.Rand, n int, density float64) *dag.Graph {
	g := dag.New("random")
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + rng.Intn(100)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(60)))
			}
		}
	}
	return g
}

// GeneratedDAG builds a structured PDG via the paper's generator.
func GeneratedDAG(seed int64, anchor int, band gen.Band) *dag.Graph {
	return gen.MustGenerate(gen.Params{
		Nodes:  60,
		Anchor: anchor,
		WMin:   20,
		WMax:   200,
		Gran:   band,
	}, seed)
}

// Conform runs the full conformance suite against factory's scheduler.
func Conform(t *testing.T, factory func() heuristics.Scheduler) {
	t.Helper()
	t.Run("EmptyGraph", func(t *testing.T) {
		s := factory()
		pl, err := s.Schedule(dag.New("empty"))
		if err != nil {
			t.Fatal(err)
		}
		if pl.NumProcs() != 0 {
			t.Errorf("empty graph used %d procs", pl.NumProcs())
		}
	})
	t.Run("SingleNode", func(t *testing.T) {
		g := dag.New("one")
		g.AddNode(42)
		sc, err := heuristics.Run(factory(), g)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Makespan != 42 || sc.NumProcs != 1 {
			t.Errorf("single node: makespan %d on %d procs", sc.Makespan, sc.NumProcs)
		}
	})
	t.Run("ChainStaysSerialTime", func(t *testing.T) {
		// A pure chain has no parallelism: any valid heuristic must
		// produce exactly the serial time (no heuristic pays comm on a
		// chain it keeps together; even if it splits, the schedule
		// must still validate).
		g := dag.New("chain")
		var prev dag.NodeID = -1
		for i := 0; i < 8; i++ {
			v := g.AddNode(int64(10 + i))
			if prev >= 0 {
				g.MustAddEdge(prev, v, 5)
			}
			prev = v
		}
		sc, err := heuristics.Run(factory(), g)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Makespan < g.SerialTime() {
			t.Errorf("chain makespan %d below serial %d: invalid", sc.Makespan, g.SerialTime())
		}
	})
	t.Run("RandomDAGsValidate", func(t *testing.T) {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := RandomDAG(rng, 1+rng.Intn(50), 0.05+0.3*rng.Float64())
			sc, err := heuristics.Run(factory(), g)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if sc.Makespan <= 0 && g.NumNodes() > 0 {
				t.Fatalf("seed %d: non-positive makespan", seed)
			}
		}
	})
	t.Run("GeneratedPDGsValidate", func(t *testing.T) {
		for i, band := range gen.PaperBands() {
			g := GeneratedDAG(int64(100+i), 2+i%4, band)
			if _, err := heuristics.Run(factory(), g); err != nil {
				t.Fatalf("band %v: %v", band, err)
			}
		}
	})
	t.Run("Deterministic", func(t *testing.T) {
		rng := rand.New(rand.NewSource(99))
		g := RandomDAG(rng, 40, 0.2)
		a, err := factory().Schedule(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := factory().Schedule(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Proc) != len(b.Proc) {
			t.Fatal("placement sizes differ")
		}
		for i := range a.Proc {
			if a.Proc[i] != b.Proc[i] {
				t.Fatalf("node %d placed on %d then %d", i, a.Proc[i], b.Proc[i])
			}
		}
	})
	t.Run("DoesNotMutateGraph", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		g := RandomDAG(rng, 30, 0.2)
		before := g.Clone()
		if _, err := factory().Schedule(g); err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != before.NumNodes() || g.NumEdges() != before.NumEdges() {
			t.Fatal("scheduler mutated the graph structure")
		}
		for i := 0; i < g.NumNodes(); i++ {
			if g.Weight(dag.NodeID(i)) != before.Weight(dag.NodeID(i)) {
				t.Fatal("scheduler mutated node weights")
			}
		}
		for _, e := range before.Edges() {
			w, ok := g.EdgeWeight(e.From, e.To)
			if !ok || w != e.Weight {
				t.Fatal("scheduler mutated edges")
			}
		}
	})
}

// DeterminismCorpus generates the seeded graph slice RequireDeterministic
// schedules: one graph from every fifth corpus class, so all five
// granularity bands and several anchor/weight shapes are covered without
// making the double-scheduling pass expensive.
func DeterminismCorpus(t *testing.T, seed int64) []*dag.Graph {
	t.Helper()
	spec := corpus.Spec{Seed: seed, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 40}
	c, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*dag.Graph
	for i := 0; i < len(c.Sets); i += 5 {
		graphs = append(graphs, c.Sets[i].Graphs...)
	}
	return graphs
}

// placementBytes serializes a placement into a canonical byte string:
// the per-node processor assignment followed by every processor's
// execution order. Two placements are identical iff their bytes match.
func placementBytes(pl *sched.Placement) string {
	return fmt.Sprintf("proc=%v order=%v", pl.Proc, pl.Order)
}

// RequireDeterministic is the dynamic twin of the schedlint static
// suite: it instantiates every registered heuristic twice per corpus
// graph (fresh instances, so no state can leak between runs) and
// requires byte-identical placements. Any map-iteration or other
// nondeterminism in a heuristic shows up here as a placement diff.
// A third run under GOMAXPROCS(1) must also match: a heuristic whose
// output depends on goroutine interleaving (worker pools, racing
// channels) diverges between single-threaded and parallel execution
// even when back-to-back runs in the same environment happen to agree.
func RequireDeterministic(t *testing.T) {
	graphs := DeterminismCorpus(t, 20260805)
	for _, name := range heuristics.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for gi, g := range graphs {
				first, err := mustNew(t, name).Schedule(g)
				if err != nil {
					t.Fatalf("graph %d (%s): %v", gi, g.Name(), err)
				}
				second, err := mustNew(t, name).Schedule(g)
				if err != nil {
					t.Fatalf("graph %d (%s) second run: %v", gi, g.Name(), err)
				}
				a, b := placementBytes(first), placementBytes(second)
				if a != b {
					t.Fatalf("graph %d (%s): placements differ between runs\n run 1: %s\n run 2: %s",
						gi, g.Name(), a, b)
				}
				single, err := scheduleSingleThreaded(mustNew(t, name), g)
				if err != nil {
					t.Fatalf("graph %d (%s) GOMAXPROCS=1 run: %v", gi, g.Name(), err)
				}
				if c := placementBytes(single); c != a {
					t.Fatalf("graph %d (%s): placement depends on GOMAXPROCS\n default: %s\n procs=1: %s",
						gi, g.Name(), a, c)
				}
			}
		})
	}
}

// scheduleSingleThreaded runs one scheduling pass with GOMAXPROCS
// pinned to 1, restoring the previous value afterwards. Callers must
// not run in parallel subtests: GOMAXPROCS is process-global.
func scheduleSingleThreaded(s heuristics.Scheduler, g *dag.Graph) (*sched.Placement, error) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	return s.Schedule(g)
}

func mustNew(t *testing.T, name string) heuristics.Scheduler {
	t.Helper()
	s, err := heuristics.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// BuildAndValidate is a convenience wrapper used by heuristic-specific
// tests.
func BuildAndValidate(t *testing.T, s heuristics.Scheduler, g *dag.Graph) *sched.Schedule {
	t.Helper()
	sc, err := heuristics.Run(s, g)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}
