// Package analyzers registers the full schedlint suite. It exists so
// cmd/schedlint (and any future CI driver) has one place to pull every
// analyzer from without importing each individually.
package analyzers

import (
	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ctxflow"
	"schedcomp/internal/lint/floatdet"
	"schedcomp/internal/lint/genbump"
	"schedcomp/internal/lint/hotalloc"
	"schedcomp/internal/lint/hotbce"
	"schedcomp/internal/lint/hotescape"
	"schedcomp/internal/lint/locksafe"
	"schedcomp/internal/lint/mapiter"
	"schedcomp/internal/lint/noinline"
	"schedcomp/internal/lint/obscard"
	"schedcomp/internal/lint/panicpolicy"
	"schedcomp/internal/lint/taintnondet"
	"schedcomp/internal/lint/tiebreak"
	"schedcomp/internal/lint/uncheckedschedule"
)

// All returns the schedlint analyzers in stable (alphabetical) order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxflow.Analyzer,
		floatdet.Analyzer,
		genbump.Analyzer,
		hotalloc.Analyzer,
		hotbce.Analyzer,
		hotescape.Analyzer,
		locksafe.Analyzer,
		mapiter.Analyzer,
		noinline.Analyzer,
		obscard.Analyzer,
		panicpolicy.Analyzer,
		taintnondet.Analyzer,
		tiebreak.Analyzer,
		uncheckedschedule.Analyzer,
	}
}
