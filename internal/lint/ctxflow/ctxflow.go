// Package ctxflow enforces context threading through the service
// layers: a function that receives a context.Context must actually
// route it into the scheduler invocations and context-capable calls it
// makes. The serve pipeline cancels queued work through task contexts
// and the portfolio heuristics poll ctx at every topo step, so a
// dropped context silently turns a bounded request into an unbounded
// one — the request keeps burning deadline budget after the caller has
// given up.
//
// Three shapes are flagged inside a context-carrying frame (a function
// with a ctx parameter, or a closure nested in one):
//
//   - a call to a function or method that has a context-accepting
//     counterpart (Run → RunContext, Schedule → ScheduleContext, or a
//     sibling interface such as heuristics.ContextScheduler) made
//     without passing any context;
//   - context.Background() or context.TODO() introduced below the
//     frame, severing the caller's cancellation chain;
//   - a ctx parameter that is never used at all while the body still
//     performs calls or loops (interface implementations that ignore
//     their deadline).
//
// Intentional detachment — a goroutine that must outlive the request,
// a drain path after shutdown — is waived with //lint:detached on the
// offending line or the function declaration.
package ctxflow

import (
	"go/types"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the ctxflow pass.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "context parameters must be threaded into scheduler invocations and " +
		"context-capable calls; flags dropped contexts, context.Background() below " +
		"a ctx-carrying frame, and calls bypassing a *Context counterpart",
	Run: run,
}

const directive = "detached"

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		return nil
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	for _, fn := range prog.FuncsOf(pass.Pkg) {
		checkFunc(pass, prog, fn)
	}
	return nil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxParam returns fn's own context parameter value, or nil.
func ctxParam(fn *ssair.Func) *ssair.Value {
	for _, p := range fn.Params {
		if p.Var != nil && isContext(p.Var.Type()) {
			return p
		}
	}
	return nil
}

// inCtxScope reports whether fn or an enclosing function carries a
// context parameter.
func inCtxScope(fn *ssair.Func) bool {
	for f := fn; f != nil; f = f.Parent {
		if ctxParam(f) != nil {
			return true
		}
	}
	return false
}

// hasCtxParam reports whether f accepts a context.Context parameter.
func hasCtxParam(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// counterpart resolves the context-accepting variant of callee:
// a same-package function <Name>Context, a <Name>Context method in the
// receiver's method set, or — for interface methods — a sibling
// interface in the same package that subsumes the receiver interface
// and declares <Name>Context. Returns its rendered name, or "".
func counterpart(callee *types.Func) string {
	if hasCtxParam(callee) {
		return "" // already context-capable; nothing to upgrade to
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return ""
	}
	want := callee.Name() + "Context"
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	if sig.Recv() == nil {
		if f, ok := pkg.Scope().Lookup(want).(*types.Func); ok && hasCtxParam(f) {
			return pkg.Name() + "." + want
		}
		return ""
	}
	recv := sig.Recv().Type()
	ms := types.NewMethodSet(recv)
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == want && hasCtxParam(f) {
			return typeName(recv) + "." + want
		}
	}
	// Pointer methods are not in a value receiver's method set.
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		pms := types.NewMethodSet(types.NewPointer(recv))
		for i := 0; i < pms.Len(); i++ {
			if f, ok := pms.At(i).Obj().(*types.Func); ok && f.Name() == want && hasCtxParam(f) {
				return typeName(recv) + "." + want
			}
		}
	}
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		for _, name := range pkg.Scope().Names() {
			tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			cand, ok := tn.Type().Underlying().(*types.Interface)
			if !ok || !types.Implements(cand, iface) {
				continue
			}
			for i := 0; i < cand.NumMethods(); i++ {
				if m := cand.Method(i); m.Name() == want && hasCtxParam(m) {
					return pkg.Name() + "." + name + "." + want
				}
			}
		}
	}
	return ""
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// callPassesCtx reports whether any argument of call is a context.
func callPassesCtx(call *ssair.Value) bool {
	for _, a := range call.Args {
		if a.Type != nil && isContext(a.Type) {
			return true
		}
	}
	return false
}

func checkFunc(pass *lint.Pass, prog *ssair.Program, fn *ssair.Func) {
	scoped := inCtxScope(fn)
	suppressed := func(v *ssair.Value) bool {
		f := prog.FileFor(fn, v.Pos)
		return lint.AnnotatedIn(prog.Fset(), f, v.Pos, directive) ||
			lint.AnnotatedIn(prog.Fset(), prog.FileFor(fn, fn.DeclPos()), fn.DeclPos(), directive)
	}

	reported := 0
	for _, v := range fn.Values {
		if v.Op != ssair.OpCall || v.Callee == nil {
			continue
		}
		if scoped && ssair.PkgFunc(v.Callee, "context", "Background", "TODO") {
			if !suppressed(v) {
				pass.Reportf(v.Pos, "context.%s() below a context-carrying frame severs cancellation; thread the caller's ctx (or annotate //lint:detached)", v.Callee.Name())
				reported++
			}
			continue
		}
		if !scoped || callPassesCtx(v) {
			continue
		}
		if cp := counterpart(v.Callee); cp != "" {
			if !suppressed(v) {
				pass.Reportf(v.Pos, "call to %s drops the in-scope context; use %s", v.Callee.Name(), cp)
				reported++
			}
		}
	}

	// A ctx parameter that feeds nothing at all, in a body that does
	// real work. Skipped when a more specific finding was already
	// reported, when the parameter is explicitly blank, and for
	// approximate CFGs.
	if reported > 0 || fn.Approx {
		return
	}
	pv := ctxParam(fn)
	if pv == nil || pv.Var.Name() == "" || pv.Var.Name() == "_" {
		return
	}
	if !ctxUsed(prog, fn, pv) && doesWork(fn) {
		if !lint.AnnotatedIn(prog.Fset(), prog.FileFor(fn, fn.DeclPos()), fn.DeclPos(), directive) &&
			!lint.AnnotatedIn(prog.Fset(), prog.FileFor(fn, pv.Pos), pv.Pos, directive) {
			pass.Reportf(pv.Pos, "context parameter %q is never used; thread it into the blocking work or make it _", pv.Var.Name())
		}
	}
}

// ctxUsed reports whether pv feeds any value of fn or of a closure
// nested (transitively) inside fn.
func ctxUsed(prog *ssair.Program, fn *ssair.Func, pv *ssair.Value) bool {
	inFn := func(f *ssair.Func) bool {
		for a := f; a != nil; a = a.Parent {
			if a == fn {
				return true
			}
		}
		return false
	}
	for _, f := range prog.All {
		if !inFn(f) {
			continue
		}
		for _, v := range f.Values {
			if v.Op == ssair.OpFreeVar && v.Var == pv.Var {
				return true
			}
			for _, a := range v.Args {
				if a == pv {
					return true
				}
			}
		}
	}
	return false
}

// doesWork reports whether fn's body contains calls or loops — the
// shapes where an ignored deadline actually costs something.
func doesWork(fn *ssair.Func) bool {
	for _, v := range fn.Values {
		if v.Op == ssair.OpCall || v.LoopDepth > 0 {
			return true
		}
	}
	return false
}
