package ctxflow_test

import (
	"testing"

	"schedcomp/internal/lint/ctxflow"
	"schedcomp/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata", ctxflow.Analyzer,
		"schedcomp/internal/ctxdemo",
	)
}
