// Package ctxdemo exercises ctxflow: dropped contexts, severed
// cancellation chains, ignored ctx parameters, and the counterpart
// resolution paths (package function, method set, sibling interface).
package ctxdemo

import "context"

// Engine pairs Run with a context-accepting variant.
type Engine struct{ n int }

func (e *Engine) Run() error { return nil }

func (e *Engine) RunContext(ctx context.Context) error { return ctx.Err() }

// Solve pairs with SolveContext at package level.
func Solve() int { return 1 }

func SolveContext(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	return 1
}

// Scheduler has a context-capable sibling interface.
type Scheduler interface {
	Schedule(n int) int
}

// ContextScheduler subsumes Scheduler and adds the ctx variant.
type ContextScheduler interface {
	Scheduler
	ScheduleContext(ctx context.Context, n int) int
}

// chew is busywork with no context counterpart.
func chew(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// DropMethod bypasses the method counterpart.
func DropMethod(ctx context.Context, e *Engine) error {
	return e.Run() // want `ctxflow: call to Run drops the in-scope context; use Engine\.RunContext`
}

// DropFunc bypasses the package-level counterpart.
func DropFunc(ctx context.Context) int {
	return Solve() // want `ctxflow: call to Solve drops the in-scope context; use ctxdemo\.SolveContext`
}

// DropIface bypasses the sibling-interface counterpart.
func DropIface(ctx context.Context, s Scheduler) int {
	return s.Schedule(3) // want `ctxflow: call to Schedule drops the in-scope context; use ctxdemo\.ContextScheduler\.ScheduleContext`
}

// Sever replaces the caller's ctx with a fresh root.
func Sever(ctx context.Context, e *Engine) error {
	return e.RunContext(context.Background()) // want `ctxflow: context\.Background\(\) below a context-carrying frame severs cancellation`
}

// SeverClosure severs inside a closure nested in the ctx frame.
func SeverClosure(ctx context.Context, e *Engine) func() error {
	return func() error {
		return e.RunContext(context.TODO()) // want `ctxflow: context\.TODO\(\) below a context-carrying frame severs cancellation`
	}
}

// Ignores accepts a deadline and never consults it; the finding
// anchors at the parameter, so the expectation sits on the decl line.
func Ignores(ctx context.Context) int { // want `ctxflow: context parameter "ctx" is never used; thread it into the blocking work or make it _`
	return chew(1000)
}

// Threads is the healthy shape: ctx reaches the work.
func Threads(ctx context.Context, e *Engine) error {
	return e.RunContext(ctx)
}

// ThreadsClosure uses the outer ctx through a closure free variable.
func ThreadsClosure(ctx context.Context, e *Engine) func() error {
	return func() error { return e.RunContext(ctx) }
}

// Blank declares up front that the deadline is ignored.
func Blank(_ context.Context) int { return chew(3) }

// NoScope has no context to drop, so Run is fine.
func NoScope(e *Engine) error { return e.Run() }

// Detach hands work to a goroutine that must outlive the request; the
// fresh root is deliberate and waived.
func Detach(ctx context.Context, e *Engine) error {
	go e.RunContext(context.Background()) //lint:detached janitor outlives the request
	return e.RunContext(ctx)
}

// WarmCache ignores deadlines by design: a cold cache fill runs to
// completion even if the triggering request gave up.
//
//lint:detached warm fill runs to completion by design
func WarmCache(ctx context.Context) int { return chew(64) }
