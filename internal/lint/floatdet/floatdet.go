// Package floatdet flags floating-point determinism hazards in
// internal/stats and the heuristic priority code: == and != between
// float operands (rounding makes exact equality seed-, order- and
// platform-sensitive) and float64 map keys (equality-based hashing
// inherits the same problem, and NaN keys are unretrievable). Compare
// against a tolerance, use ordered comparisons, or key maps by an
// integer quantization instead.
package floatdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"schedcomp/internal/lint"
)

// Scope lists the package-path fragments this analyzer polices.
var Scope = []string{"internal/stats", "internal/heuristics"}

// Analyzer is the floatdet pass.
var Analyzer = &lint.Analyzer{
	Name: "floatdet",
	Doc: "flag ==/!= on floats and float map keys in internal/stats and " +
		"heuristic priority code; exact float equality is not reproducible",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathHasAny(pass.Pkg.Path(), Scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if bothConstant(pass, x.X, x.Y) {
					return true
				}
				if isFloat(pass, x.X) || isFloat(pass, x.Y) {
					pass.Reportf(x.OpPos,
						"%s on floating-point values (%s) is not reproducible; compare with a tolerance or restructure",
						x.Op, lint.ExprString(x))
				}
			case *ast.MapType:
				if tv, ok := pass.TypesInfo.Types[x.Key]; ok && isFloatType(tv.Type) {
					pass.Reportf(x.Pos(), "map keyed by %s relies on exact float equality; key by an integer quantization instead", tv.Type)
				}
			}
			return true
		})
	}
	return nil
}

func bothConstant(pass *lint.Pass, x, y ast.Expr) bool {
	tx, okx := pass.TypesInfo.Types[x]
	ty, oky := pass.TypesInfo.Types[y]
	return okx && oky && tx.Value != nil && ty.Value != nil
}

func isFloat(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isFloatType(tv.Type)
}

func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
