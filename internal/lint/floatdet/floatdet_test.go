package floatdet_test

import (
	"testing"

	"schedcomp/internal/lint/floatdet"
	"schedcomp/internal/lint/linttest"
)

func TestFloatDet(t *testing.T) {
	linttest.Run(t, "testdata", floatdet.Analyzer,
		"schedcomp/internal/stats/fdemo",
		"schedcomp/internal/report/fscope",
	)
}
