// Package fscope is outside floatdet's scope (internal/stats,
// internal/heuristics); nothing here may be flagged.
package fscope

func exactEqualityOutOfScope(a, b float64) bool {
	return a == b
}

func floatMapOutOfScope() map[float64]int {
	return nil
}
