// Package fdemo exercises the floatdet analyzer inside its
// internal/stats scope.
package fdemo

func exactEquality(a, b float64) bool {
	return a == b // want `floatdet: == on floating-point values`
}

func exactInequality(a, b float64) bool {
	return a != b // want `floatdet: != on floating-point values`
}

func mixedConstantCompare(x float64) bool {
	return x == 0 // want `floatdet: == on floating-point values`
}

func float32Too(a, b float32) bool {
	return a == b // want `floatdet: == on floating-point values`
}

type histogram struct {
	buckets map[float64]int // want `floatdet: map keyed by float64 relies on exact float equality`
}

func localFloatMap() map[float64]string { // want `floatdet: map keyed by float64`
	return nil
}

func orderedCompare(a, b float64) bool {
	return a < b
}

func orderedGuard(sum float64) bool {
	return sum <= 0
}

func intEquality(a, b int) bool {
	return a == b
}

func bothConstant() bool {
	const eps = 1e-9
	return eps == 0.0
}

func intKeyedMap() map[int]float64 {
	return nil
}
