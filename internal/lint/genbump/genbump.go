// Package genbump guards the two contracts of the dag.Graph analysis
// cache introduced in PR 3:
//
//  1. Every mutator of a generation-counted type must bump the cache
//     generation. Structurally: a named type that declares a niladic
//     invalidate method (dag.Graph's cache protocol) must call it —
//     directly or through another method of the same type — from every
//     method that writes a receiver field, except the fields
//     invalidate itself manages and sync.* lock fields. An accessor
//     that deliberately skips the bump (SetName: the name is not an
//     analysis input) is waived with //lint:nobump.
//
//  2. Slices returned by the cached analyses (TopoOrder, BLevels,
//     CriticalPath, Descendants, the CSR adjacency view, ...) are
//     shared, read-only views of the cache. A taint pass over ssair
//     follows them from the getter call — including field reads like
//     csr.SuccTo and the Succs/Preds accessors off a *dag.CSR — to
//     mutation sinks: element stores, append (which may write
//     in place), sorting, copy-into, and stores that stash the shared
//     slice into longer-lived structures. Callers that intend to own
//     the data must copy first — append([]T(nil), s...) — or waive a
//     provably-local use with //lint:ownedcopy.
package genbump

import (
	"go/ast"
	"go/token"
	"go/types"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the genbump pass.
var Analyzer = &lint.Analyzer{
	Name: "genbump",
	Doc: "mutators of generation-counted types must bump the cache generation " +
		"(call invalidate), and shared slices returned by cached dag analyses " +
		"must not escape to store/append/sort sinks",
	Run: run,
}

// cachedGetters are the dag.Graph accessors that return shared views
// of the analysis cache. CSR returns a pointer whose slice fields all
// alias the cache; the OpField case of the taint propagation follows
// reads like csr.SuccTo from the pointer to the shared arrays.
var cachedGetters = map[string]bool{
	"TopoOrder": true, "TopoPositions": true, "BLevels": true,
	"BLevelsNoComm": true, "TLevels": true, "ALAPTimes": true,
	"CriticalPath": true, "Descendants": true, "Ancestors": true,
	"CSR": true,
	// Canonical-form views (hash.go): the permutation and encoding are
	// memoized in the analysis cache and returned unclosed. (The hash
	// itself is a value type, so CanonicalHash needs no tracking.)
	"CanonicalPerm": true, "CanonicalEncoding": true,
}

// csrGetters are the dag.CSR accessors whose results alias the cached
// CSR arrays. They seed taint on their own so the shared slices are
// tracked even when the *CSR was obtained outside the function under
// analysis (passed in as a parameter or read from a struct).
var csrGetters = map[string]bool{"Succs": true, "Preds": true}

const dagPath = "schedcomp/internal/dag"

func run(pass *lint.Pass) error {
	checkMutators(pass)
	if pass.Loader == nil {
		return nil
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	for _, fn := range prog.FuncsOf(pass.Pkg) {
		checkEscapes(pass, prog, fn)
	}
	return nil
}

// ---- part 1: mutators must bump the generation ----

type methodInfo struct {
	decl    *ast.FuncDecl
	recv    *types.Var
	writes  []fieldWrite // receiver-field writes
	invokes map[string]bool
}

type fieldWrite struct {
	field string
	pos   token.Pos
}

func checkMutators(pass *lint.Pass) {
	// Group methods by receiver named type.
	byType := map[*types.TypeName]map[string]*methodInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig, _ := obj.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				continue
			}
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := types.Unalias(t).(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if byType[tn] == nil {
				byType[tn] = map[string]*methodInfo{}
			}
			mi := &methodInfo{decl: fd, invokes: map[string]bool{}}
			if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				mi.recv, _ = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
			}
			collectBody(pass, mi)
			byType[tn][fd.Name.Name] = mi
		}
	}

	for _, methods := range byType {
		inv := methods["invalidate"]
		if inv == nil || !niladic(pass, inv.decl) {
			continue
		}
		// Fields invalidate itself manages are exempt, as are lock
		// fields (written only through their methods anyway).
		exempt := map[string]bool{}
		for _, w := range inv.writes {
			exempt[w.field] = true
		}

		// bumps: methods that reach invalidate through same-type calls.
		bumps := map[string]bool{"invalidate": true}
		for changed := true; changed; {
			changed = false
			for name, mi := range methods {
				if bumps[name] {
					continue
				}
				for callee := range mi.invokes {
					if bumps[callee] {
						bumps[name] = true
						changed = true
						break
					}
				}
			}
		}

		for name, mi := range methods {
			if bumps[name] {
				continue
			}
			for _, w := range mi.writes {
				if exempt[w.field] {
					continue
				}
				if pass.Annotated(w.pos, "nobump") || pass.Annotated(mi.decl.Pos(), "nobump") {
					break
				}
				pass.Reportf(w.pos, "method %s writes %s but never calls invalidate: cached analyses go stale under the old generation", name, w.field)
				break // one finding per method
			}
		}
	}
}

func niladic(pass *lint.Pass, fd *ast.FuncDecl) bool {
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig != nil && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// collectBody records mi's receiver-field writes and same-receiver
// method invocations.
func collectBody(pass *lint.Pass, mi *methodInfo) {
	if mi.recv == nil {
		return
	}
	record := func(lhs ast.Expr, pos token.Pos) {
		if f, ok := receiverField(pass, lhs, mi.recv); ok {
			mi.writes = append(mi.writes, fieldWrite{field: f, pos: pos})
		}
	}
	ast.Inspect(mi.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				record(lhs, s.Pos())
			}
		case *ast.IncDecStmt:
			record(s.X, s.Pos())
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == mi.recv {
					mi.invokes[sel.Sel.Name] = true
				}
			}
		}
		return true
	})
}

// receiverField returns the first field accessed off the receiver in
// an lvalue chain like r.f, r.f[i], r.f[i].g — ("f", true) — or
// false when the lvalue is not rooted at the receiver. Lock fields
// are skipped (they mutate only through their own methods).
func receiverField(pass *lint.Pass, e ast.Expr, recv *types.Var) (string, bool) {
	var field *ast.SelectorExpr
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				field = x
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			if field == nil {
				return "", false
			}
			if t := pass.TypesInfo.TypeOf(field); t != nil && isLockType(t) {
				return "", false
			}
			return field.Sel.Name, true
		}
	}
}

func isLockType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// ---- part 2: shared cache slices must not escape to mutation sinks ----

func checkEscapes(pass *lint.Pass, prog *ssair.Program, fn *ssair.Func) {
	// Sources: calls to cached getters in this function (their Extract
	// results carry the shared slice).
	tainted := map[*ssair.Value]string{} // value -> getter name
	seed := false
	for _, v := range fn.Values {
		if v.Op != ssair.OpCall || v.Callee == nil {
			continue
		}
		name := v.Callee.Name()
		switch {
		case cachedGetters[name] && ssair.MethodOn(v.Callee, dagPath, "Graph", name):
			tainted[v] = name
			seed = true
		case csrGetters[name] && ssair.MethodOn(v.Callee, dagPath, "CSR", name):
			tainted[v] = "CSR()." + name
			seed = true
		}
	}
	if !seed {
		return
	}

	// Intraprocedural propagation through view-preserving ops. Only
	// results that can still alias the cache propagate: reading a
	// scalar element out of a shared slice (order[i], a range value)
	// yields an owned copy, not a view, so taint stops there.
	for changed := true; changed; {
		changed = false
		for _, v := range fn.Values {
			if tainted[v] != "" || !viewLike(v.Type) {
				continue
			}
			switch v.Op {
			case ssair.OpExtract, ssair.OpPhi, ssair.OpSliceExpr, ssair.OpConvert,
				ssair.OpIndex, ssair.OpRangeVal, ssair.OpFreeVar, ssair.OpField:
				for _, a := range v.Args {
					if src := tainted[a]; src != "" {
						tainted[v] = src
						changed = true
						break
					}
				}
			}
		}
	}

	waived := func(pos token.Pos) bool {
		return lint.AnnotatedIn(prog.Fset(), prog.FileFor(fn, pos), pos, "ownedcopy") ||
			lint.AnnotatedIn(prog.Fset(), prog.FileFor(fn, fn.DeclPos()), fn.DeclPos(), "ownedcopy")
	}

	// base walks an lvalue read-back chain to the value it views.
	base := func(v *ssair.Value) *ssair.Value {
		for {
			switch v.Op {
			case ssair.OpIndex, ssair.OpField, ssair.OpDeref, ssair.OpSliceExpr:
				v = v.Args[0]
			default:
				return v
			}
		}
	}

	for _, v := range fn.Values {
		switch v.Op {
		case ssair.OpStore:
			if len(v.Args) < 2 {
				continue
			}
			// Write into the shared slice: order[i] = x, copy(order, x).
			if src := tainted[base(v.Args[0])]; src != "" && !waived(v.Pos) {
				pass.Reportf(v.Pos, "write into the shared slice returned by (*dag.Graph).%s; copy it first (append([]T(nil), s...)) ", src)
				continue
			}
			// copy(dst, shared) with an untainted dst is the sanctioned
			// take-ownership pattern, not an escape.
			if v.Aux == "copy" {
				continue
			}
			// Stashing the shared slice into a longer-lived structure.
			if src := tainted[v.Args[1]]; src != "" && !waived(v.Pos) {
				pass.Reportf(v.Pos, "shared slice returned by (*dag.Graph).%s stored into a structure; it is invalidated by the next graph mutation — copy it first", src)
			}
		case ssair.OpAppend:
			if len(v.Args) > 0 {
				if src := tainted[v.Args[0]]; src != "" && !waived(v.Pos) {
					pass.Reportf(v.Pos, "append to the shared slice returned by (*dag.Graph).%s may write into the cache in place; copy it first", src)
				}
			}
		case ssair.OpCall:
			if v.Callee == nil || !isSorter(v.Callee) {
				continue
			}
			for _, a := range v.Args {
				if src := tainted[a]; src != "" && !waived(v.Pos) {
					pass.Reportf(v.Pos, "sorting the shared slice returned by (*dag.Graph).%s reorders the cache for every other reader; copy it first", src)
					break
				}
			}
		}
	}
}

// viewLike reports whether a value of type t can alias the backing
// store of a cache slice: slices, pointers and maps can; scalars,
// strings and interfaces (the error half of a getter result) cannot.
func viewLike(t types.Type) bool {
	if t == nil {
		return true // be conservative when the builder has no type
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	case *types.Tuple:
		return true // call results; OpExtract re-checks its own type
	}
	return false
}

func isSorter(f *types.Func) bool {
	return ssair.PkgFunc(f, "sort", "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s") ||
		ssair.PkgFunc(f, "slices", "Sort", "SortFunc", "SortStableFunc", "Reverse")
}
