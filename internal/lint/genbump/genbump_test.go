package genbump_test

import (
	"testing"

	"schedcomp/internal/lint/genbump"
	"schedcomp/internal/lint/linttest"
)

func TestGenbump(t *testing.T) {
	linttest.Run(t, "testdata", genbump.Analyzer,
		"schedcomp/internal/gendemo",
	)
}
