// Package gendemo exercises genbump: generation-counted mutators that
// forget to bump, and shared cache slices escaping to mutation sinks.
package gendemo

import (
	"sort"
	"sync"

	"schedcomp/internal/dag"
)

// ---- part 1: the invalidate protocol on a local type ----

// Table mirrors dag.Graph's cache protocol: mutators must route
// through invalidate so cached derivations are recomputed.
type Table struct {
	mu    sync.Mutex
	gen   int
	rows  []int
	cache []int
	name  string
}

func (t *Table) invalidate() {
	t.gen++
	t.cache = nil
}

// Add is the healthy mutator shape.
func (t *Table) Add(v int) {
	t.rows = append(t.rows, v)
	t.invalidate()
}

// Reset bumps indirectly through another method of the same type.
func (t *Table) Reset() {
	t.rows = t.rows[:0]
	t.clear()
}

func (t *Table) clear() { t.invalidate() }

// Drop only touches the fields invalidate itself manages — exempt.
func (t *Table) Drop() { t.cache = nil }

// Locked only takes the lock; sync fields are exempt.
func (t *Table) Locked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}

// Push mutates the rows and leaves the generation stale.
func (t *Table) Push(v int) {
	t.rows = append(t.rows, v) // want `genbump: method Push writes rows but never calls invalidate: cached analyses go stale under the old generation`
}

// Trim mutates through an index/slice lvalue chain.
func (t *Table) Trim(n int) {
	t.rows = t.rows[:n] // want `genbump: method Trim writes rows but never calls invalidate`
}

// Scale writes elements in place without bumping.
func (t *Table) Scale(k int) {
	for i := range t.rows {
		t.rows[i] *= k // want `genbump: method Scale writes rows but never calls invalidate`
	}
}

// SetName is reporting metadata, not an analysis input.
//
//lint:nobump name feeds no cached derivation
func (t *Table) SetName(name string) { t.name = name }

// ---- part 2: shared cache slices escaping to mutation sinks ----

// holder outlives the call that filled it.
type holder struct {
	order []dag.NodeID
	pos   []int
}

// Stash retains the shared topo order past the next mutation.
func Stash(g *dag.Graph, h *holder) error {
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	h.order = order // want `genbump: shared slice returned by \(\*dag\.Graph\)\.TopoOrder stored into a structure`
	return nil
}

// SortShared reorders the cache for every other reader.
func SortShared(g *dag.Graph) error {
	bl, err := g.BLevels()
	if err != nil {
		return err
	}
	sort.Slice(bl, func(i, j int) bool { return bl[i] < bl[j] }) // want `genbump: sorting the shared slice returned by \(\*dag\.Graph\)\.BLevels`
	return nil
}

// Zero writes through the shared view.
func Zero(g *dag.Graph) error {
	lv, err := g.TLevels()
	if err != nil {
		return err
	}
	lv[0] = 0 // want `genbump: write into the shared slice returned by \(\*dag\.Graph\)\.TLevels`
	return nil
}

// Grow appends to the shared slice, which may write into the cache's
// spare capacity in place.
func Grow(g *dag.Graph) ([]int64, error) {
	bl, err := g.BLevelsNoComm()
	if err != nil {
		return nil, err
	}
	return append(bl, 0), nil // want `genbump: append to the shared slice returned by \(\*dag\.Graph\)\.BLevelsNoComm`
}

// Owned copies before sorting — the sanctioned take-ownership shape.
func Owned(g *dag.Graph) ([]int64, error) {
	bl, err := g.BLevels()
	if err != nil {
		return nil, err
	}
	own := make([]int64, len(bl))
	copy(own, bl)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return own, nil
}

// Clone copies via the append-onto-nil idiom.
func Clone(g *dag.Graph) ([]dag.NodeID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	return append([]dag.NodeID(nil), order...), nil
}

// Max reads scalar elements out of the shared slice; element values
// are owned copies, not views.
func Max(g *dag.Graph) (int64, error) {
	bl, err := g.BLevels()
	if err != nil {
		return 0, err
	}
	var m int64
	for _, l := range bl {
		if l > m {
			m = l
		}
	}
	return m, nil
}

// Snapshot retains the shared positions read-only, waived after
// review.
func Snapshot(g *dag.Graph, h *holder) error {
	pos, err := g.TopoPositions()
	if err != nil {
		return err
	}
	h.pos = pos //lint:ownedcopy read-only snapshot, refreshed after every mutation
	return nil
}

// ---- part 3: the CSR adjacency view is cache-backed too ----

// csrHolder outlives the call that filled it.
type csrHolder struct {
	succ []dag.NodeID
}

// ZeroCSRField writes into a CSR array reached through a field read
// off the shared view.
func ZeroCSRField(g *dag.Graph) {
	csr := g.CSR()
	csr.SuccW[0] = 0 // want `genbump: write into the shared slice returned by \(\*dag\.Graph\)\.CSR`
}

// StashCSRField retains a CSR array past the next mutation.
func StashCSRField(g *dag.Graph, h *csrHolder) {
	csr := g.CSR()
	h.succ = csr.SuccTo // want `genbump: shared slice returned by \(\*dag\.Graph\)\.CSR stored into a structure`
}

// SortCSRAccessor reorders the cached arrays through the Succs
// accessor, even though the *CSR came in from outside.
func SortCSRAccessor(csr *dag.CSR, v dag.NodeID) {
	succs, _ := csr.Succs(v)
	sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] }) // want `genbump: sorting the shared slice returned by \(\*dag\.Graph\)\.CSR\(\)\.Succs`
}

// GrowCSRAccessor appends to a Preds window, which may write into the
// adjacent arc's slot in the flat array.
func GrowCSRAccessor(csr *dag.CSR, v dag.NodeID) []dag.NodeID {
	preds, _ := csr.Preds(v)
	return append(preds, 0) // want `genbump: append to the shared slice returned by \(\*dag\.Graph\)\.CSR\(\)\.Preds`
}

// lastSuccs is a package-level retention target: globals outlive
// every call, so stashing a shared view there is the same escape as
// a struct-field store.
var lastSuccs []dag.NodeID

// StashCSRGlobal retains a CSR array in a package-level variable.
func StashCSRGlobal(g *dag.Graph) {
	lastSuccs = g.CSR().SuccTo // want `genbump: shared slice returned by \(\*dag\.Graph\)\.CSR stored into a structure`
}

// ReadCSR only reads scalars out of the view — element values are
// owned copies, and degree arithmetic never aliases the cache.
func ReadCSR(g *dag.Graph, v dag.NodeID) int64 {
	csr := g.CSR()
	var sum int64
	preds, ws := csr.Preds(v)
	for i, u := range preds {
		sum += int64(u) + ws[i]
	}
	return sum + int64(csr.OutDegree(v))
}

// CloneCSRWindow copies before sorting — the sanctioned shape.
func CloneCSRWindow(csr *dag.CSR, v dag.NodeID) []dag.NodeID {
	succs, _ := csr.Succs(v)
	own := append([]dag.NodeID(nil), succs...)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return own
}
