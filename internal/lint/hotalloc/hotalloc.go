// Package hotalloc flags avoidable per-iteration allocations inside
// the scheduling hot paths (internal/heuristics, internal/sched,
// internal/pq, internal/dag, internal/core, internal/gen — schedtest
// is excluded). It consumes the loop-depth annotations of the ssair
// SSA form:
//
//   - maps, channels and empty slice literals allocated inside a loop
//     (hoist them, or preallocate with a size hint);
//   - capturing closures created inside a loop (each one allocates;
//     non-capturing literals are free and ignored);
//   - appends in *nested* loops whose destination provably starts
//     life as nil or an unsized literal (the depth-1 case is amortized
//     O(1) and allowed; in a nested loop the growth reallocations
//     repeat every outer iteration).
//
// A finding can be waived with //lint:coldpath on the allocation line
// or on the enclosing function declaration when the code is genuinely
// cold (setup, diagnostics).
package hotalloc

import (
	"strings"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// Scope lists the package-path fragments this analyzer polices.
var Scope = []string{"internal/heuristics", "internal/sched", "internal/pq", "internal/dag", "internal/core", "internal/gen"}

// Analyzer is the hotalloc pass.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration allocations in scheduling hot loops (maps, channels, " +
		"capturing closures, and nested-loop appends without preallocated capacity); " +
		"suppress intentionally cold code with //lint:coldpath",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		return nil
	}
	path := pass.Pkg.Path()
	if !lint.PathHasAny(path, Scope...) || strings.Contains(path, "schedtest") {
		return nil
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	for _, fn := range prog.FuncsOf(pass.Pkg) {
		if coldFunc(pass, fn) {
			continue
		}
		for _, v := range fn.Values {
			if v.LoopDepth < 1 || !v.Pos.IsValid() {
				continue
			}
			kind, msg := classify(v)
			if kind == "" {
				continue
			}
			if pass.Annotated(v.Pos, "coldpath") {
				continue
			}
			pass.Reportf(v.Pos, "%s", msg)
		}
	}
	return nil
}

// coldFunc reports whether fn or any enclosing function carries a
// //lint:coldpath annotation on its declaration.
func coldFunc(pass *lint.Pass, fn *ssair.Func) bool {
	for f := fn; f != nil; f = f.Parent {
		if pos := f.DeclPos(); pos.IsValid() && pass.Annotated(pos, "coldpath") {
			return true
		}
	}
	return false
}

func classify(v *ssair.Value) (kind, msg string) {
	switch v.Op {
	case ssair.OpMakeMap:
		return "map", "map allocated inside a scheduling loop; hoist it out and reuse (or //lint:coldpath)"
	case ssair.OpMakeChan:
		return "chan", "channel allocated inside a scheduling loop; hoist it out of the loop"
	case ssair.OpMakeSlice:
		if v.Aux == "lit" && v.AuxInt == 0 {
			return "slice", "empty slice literal allocated inside a scheduling loop; use a nil slice or preallocate with make"
		}
	case ssair.OpClosure:
		if v.Closure != nil && v.Closure.HasFreeVars() {
			return "closure", "capturing closure allocated inside a scheduling loop; hoist the function value or pass state explicitly"
		}
	case ssair.OpAppend:
		if v.LoopDepth >= 2 && growsUnsized(v) {
			return "append", "append to " + v.Aux + " inside a nested scheduling loop grows a slice with no preallocated capacity; make it with a capacity hint"
		}
	}
	return "", ""
}

// growsUnsized traces the append destination back through phis,
// earlier appends and store/mutate versions; it reports true when some
// path reaches a nil/zero slice or an unsized empty literal. Unknown
// origins (parameters, call results, fields) are assumed preallocated.
func growsUnsized(app *ssair.Value) bool {
	if len(app.Args) == 0 {
		return false
	}
	seen := map[*ssair.Value]bool{}
	var bad func(v *ssair.Value) bool
	bad = func(v *ssair.Value) bool {
		if v == nil || seen[v] {
			return false
		}
		seen[v] = true
		switch v.Op {
		case ssair.OpConst:
			return true // nil or zero-value slice
		case ssair.OpMakeSlice:
			return v.AuxInt == 0 // []T{} — no size, no capacity
		case ssair.OpPhi, ssair.OpFreeVar:
			for _, a := range v.Args {
				if bad(a) {
					return true
				}
			}
			return false
		case ssair.OpAppend, ssair.OpStore, ssair.OpMutate, ssair.OpExtract:
			if len(v.Args) > 0 {
				return bad(v.Args[0])
			}
			return false
		case ssair.OpConvert, ssair.OpSliceExpr:
			if len(v.Args) > 0 {
				return bad(v.Args[0])
			}
			return false
		}
		return false
	}
	return bad(app.Args[0])
}
