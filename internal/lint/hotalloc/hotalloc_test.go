package hotalloc_test

import (
	"testing"

	"schedcomp/internal/lint/hotalloc"
	"schedcomp/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata", hotalloc.Analyzer,
		"schedcomp/internal/heuristics/hotdemo",
		"schedcomp/internal/heuristics/hotclean",
		"schedcomp/internal/heuristics/hotcold",
		"schedcomp/internal/report/hotscope",
	)
}
