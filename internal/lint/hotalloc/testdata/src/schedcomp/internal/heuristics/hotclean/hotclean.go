// Package hotclean holds the fixed counterparts of hotdemo; the
// analyzer must stay silent on every function.
package hotclean

// Tally hoists the scratch map out of the loop and clears it instead.
func Tally(xs []int) int {
	total := 0
	seen := map[int]bool{}
	for _, x := range xs {
		clear(seen)
		seen[x] = true
		total += len(seen)
	}
	return total
}

// Ready preallocates with a capacity hint, so the nested-loop appends
// never reallocate.
func Ready(deps [][]int, done []bool) int {
	count := 0
	for step := 0; step < len(deps); step++ {
		ready := make([]int, 0, len(deps))
		for v, ds := range deps {
			if len(ds) == step && !done[v] {
				ready = append(ready, v)
			}
		}
		count += len(ready)
	}
	return count
}

// Flat appends at loop depth 1: amortized growth is acceptable there.
func Flat(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// Static builds a non-capturing literal per iteration, which the
// compiler lowers to a static function value — no allocation.
func Static(xs []int) int {
	t := 0
	for _, x := range xs {
		f := func(y int) int { return y * 2 }
		t += f(x)
	}
	return t
}

// Hoisted allocates everything once, outside the loops.
func Hoisted(n int) int {
	buf := make([]int, 0, n)
	m := map[int]int{}
	for i := 0; i < n; i++ {
		buf = append(buf, i)
		m[i] = i
	}
	return len(buf) + len(m)
}
