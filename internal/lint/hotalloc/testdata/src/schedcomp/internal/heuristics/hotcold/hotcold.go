// Package hotcold exercises both //lint:coldpath suppression forms.
package hotcold

// Debug is diagnostics-only code; the whole function is waived.
//
//lint:coldpath
func Debug(xs []int) []map[int]int {
	out := make([]map[int]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, map[int]int{x: x})
	}
	return out
}

// Trace waives a single allocation line.
func Trace(xs []int) int {
	t := 0
	for _, x := range xs {
		m := map[int]int{x: x} //lint:coldpath
		t += len(m)
	}
	return t
}
