// Package hotdemo holds the per-iteration allocation patterns the
// hotalloc analyzer must flag.
package hotdemo

// Tally allocates a fresh map every iteration.
func Tally(xs []int) int {
	total := 0
	for _, x := range xs {
		seen := map[int]bool{} // want `hotalloc: map allocated inside a scheduling loop`
		seen[x] = true
		total += len(seen)
	}
	return total
}

// Workers opens a channel per task.
func Workers(n int) int {
	done := 0
	for i := 0; i < n; i++ {
		ch := make(chan int, 1) // want `hotalloc: channel allocated inside a scheduling loop`
		ch <- i
		done += <-ch
	}
	return done
}

// Sums allocates an empty slice literal per row and grows it in the
// inner loop.
func Sums(rows [][]int) int {
	t := 0
	for _, r := range rows {
		acc := []int{} // want `hotalloc: empty slice literal allocated inside a scheduling loop`
		for _, x := range r {
			acc = append(acc, x) // want `hotalloc: append to acc inside a nested scheduling loop`
		}
		t += len(acc)
	}
	return t
}

// Adders builds a capturing closure per element.
func Adders(xs []int) int {
	t := 0
	for _, x := range xs {
		add := func(y int) int { return x + y } // want `hotalloc: capturing closure allocated inside a scheduling loop`
		t = add(t)
	}
	return t
}

// Ready regrows an unsized ready list on every outer step.
func Ready(deps [][]int, done []bool) int {
	count := 0
	for step := 0; step < len(deps); step++ {
		var ready []int
		for v, ds := range deps {
			if len(ds) == step && !done[v] {
				ready = append(ready, v) // want `hotalloc: append to ready inside a nested scheduling loop`
			}
		}
		count += len(ready)
	}
	return count
}
