// Package hotscope sits outside the hotalloc scope (not a scheduling
// hot path), so its per-iteration allocations are nobody's business.
package hotscope

// Render allocates freely; reporting code is not a hot path.
func Render(xs []int) []map[int]int {
	var out []map[int]int
	for _, x := range xs {
		out = append(out, map[int]int{x: x})
	}
	return out
}
