// Package hotbce flags bounds checks the compiler could not eliminate
// inside scheduling hot loops. The -json=0 optimization log only
// records a bounds check when bounds-check elimination failed, so
// every isInBounds/isSliceInBounds diagnostic is a real per-access
// branch at run time; inside the inner loops of the heuristics those
// add up. Findings are ranked by the dominator-based loop depth of the
// indexing code (ssair.LoopInfo).
//
// A finding can be waived with //lint:boundedidx on the indexing line
// (or the enclosing function declaration) when the index is known
// bounded by construction but the proof is beyond the compiler.
package hotbce

import (
	"schedcomp/internal/lint"
	"schedcomp/internal/lint/optdiag"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the hotbce pass.
var Analyzer = &lint.Analyzer{
	Name: "hotbce",
	Doc: "flag bounds checks the compiler failed to eliminate inside loops of the " +
		"scheduling hot packages, ranked by loop depth; waive provably-bounded " +
		"indexing with //lint:boundedidx",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		return nil
	}
	if !optdiag.HotPath(pass.Pkg.Path()) {
		return nil
	}
	set, err := optdiag.For(pass)
	if err != nil {
		return err
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	pkg, err := pass.Loader.LoadPath(pass.Pkg.Path())
	if err != nil {
		return err
	}
	idx := ssair.NewPosIndex(prog, pkg)
	files := optdiag.PkgFiles(pass)
	for _, d := range optdiag.Dedup(set.All()) {
		var kind string
		switch d.Code {
		case "isInBounds":
			kind = "bounds check"
		case "isSliceInBounds":
			kind = "slice bounds check"
		default:
			continue
		}
		if !files[d.File] {
			continue
		}
		depth, fn, ok := idx.Depth(d.File, d.Line, d.Col)
		if !ok || depth < 1 {
			continue
		}
		pos := optdiag.PosIn(pass, d.File, d.Line, d.Col)
		if !pos.IsValid() {
			continue
		}
		if pass.Annotated(pos, "boundedidx") || waivedFunc(pass, fn) {
			continue
		}
		pass.ReportDepthf(pos, depth,
			"%s not eliminated in a depth-%d scheduling loop; hoist a len check or "+
				"restructure the index (//lint:boundedidx to waive)",
			kind, depth)
	}
	return nil
}

// waivedFunc reports whether fn or an enclosing function carries
// //lint:boundedidx on its declaration.
func waivedFunc(pass *lint.Pass, fn *ssair.Func) bool {
	for f := fn; f != nil; f = f.Parent {
		if pos := f.DeclPos(); pos.IsValid() && pass.Annotated(pos, "boundedidx") {
			return true
		}
	}
	return false
}
