package hotbce_test

import (
	"testing"

	"schedcomp/internal/lint/hotbce"
	"schedcomp/internal/lint/linttest"
)

func TestHotbce(t *testing.T) {
	linttest.Run(t, "testdata", hotbce.Analyzer, "schedcomp/internal/heuristics/bcedemo")
}
