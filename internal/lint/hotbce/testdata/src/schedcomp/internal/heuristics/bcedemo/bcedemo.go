// Package bcedemo exercises hotbce: bounds checks the compiler could
// not eliminate, inside loops of a hot package.
package bcedemo

// SumIndirect indexes xs through idx[i]; the compiler proves idx[i] in
// bounds of idx (i < len(idx)) but cannot bound xs[idx[i]].
func SumIndirect(xs []int, idx []int) int {
	s := 0
	for i := 0; i < len(idx); i++ {
		s += xs[idx[i]] // want `hotbce: bounds check not eliminated in a depth-1 scheduling loop`
	}
	return s
}

// SumNested pays the same check at depth 2.
func SumNested(xs []int, idx []int) int {
	s := 0
	for r := 0; r < len(idx); r++ {
		for i := 0; i < len(idx); i++ {
			s += xs[idx[i]] // want `hotbce: bounds check not eliminated in a depth-2 scheduling loop`
		}
	}
	return s
}

// SumDirect is fully bounds-check eliminated: no finding.
func SumDirect(xs []int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

// Pick has a bounds check, but at depth 0: no finding.
func Pick(xs []int, i int) int {
	return xs[i]
}

// WaivedLine carries the line waiver.
func WaivedLine(xs []int, idx []int) int {
	s := 0
	for i := 0; i < len(idx); i++ {
		s += xs[idx[i]] //lint:boundedidx
	}
	return s
}

//lint:boundedidx
func WaivedFunc(xs []int, idx []int) int {
	s := 0
	for i := 0; i < len(idx); i++ {
		s += xs[idx[i]]
	}
	return s
}
