// Package hotescape flags heap escapes inside scheduling hot loops.
// Unlike hotalloc, which pattern-matches allocation syntax, hotescape
// consumes the compiler's own escape-analysis verdicts (the -json=0
// optimization log, via optdiag): anything the compiler actually
// decided to heap-allocate — including escapes hotalloc cannot see,
// such as interface conversions, variables captured by reference, or
// arguments leaking through calls — is reported when it sits inside a
// loop of a hot package, ranked by the dominator-based loop depth of
// the surrounding code (ssair.LoopInfo).
//
// A finding can be waived with //lint:coldescape on the escaping line
// or on the enclosing function declaration when the allocation is
// genuinely cold or intentional.
package hotescape

import (
	"schedcomp/internal/lint"
	"schedcomp/internal/lint/optdiag"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the hotescape pass.
var Analyzer = &lint.Analyzer{
	Name: "hotescape",
	Doc: "flag compiler-verified heap escapes inside loops of the scheduling hot " +
		"packages, ranked by loop depth (escape analysis log joined to the CFG); " +
		"waive intentional escapes with //lint:coldescape",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		return nil
	}
	if !optdiag.HotPath(pass.Pkg.Path()) {
		return nil
	}
	set, err := optdiag.For(pass)
	if err != nil {
		return err
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	pkg, err := pass.Loader.LoadPath(pass.Pkg.Path())
	if err != nil {
		return err
	}
	idx := ssair.NewPosIndex(prog, pkg)
	files := optdiag.PkgFiles(pass)
	for _, d := range optdiag.Dedup(set.All()) {
		if d.Code != "escape" && d.Code != "escapes" {
			continue
		}
		if !files[d.File] {
			continue
		}
		depth, fn, ok := idx.Depth(d.File, d.Line, d.Col)
		if !ok || depth < 1 {
			continue
		}
		pos := optdiag.PosIn(pass, d.File, d.Line, d.Col)
		if !pos.IsValid() {
			continue
		}
		if pass.Annotated(pos, "coldescape") || coldFunc(pass, fn) {
			continue
		}
		msg := d.Message
		if msg == "" {
			msg = "value escapes to heap"
		}
		pass.ReportDepthf(pos, depth,
			"heap escape in a depth-%d scheduling loop: %s (hoist it out, or //lint:coldescape)",
			depth, msg)
	}
	return nil
}

// coldFunc reports whether fn or an enclosing function carries
// //lint:coldescape on its declaration.
func coldFunc(pass *lint.Pass, fn *ssair.Func) bool {
	for f := fn; f != nil; f = f.Parent {
		if pos := f.DeclPos(); pos.IsValid() && pass.Annotated(pos, "coldescape") {
			return true
		}
	}
	return false
}
