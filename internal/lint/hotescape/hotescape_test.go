package hotescape_test

import (
	"testing"

	"schedcomp/internal/lint/hotescape"
	"schedcomp/internal/lint/linttest"
)

func TestHotescape(t *testing.T) {
	linttest.Run(t, "testdata", hotescape.Analyzer, "schedcomp/internal/heuristics/escdemo")
}
