// Package escdemo exercises hotescape: compiler-verified heap escapes
// in loops of a hot package. The import path sits under
// internal/heuristics so the analyzer's scope gate admits it.
package escdemo

var sink *int

var sinkFn func() int

// PerIterEscape heap-allocates every iteration: new(int) stored to a
// global escapes.
func PerIterEscape(n int) {
	for i := 0; i < n; i++ {
		p := new(int) // want `hotescape: heap escape in a depth-1 scheduling loop`
		*p = i
		sink = p
	}
}

// NestedEscape escapes at depth 2; the message ranks it deeper.
func NestedEscape(n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := new(int) // want `hotescape: heap escape in a depth-2 scheduling loop`
			*p = i * j
			sink = p
		}
	}
}

// ClosureEscape allocates a capturing closure per iteration.
func ClosureEscape(n int) {
	for i := 0; i < n; i++ {
		i := i
		f := func() int { return i } // want `hotescape: heap escape in a depth-1 scheduling loop`
		sinkFn = f
	}
}

// ColdEscape escapes outside any loop: depth 0, no finding.
func ColdEscape() *int {
	p := new(int)
	*p = 7
	return p
}

// WaivedLine carries the line waiver.
func WaivedLine(n int) {
	for i := 0; i < n; i++ {
		//lint:coldescape
		p := new(int)
		*p = i
		sink = p
	}
}

//lint:coldescape
func WaivedFunc(n int) {
	for i := 0; i < n; i++ {
		p := new(int)
		*p = i
		sink = p
	}
}
