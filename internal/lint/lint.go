// Package lint is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis, plus the schedcomp-specific
// analyzers built on top of it (in subpackages). The x/tools module is
// deliberately not used so the linter builds from a clean checkout with
// nothing but the standard library.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The cmd/schedlint multichecker loads every package of
// the module (see Loader) and runs the full suite; each analyzer also
// has a testdata-driven test harness in the linttest subpackage.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Depth is the loop nesting depth the finding is attributed to by
	// depth-ranking analyzers (the perflint pack); 0 when the analyzer
	// does not rank by depth.
	Depth int
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Loader is the loader that produced this package. Whole-program
	// analyzers (the ssair-based passes) use it to pull in the syntax
	// and types of the package's module dependencies; intraprocedural
	// analyzers may ignore it. It is set by cmd/schedlint and linttest
	// but may be nil for hand-constructed passes.
	Loader *Loader
}

// Reportf reports a formatted diagnostic at pos. The message is
// automatically prefixed with the analyzer name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if !strings.HasPrefix(msg, p.Analyzer.Name+":") {
		msg = p.Analyzer.Name + ": " + msg
	}
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// ReportDepthf is Reportf for analyzers that rank findings by loop
// nesting depth; the depth travels on the Diagnostic so drivers can
// sort hot findings first.
func (p *Pass) ReportDepthf(pos token.Pos, depth int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if !strings.HasPrefix(msg, p.Analyzer.Name+":") {
		msg = p.Analyzer.Name + ": " + msg
	}
	p.Report(Diagnostic{Pos: pos, Message: msg, Depth: depth})
}

// FileFor returns the syntax tree containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Annotated reports whether the statement at pos carries the comment
// directive //lint:<directive>, either trailing on the same line or on
// its own line directly above. Directives are written without a space
// (like //go:build), so gofmt leaves them alone and ast.CommentGroup
// .Text() stripping does not apply — the raw comment text is matched.
func (p *Pass) Annotated(pos token.Pos, directive string) bool {
	return AnnotatedIn(p.Fset, p.FileFor(pos), pos, directive)
}

// AnnotatedIn is Pass.Annotated for callers that are not running
// inside a Pass (the ssair taint engine checks suppression comments in
// packages other than the one under analysis). f is the syntax tree
// containing pos; a nil f reports false.
func AnnotatedIn(fset *token.FileSet, f *ast.File, pos token.Pos, directive string) bool {
	if f == nil {
		return false
	}
	want := "//lint:" + directive
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, want) {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// FileIn returns the syntax tree of pkg containing pos, or nil.
func FileIn(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// CalleeFunc resolves the function or method called by call, or nil if
// the callee is not a declared function (e.g. a function-typed
// variable or a builtin). Explicit generic instantiations like
// pq.New[T](...) are unwrapped.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	var obj types.Object
	switch x := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// PathHasAny reports whether the package import path contains any of
// the given fragments. Used by analyzers whose mandate is limited to a
// subset of the tree (the fragments are path substrings such as
// "internal/heuristics").
func PathHasAny(path string, fragments ...string) bool {
	for _, fr := range fragments {
		if strings.Contains(path, fr) {
			return true
		}
	}
	return false
}

// ExprString renders a (small) expression for use in diagnostics.
// It intentionally handles only the shapes that appear in messages;
// anything else renders as "expression".
func ExprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.BasicLit:
		return x.Value
	case *ast.SelectorExpr:
		return ExprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return ExprString(x.X) + "[" + ExprString(x.Index) + "]"
	case *ast.CallExpr:
		return ExprString(x.Fun) + "(…)"
	case *ast.StarExpr:
		return "*" + ExprString(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + ExprString(x.X)
	case *ast.ParenExpr:
		return "(" + ExprString(x.X) + ")"
	case *ast.BinaryExpr:
		return ExprString(x.X) + " " + x.Op.String() + " " + ExprString(x.Y)
	}
	return "expression"
}
