// Package linttest runs lint analyzers over testdata packages and
// checks the reported diagnostics against // want "regexp" comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout (identical to analysistest):
//
//	<analyzer>/testdata/src/<import/path/of/pkg>/*.go
//
// Testdata packages may import real module packages (for example
// schedcomp/internal/pq) and the standard library; the loader resolves
// testdata first, then the module, then std.
//
// An expectation is a trailing comment on the offending line:
//
//	for k := range m { // want `mapiter: range over map`
//
// Lines without a want comment must produce no diagnostic, and every
// want comment must be matched, or the test fails.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"schedcomp/internal/lint"
)

var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
	argRe  = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each testdata package and applies the analyzer, failing t
// on any mismatch between reported diagnostics and want comments.
// testdata is the path of the analyzer's testdata directory (usually
// simply "testdata"); pkgPaths are the import paths of the packages
// under testdata/src to analyze.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	if len(pkgPaths) == 0 {
		t.Fatal("linttest.Run: no packages given")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.SrcRoots = []string{src}
	for _, path := range pkgPaths {
		path := path
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			runOne(t, loader, a, path)
		})
	}
}

func runOne(t *testing.T, loader *lint.Loader, a *lint.Analyzer, path string) {
	t.Helper()
	pkg, err := loader.LoadPath(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	expects, err := parseExpectations(loader, pkg)
	if err != nil {
		t.Fatal(err)
	}
	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
		Loader:    loader,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !consume(expects, filepath.Base(pos.Filename), pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

func consume(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func parseExpectations(loader *lint.Loader, pkg *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := argRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, arg := range args {
					raw := arg[1]
					if arg[1] == "" && arg[2] != "" {
						unq, err := strconv.Unquote(`"` + arg[2] + `"`)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
						}
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
