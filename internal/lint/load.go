package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of the enclosing module from
// source, using only the standard library. Imports are resolved in
// order against SrcRoots (extra GOPATH-style source roots, used by the
// test harness for testdata packages), then the module itself, and
// finally the standard library via go/importer's source importer.
//
// Loading is deterministic: files are parsed in sorted name order and
// packages are returned in sorted path order. Files excluded by build
// constraints (and files named with a leading "_" or ".") are skipped,
// matching the go tool.
//
// By default every Loader shares one process-wide FileSet, standard
// library importer and module-package cache, so the expensive
// source-based type-check of the stdlib (and of module packages that
// many analyzers depend on) happens once per process rather than once
// per Loader. A cmd/schedlint run or a linttest suite constructs many
// loaders; all of them reuse the same checked packages. The shared
// cache assumes SrcRoots never shadow a real module package, which
// holds for all linttest testdata layouts. Loaders are not safe for
// concurrent use.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string
	SrcRoots   []string

	std      types.Importer
	cache    map[string]*Package
	isolated bool
}

// shared is the process-wide cache reused by every non-isolated
// Loader: one FileSet (so positions from shared packages stay valid in
// every loader), one source importer for the standard library, and the
// type-checked module packages keyed by module root + import path.
var shared = struct {
	mu   sync.Mutex
	fset *token.FileSet
	std  types.Importer
	mod  map[string]*Package
}{
	fset: token.NewFileSet(),
	mod:  map[string]*Package{},
}

func sharedStd() types.Importer {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if shared.std == nil {
		shared.std = importer.ForCompiler(shared.fset, "source", nil)
	}
	return shared.std
}

func sharedModGet(root, path string) (*Package, bool) {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	p, ok := shared.mod[root+"\x00"+path]
	return p, ok
}

func sharedModPut(root, path string, p *Package) {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	shared.mod[root+"\x00"+path] = p
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader returns a loader rooted at the module containing dir,
// sharing the process-wide stdlib and module-package caches.
func NewLoader(dir string) (*Loader, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	l.Fset = shared.fset
	l.std = sharedStd()
	return l, nil
}

// NewIsolatedLoader returns a loader with a private FileSet, stdlib
// importer and cache, bypassing the shared caches entirely. It exists
// so tests and benchmarks can measure (or force) cold loads; regular
// callers want NewLoader.
func NewIsolatedLoader(dir string) (*Loader, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	l.isolated = true
	l.Fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

func newLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		cache:      map[string]*Package{},
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer so the loader can resolve the
// imports of the packages it checks.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p.Types, nil
	}
	if dir := l.resolveDir(path); dir != "" {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Resolvable reports whether path is resolved from source by this
// loader (a module or SrcRoots package) rather than delegated to the
// standard library importer. Analyzers that need function bodies (the
// ssair program builder) use it to decide which imports to pull in.
func (l *Loader) Resolvable(path string) bool {
	return l.resolveDir(path) != ""
}

// resolveDir maps an import path to a source directory, or "" when the
// path belongs to the standard library.
func (l *Loader) resolveDir(path string) string {
	for _, root := range l.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
		if hasGoFiles(dir) {
			return dir
		}
	}
	return ""
}

// goFilesIn lists the compilable Go files of dir in sorted order:
// non-test .go files that are not excluded by build constraints and do
// not carry the go tool's "_"/"." ignore prefixes.
func goFilesIn(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries { // ReadDir sorts by name: deterministic
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		out = append(out, name)
	}
	return out
}

func hasGoFiles(dir string) bool {
	return len(goFilesIn(dir)) > 0
}

// LoadPath loads and type-checks a single package by import path.
func (l *Loader) LoadPath(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := l.resolveDir(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: cannot resolve package %q", path)
	}
	return l.load(path, dir)
}

// fromModule reports whether dir lies under the module root rather
// than under a SrcRoots testdata tree; only such packages go through
// the shared cross-loader cache.
func (l *Loader) fromModule(dir string) bool {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	return err == nil && !strings.HasPrefix(rel, "..")
}

func (l *Loader) load(path, dir string) (*Package, error) {
	shareable := !l.isolated && l.fromModule(dir)
	if shareable {
		if p, ok := sharedModGet(l.ModuleRoot, path); ok {
			l.cache[path] = p
			return p, nil
		}
	}
	names := goFilesIn(dir)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, TypesInfo: info}
	l.cache[path] = p
	if shareable {
		sharedModPut(l.ModuleRoot, path, p)
	}
	return p, nil
}

// Load expands the given package patterns ("./...", "./internal/...",
// "./internal/pq", or fully qualified import paths) against the module
// and returns the matching packages, type-checked, in sorted path
// order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (l *Loader) expand(patterns []string) ([]string, error) {
	all, err := l.modulePackages()
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "/")
		// Normalize to an import path (possibly with /... suffix).
		switch {
		case pat == "." || pat == "./...":
			pat = strings.Replace(pat, ".", l.ModulePath, 1)
		case strings.HasPrefix(pat, "./"):
			pat = l.ModulePath + pat[1:]
		}
		sub, matched := strings.CutSuffix(pat, "/...")
		n := 0
		for _, p := range all {
			if p == pat || (matched && (p == sub || strings.HasPrefix(p, sub+"/"))) {
				set[p] = true
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("lint: pattern %q matches no packages", pat)
		}
	}
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// modulePackages walks the module tree and returns the import paths of
// every package directory, skipping testdata, hidden directories and
// nested lint testdata modules.
func (l *Loader) modulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
			return nil
		}
		out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
