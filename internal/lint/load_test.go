package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"schedcomp/internal/lint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestFindModuleRoot(t *testing.T) {
	root := moduleRoot(t)
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %q has no go.mod: %v", root, err)
	}
}

func TestLoaderLoadsRealPackage(t *testing.T) {
	l, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadPath("schedcomp/internal/dag")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "dag" {
		t.Fatalf("package name = %q, want dag", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if pkg.Types.Scope().Lookup("Graph") == nil {
		t.Fatal("type Graph not found in schedcomp/internal/dag")
	}
	// Loading again must hit the cache and return the identical package.
	again, err := l.LoadPath("schedcomp/internal/dag")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("second LoadPath returned a different *Package; cache miss")
	}
}

func TestLoaderPatternExpansion(t *testing.T) {
	l, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/heuristics/...")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{
		"schedcomp/internal/heuristics",
		"schedcomp/internal/heuristics/mh",
		"schedcomp/internal/heuristics/schedtest",
	} {
		if !seen[want] {
			t.Errorf("pattern ./internal/heuristics/... missed %s (got %d packages)", want, len(pkgs))
		}
	}
	// Deterministic order: paths must come back sorted.
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path > pkgs[i].Path {
			t.Fatalf("packages out of order: %s before %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
}
