package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"schedcomp/internal/lint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestFindModuleRoot(t *testing.T) {
	root := moduleRoot(t)
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %q has no go.mod: %v", root, err)
	}
}

func TestLoaderLoadsRealPackage(t *testing.T) {
	l, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadPath("schedcomp/internal/dag")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "dag" {
		t.Fatalf("package name = %q, want dag", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if pkg.Types.Scope().Lookup("Graph") == nil {
		t.Fatal("type Graph not found in schedcomp/internal/dag")
	}
	// Loading again must hit the cache and return the identical package.
	again, err := l.LoadPath("schedcomp/internal/dag")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("second LoadPath returned a different *Package; cache miss")
	}
}

// writeModule materializes a throwaway module under t.TempDir for
// loader edge-case tests. files maps module-relative paths to content.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderSkipsBuildTagExcludedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"pkg/a.go": "package pkg\n\nfunc A() int { return 1 }\n",
		// Without build-constraint filtering this file would redeclare A
		// and fail the type check.
		"pkg/b.go": "//go:build ignore\n\npackage pkg\n\nfunc A() int { return 2 }\n",
		// The go tool also ignores files with a leading underscore.
		"pkg/_c.go": "package pkg\n\nfunc A() int { return 3 }\n",
	})
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadPath("tmpmod/pkg")
	if err != nil {
		t.Fatalf("load with excluded files: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (build-tag and underscore files skipped)", len(pkg.Files))
	}
}

func TestLoaderTestOnlyPackageIsNotAPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"pkg/a.go":          "package pkg\n\nfunc A() int { return 1 }\n",
		"only/only_test.go": "package only\n\nimport \"testing\"\n\nfunc TestNothing(t *testing.T) {}\n",
	})
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPath("tmpmod/only"); err == nil {
		t.Fatal("LoadPath on a _test.go-only directory succeeded, want error")
	}
	if _, err := l.Load("./only"); err == nil {
		t.Fatal("Load pattern over a _test.go-only directory succeeded, want error")
	}
	// The package walk must not surface the test-only directory either.
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if p.Path == "tmpmod/only" {
			t.Fatal("./... expansion included the test-only package")
		}
	}
}

func TestLoaderReportsSyntaxErrors(t *testing.T) {
	root := writeModule(t, map[string]string{
		"pkg/a.go":    "package pkg\n\nfunc A() int { return 1 }\n",
		"broken/b.go": "package broken\n\nfunc B( {\n",
	})
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPath("tmpmod/broken"); err == nil {
		t.Fatal("LoadPath on a syntactically broken package succeeded, want error")
	}
	// A broken sibling must not poison loading of healthy packages.
	if _, err := l.LoadPath("tmpmod/pkg"); err != nil {
		t.Fatalf("healthy package failed to load after broken one: %v", err)
	}
}

func TestLoaderReportsTypeErrors(t *testing.T) {
	root := writeModule(t, map[string]string{
		"pkg/a.go": "package pkg\n\nfunc A() int { return \"not an int\" }\n",
	})
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPath("tmpmod/pkg"); err == nil {
		t.Fatal("LoadPath on a type-broken package succeeded, want error")
	}
}

func TestSharedModuleCacheAcrossLoaders(t *testing.T) {
	root := moduleRoot(t)
	a, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.LoadPath("schedcomp/internal/pq")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.LoadPath("schedcomp/internal/pq")
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatal("two loaders re-checked the same module package; shared cache miss")
	}
	if a.Fset != b.Fset {
		t.Fatal("shared loaders must share a FileSet or cached positions go stale")
	}
}

// The pair below is the satellite benchmark: a fresh Loader per
// iteration, loading a package whose imports pull in a slice of the
// standard library. The shared variant hits the process-wide stdlib
// and module caches after the first iteration; the isolated variant
// re-type-checks the stdlib from source every time. Run with
// `go test -bench Loader ./internal/lint` to see the gap (orders of
// magnitude on this module).
func BenchmarkFreshLoaderSharedCache(b *testing.B) {
	root := benchRoot(b)
	// Warm the shared cache so every measured iteration is the steady
	// state a multichecker or test suite sees.
	warm, err := lint.NewLoader(root)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.LoadPath("schedcomp/internal/dag"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := lint.NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.LoadPath("schedcomp/internal/dag"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFreshLoaderIsolated(b *testing.B) {
	root := benchRoot(b)
	for i := 0; i < b.N; i++ {
		l, err := lint.NewIsolatedLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.LoadPath("schedcomp/internal/dag"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRoot(b *testing.B) string {
	b.Helper()
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		b.Fatal(err)
	}
	return root
}

func TestLoaderPatternExpansion(t *testing.T) {
	l, err := lint.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/heuristics/...")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{
		"schedcomp/internal/heuristics",
		"schedcomp/internal/heuristics/mh",
		"schedcomp/internal/heuristics/schedtest",
	} {
		if !seen[want] {
			t.Errorf("pattern ./internal/heuristics/... missed %s (got %d packages)", want, len(pkgs))
		}
	}
	// Deterministic order: paths must come back sorted.
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path > pkgs[i].Path {
			t.Fatalf("packages out of order: %s before %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
}
