// Package locksafe checks lock sections interprocedurally: code
// holding a sync.Mutex or sync.RWMutex must not reach a channel
// operation, a blocking admission path, or a second acquisition of the
// same lock — the exact hazard the serve pipeline's Close-vs-send
// protocol hand-verifies today. A non-blocking send (a select with a
// default clause) is fine under a read lock; a blocking one deadlocks
// against Close the moment the queue fills.
//
// The pass runs a forward may-held dataflow over each function's ssair
// CFG, naming locks by their receiver chain (p.mu, g.mu, reg.mu).
// Callee behavior is summarized over the whole program: a function
// that performs channel operations, waits on a WaitGroup/Cond, sleeps,
// or acquires a lock — transitively through static calls — counts as
// may-block at its call sites. Deferred and go-statement calls do not
// block at the point they appear and are excluded from the in-function
// events (they still contribute to the callee summary, since a defer
// runs before the callee returns).
//
// A second family of findings covers panic safety: a lock acquired
// without a deferred unlock, held across a call that may panic (any
// path to a builtin panic inside the module), stays locked while the
// panic unwinds. Release with defer or prove the section total.
//
// Intentional violations — the batch submit path deliberately blocks
// under the read lock, bounded by the request context — are waived
// with //lint:lockheld on the offending line or function declaration.
package locksafe

import (
	"go/types"
	"sort"
	"strings"
	"sync"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the locksafe pass.
var Analyzer = &lint.Analyzer{
	Name: "locksafe",
	Doc: "a held sync.Mutex/RWMutex must not reach a channel operation, a " +
		"blocking call, or a re-lock of the same lock; locks held across " +
		"may-panic calls must be released with defer",
	Run: run,
}

const directive = "lockheld"

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		return nil
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	sums := summarize(prog)
	for _, fn := range prog.FuncsOf(pass.Pkg) {
		checkFunc(pass, prog, sums, fn)
	}
	return nil
}

// ---- lock-call classification ----

// lockKind classifies a call as an acquisition or release of a sync
// lock; "" for anything else.
func lockKind(f *types.Func) string {
	for _, tn := range []string{"Mutex", "RWMutex"} {
		for _, m := range []string{"Lock", "RLock"} {
			if ssair.MethodOn(f, "sync", tn, m) {
				return "lock"
			}
		}
		for _, m := range []string{"Unlock", "RUnlock"} {
			if ssair.MethodOn(f, "sync", tn, m) {
				return "unlock"
			}
		}
	}
	return ""
}

// blockingStdlib reports whether f is a standard-library call that can
// block indefinitely (lock methods are handled separately).
func blockingStdlib(f *types.Func) bool {
	return ssair.MethodOn(f, "sync", "WaitGroup", "Wait") ||
		ssair.MethodOn(f, "sync", "Cond", "Wait") ||
		ssair.PkgFunc(f, "time", "Sleep")
}

// ident renders the lock identity of the receiver value chain (p.mu,
// g.mu, reg.mu); "?" when the chain cannot be named.
func ident(v *ssair.Value) string {
	switch v.Op {
	case ssair.OpParam, ssair.OpFreeVar, ssair.OpGlobal, ssair.OpStore, ssair.OpMutate:
		if v.Var != nil {
			return v.Var.Name()
		}
	case ssair.OpField:
		if base := ident(v.Args[0]); base != "?" {
			return base + "." + v.Aux
		}
	case ssair.OpDeref, ssair.OpAddr:
		return ident(v.Args[0])
	}
	return "?"
}

// ---- whole-program may-block / may-panic summaries ----

type summaries struct {
	version int
	blocks  map[*ssair.Func]bool
	panics  map[*ssair.Func]bool
}

var memo sync.Map // *ssair.Program -> *summaries

// callTarget resolves the module-internal body a call runs, if any:
// the static callee's Func, or a directly-invoked closure.
func callTarget(prog *ssair.Program, v *ssair.Value) *ssair.Func {
	if v.Callee != nil {
		return prog.Funcs[v.Callee]
	}
	if len(v.Args) > 0 && v.Args[0].Op == ssair.OpClosure {
		return v.Args[0].Closure
	}
	return nil
}

// summarize computes, per function, whether calling it may block and
// whether it may panic, to a fixpoint over the static call graph.
// Results are memoized per program version.
func summarize(prog *ssair.Program) *summaries {
	if v, ok := memo.Load(prog); ok {
		if s := v.(*summaries); s.version == prog.Version() {
			return s
		}
	}
	s := &summaries{
		version: prog.Version(),
		blocks:  map[*ssair.Func]bool{},
		panics:  map[*ssair.Func]bool{},
	}
	for _, fn := range prog.All {
		for _, v := range fn.Values {
			switch v.Op {
			case ssair.OpPanic:
				s.panics[fn] = true
			case ssair.OpSend, ssair.OpRecv:
				if v.Aux != "select-default" && v.Aux != "select" {
					s.blocks[fn] = true
				}
			case ssair.OpSelect:
				if v.Aux != "default" {
					s.blocks[fn] = true
				}
			case ssair.OpRangeKey:
				if v.Aux == "chan" {
					s.blocks[fn] = true
				}
			case ssair.OpCall:
				if v.Aux == "go" {
					continue // runs on another goroutine
				}
				if v.Callee != nil && (blockingStdlib(v.Callee) || lockKind(v.Callee) == "lock") {
					s.blocks[fn] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.All {
			for _, v := range fn.Values {
				if v.Op != ssair.OpCall || v.Aux == "go" {
					continue
				}
				t := callTarget(prog, v)
				if t == nil {
					continue
				}
				if s.blocks[t] && !s.blocks[fn] {
					s.blocks[fn], changed = true, true
				}
				if s.panics[t] && !s.panics[fn] {
					s.panics[fn], changed = true, true
				}
			}
		}
	}
	memo.Store(prog, s)
	return s
}

// ---- per-function held-lock dataflow ----

type state map[string]bool

func (st state) clone() state {
	n := make(state, len(st))
	for k := range st {
		n[k] = true
	}
	return n
}

func (st state) names() string {
	var ks []string
	for k := range st {
		if k == "?" {
			k = "a lock"
		}
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ", ")
}

// step applies one value's effect on the held set.
func step(st state, v *ssair.Value) {
	if v.Op != ssair.OpCall || v.Callee == nil || v.Aux == "defer" || v.Aux == "go" {
		return
	}
	switch lockKind(v.Callee) {
	case "lock":
		st[recvIdent(v)] = true
	case "unlock":
		if id := recvIdent(v); id == "?" {
			clear(st)
		} else {
			delete(st, id)
		}
	}
}

func recvIdent(v *ssair.Value) string {
	if len(v.Args) == 0 {
		return "?"
	}
	return ident(v.Args[0])
}

func checkFunc(pass *lint.Pass, prog *ssair.Program, sums *summaries, fn *ssair.Func) {
	if fn.Approx {
		return
	}
	hasLocks := false
	deferUnlocked := map[string]bool{}
	for _, v := range fn.Values {
		if v.Op != ssair.OpCall || v.Callee == nil {
			continue
		}
		switch lockKind(v.Callee) {
		case "lock":
			hasLocks = true
		case "unlock":
			if v.Aux == "defer" {
				deferUnlocked[recvIdent(v)] = true
			}
		}
	}
	if !hasLocks {
		return
	}

	// Forward may-held fixpoint: a lock is held at a point if it is
	// held on any path reaching it.
	in := make([]state, len(fn.Blocks))
	out := make([]state, len(fn.Blocks))
	for i := range fn.Blocks {
		in[i], out[i] = state{}, state{}
	}
	for round, changed := 0, true; changed && round < 100; round++ {
		changed = false
		for i, blk := range fn.Blocks {
			st := state{}
			for _, pred := range blk.Preds {
				for k := range out[pred.Index] {
					st[k] = true
				}
			}
			in[i] = st.clone()
			for _, v := range blk.Values {
				step(st, v)
			}
			if len(st) != len(out[i]) {
				out[i], changed = st, true
				continue
			}
			for k := range st {
				if !out[i][k] {
					out[i], changed = st, true
					break
				}
			}
		}
	}

	waived := func(v *ssair.Value) bool {
		return lint.AnnotatedIn(prog.Fset(), prog.FileFor(fn, v.Pos), v.Pos, directive) ||
			lint.AnnotatedIn(prog.Fset(), prog.FileFor(fn, fn.DeclPos()), fn.DeclPos(), directive)
	}

	panicReported := map[string]bool{}
	for i, blk := range fn.Blocks {
		st := in[i].clone()
		for _, v := range blk.Values {
			report(pass, prog, sums, fn, st, v, deferUnlocked, panicReported, waived)
			step(st, v)
		}
	}
}

// report emits findings for v given the locks held just before it.
func report(pass *lint.Pass, prog *ssair.Program, sums *summaries, fn *ssair.Func,
	st state, v *ssair.Value, deferUnlocked, panicReported map[string]bool, waived func(*ssair.Value) bool) {

	held := len(st) > 0

	// Re-lock of an already-held lock (self-deadlock, or reader
	// starvation for RLock-under-Lock).
	if v.Op == ssair.OpCall && v.Callee != nil && v.Aux != "defer" && v.Aux != "go" {
		if lockKind(v.Callee) == "lock" {
			if id := recvIdent(v); id != "?" && st[id] && !waived(v) {
				pass.Reportf(v.Pos, "%s of %s while %s is already held (self-deadlock)", v.Callee.Name(), id, id)
			}
			return
		}
		if lockKind(v.Callee) == "unlock" {
			return
		}
	}

	if !held {
		return
	}

	switch v.Op {
	case ssair.OpSend:
		if v.Aux == "" && !waived(v) {
			pass.Reportf(v.Pos, "channel send while holding %s; Close-style writers on the same lock deadlock here", st.names())
		}
	case ssair.OpRecv:
		if v.Aux == "" && !waived(v) {
			pass.Reportf(v.Pos, "channel receive while holding %s", st.names())
		}
	case ssair.OpRangeKey:
		if v.Aux == "chan" && !waived(v) {
			pass.Reportf(v.Pos, "range over channel while holding %s", st.names())
		}
	case ssair.OpSelect:
		if v.Aux != "default" && !waived(v) {
			pass.Reportf(v.Pos, "blocking select while holding %s; add a default clause or release the lock first", st.names())
		}
	case ssair.OpPanic:
		reportPanicHeld(pass, fn, st, v, deferUnlocked, panicReported, waived, "panic")
	case ssair.OpCall:
		if v.Aux == "defer" || v.Aux == "go" {
			return
		}
		t := callTarget(prog, v)
		name := calleeName(v)
		if (v.Callee != nil && blockingStdlib(v.Callee)) || (t != nil && sums.blocks[t]) {
			if !waived(v) {
				pass.Reportf(v.Pos, "call to %s may block (channel or lock wait) while holding %s", name, st.names())
			}
		}
		if t != nil && sums.panics[t] {
			reportPanicHeld(pass, fn, st, v, deferUnlocked, panicReported, waived, "call to "+name+" may panic")
		}
	}
}

func reportPanicHeld(pass *lint.Pass, fn *ssair.Func, st state, v *ssair.Value,
	deferUnlocked, panicReported map[string]bool, waived func(*ssair.Value) bool, what string) {
	for id := range st {
		if id == "?" || deferUnlocked[id] || panicReported[id] {
			continue
		}
		panicReported[id] = true
		if !waived(v) {
			pass.Reportf(v.Pos, "%s while %s is held without a deferred unlock; the lock stays held through the unwind", what, id)
		}
	}
}

func calleeName(v *ssair.Value) string {
	if v.Callee != nil {
		return v.Callee.Name()
	}
	if len(v.Args) > 0 && v.Args[0].Op == ssair.OpClosure {
		return "func literal"
	}
	return "dynamic callee"
}
