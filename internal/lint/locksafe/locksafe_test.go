package locksafe_test

import (
	"testing"

	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata", locksafe.Analyzer,
		"schedcomp/internal/lockdemo",
	)
}
