// Package lockdemo exercises locksafe: channel operations and
// blocking calls under a held lock, re-locks, and panic paths without
// a deferred unlock.
package lockdemo

import "sync"

// Pool is a miniature of the serve pipeline's admission state.
type Pool struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	queue chan int
	n     int
}

// SendHeld blocks on the queue with the mutex held: a closer that
// takes the same mutex can never drain it.
func (p *Pool) SendHeld(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queue <- v // want `locksafe: channel send while holding p\.mu; Close-style writers on the same lock deadlock here`
}

// RecvHeld parks on a receive with the mutex held.
func (p *Pool) RecvHeld() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.queue // want `locksafe: channel receive while holding p\.mu`
}

// Relock re-acquires a lock this goroutine already holds.
func (p *Pool) Relock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mu.Lock() // want `locksafe: Lock of p\.mu while p\.mu is already held \(self-deadlock\)`
	p.n++
}

// SelectHeld has no default clause, so the select parks under the
// read lock.
func (p *Pool) SelectHeld(v int) {
	p.rw.RLock()
	defer p.rw.RUnlock()
	select { // want `locksafe: blocking select while holding p\.rw; add a default clause or release the lock first`
	case p.queue <- v:
	}
}

// drain blocks on the channel; it takes no lock itself, so the hazard
// only exists at call sites that hold one.
func (p *Pool) drain() {
	for range p.queue {
	}
}

// DrainHeld calls the blocking helper with the mutex held — the
// interprocedural may-block summary catches it.
func (p *Pool) DrainHeld() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drain() // want `locksafe: call to drain may block \(channel or lock wait\) while holding p\.mu`
}

// Bump panics on bad input with the mutex held and no deferred
// unlock: the lock survives the unwind.
func (p *Pool) Bump() {
	p.mu.Lock()
	if p.n < 0 {
		panic("negative") // want `locksafe: panic while p\.mu is held without a deferred unlock; the lock stays held through the unwind`
	}
	p.n++
	p.mu.Unlock()
}

// check panics on bad input; callers holding a lock inherit the risk.
func check(n int) {
	if n < 0 {
		panic("bad count")
	}
}

// Add reaches a may-panic callee with the mutex held, unlocking
// manually.
func (p *Pool) Add(n int) {
	p.mu.Lock()
	check(n) // want `locksafe: call to check may panic while p\.mu is held without a deferred unlock`
	p.n += n
	p.mu.Unlock()
}

// TryPut is the sanctioned non-blocking shape: a default clause means
// the select cannot park under the read lock.
func (p *Pool) TryPut(v int) bool {
	p.rw.RLock()
	defer p.rw.RUnlock()
	select {
	case p.queue <- v:
		return true
	default:
		return false
	}
}

// MustBump panics with the lock held, but the deferred unlock runs
// during the unwind — no finding.
func (p *Pool) MustBump() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n < 0 {
		panic("negative")
	}
	p.n++
}

// PutUnlocked releases the lock before the blocking send.
func (p *Pool) PutUnlocked(v int) {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	p.queue <- v
}

// Async hands the blocking helper to another goroutine; this
// goroutine never parks while holding the lock.
func (p *Pool) Async() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go p.drain()
	p.n++
}

// SubmitBlocking is the deliberate backpressure shape: admission
// blocks under the read lock, bounded by the consumer at the far end.
func (p *Pool) SubmitBlocking(v int) {
	p.rw.RLock()
	defer p.rw.RUnlock()
	p.queue <- v //lint:lockheld admission backpressure is bounded by the worker pool
}
