// Package mapiter flags `for range` statements over maps inside the
// packages that must produce deterministic output (the heuristics, the
// clan decomposition and the graph generator). Go randomizes map
// iteration order, so any schedule-affecting loop over a map is a
// nondeterminism bug — the classic source of irreproducible schedules.
//
// The fix is to iterate over sorted keys (or sort the collected
// results). A loop whose output is made order-independent afterwards
// can be annotated with a trailing or preceding //lint:sorted comment.
package mapiter

import (
	"go/ast"
	"go/types"

	"schedcomp/internal/lint"
)

// Scope lists the package-path fragments this analyzer polices.
var Scope = []string{"internal/heuristics", "internal/clan", "internal/gen"}

// Analyzer is the mapiter pass.
var Analyzer = &lint.Analyzer{
	Name: "mapiter",
	Doc: "flag nondeterministic map iteration in schedule-producing packages " +
		"(internal/heuristics, internal/clan, internal/gen); annotate //lint:sorted " +
		"when the loop's result is made order-independent",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathHasAny(pass.Pkg.Path(), Scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Annotated(rs.Pos(), "sorted") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has nondeterministic order; iterate sorted keys, or annotate //lint:sorted after sorting the result",
				lint.ExprString(rs.X))
			return true
		})
	}
	return nil
}
