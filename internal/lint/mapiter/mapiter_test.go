package mapiter_test

import (
	"testing"

	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/mapiter"
)

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata", mapiter.Analyzer,
		"schedcomp/internal/heuristics/mapiterdemo",
		"schedcomp/internal/report/mapiterscope",
	)
}
