// Package mapiterdemo exercises the mapiter analyzer: its import path
// places it inside the policed internal/heuristics subtree.
package mapiterdemo

import "sort"

func flagged(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `mapiter: range over map m has nondeterministic order`
		out = append(out, v)
	}
	return out
}

func flaggedKeyOnly(prio map[string]int) int {
	best := 0
	for k := range prio { // want `mapiter: range over map prio`
		if prio[k] > best {
			best = prio[k]
		}
	}
	return best
}

type state struct {
	members map[int][]int
}

func flaggedField(s *state) int {
	n := 0
	for _, ms := range s.members { // want `mapiter: range over map s.members`
		n += len(ms)
	}
	return n
}

func annotatedTrailing(m map[int]string) []string {
	var out []string
	for _, v := range m { //lint:sorted
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func annotatedPreceding(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//lint:sorted
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cleanSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func cleanChannel(ch chan int) int {
	total := 0
	for x := range ch {
		total += x
	}
	return total
}
