// Package mapiterscope sits outside the packages mapiter polices
// (heuristics, clan, gen): map iteration here is not schedule-affecting
// and must not be flagged.
package mapiterscope

func unflagged(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}
