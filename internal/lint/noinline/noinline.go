// Package noinline flags call sites in deeply nested scheduling loops
// (dominator loop depth >= 2) whose callee the compiler refused to
// inline, with the compiler's own reason from the -json=0 optimization
// log: "marked go:noinline", "function too complex: cost N exceeds
// budget 80", and so on. A depth-2 call that is not inlined pays the
// call overhead on every inner iteration and blocks the optimizations
// (escape analysis, BCE) that inlining would have unlocked.
//
// The join runs both ways: a cannotInlineCall diagnostic at the call
// site, or a cannotInlineFunction diagnostic at the callee's
// declaration (possibly in a different hot package). Callees outside
// the compiled hot set (standard library, interface methods, function
// values) are skipped — no verdict, no finding.
//
// A finding can be waived with //lint:outlined on the call line when
// keeping the call outlined is intentional (code size, icache).
package noinline

import (
	"go/ast"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/optdiag"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the noinline pass.
var Analyzer = &lint.Analyzer{
	Name: "noinline",
	Doc: "flag calls in depth>=2 scheduling loops whose callee the compiler " +
		"rejected for inlining, quoting the compiler's reason; waive deliberate " +
		"outlining with //lint:outlined",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		return nil
	}
	if !optdiag.HotPath(pass.Pkg.Path()) {
		return nil
	}
	set, err := optdiag.For(pass)
	if err != nil {
		return err
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	pkg, err := pass.Loader.LoadPath(pass.Pkg.Path())
	if err != nil {
		return err
	}
	idx := ssair.NewPosIndex(prog, pkg)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			check(pass, set, idx, call)
			return true
		})
	}
	return nil
}

func check(pass *lint.Pass, set *optdiag.Set, idx *ssair.PosIndex, call *ast.CallExpr) {
	cp := pass.Fset.Position(call.Pos())
	depth, _, ok := idx.Depth(cp.Filename, cp.Line, cp.Column)
	if !ok || depth < 2 {
		return
	}
	name, reason := verdict(pass, set, call)
	if reason == "" {
		return
	}
	if pass.Annotated(call.Pos(), "outlined") {
		return
	}
	pass.ReportDepthf(call.Pos(), depth,
		"call to %s in a depth-%d scheduling loop is not inlined: %s "+
			"(shrink or split the callee, or //lint:outlined)",
		name, depth, reason)
}

// verdict returns the called function's display name and the
// compiler's non-inlining reason, or "" when the call was inlined or
// no verdict is available.
func verdict(pass *lint.Pass, set *optdiag.Set, call *ast.CallExpr) (name, reason string) {
	cp := pass.Fset.Position(call.Pos())
	// Call-site verdict: the compiler anchors cannotInlineCall at the
	// call expression; accept any on the same line (column drift across
	// expression shapes is common).
	for _, d := range set.At(cp.Filename, cp.Line) {
		if d.Code == "cannotInlineCall" && d.Message != "" {
			return lint.ExprString(call.Fun), d.Message
		}
	}
	// Callee verdict: cannotInlineFunction is anchored at the callee's
	// declaring identifier, which is exactly types.Func.Pos().
	callee := lint.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || !callee.Pos().IsValid() {
		return "", ""
	}
	dp := pass.Fset.Position(callee.Pos())
	for _, d := range set.At(dp.Filename, dp.Line) {
		if d.Code == "cannotInlineFunction" && d.Col == dp.Column {
			return callee.Name(), d.Message
		}
	}
	return "", ""
}
