package noinline_test

import (
	"testing"

	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/noinline"
)

func TestNoinline(t *testing.T) {
	linttest.Run(t, "testdata", noinline.Analyzer, "schedcomp/internal/heuristics/inldemo")
}
