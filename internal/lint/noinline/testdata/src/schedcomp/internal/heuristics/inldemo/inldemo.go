// Package inldemo exercises noinline: calls in depth>=2 loops whose
// callee the compiler refused to inline. The go:noinline pragma gives
// a version-stable rejection reason.
package inldemo

//go:noinline
func heavy(x int) int {
	return x*x + 3
}

func small(x int) int {
	return x + 1
}

// Grid calls a rejected callee at depth 2: finding, with the
// compiler's reason. The inlinable small() call produces none.
func Grid(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += heavy(i * j) // want `noinline: call to heavy in a depth-2 scheduling loop is not inlined: marked go:noinline`
			s += small(j)
		}
	}
	return s
}

// Shallow calls the rejected callee at depth 1 only: below the gate,
// no finding.
func Shallow(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += heavy(i)
	}
	return s
}

// Waived keeps the call outlined on purpose.
func Waived(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += heavy(i + j) //lint:outlined
		}
	}
	return s
}
