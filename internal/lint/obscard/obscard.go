// Package obscard protects /metrics cardinality: every metric label
// value handed to internal/obs must originate from a provably finite
// set — string literals and constants, the heuristic registry's Name()
// convention, numeric conversions (strconv.Itoa of a status code) —
// and never from request-derived strings. One graph name or query
// parameter used as a label value mints a fresh time series per
// request, and the sharded scale-out multiplies that by instance
// count.
//
// The pass runs a small whole-program classification over ssair: each
// string value is finite, unbounded, or parameter-polymorphic (it
// inherits the classification of a caller's argument). Unbounded
// origins are request-derived inputs (*http.Request, url.Values,
// http.Header, *url.URL parameters and everything flowing out of
// them), dag.Graph.Name() (caller-supplied, unbounded), error texts
// via Error(), and os.Getenv. Finite origins are constants, numeric
// strconv conversions, and niladic Name() string methods other than
// dag.Graph's — the registry-table convention. Unknown calls join
// their arguments, so fmt.Sprintf is exactly as bounded as what it
// formats.
//
// Sinks are obs.L(key, value) calls and obs.Label composite literals.
// When a sink consumes a parameter, the parameter becomes a label sink
// for every caller, interprocedurally. A value the analysis cannot
// prove finite but the author can is waived with //lint:boundedlabel
// on the sink (or flagged call) line.
package obscard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the obscard pass.
var Analyzer = &lint.Analyzer{
	Name: "obscard",
	Doc: "metric label values must come from provably finite sets (name tables, " +
		"constants, numeric conversions), never from request-derived strings",
	Run: run,
}

const (
	obsPath   = "schedcomp/internal/obs"
	dagPath   = "schedcomp/internal/dag"
	directive = "boundedlabel"
)

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		return nil
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	e := analyze(prog)
	for _, f := range e.findings {
		if f.fn.Pkg == nil || f.fn.Pkg.Types != pass.Pkg {
			continue
		}
		if !prog.FirstSighting("obscard", [2]int{int(f.pos), len(f.msg)}) {
			continue
		}
		if lint.AnnotatedIn(prog.Fset(), prog.FileFor(f.fn, f.pos), f.pos, directive) ||
			lint.AnnotatedIn(prog.Fset(), prog.FileFor(f.fn, f.fn.DeclPos()), f.fn.DeclPos(), directive) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

// ---- classification engine ----

// A mask classifies a string value: bit 0 set means unbounded; bit
// i+1 set means "as bounded as parameter i of the enclosing function".
type mask uint64

const unbounded mask = 1

func paramBit(i int64) mask {
	if i >= 62 {
		return unbounded // out of bits: be conservative
	}
	return mask(1) << (i + 1)
}

type finding struct {
	fn  *ssair.Func
	pos token.Pos
	msg string
}

type engine struct {
	version int
	prog    *ssair.Program
	masks   map[*ssair.Value]mask
	why     map[*ssair.Value]string // unbounded origin, for messages
	ret     map[*ssair.Func]mask
	retWhy  map[*ssair.Func]string
	// sinkParams marks parameters that flow into a label sink inside
	// the function (directly or transitively).
	sinkParams map[*ssair.Func]mask
	findings   []finding
	seen       map[sinkKey]bool
}

type sinkKey struct {
	pos token.Pos
	msg string
}

var memo sync.Map // *ssair.Program -> *engine

func analyze(prog *ssair.Program) *engine {
	if v, ok := memo.Load(prog); ok {
		if e := v.(*engine); e.version == prog.Version() {
			return e
		}
	}
	e := &engine{
		version:    prog.Version(),
		prog:       prog,
		masks:      map[*ssair.Value]mask{},
		why:        map[*ssair.Value]string{},
		ret:        map[*ssair.Func]mask{},
		retWhy:     map[*ssair.Func]string{},
		sinkParams: map[*ssair.Func]mask{},
		seen:       map[sinkKey]bool{},
	}
	for round, changed := 0, true; changed && round < 1000; round++ {
		changed = e.propagate()
		changed = e.collectSinks() || changed
	}
	memo.Store(prog, e)
	return e
}

// set updates v's classification, returning true on change.
func (e *engine) set(v *ssair.Value, m mask, why string) bool {
	old := e.masks[v]
	m |= old
	if m == old {
		return false
	}
	e.masks[v] = m
	if m&unbounded != 0 && e.why[v] == "" && why != "" {
		e.why[v] = why
	}
	return true
}

func (e *engine) propagate() bool {
	changed := false
	for _, fn := range e.prog.All {
		for _, v := range fn.Values {
			m, why := e.transfer(v)
			if e.set(v, m, why) {
				changed = true
			}
		}
		// Function summary: join of all returned values.
		var rm mask
		var rwhy string
		for _, ret := range fn.Returns {
			for _, rv := range ret {
				rm |= e.masks[rv]
				if rwhy == "" {
					rwhy = e.why[rv]
				}
			}
		}
		if rm|e.ret[fn] != e.ret[fn] {
			e.ret[fn] |= rm
			if e.retWhy[fn] == "" {
				e.retWhy[fn] = rwhy
			}
			changed = true
		}
	}
	return changed
}

func (e *engine) joinArgs(v *ssair.Value) (mask, string) {
	var m mask
	var why string
	for _, a := range v.Args {
		m |= e.masks[a]
		if why == "" {
			why = e.why[a]
		}
	}
	return m, why
}

func (e *engine) transfer(v *ssair.Value) (mask, string) {
	switch v.Op {
	case ssair.OpConst, ssair.OpGlobal, ssair.OpMakeMap, ssair.OpMakeSlice,
		ssair.OpMakeChan, ssair.OpClosure:
		return 0, ""
	case ssair.OpParam:
		if requestDerived(v.Type) {
			return unbounded, "request-derived input"
		}
		return paramBit(v.AuxInt), ""
	case ssair.OpCall:
		return e.transferCall(v)
	default:
		// Field reads, phis, conversions, concatenation, extracts,
		// ranges, frees: exactly as bounded as their inputs.
		return e.joinArgs(v)
	}
}

func (e *engine) transferCall(v *ssair.Value) (mask, string) {
	f := v.Callee
	if f == nil {
		if len(v.Args) > 0 && v.Args[0].Op == ssair.OpClosure && v.Args[0].Closure != nil {
			return e.substitute(v.Args[0].Closure, v, 1)
		}
		return e.joinArgs(v)
	}
	switch {
	case ssair.MethodOn(f, dagPath, "Graph", "Name"):
		return unbounded, "dag.Graph.Name() (caller-supplied graph name)"
	case isErrorMethod(f):
		return unbounded, "error text"
	case ssair.PkgFunc(f, "os", "Getenv"):
		return unbounded, "environment"
	case ssair.PkgFunc(f, "strconv", "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool"):
		return 0, "" // numeric conversions: status codes, stage indices
	case isNameMethod(f):
		return 0, "" // registry-table convention: Name() draws from a finite set
	}
	if target := e.prog.Funcs[f]; target != nil {
		return e.substitute(target, v, 0)
	}
	// Unknown (stdlib) call: as bounded as its inputs.
	return e.joinArgs(v)
}

// substitute maps target's return summary through the call's
// arguments. argBase skips the closure value for dynamic calls.
func (e *engine) substitute(target *ssair.Func, call *ssair.Value, argBase int) (mask, string) {
	rm := e.ret[target]
	var m mask
	var why string
	if rm&unbounded != 0 {
		m |= unbounded
		why = e.retWhy[target]
	}
	for i := 0; i < len(target.Params); i++ {
		if rm&paramBit(int64(i)) == 0 {
			continue
		}
		am, awhy := e.argClass(target, call, argBase, i)
		m |= am
		if why == "" {
			why = awhy
		}
	}
	return m, why
}

// argClass classifies the call argument(s) feeding target's parameter
// i, folding variadic overflow onto the last parameter.
func (e *engine) argClass(target *ssair.Func, call *ssair.Value, argBase, i int) (mask, string) {
	var m mask
	var why string
	join := func(a *ssair.Value) {
		m |= e.masks[a]
		if why == "" {
			why = e.why[a]
		}
	}
	last := len(target.Params) - 1
	variadic := target.Sig != nil && target.Sig.Variadic()
	for ai := argBase; ai < len(call.Args); ai++ {
		pi := ai - argBase
		if pi == i || (variadic && i == last && pi >= last) {
			join(call.Args[ai])
		}
	}
	return m, why
}

// ---- origin predicates ----

func requestDerived(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "net/http":
		return obj.Name() == "Request" || obj.Name() == "Header"
	case "net/url":
		return obj.Name() == "Values" || obj.Name() == "URL"
	}
	return false
}

// isErrorMethod matches any niladic Error() string method.
func isErrorMethod(f *types.Func) bool {
	return isStringGetter(f, "Error")
}

// isNameMethod matches niladic Name() string methods — the registry
// convention for finite heuristic name tables. dag.Graph.Name is
// excluded by transferCall before this runs.
func isNameMethod(f *types.Func) bool {
	return isStringGetter(f, "Name")
}

func isStringGetter(f *types.Func, name string) bool {
	if f.Name() != name {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// ---- sinks ----

func (e *engine) collectSinks() bool {
	changed := false
	sinkArg := func(fn *ssair.Func, v, arg *ssair.Value, what string) {
		m := e.masks[arg]
		if m&unbounded != 0 {
			why := e.why[arg]
			if why == "" {
				why = "an unbounded source"
			}
			changed = e.addFinding(fn, v.Pos,
				"metric label value derives from "+why+" — "+what+" mints a time series per distinct value; use a finite name table") || changed
		}
		if pb := m &^ unbounded; pb != 0 {
			if e.sinkParams[fn]|pb != e.sinkParams[fn] {
				e.sinkParams[fn] |= pb
				changed = true
			}
		}
	}

	for _, fn := range e.prog.All {
		for _, v := range fn.Values {
			switch v.Op {
			case ssair.OpCall:
				if v.Callee != nil && ssair.PkgFunc(v.Callee, obsPath, "L") {
					// The constructor is the canonical sink; the
					// generic sink-parameter path below would only
					// duplicate it (obs.L's own body marks its value
					// parameter as a sink).
					if len(v.Args) >= 2 {
						sinkArg(fn, v, v.Args[1], "obs.L")
					}
					continue
				}
				// Calls whose parameters are label sinks downstream.
				target := e.prog.Funcs[v.Callee]
				if target == nil && v.Callee == nil && len(v.Args) > 0 && v.Args[0].Op == ssair.OpClosure {
					target = v.Args[0].Closure
				}
				if target != nil {
					if sp := e.sinkParams[target]; sp != 0 {
						argBase := 0
						if v.Callee == nil {
							argBase = 1
						}
						for i := 0; i < len(target.Params); i++ {
							if sp&paramBit(int64(i)) == 0 {
								continue
							}
							am, awhy := e.argClass(target, v, argBase, i)
							if am&unbounded != 0 {
								if awhy == "" {
									awhy = "an unbounded source"
								}
								changed = e.addFinding(fn, v.Pos,
									"metric label value derives from "+awhy+" (flows into an obs label via "+target.Name+")") || changed
							}
							if pb := am &^ unbounded; pb != 0 {
								if e.sinkParams[fn]|pb != e.sinkParams[fn] {
									e.sinkParams[fn] |= pb
									changed = true
								}
							}
						}
					}
				}
			case ssair.OpComposite:
				if arg, ok := e.labelValueArg(fn, v); ok {
					sinkArg(fn, v, arg, "an obs.Label literal")
				}
			}
		}
	}
	return changed
}

// labelValueArg returns the ssair value of the Value field of an
// obs.Label composite literal.
func (e *engine) labelValueArg(fn *ssair.Func, v *ssair.Value) (*ssair.Value, bool) {
	t := v.Type
	if t == nil {
		return nil, false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Label" || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != obsPath {
		return nil, false
	}
	file := e.prog.FileFor(fn, v.Pos)
	if file == nil {
		return nil, false
	}
	var lit *ast.CompositeLit
	ast.Inspect(file, func(node ast.Node) bool {
		if node == nil || lit != nil {
			return false
		}
		if cl, ok := node.(*ast.CompositeLit); ok && cl.Pos() == v.Pos {
			lit = cl
			return false
		}
		return node.Pos() <= v.Pos && v.Pos < node.End()
	})
	if lit == nil {
		return nil, false
	}
	// Struct composite lowering emits one arg per element, in source
	// order, keys skipped — so Elts index == Args index.
	for i, el := range lit.Elts {
		if i >= len(v.Args) {
			break
		}
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Value" {
				return v.Args[i], true
			}
			continue
		}
		if i == 1 { // positional Label{key, value}
			return v.Args[i], true
		}
	}
	return nil, false
}

func (e *engine) addFinding(fn *ssair.Func, pos token.Pos, msg string) bool {
	key := sinkKey{pos: pos, msg: msg}
	if e.seen[key] {
		return false
	}
	e.seen[key] = true
	e.findings = append(e.findings, finding{fn: fn, pos: pos, msg: msg})
	return true
}
