package obscard_test

import (
	"testing"

	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/obscard"
)

func TestObscard(t *testing.T) {
	linttest.Run(t, "testdata", obscard.Analyzer,
		"schedcomp/internal/obsdemo",
	)
}
