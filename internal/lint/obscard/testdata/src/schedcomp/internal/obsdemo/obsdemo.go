// Package obsdemo exercises obscard: request-derived, caller-supplied
// and environment strings reaching metric label values, directly and
// through helpers, against the finite shapes that are allowed.
package obsdemo

import (
	"net/http"
	"os"
	"strconv"

	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
)

// FromQuery mints a time series per distinct query parameter.
func FromQuery(r *http.Request) obs.Label {
	return obs.L("graph", r.URL.Query().Get("name")) // want `obscard: metric label value derives from request-derived input — obs\.L mints a time series per distinct value`
}

// FromGraph uses the caller-supplied graph name as a label.
func FromGraph(g *dag.Graph) obs.Label {
	return obs.L("graph", g.Name()) // want `obscard: metric label value derives from dag\.Graph\.Name\(\) \(caller-supplied graph name\)`
}

// FromErr labels by error text — unbounded message space.
func FromErr(err error) obs.Label {
	return obs.L("cause", err.Error()) // want `obscard: metric label value derives from error text`
}

// LitFromEnv smuggles the unbounded value through a composite literal
// instead of the obs.L constructor.
func LitFromEnv() obs.Label {
	return obs.Label{Key: "host", Value: os.Getenv("HOSTNAME")} // want `obscard: metric label value derives from environment — an obs\.Label literal mints a time series per distinct value`
}

// record forwards its argument into a label sink; its parameter
// becomes a sink for every caller.
func record(stage string) obs.Label {
	return obs.L("stage", stage)
}

// FromHeaderVia reaches the sink through the helper.
func FromHeaderVia(r *http.Request) obs.Label {
	return record(r.Header.Get("X-Stage")) // want `obscard: metric label value derives from request-derived input \(flows into an obs label via \S*record\)`
}

// Static labels from a literal are finite.
func Static() obs.Label { return obs.L("heuristic", "mcp") }

// Status converts a bounded numeric code.
func Status(code int) obs.Label { return obs.L("status", strconv.Itoa(code)) }

// heuristic follows the registry convention: Name() draws from the
// finite table of registered heuristics.
type heuristic struct{}

func (heuristic) Name() string { return "dsc" }

// FromRegistry labels by the registry name — finite by convention.
func FromRegistry(h heuristic) obs.Label { return obs.L("heuristic", h.Name()) }

// StageDone feeds the sink-parameter helper from a finite set.
func StageDone() obs.Label { return record("done") }

// Sharded is waived: the shard name is fixed by deployment config,
// not by requests, even though the analysis cannot see that.
func Sharded() obs.Label {
	return obs.L("shard", os.Getenv("SHARD")) //lint:boundedlabel shard set is fixed at deploy time
}
