package optdiag

import (
	"strings"
	"testing"
)

// FuzzOptDiagParse hammers the LoggedOpt parser with mutated compiler
// logs. The committed seed corpus (testdata/fuzz/FuzzOptDiagParse) was
// taken from a real `go build -gcflags=-json=0,<dir>` run over
// internal/heuristics/ez plus hand-broken variants: truncated,
// foreign-version, and malformed lines. The invariant: ParseLog either
// returns a structurally valid log or an error — never a panic, and
// never a "successful" parse with invalid diagnostics that would let
// the perf gate pass vacuously.
func FuzzOptDiagParse(f *testing.F) {
	f.Add([]byte(sampleLog))
	f.Add([]byte(sampleHeader + "\n"))
	f.Add([]byte(strings.Replace(sampleHeader, `"version":0`, `"version":2`, 1)))
	f.Add([]byte("{\"version\":0}\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ParseLog(data)
		if err != nil {
			if log != nil {
				t.Fatal("ParseLog returned both a log and an error")
			}
			return
		}
		if log.SourceFile == "" {
			t.Fatal("accepted log has empty SourceFile")
		}
		for _, d := range log.Diags {
			if d.Code == "" {
				t.Fatalf("accepted diagnostic with empty code: %+v", d)
			}
			if d.Line < 1 {
				t.Fatalf("accepted diagnostic with non-positive line: %+v", d)
			}
			if d.File != log.SourceFile {
				t.Fatalf("diagnostic file %q differs from log source %q", d.File, log.SourceFile)
			}
		}
	})
}
