package optdiag

import (
	"go/token"
	"path/filepath"

	"schedcomp/internal/lint"
)

// Dedup collapses duplicate diagnostics so analyzers report each
// compiler decision exactly once. Within one (file, line, col, code)
// key only one entry survives, preferring the variant that carries a
// message; additionally, the compiler mirrors every messaged escape
// verdict ("x escapes to heap", code "escape" or "escapes") with a
// bare empty-message "escape" line at the same position — those bare
// mirrors are dropped whenever any messaged escape-family entry shares
// the position. Distinct messaged verdicts at one position (two
// allocations folded onto a line by inlining) are all kept.
func Dedup(diags []Diag) []Diag {
	type pos struct {
		file      string
		line, col int
	}
	type key struct {
		pos
		code string
	}
	escMessaged := map[pos]bool{}
	for _, d := range diags {
		if escapeFamily(d.Code) && d.Message != "" {
			escMessaged[pos{d.File, d.Line, d.Col}] = true
		}
	}
	seen := map[key]int{}
	out := make([]Diag, 0, len(diags))
	for _, d := range diags {
		p := pos{d.File, d.Line, d.Col}
		if escapeFamily(d.Code) && d.Message == "" && escMessaged[p] {
			continue
		}
		k := key{p, d.Code}
		if i, ok := seen[k]; ok {
			if out[i].Message == "" && d.Message != "" {
				out[i] = d
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, d)
	}
	return out
}

func escapeFamily(code string) bool { return code == "escape" || code == "escapes" }

// PosIn converts a compiler-reported file:line:col back into a
// token.Pos of the pass package, or NoPos when the file is not part of
// the package (or the position is out of range — possible when the log
// and the source tree have drifted).
func PosIn(pass *lint.Pass, file string, line, col int) token.Pos {
	file = filepath.Clean(file)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || filepath.Clean(tf.Name()) != file {
			continue
		}
		if line < 1 || line > tf.LineCount() {
			return token.NoPos
		}
		p := tf.LineStart(line)
		if col > 1 {
			p += token.Pos(col - 1)
		}
		if int(p) > tf.Base()+tf.Size() {
			return token.NoPos
		}
		return p
	}
	return token.NoPos
}

// PkgFiles returns the set of (cleaned) source file paths making up the
// pass package, for filtering a module-wide diagnostic Set down to the
// package under analysis.
func PkgFiles(pass *lint.Pass) map[string]bool {
	out := make(map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		if tf := pass.Fset.File(f.Pos()); tf != nil {
			out[filepath.Clean(tf.Name())] = true
		}
	}
	return out
}
