package optdiag

import (
	"reflect"
	"testing"
)

func TestDedup(t *testing.T) {
	in := []Diag{
		// Messaged escape + its bare mirror: mirror dropped.
		{File: "a.go", Line: 10, Col: 5, Code: "escapes", Message: "x escapes to heap"},
		{File: "a.go", Line: 10, Col: 5, Code: "escape"},
		// Two distinct messaged verdicts at one position (inlining fold)
		// plus two bare mirrors: both verdicts kept, mirrors dropped.
		{File: "a.go", Line: 20, Col: 3, Code: "escapes", Message: "make([]int, n) escapes to heap"},
		{File: "a.go", Line: 20, Col: 3, Code: "escape", Message: "&T{} escapes to heap"},
		{File: "a.go", Line: 20, Col: 3, Code: "escape"},
		{File: "a.go", Line: 20, Col: 3, Code: "escape"},
		// Bare escape with no messaged sibling: kept (still a decision).
		{File: "a.go", Line: 30, Col: 1, Code: "escape"},
		// Identical bounds checks at one position: collapsed to one.
		{File: "a.go", Line: 40, Col: 2, Code: "isInBounds"},
		{File: "a.go", Line: 40, Col: 2, Code: "isInBounds"},
		// Same line, different column: separate decisions.
		{File: "a.go", Line: 40, Col: 9, Code: "isInBounds"},
	}
	out := Dedup(in)
	want := []Diag{in[0], in[2], in[3], in[6], in[7], in[9]}
	if len(out) != len(want) {
		t.Fatalf("Dedup kept %d entries, want %d: %+v", len(out), len(want), out)
	}
	for i, w := range want {
		if !reflect.DeepEqual(out[i], w) {
			t.Errorf("out[%d] = %+v, want %+v", i, out[i], w)
		}
	}
}
