// Package optdiag turns the Go compiler's machine-readable
// optimization log into data the perflint analyzers (hotescape,
// hotbce, noinline) can join against the ssair loop analysis.
//
// The compiler, invoked with -gcflags=-json=0,<dir>, records every
// optimization decision it makes — escape analysis verdicts, bounds
// checks it could not eliminate, inlining acceptances and rejections
// with reasons, nil checks — as LSP-style diagnostics, one JSON file
// per compiled source file. The ingester here compiles the scheduling
// hot packages with that flag, parses the LoggedOpt output (ParseLog),
// and exposes the merged diagnostics as a Set keyed by source
// position. The compile runs at most once per schedlint process per
// source root and is shared by all three analyzers.
//
// Two compilation modes cover the two ways analyzers run:
//
//   - Module mode: the pass package lives in the real module; the
//     whole hot-package set (Roots) is compiled from the module root
//     in one `go build` invocation, so cross-package joins (a callee's
//     inlining rejection lives in the callee's package log) work.
//   - Testdata mode: the pass package is a linttest testdata package
//     (its directory path contains a "testdata" element). The package
//     is copied to a scratch module and compiled alone; diagnostic
//     file paths are mapped back to the original testdata files so
//     position joins behave identically to module mode.
package optdiag

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"schedcomp/internal/lint"
)

// Roots are the module-relative directories of the scheduling hot
// packages: the paths whose inner loops dominate schedbench and whose
// optimization regressions the perf budget gates. Every package at or
// under a root is compiled with diagnostics on (test helper packages
// matching an Exclude fragment are skipped).
var Roots = []string{
	"internal/bitset",
	"internal/clan",
	"internal/core",
	"internal/dag",
	"internal/gen",
	"internal/heuristics",
	"internal/pq",
	"internal/sched",
}

// Exclude lists path fragments removed from the hot set (test support
// code that never runs in the serving path).
var Exclude = []string{"schedtest"}

// HotPath reports whether the import path is part of the policed hot
// set.
func HotPath(path string) bool {
	for _, ex := range Exclude {
		if strings.Contains(path, ex) {
			return false
		}
	}
	for _, root := range Roots {
		if strings.Contains(path, root) {
			return true
		}
	}
	return false
}

// Set is the merged optimization log of one compile: every diagnostic
// of every compiled file, queryable by exact source position.
type Set struct {
	GcVersion string
	diags     []Diag
	byPos     map[fileLine][]int // indices into diags
}

type fileLine struct {
	file string
	line int
}

// All returns every diagnostic, in deterministic (file, line, col,
// code) order.
func (s *Set) All() []Diag { return s.diags }

// At returns the diagnostics at the exact file and line.
func (s *Set) At(file string, line int) []Diag {
	idxs := s.byPos[fileLine{file, line}]
	out := make([]Diag, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, s.diags[i])
	}
	return out
}

// Files returns the set of source files that have at least one
// diagnostic.
func (s *Set) Files() map[string]bool {
	out := make(map[string]bool)
	for k := range s.byPos {
		out[k.file] = true
	}
	return out
}

func newSet(logs []*FileLog) *Set {
	s := &Set{byPos: map[fileLine][]int{}}
	for _, l := range logs {
		if s.GcVersion == "" {
			s.GcVersion = l.GcVersion
		}
		s.diags = append(s.diags, l.Diags...)
	}
	sort.SliceStable(s.diags, func(i, j int) bool {
		a, b := s.diags[i], s.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	for i, d := range s.diags {
		k := fileLine{d.File, d.Line}
		s.byPos[k] = append(s.byPos[k], i)
	}
	return s
}

// cache shares one compile per source root (module root or testdata
// package dir) per process: the three analyzers and every package pass
// of a schedlint run reuse it.
var cache = struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}{m: map[string]*cacheEntry{}}

type cacheEntry struct {
	once sync.Once
	set  *Set
	err  error
}

// For returns the optimization-log Set relevant to the pass package,
// compiling on first use. The mutex only guards the cache map; the
// compile itself runs outside it, serialized per key by the entry's
// once so concurrent passes block on the result, not on the lock.
func For(pass *lint.Pass) (*Set, error) {
	if pass.Loader == nil {
		return nil, fmt.Errorf("optdiag: pass has no loader")
	}
	pkg, err := pass.Loader.LoadPath(pass.Pkg.Path())
	if err != nil {
		return nil, err
	}
	key := pass.Loader.ModuleRoot
	testdata := inTestdata(pkg.Dir)
	if testdata {
		key = pkg.Dir
	}
	cache.mu.Lock()
	e, ok := cache.m[key]
	if !ok {
		e = &cacheEntry{}
		cache.m[key] = e
	}
	cache.mu.Unlock()
	e.once.Do(func() {
		if testdata {
			e.set, e.err = compileTestdataPackage(pkg.Dir)
		} else {
			e.set, e.err = compileModuleHotSet(pass.Loader)
		}
	})
	return e.set, e.err
}

// inTestdata reports whether dir has a path element named "testdata"
// (the linttest source-root layout).
func inTestdata(dir string) bool {
	for _, el := range strings.Split(filepath.ToSlash(dir), "/") {
		if el == "testdata" {
			return true
		}
	}
	return false
}

// hotPackages expands Roots against the module, returning import
// paths.
func hotPackages(loader *lint.Loader) ([]string, error) {
	var patterns []string
	for _, root := range Roots {
		patterns = append(patterns, "./"+root+"/...")
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, p := range pkgs {
		if HotPath(p.Path) {
			paths = append(paths, p.Path)
		}
	}
	return paths, nil
}

// compileModuleHotSet compiles every hot package of the module with
// the optimization log enabled and parses the result.
func compileModuleHotSet(loader *lint.Loader) (*Set, error) {
	paths, err := hotPackages(loader)
	if err != nil {
		return nil, err
	}
	logDir, err := os.MkdirTemp("", "optdiag-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(logDir)
	args := append([]string{"build", "-gcflags=-json=0," + logDir}, paths...)
	if err := runGo(loader.ModuleRoot, args...); err != nil {
		return nil, err
	}
	logs, err := parseDir(logDir)
	if err != nil {
		return nil, err
	}
	return newSet(logs), nil
}

// compileTestdataPackage copies one testdata package into a scratch
// module, compiles it with the optimization log enabled, and maps the
// reported file paths back onto the originals.
func compileTestdataPackage(dir string) (*Set, error) {
	scratch, err := os.MkdirTemp("", "optdiag-src-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	copied := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(scratch, name), data, 0o644); err != nil {
			return nil, err
		}
		copied++
	}
	if copied == 0 {
		return nil, fmt.Errorf("optdiag: no Go files to compile in %s", dir)
	}
	gomod := "module optdiagprobe\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(scratch, "go.mod"), []byte(gomod), 0o644); err != nil {
		return nil, err
	}
	logDir, err := os.MkdirTemp("", "optdiag-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(logDir)
	if err := runGo(scratch, "build", "-gcflags=-json=0,"+logDir, "."); err != nil {
		return nil, err
	}
	logs, err := parseDir(logDir)
	if err != nil {
		return nil, err
	}
	// Map the scratch copies back to the original files so position
	// joins against the loaded testdata package line up.
	for _, l := range logs {
		l.SourceFile = filepath.Join(dir, filepath.Base(l.SourceFile))
		for i := range l.Diags {
			l.Diags[i].File = filepath.Join(dir, filepath.Base(l.Diags[i].File))
		}
	}
	return newSet(logs), nil
}

// runGo invokes the go tool; schedlint requires a toolchain, same as
// the build it polices.
func runGo(dir string, args ...string) error {
	goBin := "go"
	if root := os.Getenv("GOROOT"); root != "" {
		if p := filepath.Join(root, "bin", "go"); fileExists(p) {
			goBin = p
		}
	}
	cmd := exec.Command(goBin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("optdiag: go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return nil
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}

// parseDir walks a -json=0 output tree (one directory per compiled
// package, URL-escaped, one .json per source file) and parses every
// log.
func parseDir(dir string) ([]*FileLog, error) {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	logs := make([]*FileLog, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		log, err := ParseLog(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		logs = append(logs, log)
	}
	return logs, nil
}
