package optdiag

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"strings"
)

// Diag is one compiler optimization decision, anchored to a source
// position. Line and Col are 1-based, exactly as the compiler logs
// them.
type Diag struct {
	File    string // source file path as reported by the compiler
	Line    int
	Col     int
	Code    string // "escape", "escapes", "isInBounds", "isSliceInBounds", "cannotInlineFunction", ...
	Message string
	Related []Related
}

// Related is one relatedInformation entry (escape flow steps, inline
// locations).
type Related struct {
	File    string
	Line    int
	Col     int
	Message string
}

// FileLog is the parsed optimization log of one compiled source file
// (one .json file under the -json=0,<dir> output tree).
type FileLog struct {
	Package    string // import path the compiler compiled the file under
	GcVersion  string // toolchain that produced the log ("go1.24.0")
	SourceFile string // absolute path of the compiled source file
	Diags      []Diag
}

// logHeader is the first line of every LoggedOpt file. Version is a
// pointer so a line missing the field entirely (not a header at all)
// is distinguishable from version 0.
type logHeader struct {
	Version   *int   `json:"version"`
	Package   string `json:"package"`
	GcVersion string `json:"gc_version"`
	File      string `json:"file"`
}

// LSP-diagnostic shapes, matching cmd/compile/internal/logopt output.
type lspPosition struct {
	Line      int `json:"line"`
	Character int `json:"character"`
}

type lspRange struct {
	Start lspPosition `json:"start"`
	End   lspPosition `json:"end"`
}

type lspLocation struct {
	URI   string   `json:"uri"`
	Range lspRange `json:"range"`
}

type lspRelated struct {
	Location lspLocation `json:"location"`
	Message  string      `json:"message"`
}

type lspDiagnostic struct {
	Range              lspRange     `json:"range"`
	Severity           int          `json:"severity"`
	Code               string       `json:"code"`
	Source             string       `json:"source"`
	Message            string       `json:"message"`
	RelatedInformation []lspRelated `json:"relatedInformation"`
}

// maxLogLine bounds one NDJSON line; the longest real lines (escape
// flows through deeply inlined call chains) stay well under this.
const maxLogLine = 1 << 22

// ParseLog parses one LoggedOpt file: a version-0 header line followed
// by one LSP diagnostic per line. It is deliberately strict — a
// malformed, truncated, or foreign-version log yields an error, never
// a panic and never silently dropped diagnostics, because a log that
// fails to parse must not let the perf gate pass vacuously.
func ParseLog(data []byte) (*FileLog, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), maxLogLine)

	// Header.
	var header *logHeader
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var h logHeader
		if err := json.Unmarshal(raw, &h); err != nil {
			return nil, fmt.Errorf("optdiag: line %d: malformed header: %v", lineNo, err)
		}
		header = &h
		break
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("optdiag: reading log: %v", err)
	}
	if header == nil {
		return nil, fmt.Errorf("optdiag: empty log (no header line)")
	}
	if header.Version == nil {
		return nil, fmt.Errorf("optdiag: first line is not a LoggedOpt header (no version field)")
	}
	if *header.Version != 0 {
		return nil, fmt.Errorf("optdiag: unsupported LoggedOpt version %d (want 0)", *header.Version)
	}
	if header.File == "" {
		return nil, fmt.Errorf("optdiag: header has no file field")
	}

	log := &FileLog{
		Package:    header.Package,
		GcVersion:  header.GcVersion,
		SourceFile: header.File,
	}
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var d lspDiagnostic
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, fmt.Errorf("optdiag: line %d: malformed diagnostic: %v", lineNo, err)
		}
		if d.Code == "" {
			return nil, fmt.Errorf("optdiag: line %d: diagnostic has no code", lineNo)
		}
		if d.Range.Start.Line < 1 {
			// Lines are 1-based in LoggedOpt; columns are too, but
			// synthesized positions may report 0, so only lines gate.
			return nil, fmt.Errorf("optdiag: line %d: diagnostic line %d is not 1-based",
				lineNo, d.Range.Start.Line)
		}
		diag := Diag{
			File:    log.SourceFile,
			Line:    d.Range.Start.Line,
			Col:     d.Range.Start.Character,
			Code:    d.Code,
			Message: d.Message,
		}
		for _, r := range d.RelatedInformation {
			diag.Related = append(diag.Related, Related{
				File:    uriToPath(r.Location.URI),
				Line:    r.Location.Range.Start.Line,
				Col:     r.Location.Range.Start.Character,
				Message: r.Message,
			})
		}
		log.Diags = append(log.Diags, diag)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("optdiag: reading log: %v", err)
	}
	return log, nil
}

// uriToPath converts a file:// URI back to a filesystem path. Anything
// that is not a file URI is returned as-is (best effort; related
// positions are informational).
func uriToPath(uri string) string {
	rest, ok := strings.CutPrefix(uri, "file://")
	if !ok {
		return uri
	}
	if unesc, err := url.PathUnescape(rest); err == nil {
		return unesc
	}
	return rest
}
