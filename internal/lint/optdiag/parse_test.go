package optdiag

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleHeader = `{"version":0,"package":"demo","goos":"linux","goarch":"amd64","gc_version":"go1.24.0","file":"/src/demo/a.go"}`

const sampleLog = sampleHeader + `
{"range":{"start":{"line":7,"character":10},"end":{"line":7,"character":10}},"severity":3,"code":"escape","source":"go compiler","message":"new(int) escapes to heap","relatedInformation":[{"location":{"uri":"file:///src/demo/a.go","range":{"start":{"line":9,"character":2},"end":{"line":9,"character":2}}},"message":"escflow: from return p (return)"}]}
{"range":{"start":{"line":12,"character":5},"end":{"line":12,"character":5}},"severity":3,"code":"isInBounds","source":"go compiler","message":""}
`

func TestParseLogValid(t *testing.T) {
	log, err := ParseLog([]byte(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if log.Package != "demo" || log.GcVersion != "go1.24.0" || log.SourceFile != "/src/demo/a.go" {
		t.Errorf("header fields wrong: %+v", log)
	}
	if len(log.Diags) != 2 {
		t.Fatalf("got %d diags, want 2", len(log.Diags))
	}
	d := log.Diags[0]
	if d.Code != "escape" || d.Line != 7 || d.Col != 10 || d.File != "/src/demo/a.go" {
		t.Errorf("first diag wrong: %+v", d)
	}
	if len(d.Related) != 1 || d.Related[0].File != "/src/demo/a.go" || d.Related[0].Line != 9 {
		t.Errorf("related info wrong: %+v", d.Related)
	}
	if log.Diags[1].Code != "isInBounds" {
		t.Errorf("second diag wrong: %+v", log.Diags[1])
	}
}

func TestParseLogErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "no header"},
		{"blank lines only", "\n\n", "no header"},
		{"not json", "hello\n", "malformed header"},
		{"no version field", `{"range":{}}` + "\n", "no version field"},
		{"foreign version", strings.Replace(sampleHeader, `"version":0`, `"version":7`, 1) + "\n", "unsupported LoggedOpt version 7"},
		{"no file", strings.Replace(sampleHeader, `"file":"/src/demo/a.go"`, `"file":""`, 1) + "\n", "no file field"},
		{"malformed diag", sampleHeader + "\n{\"range\":{\"start\":\n", "malformed diagnostic"},
		{"diag without code", sampleHeader + "\n" + `{"range":{"start":{"line":3,"character":1}},"message":"x"}` + "\n", "no code"},
		{"zero line", sampleHeader + "\n" + `{"range":{"start":{"line":0,"character":1}},"code":"escape"}` + "\n", "not 1-based"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLog([]byte(tc.in))
			if err == nil {
				t.Fatalf("ParseLog accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseLogTruncated(t *testing.T) {
	// Chopping the log anywhere inside a diagnostic line must error,
	// never panic or silently succeed with fewer diagnostics.
	full := sampleLog
	cut := strings.Index(full, "isInBounds")
	_, err := ParseLog([]byte(full[:cut]))
	if err == nil {
		t.Fatal("truncated log parsed cleanly")
	}
}

func TestURIToPath(t *testing.T) {
	if got := uriToPath("file:///a/b%20c.go"); got != "/a/b c.go" {
		t.Errorf("uriToPath = %q", got)
	}
	if got := uriToPath("https://x"); got != "https://x" {
		t.Errorf("non-file URI should pass through, got %q", got)
	}
}

func TestSetLookup(t *testing.T) {
	log, err := ParseLog([]byte(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	s := newSet([]*FileLog{log})
	if s.GcVersion != "go1.24.0" {
		t.Errorf("GcVersion = %q", s.GcVersion)
	}
	if got := s.At("/src/demo/a.go", 7); len(got) != 1 || got[0].Code != "escape" {
		t.Errorf("At(7) = %+v", got)
	}
	if got := s.At("/src/demo/a.go", 8); len(got) != 0 {
		t.Errorf("At(8) = %+v, want empty", got)
	}
	if len(s.All()) != 2 || !s.Files()["/src/demo/a.go"] {
		t.Errorf("All/Files wrong: %+v %v", s.All(), s.Files())
	}
}

// TestCompileTestdataPackage runs the real ingestion path over a tiny
// scratch package with a guaranteed escape and a guaranteed
// uneliminated bounds check.
func TestCompileTestdataPackage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "testdata", "probe")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package probe

func Escapes() *int {
	v := new(int)
	*v = 41
	return v
}

func Bounds(xs []int, idx []int) int {
	s := 0
	for i := 0; i < len(idx); i++ {
		s += xs[idx[i]]
	}
	return s
}
`
	if err := os.WriteFile(filepath.Join(dir, "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := compileTestdataPackage(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sawEscape, sawBounds bool
	for _, d := range set.All() {
		if d.File != filepath.Join(dir, "probe.go") {
			t.Fatalf("diagnostic file %q not mapped back to the testdata dir", d.File)
		}
		switch d.Code {
		case "escape", "escapes":
			sawEscape = true
		case "isInBounds", "isSliceInBounds":
			sawBounds = true
		}
	}
	if !sawEscape {
		t.Error("no escape diagnostic for new(int) returned from Escapes")
	}
	if !sawBounds {
		t.Error("no bounds-check diagnostic for xs[idx[i]]")
	}
}
