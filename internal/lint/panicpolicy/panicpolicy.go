// Package panicpolicy enforces the panic discipline of the library
// packages under internal/: a panic must carry a constant message
// prefixed with the package name ("dag: ...", "sched: ..."), so that a
// crash names its origin without a stack dig and grepping for the
// message finds the site. Naked panic(err) and other non-constant
// panic values are flagged.
//
// Accepted argument shapes, checked recursively:
//
//	panic("dag: self loop")                      // prefixed constant
//	panic(prefixedConst)                         // named constant
//	panic("dag: bad edge: " + err.Error())       // prefixed concatenation
//	panic(fmt.Sprintf("dag: node %d", i))        // prefixed format string
//	panic(fmt.Errorf("gen: %v", err))            // prefixed format string
//
// Commands under cmd/ and the examples are exempt: a main package owns
// its process and may crash however it likes.
package panicpolicy

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"schedcomp/internal/lint"
)

// Analyzer is the panicpolicy pass.
var Analyzer = &lint.Analyzer{
	Name: "panicpolicy",
	Doc: "library packages under internal/ may only panic with a constant " +
		"pkgname:-prefixed message; naked panic(err) is flagged",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !strings.Contains(pass.Pkg.Path()+"/", "internal/") {
		return nil
	}
	prefix := pass.Pkg.Name() + ":"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if allowed(pass, call.Args[0], prefix) {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in library package %s must carry a constant %q-prefixed message, got panic(%s)",
				pass.Pkg.Name(), prefix, lint.ExprString(call.Args[0]))
			return true
		})
	}
	return nil
}

// allowed reports whether e is a permitted panic argument: a constant
// string carrying the package prefix, possibly wrapped in string
// concatenation or an fmt.Sprintf/fmt.Errorf whose format constant
// carries the prefix.
func allowed(pass *lint.Pass, e ast.Expr, prefix string) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return allowed(pass, x.X, prefix)
		}
	case *ast.CallExpr:
		fn := lint.CalleeFunc(pass.TypesInfo, x)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(fn.Name() == "Sprintf" || fn.Name() == "Errorf") && len(x.Args) > 0 {
			return allowed(pass, x.Args[0], prefix)
		}
	}
	return false
}
