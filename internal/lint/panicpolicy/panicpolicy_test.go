package panicpolicy_test

import (
	"testing"

	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/panicpolicy"
)

func TestPanicPolicy(t *testing.T) {
	linttest.Run(t, "testdata", panicpolicy.Analyzer,
		"schedcomp/internal/panicdemo",
		"schedcomp/cmd/panicdemo",
	)
}
