// Command panicdemo is the panicpolicy clean case: main packages under
// cmd/ own their process and are exempt from the panic discipline.
package main

import "errors"

func main() {
	if err := run(); err != nil {
		panic(err)
	}
}

func run() error {
	return errors.New("nope")
}
