// Package panicdemo exercises the panicpolicy analyzer. The package
// name is panicdemo, so every panic must carry a "panicdemo:" prefix.
package panicdemo

import (
	"errors"
	"fmt"
)

const prefixedConst = "panicdemo: invariant broken"

func cleanLiteral() {
	panic("panicdemo: boom")
}

func cleanConst() {
	panic(prefixedConst)
}

func cleanSprintf(i int) {
	panic(fmt.Sprintf("panicdemo: node %d out of range", i))
}

func cleanErrorf(err error) {
	panic(fmt.Errorf("panicdemo: generation failed: %w", err))
}

func cleanConcat(err error) {
	panic("panicdemo: setup: " + err.Error())
}

func nakedError(err error) {
	panic(err) // want `panicpolicy: panic in library package panicdemo must carry a constant "panicdemo:"-prefixed message, got panic\(err\)`
}

func wrongPrefix() {
	panic("otherpkg: boom") // want `panicpolicy: panic in library package panicdemo`
}

func unprefixedSprintf(i int) {
	panic(fmt.Sprintf("node %d out of range", i)) // want `panicpolicy: panic in library package panicdemo`
}

func nonConstantValue(msg string) {
	panic(msg) // want `panicpolicy: panic in library package panicdemo`
}

func freshError() {
	panic(errors.New("panicdemo: not a constant")) // want `panicpolicy: panic in library package panicdemo`
}
