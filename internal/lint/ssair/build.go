package ssair

import (
	"go/ast"
	"go/token"
	"go/types"

	"schedcomp/internal/lint"
)

// builder lowers one function body to SSA. It implements the
// on-the-fly SSA construction of Braun et al.: blocks are sealed once
// all their predecessors are known, and variable reads in unsealed
// blocks create incomplete phis that are completed at sealing time.
// Anything the builder does not model precisely degrades to a
// conservative over-approximation (extra Args on a value, or
// fn.Approx), never to a panic.
type builder struct {
	prog    *Program
	pkg     *lint.Package
	info    *types.Info
	fn      *Func
	fnScope *types.Scope
	cur       *Block
	targets   []*target
	selectN   int64  // >0 while building a select comm statement
	selectAux string // "select" or "select-default" while building a comm statement
}

// target is one enclosing break/continue destination.
type target struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

// buildFunc lowers one declared function or method.
func (p *Program) buildFunc(pkg *lint.Package, obj *types.Func, fd *ast.FuncDecl) {
	sig, _ := obj.Type().(*types.Signature)
	fn := &Func{
		Obj:    obj,
		Name:   obj.FullName(),
		Pkg:    pkg,
		Sig:    sig,
		decl:   fd,
		writes: map[*types.Var][]*Value{},
	}
	p.Funcs[obj] = fn
	start := len(p.All)
	p.All = append(p.All, fn)
	b := &builder{prog: p, pkg: pkg, info: pkg.TypesInfo, fn: fn}
	b.buildBody(fd.Type, fd.Body, sig)
	// Patch free-variable reads of this function's closures now that
	// every write of every enclosing function has been recorded.
	for _, f := range p.All[start:] {
		for _, free := range f.frees {
			for a := f.Parent; a != nil; a = a.Parent {
				if ws := a.writes[free.Var]; len(ws) > 0 {
					free.Args = ws
					break
				}
			}
		}
	}
}

func (b *builder) buildBody(ft *ast.FuncType, body *ast.BlockStmt, sig *types.Signature) {
	b.fnScope = b.info.Scopes[ft]
	entry := b.newBlock(0, true)
	b.cur = entry
	idx := int64(0)
	if sig != nil && sig.Recv() != nil {
		pv := b.emit(OpParam, sig.Recv().Type(), sig.Recv().Pos())
		pv.Var, pv.AuxInt = sig.Recv(), idx
		idx++
		b.fn.Params = append(b.fn.Params, pv)
		b.writeVar(sig.Recv(), pv)
	}
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			prm := sig.Params().At(i)
			pv := b.emit(OpParam, prm.Type(), prm.Pos())
			pv.Var, pv.AuxInt = prm, idx
			idx++
			b.fn.Params = append(b.fn.Params, pv)
			b.writeVar(prm, pv)
		}
		for i := 0; i < sig.Results().Len(); i++ {
			r := sig.Results().At(i)
			if r.Name() != "" && r.Name() != "_" {
				b.writeVar(r, b.emit(OpConst, r.Type(), r.Pos()))
			}
		}
	}
	if body != nil {
		b.stmtList(body.List)
	}
}

// ---- blocks, variables, values ----

func (b *builder) newBlock(depth int, sealed bool) *Block {
	blk := &Block{
		Index:      len(b.fn.Blocks),
		LoopDepth:  depth,
		sealed:     sealed,
		incomplete: map[*types.Var]*Value{},
		defs:       map[*types.Var]*Value{},
	}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

// blockFrom creates a sealed block whose single predecessor is pred.
func (b *builder) blockFrom(pred *Block, depth int) *Block {
	blk := b.newBlock(depth, false)
	b.jump(pred, blk)
	b.seal(blk)
	return blk
}

// block returns the current block, materializing an unreachable one
// for code after a return/break so expression lowering never needs a
// nil check.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock(0, true)
	}
	return b.cur
}

func (b *builder) jump(from, to *Block) {
	if from == nil {
		return
	}
	to.Preds = append(to.Preds, from)
}

func (b *builder) seal(blk *Block) {
	if blk.sealed {
		return
	}
	blk.sealed = true
	for _, v := range blk.incompleteOrder {
		b.addPhiOperands(v, blk.incomplete[v], blk)
	}
	blk.incomplete, blk.incompleteOrder = nil, nil
	for _, phi := range blk.phis {
		phi.Ctrl = blk.ctrlConds
	}
}

func (b *builder) emit(op Op, t types.Type, pos token.Pos, args ...*Value) *Value {
	blk := b.block()
	return b.emitIn(blk, op, t, pos, args...)
}

func (b *builder) emitIn(blk *Block, op Op, t types.Type, pos token.Pos, args ...*Value) *Value {
	v := &Value{
		ID:        b.prog.nextID,
		Op:        op,
		Fn:        b.fn,
		Block:     blk,
		Args:      args,
		Type:      t,
		Pos:       pos,
		ArgIndex:  -1,
		LoopDepth: blk.LoopDepth,
	}
	b.prog.nextID++
	blk.Values = append(blk.Values, v)
	b.fn.Values = append(b.fn.Values, v)
	return v
}

func (b *builder) newPhi(v *types.Var, blk *Block) *Value {
	phi := b.emitIn(blk, OpPhi, v.Type(), v.Pos())
	phi.Var = v
	blk.phis = append(blk.phis, phi)
	if blk.sealed {
		phi.Ctrl = blk.ctrlConds
	}
	return phi
}

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// localTo reports whether v is declared inside the function being
// built (as opposed to captured from an enclosing function).
func (b *builder) localTo(v *types.Var) bool {
	for s := v.Parent(); s != nil; s = s.Parent() {
		if s == b.fnScope {
			return true
		}
	}
	return false
}

func (b *builder) writeVar(v *types.Var, val *Value) {
	if v == nil || val == nil {
		return
	}
	if isPkgLevel(v) {
		b.prog.globalWrites[v] = append(b.prog.globalWrites[v], val)
		return
	}
	b.block().defs[v] = val
	b.fn.writes[v] = append(b.fn.writes[v], val)
}

func (b *builder) readVar(v *types.Var, blk *Block) *Value {
	if d, ok := blk.defs[v]; ok {
		return d
	}
	var val *Value
	switch {
	case !blk.sealed:
		phi := b.newPhi(v, blk)
		blk.incomplete[v] = phi
		blk.incompleteOrder = append(blk.incompleteOrder, v)
		val = phi
	case len(blk.Preds) == 1:
		val = b.readVar(v, blk.Preds[0])
	case len(blk.Preds) == 0:
		if b.fn.Parent != nil && !b.localTo(v) {
			// Free variable of a closure: its Args are patched to the
			// defining function's writes once that function is built.
			val = b.emitIn(blk, OpFreeVar, v.Type(), v.Pos())
			val.Var = v
			b.fn.frees = append(b.fn.frees, val)
		} else {
			// Zero value (var read before any write, or unreachable).
			val = b.emitIn(blk, OpConst, v.Type(), v.Pos())
		}
	default:
		phi := b.newPhi(v, blk)
		blk.defs[v] = phi
		b.addPhiOperands(v, phi, blk)
		return phi
	}
	blk.defs[v] = val
	return val
}

func (b *builder) addPhiOperands(v *types.Var, phi *Value, blk *Block) {
	for _, pred := range blk.Preds {
		phi.Args = append(phi.Args, b.readVar(v, pred))
	}
}

func (b *builder) typeOf(e ast.Expr) types.Type {
	// Info.TypeOf falls back to Defs/Uses for idents (range-clause
	// variables have no Types entry, only a Defs one).
	return b.info.TypeOf(e)
}

// rootVar returns the local or package-level variable at the base of
// an lvalue chain (x, x.f, x[i], *x, x[i:j]), or nil.
func (b *builder) rootVar(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := b.info.Uses[x]
			if obj == nil {
				obj = b.info.Defs[x]
			}
			v, _ := obj.(*types.Var)
			return v
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Only field chains; a qualified package ident has no root.
			if b.info.Selections[x] == nil {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ---- statements ----

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ExprStmt:
		b.expr(s.X)
	case *ast.AssignStmt:
		b.assign(s)
	case *ast.IncDecStmt:
		old := b.expr(s.X)
		one := b.emit(OpConst, b.typeOf(s.X), s.Pos())
		nv := b.emit(OpBinOp, b.typeOf(s.X), s.Pos(), old, one)
		nv.Aux = s.Tok.String()
		b.assignTo(s.X, nv, s.Pos())
	case *ast.DeclStmt:
		b.declStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.returnStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.GoStmt:
		if v := b.expr(s.Call); v.Op == OpCall {
			v.Aux = "go"
		}
	case *ast.DeferStmt:
		if v := b.expr(s.Call); v.Op == OpCall {
			v.Aux = "defer"
		}
	case *ast.SendStmt:
		ch := b.expr(s.Chan)
		val := b.expr(s.Value)
		snd := b.emit(OpSend, b.typeOf(s.Chan), s.Pos(), ch, val)
		if b.selectN > 0 {
			snd.Aux, snd.AuxInt = b.selectAux, b.selectN
		}
		if root := b.rootVar(s.Chan); root != nil {
			st := b.emit(OpStore, b.typeOf(s.Chan), s.Pos(), ch, val)
			st.Var = root
			b.writeVar(root, st)
		}
	case *ast.EmptyStmt:
	default:
		b.fn.Approx = true
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	label := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, label)
	case *ast.RangeStmt:
		b.rangeStmt(inner, label)
	case *ast.SwitchStmt:
		b.switchStmt(inner, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, label)
	case *ast.SelectStmt:
		b.selectStmt(inner, label)
	default:
		// A bare label (goto target): the CFG cannot represent the
		// jump precisely, so mark the function approximate.
		b.fn.Approx = true
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.jump(b.cur, t.brk)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (label == "" || t.label == label) {
				b.jump(b.cur, t.cont)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		b.fn.Approx = true
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt.
	}
}

func (b *builder) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			// var a, b = f()
			call := b.expr(vs.Values[0])
			for i, name := range vs.Names {
				ext := b.emit(OpExtract, b.typeOf(name), name.Pos(), call)
				ext.AuxInt = int64(i)
				b.assignTo(name, ext, name.Pos())
			}
			continue
		}
		for i, name := range vs.Names {
			var val *Value
			if i < len(vs.Values) {
				val = b.expr(vs.Values[i])
			} else {
				val = b.emit(OpConst, b.typeOf(name), name.Pos())
			}
			b.assignTo(name, val, name.Pos())
		}
	}
}

func (b *builder) assign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// x op= y
		old := b.expr(s.Lhs[0])
		rhs := b.expr(s.Rhs[0])
		nv := b.emit(OpBinOp, b.typeOf(s.Lhs[0]), s.Pos(), old, rhs)
		nv.Aux = s.Tok.String()
		b.assignTo(s.Lhs[0], nv, s.Pos())
		return
	}
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		rhs := ast.Unparen(s.Rhs[0])
		if _, isCall := rhs.(*ast.CallExpr); isCall {
			call := b.expr(rhs)
			for i, lhs := range s.Lhs {
				ext := b.emit(OpExtract, b.typeOf(lhs), lhs.Pos(), call)
				ext.AuxInt = int64(i)
				b.assignTo(lhs, ext, lhs.Pos())
			}
			return
		}
		// v, ok := m[k] / <-ch / x.(T): the ok bit shares the taint of
		// the main value, so assigning the same SSA value to both
		// sides is a sound over-approximation.
		val := b.expr(s.Rhs[0])
		for _, lhs := range s.Lhs {
			b.assignTo(lhs, val, s.Pos())
		}
		return
	}
	vals := make([]*Value, len(s.Rhs))
	for i := range s.Rhs {
		vals[i] = b.expr(s.Rhs[i])
	}
	for i, lhs := range s.Lhs {
		if i < len(vals) {
			b.assignTo(lhs, vals[i], s.Pos())
		}
	}
}

// assignTo routes a value into an lvalue: an SSA variable write for
// identifiers, an OpStore new-version of the root variable for
// composite stores.
func (b *builder) assignTo(lhs ast.Expr, val *Value, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := b.info.Defs[id]
		if obj == nil {
			obj = b.info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			if isPkgLevel(v) {
				// A package-level variable outlives the call, so the
				// write is an escape like any composite store: emit an
				// OpStore over the old global value so per-function
				// sink scans see it, and record the store as the
				// global's new version for cross-function reads.
				old := b.emit(OpGlobal, v.Type(), id.Pos())
				old.Var = v
				st := b.emit(OpStore, b.typeOf(lhs), pos, old, val)
				st.Var = v
				b.writeVar(v, st)
				return
			}
			b.writeVar(v, val)
		}
		return
	}
	// Composite store: read the location (which evaluates the base and
	// any indices, capturing their taint), then record a new version
	// of the root variable combining the old state and the new value.
	prev := b.expr(lhs)
	root := b.rootVar(lhs)
	st := b.emit(OpStore, b.typeOf(lhs), pos, prev, val)
	st.Var = root
	if root != nil {
		b.writeVar(root, st)
	}
}

func (b *builder) returnStmt(s *ast.ReturnStmt) {
	var res []*Value
	if len(s.Results) > 0 {
		for _, r := range s.Results {
			res = append(res, b.expr(r))
		}
	} else if b.fn.Sig != nil {
		for i := 0; i < b.fn.Sig.Results().Len(); i++ {
			r := b.fn.Sig.Results().At(i)
			if r.Name() != "" && r.Name() != "_" {
				res = append(res, b.readVar(r, b.block()))
			}
		}
	}
	b.fn.Returns = append(b.fn.Returns, res)
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.expr(s.Cond)
	head := b.block()
	depth := head.LoopDepth
	then := b.blockFrom(head, depth)
	merge := b.newBlock(depth, false)
	merge.ctrlConds = []*Value{cond}
	var els *Block
	if s.Else != nil {
		els = b.blockFrom(head, depth)
	} else {
		b.jump(head, merge)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(b.cur, merge)
	if els != nil {
		b.cur = els
		b.stmt(s.Else)
		b.jump(b.cur, merge)
	}
	b.seal(merge)
	b.cur = merge
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	head := b.block()
	depth := head.LoopDepth
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.newBlock(depth+1, false) // unsealed until the back edge exists
	b.jump(b.cur, header)
	b.cur = header
	var cond *Value
	if s.Cond != nil {
		cond = b.expr(s.Cond)
		header.ctrlConds = []*Value{cond}
	}
	body := b.blockFrom(b.block(), depth+1)
	exit := b.newBlock(depth, false)
	b.jump(header, exit)
	if cond != nil {
		exit.ctrlConds = []*Value{cond}
	}
	cont := header
	var post *Block
	if s.Post != nil {
		post = b.newBlock(depth+1, false)
		cont = post
	}
	b.targets = append(b.targets, &target{label: label, brk: exit, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	if post != nil {
		b.jump(b.cur, post)
		b.seal(post)
		b.cur = post
		b.stmt(s.Post)
	}
	b.jump(b.cur, header)
	b.seal(header)
	b.seal(exit)
	b.cur = exit
}

// rangeKind classifies the collection of a range statement.
func rangeKind(t types.Type) string {
	if t == nil {
		return "unknown"
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice, *types.Array:
		return "slice"
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); ok {
			return "slice"
		}
		return "unknown"
	case *types.Chan:
		return "chan"
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return "string"
		}
		return "int"
	case *types.Signature:
		return "func"
	}
	return "unknown"
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.block()
	depth := head.LoopDepth
	coll := b.expr(s.X)
	kind := rangeKind(b.typeOf(s.X))
	header := b.newBlock(depth+1, false)
	b.jump(b.cur, header)
	b.cur = header
	key := b.emit(OpRangeKey, b.typeOf(s.Key), s.Pos(), coll)
	key.Aux = kind
	if s.Key != nil {
		b.assignTo(s.Key, key, s.Pos())
	}
	if s.Value != nil {
		val := b.emit(OpRangeVal, b.typeOf(s.Value), s.Pos(), coll)
		val.Aux = kind
		b.assignTo(s.Value, val, s.Pos())
	}
	body := b.blockFrom(header, depth+1)
	exit := b.newBlock(depth, false)
	b.jump(header, exit)
	b.targets = append(b.targets, &target{label: label, brk: exit, cont: header})
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	b.jump(b.cur, header)
	b.seal(header)
	b.seal(exit)
	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.block()
	depth := head.LoopDepth
	var tag *Value
	if s.Tag != nil {
		tag = b.expr(s.Tag)
		head = b.block()
	}
	merge := b.newBlock(depth, false)
	if tag != nil {
		merge.ctrlConds = append(merge.ctrlConds, tag)
	}
	b.targets = append(b.targets, &target{label: label, brk: merge})
	clauses := s.Body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock(depth, false)
		b.jump(head, blocks[i])
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		// Earlier clauses may have added a fallthrough edge; all preds
		// of this case block are known by now.
		b.seal(blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			merge.ctrlConds = append(merge.ctrlConds, b.expr(e))
		}
		falls := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = i+1 < len(clauses)
			}
		}
		b.stmtList(cc.Body)
		if falls {
			b.jump(b.cur, blocks[i+1])
			b.cur = nil
		} else {
			b.jump(b.cur, merge)
		}
	}
	if !hasDefault {
		b.jump(head, merge)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.seal(merge)
	b.cur = merge
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	var tag *Value
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
			tag = b.expr(ta.X)
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(a.X).(*ast.TypeAssertExpr); ok {
			tag = b.expr(ta.X)
		}
	}
	if tag == nil {
		tag = b.emit(OpConst, nil, s.Pos())
	}
	head := b.block()
	depth := head.LoopDepth
	merge := b.newBlock(depth, false)
	merge.ctrlConds = []*Value{tag}
	b.targets = append(b.targets, &target{label: label, brk: merge})
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.blockFrom(head, depth)
		b.cur = blk
		if obj, ok := b.info.Implicits[cc].(*types.Var); ok {
			ta := b.emit(OpTypeAssert, obj.Type(), cc.Pos(), tag)
			b.writeVar(obj, ta)
		}
		b.stmtList(cc.Body)
		b.jump(b.cur, merge)
	}
	if !hasDefault {
		b.jump(head, merge)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.seal(merge)
	b.cur = merge
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.block()
	depth := head.LoopDepth
	n := int64(len(s.Body.List))
	choice := b.emit(OpSelect, nil, s.Pos())
	choice.AuxInt = n
	commAux := "select"
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			choice.Aux = "default"
			commAux = "select-default"
		}
	}
	merge := b.newBlock(depth, false)
	merge.ctrlConds = []*Value{choice}
	b.targets = append(b.targets, &target{label: label, brk: merge})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.blockFrom(head, depth)
		b.cur = blk
		if cc.Comm != nil {
			b.selectN, b.selectAux = n, commAux
			b.stmt(cc.Comm)
			b.selectN, b.selectAux = 0, ""
		}
		b.stmtList(cc.Body)
		b.jump(b.cur, merge)
	}
	if len(s.Body.List) == 0 {
		b.jump(head, merge)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.seal(merge)
	b.cur = merge
}
