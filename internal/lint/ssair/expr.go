package ssair

import (
	"go/ast"
	"go/token"
	"go/types"

	"schedcomp/internal/lint"
)

// expr lowers an expression to a Value. Expression lowering never
// changes the current block: short-circuit operators are modeled as
// plain binary operations (their taint behavior is identical and the
// CFG stays small).
func (b *builder) expr(e ast.Expr) *Value {
	if e == nil {
		return b.emit(OpConst, nil, token.NoPos)
	}
	if tv, ok := b.info.Types[e]; ok && tv.Value != nil {
		// Constant-folded subtree: no dataflow inside it matters.
		return b.emit(OpConst, tv.Type, e.Pos())
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return b.expr(x.X)

	case *ast.Ident:
		obj := b.info.Uses[x]
		if obj == nil {
			obj = b.info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if isPkgLevel(v) {
				g := b.emit(OpGlobal, v.Type(), x.Pos())
				g.Var = v
				return g
			}
			return b.readVar(v, b.block())
		}
		// Named constant, func reference, nil, type name.
		return b.emit(OpConst, b.typeOf(x), x.Pos())

	case *ast.BasicLit:
		return b.emit(OpConst, b.typeOf(x), x.Pos())

	case *ast.UnaryExpr:
		switch x.Op {
		case token.ARROW:
			v := b.emit(OpRecv, b.typeOf(x), x.Pos(), b.expr(x.X))
			if b.selectN > 0 {
				v.Aux, v.AuxInt = b.selectAux, b.selectN
			}
			return v
		case token.AND:
			return b.emit(OpAddr, b.typeOf(x), x.Pos(), b.expr(x.X))
		default:
			v := b.emit(OpUnOp, b.typeOf(x), x.Pos(), b.expr(x.X))
			v.Aux = x.Op.String()
			return v
		}

	case *ast.BinaryExpr:
		v := b.emit(OpBinOp, b.typeOf(x), x.Pos(), b.expr(x.X), b.expr(x.Y))
		v.Aux = x.Op.String()
		return v

	case *ast.StarExpr:
		return b.emit(OpDeref, b.typeOf(x), x.Pos(), b.expr(x.X))

	case *ast.SelectorExpr:
		if sel := b.info.Selections[x]; sel != nil {
			v := b.emit(OpField, b.typeOf(x), x.Pos(), b.expr(x.X))
			v.Aux = x.Sel.Name
			return v
		}
		// Qualified identifier pkg.X.
		if v, ok := b.info.Uses[x.Sel].(*types.Var); ok {
			g := b.emit(OpGlobal, v.Type(), x.Pos())
			g.Var = v
			return g
		}
		return b.emit(OpConst, b.typeOf(x), x.Pos())

	case *ast.IndexExpr:
		if tv, ok := b.info.Types[x.Index]; ok && tv.IsType() {
			// Generic instantiation f[T]: the index carries no data.
			return b.expr(x.X)
		}
		return b.emit(OpIndex, b.typeOf(x), x.Pos(), b.expr(x.X), b.expr(x.Index))

	case *ast.IndexListExpr:
		return b.expr(x.X)

	case *ast.SliceExpr:
		args := []*Value{b.expr(x.X)}
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx != nil {
				args = append(args, b.expr(idx))
			}
		}
		return b.emit(OpSliceExpr, b.typeOf(x), x.Pos(), args...)

	case *ast.TypeAssertExpr:
		return b.emit(OpTypeAssert, b.typeOf(x), x.Pos(), b.expr(x.X))

	case *ast.CompositeLit:
		return b.compositeLit(x)

	case *ast.FuncLit:
		return b.funcLit(x)

	case *ast.CallExpr:
		return b.call(x)

	case *ast.KeyValueExpr:
		// Only reachable for malformed input; evaluate both sides.
		return b.emit(OpConst, nil, x.Pos(), b.expr(x.Key), b.expr(x.Value))

	case *ast.ArrayType, *ast.StructType, *ast.MapType, *ast.ChanType,
		*ast.InterfaceType, *ast.FuncType, *ast.Ellipsis:
		return b.emit(OpConst, b.typeOf(e), e.Pos())
	}
	b.fn.Approx = true
	return b.emit(OpConst, b.typeOf(e), e.Pos())
}

func (b *builder) compositeLit(x *ast.CompositeLit) *Value {
	t := b.typeOf(x)
	var u types.Type
	if t != nil {
		u = t.Underlying()
	}
	var args []*Value
	elem := func(e ast.Expr, withKey bool) {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			if withKey {
				args = append(args, b.expr(kv.Key))
			}
			args = append(args, b.expr(kv.Value))
			return
		}
		args = append(args, b.expr(e))
	}
	switch u.(type) {
	case *types.Map:
		for _, e := range x.Elts {
			elem(e, true)
		}
		v := b.emit(OpMakeMap, t, x.Pos(), args...)
		v.Aux = "lit"
		return v
	case *types.Slice, *types.Array:
		for _, e := range x.Elts {
			elem(e, false) // index keys carry no data worth tracking
		}
		v := b.emit(OpMakeSlice, t, x.Pos(), args...)
		v.Aux = "lit"
		if len(x.Elts) > 0 {
			v.AuxInt = 1
		}
		return v
	default:
		for _, e := range x.Elts {
			elem(e, false) // struct field names carry no data
		}
		return b.emit(OpComposite, t, x.Pos(), args...)
	}
}

func (b *builder) funcLit(x *ast.FuncLit) *Value {
	sig, _ := b.typeOf(x).(*types.Signature)
	nf := &Func{
		Name:   b.fn.Name + "·func",
		Pkg:    b.fn.Pkg,
		Sig:    sig,
		Parent: b.fn,
		decl:   x,
		writes: map[*types.Var][]*Value{},
	}
	b.prog.All = append(b.prog.All, nf)
	nb := &builder{prog: b.prog, pkg: b.pkg, info: b.info, fn: nf}
	nb.buildBody(x.Type, x.Body, sig)
	cl := b.emit(OpClosure, b.typeOf(x), x.Pos())
	cl.Closure = nf
	return cl
}

func (b *builder) call(x *ast.CallExpr) *Value {
	if tv, ok := b.info.Types[x.Fun]; ok && tv.IsType() {
		var arg *Value
		if len(x.Args) > 0 {
			arg = b.expr(x.Args[0])
		} else {
			arg = b.emit(OpConst, nil, x.Pos())
		}
		return b.emit(OpConvert, b.typeOf(x), x.Pos(), arg)
	}
	if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
		if bi, ok := b.info.Uses[id].(*types.Builtin); ok {
			return b.builtin(bi.Name(), x)
		}
	}

	callee := lint.CalleeFunc(b.info, x)
	var args []*Value
	var argExprs []ast.Expr
	if callee != nil {
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if s := b.info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				args = append(args, b.expr(sel.X))
				argExprs = append(argExprs, sel.X)
			}
		}
	} else {
		// Dynamic call: the callee value itself is Args[0].
		args = append(args, b.expr(x.Fun))
		argExprs = append(argExprs, nil)
	}
	for _, a := range x.Args {
		args = append(args, b.expr(a))
		argExprs = append(argExprs, a)
	}
	call := b.emit(OpCall, b.typeOf(x), x.Pos(), args...)
	call.Callee = callee
	b.emitMutates(call, callee, argExprs)
	return call
}

// emitMutates records that a call may have written through each
// reference-like argument: each such root variable gets a new OpMutate
// version linked to the call and the callee parameter position, so the
// taint engine can apply the callee's store summary at the call site.
func (b *builder) emitMutates(call *Value, callee *types.Func, argExprs []ast.Expr) {
	for i, ae := range argExprs {
		if ae == nil {
			continue // dynamic callee value
		}
		if !refLike(b.typeOf(ae)) {
			continue
		}
		root := b.rootVar(ae)
		if root == nil {
			continue
		}
		var old *Value
		if isPkgLevel(root) {
			old = b.emit(OpGlobal, root.Type(), ae.Pos())
			old.Var = root
		} else {
			old = b.readVar(root, b.block())
		}
		mu := b.emit(OpMutate, root.Type(), ae.Pos(), old)
		mu.Call = call
		mu.Var = root
		mu.ArgIndex = paramIndexFor(callee, i)
		b.writeVar(root, mu)
	}
}

// paramIndexFor maps the i-th call argument (receiver-inclusive for
// method calls) to the callee parameter position, clamping variadic
// overflow; -1 when the callee is unknown.
func paramIndexFor(callee *types.Func, i int) int {
	if callee == nil {
		return -1
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return -1
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if n == 0 {
		return -1
	}
	if i >= n {
		return n - 1
	}
	return i
}

// refLike reports whether values of type t can alias memory the callee
// might mutate. Unknown types are conservatively reference-like.
func refLike(t types.Type) bool {
	return refLikeDepth(t, 0)
}

func refLikeDepth(t types.Type, depth int) bool {
	if t == nil {
		return true
	}
	if depth > 3 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLikeDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return refLikeDepth(u.Elem(), depth+1)
	case *types.TypeParam:
		return true
	}
	return false
}

func (b *builder) builtin(name string, x *ast.CallExpr) *Value {
	pos := x.Pos()
	switch name {
	case "append":
		var args []*Value
		for _, a := range x.Args {
			args = append(args, b.expr(a))
		}
		v := b.emit(OpAppend, b.typeOf(x), pos, args...)
		v.Aux = lint.ExprString(x.Args[0])
		return v
	case "len", "cap":
		v := b.emit(OpUnOp, b.typeOf(x), pos, b.expr(x.Args[0]))
		v.Aux = name
		return v
	case "make":
		t := b.typeOf(x)
		var sizes []*Value
		for _, a := range x.Args[1:] {
			sizes = append(sizes, b.expr(a))
		}
		switch t.Underlying().(type) {
		case *types.Map:
			v := b.emit(OpMakeMap, t, pos, sizes...)
			v.Aux = "make"
			return v
		case *types.Chan:
			return b.emit(OpMakeChan, t, pos, sizes...)
		default:
			v := b.emit(OpMakeSlice, t, pos, sizes...)
			v.Aux = "make"
			v.AuxInt = int64(len(sizes))
			return v
		}
	case "new":
		v := b.emit(OpComposite, b.typeOf(x), pos)
		v.Aux = "new"
		return v
	case "copy":
		dst := b.expr(x.Args[0])
		src := b.expr(x.Args[1])
		if root := b.rootVar(x.Args[0]); root != nil {
			st := b.emit(OpStore, b.typeOf(x.Args[0]), pos, dst, src)
			st.Var = root
			st.Aux = "copy"
			b.writeVar(root, st)
		}
		return b.emit(OpConst, b.typeOf(x), pos)
	case "panic":
		var args []*Value
		for _, a := range x.Args {
			args = append(args, b.expr(a))
		}
		return b.emit(OpPanic, b.typeOf(x), pos, args...)
	case "min", "max", "complex", "real", "imag":
		var args []*Value
		for _, a := range x.Args {
			args = append(args, b.expr(a))
		}
		v := b.emit(OpBinOp, b.typeOf(x), pos, args...)
		v.Aux = name
		return v
	default:
		// delete, clear, close, panic, print, println, recover, ...
		for _, a := range x.Args {
			b.expr(a)
		}
		return b.emit(OpConst, b.typeOf(x), pos)
	}
}
