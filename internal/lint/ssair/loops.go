package ssair

import (
	"go/token"
	"path/filepath"

	"schedcomp/internal/lint"
)

// LoopInfo is the dominator tree and natural-loop nesting of one
// function's CFG. The syntactic Block.LoopDepth recorded at build time
// tracks for/range statement nesting; LoopInfo recomputes loop depth
// from the graph itself (back edges whose target dominates their
// source, natural-loop bodies collected backward from the back edge),
// so analyses that rank findings by loop depth do not depend on how
// the builder happened to shape the blocks.
//
// Degraded inputs fall back conservatively rather than silently
// under-reporting:
//
//   - Blocks unreachable from the entry (code after return/break) keep
//     their syntactic depth.
//   - If the CFG is irreducible (a retreating edge whose target does
//     not dominate its source) or the function was built approximately
//     (fn.Approx: goto or a bare label the builder cannot model, which
//     may form a loop the CFG does not show), every block's depth is
//     labeled conservatively as at least 1 and never below its
//     syntactic depth.
type LoopInfo struct {
	fn     *Func
	rpoNum []int // block index -> reverse-postorder position, -1 when unreachable
	idom   []int // block index -> immediate dominator block index (-1 for entry/unreachable)
	depth  []int // block index -> natural-loop nesting depth
	header []bool

	irreducible  bool
	conservative bool
}

// LoopInfo computes (and caches) the dominator/loop analysis of f.
func (f *Func) LoopInfo() *LoopInfo {
	if f.loops == nil {
		f.loops = computeLoopInfo(f.Blocks, f.Approx)
		f.loops.fn = f
	}
	return f.loops
}

// Depth returns the loop nesting depth of b. See the type comment for
// the conservative fallbacks.
func (li *LoopInfo) Depth(b *Block) int {
	if b == nil {
		return 0
	}
	d := 0
	if b.Index < len(li.depth) {
		d = li.depth[b.Index]
	}
	if d < b.LoopDepth && (li.conservative || li.rpoNum[b.Index] < 0) {
		// Unreachable or degraded: never below the syntactic depth.
		d = b.LoopDepth
	}
	if li.conservative && d < 1 {
		d = 1
	}
	return d
}

// DepthOf returns the loop depth of the block containing v.
func (li *LoopInfo) DepthOf(v *Value) int { return li.Depth(v.Block) }

// Irreducible reports whether the CFG contained a retreating edge that
// is not a back edge (only constructible with goto; the builder marks
// such functions Approx instead, so this is false for built functions
// and exists for directly-constructed test CFGs).
func (li *LoopInfo) Irreducible() bool { return li.irreducible }

// Conservative reports whether Depth is using the degraded labeling.
func (li *LoopInfo) Conservative() bool { return li.conservative }

// IsHeader reports whether b is the header of a natural loop.
func (li *LoopInfo) IsHeader(b *Block) bool {
	return b != nil && b.Index < len(li.header) && li.header[b.Index]
}

// Dominates reports whether a dominates b (reflexively). Unreachable
// blocks are dominated by nothing and dominate nothing but themselves.
func (li *LoopInfo) Dominates(a, b *Block) bool {
	if a == nil || b == nil {
		return false
	}
	return li.dominates(a.Index, b.Index)
}

func (li *LoopInfo) dominates(a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b < 0 || b >= len(li.idom) || li.idom[b] < 0 {
			return false
		}
		b = li.idom[b]
	}
}

// ComputeLoopInfo runs the analysis over a raw block list, with entry
// blocks[0]. Exported so tests can exercise CFG shapes the builder
// never produces (multi-backedge headers, irreducible regions).
func ComputeLoopInfo(blocks []*Block, approx bool) *LoopInfo {
	return computeLoopInfo(blocks, approx)
}

func computeLoopInfo(blocks []*Block, approx bool) *LoopInfo {
	n := len(blocks)
	li := &LoopInfo{
		rpoNum: make([]int, n),
		idom:   make([]int, n),
		depth:  make([]int, n),
		header: make([]bool, n),
	}
	for i := range li.rpoNum {
		li.rpoNum[i] = -1
		li.idom[i] = -1
	}
	if n == 0 {
		return li
	}

	// Successor lists, derived from the stored predecessor edges.
	succs := make([][]int, n)
	for _, b := range blocks {
		for _, p := range b.Preds {
			succs[p.Index] = append(succs[p.Index], b.Index)
		}
	}

	// Reverse postorder over the reachable subgraph.
	post := make([]int, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct{ b, next int }
	stack := []frame{{0, 0}}
	state[0] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succs[f.b]) {
			s := succs[f.b][f.next]
			f.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.b] = 2
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	for i, b := range rpo {
		li.rpoNum[b] = i
	}

	// Iterative dominators (Cooper-Harvey-Kennedy) over the RPO.
	li.idom[0] = 0 // entry's idom is itself during intersection
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range blocks[b].Preds {
				pi := p.Index
				if li.rpoNum[pi] < 0 || li.idom[pi] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = pi
				} else {
					newIdom = li.intersect(newIdom, pi)
				}
			}
			if newIdom >= 0 && li.idom[b] != newIdom {
				li.idom[b] = newIdom
				changed = true
			}
		}
	}
	li.idom[0] = -1 // entry has no dominator

	// Back edges and natural loops. A retreating edge u->v with v not
	// dominating u marks the CFG irreducible.
	bodies := map[int]map[int]bool{} // header -> loop body (incl. header)
	var headers []int
	for _, b := range blocks {
		for _, p := range b.Preds {
			u, v := p.Index, b.Index
			if li.rpoNum[u] < 0 || li.rpoNum[v] < 0 {
				continue
			}
			if li.rpoNum[v] > li.rpoNum[u] {
				continue // forward or cross edge
			}
			if !li.dominates(v, u) {
				li.irreducible = true
				continue
			}
			body := bodies[v]
			if body == nil {
				body = map[int]bool{v: true}
				bodies[v] = body
				headers = append(headers, v)
				li.header[v] = true
			}
			// Walk predecessors backward from the back-edge source until
			// the header; everything reached is inside the loop.
			work := []int{u}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, q := range blocks[x].Preds {
					if li.rpoNum[q.Index] >= 0 {
						work = append(work, q.Index)
					}
				}
			}
		}
	}
	for _, h := range headers {
		for b := range bodies[h] {
			li.depth[b]++
		}
	}

	li.conservative = approx || li.irreducible
	return li
}

// intersect walks two dominator-tree paths to their common ancestor.
func (li *LoopInfo) intersect(a, b int) int {
	for a != b {
		for li.rpoNum[a] > li.rpoNum[b] {
			a = li.idom[a]
		}
		for li.rpoNum[b] > li.rpoNum[a] {
			b = li.idom[b]
		}
	}
	return a
}

// PosIndex maps source positions of one package to the dominator-based
// loop depth of the nearest SSA value. It is the join point between
// external position-keyed diagnostics (the compiler's optimization log)
// and the IR: a diagnostic lands on file:line:col, the index finds the
// values the builder emitted on that line, and the closest one (by
// column) supplies its block's loop depth and enclosing function.
//
// Closures inherit depth from their enclosing function: a function
// literal's body depth is offset by the deepest loop (in the parent) in
// which the closure value is created or used, accumulated through
// nested literals. A sort comparator defined before a loop but passed
// to sort.Slice inside it runs at least once per iteration; its bounds
// checks belong to that loop, not to depth 0. LoopInfo itself stays a
// pure per-CFG analysis — the inheritance lives only in this join.
type PosIndex struct {
	fset    *token.FileSet
	entries map[posKey][]posEntry
}

type posKey struct {
	file string // full path as recorded in the FileSet
	line int
}

type posEntry struct {
	col   int
	depth int
	fn    *Func
}

// NewPosIndex builds the index over every function (closures included)
// of pkg within prog.
func NewPosIndex(prog *Program, pkg *lint.Package) *PosIndex {
	idx := &PosIndex{fset: prog.Fset(), entries: map[posKey][]posEntry{}}
	// Program.All lists closures after their parent, so a parent's
	// offset is always computed before its literals need it.
	offsets := map[*Func]int{}
	for _, fn := range prog.All {
		if fn.Pkg != pkg {
			continue
		}
		off := 0
		if fn.Parent != nil {
			off = offsets[fn.Parent] + closureUseDepth(fn)
		}
		offsets[fn] = off
		li := fn.LoopInfo()
		for _, v := range fn.Values {
			if !v.Pos.IsValid() {
				continue
			}
			pos := idx.fset.Position(v.Pos)
			k := posKey{file: pos.Filename, line: pos.Line}
			idx.entries[k] = append(idx.entries[k], posEntry{col: pos.Column, depth: li.Depth(v.Block) + off, fn: fn})
		}
	}
	return idx
}

// closureUseDepth returns the deepest loop depth in fn.Parent at which
// fn's closure value is created or appears as an argument. A closure
// resolved through a phi (conditional reassignment) is not traced;
// those uses contribute 0, keeping the inheritance an underestimate
// rather than a guess.
func closureUseDepth(fn *Func) int {
	parent := fn.Parent
	pli := parent.LoopInfo()
	d := 0
	var cv *Value
	for _, v := range parent.Values {
		if v.Op == OpClosure && v.Closure == fn {
			cv = v
			if dd := pli.Depth(v.Block); dd > d {
				d = dd
			}
		}
	}
	if cv == nil {
		return d
	}
	for _, v := range parent.Values {
		for _, a := range v.Args {
			if a == cv {
				if dd := pli.Depth(v.Block); dd > d {
					d = dd
				}
			}
		}
	}
	return d
}

// Depth returns the loop depth at file:line:col — the depth of the
// value on that line whose column is closest to col (ties prefer the
// deeper value, so a diagnostic between two candidates is ranked
// conservatively). ok is false when the builder emitted no value on
// that line (blank lines, declarations, positions outside pkg).
func (idx *PosIndex) Depth(file string, line, col int) (depth int, fn *Func, ok bool) {
	es := idx.entries[posKey{file: filepath.Clean(file), line: line}]
	if len(es) == 0 {
		return 0, nil, false
	}
	best := es[0]
	bestDist := dist(best.col, col)
	for _, e := range es[1:] {
		d := dist(e.col, col)
		if d < bestDist || (d == bestDist && e.depth > best.depth) {
			best, bestDist = e, d
		}
	}
	return best.depth, best.fn, true
}

func dist(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
