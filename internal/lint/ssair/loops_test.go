package ssair_test

import (
	"path/filepath"
	"strings"
	"testing"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// depthsOf collects the LoopInfo depth of every value of fn matching
// the given op and Aux ("" matches any Aux).
func depthsOf(fn *ssair.Func, op ssair.Op, aux string) []int {
	li := fn.LoopInfo()
	var out []int
	for _, v := range fn.Values {
		if v.Op == op && (aux == "" || v.Aux == aux) {
			out = append(out, li.DepthOf(v))
		}
	}
	return out
}

func contains(ds []int, want int) bool {
	for _, d := range ds {
		if d == want {
			return true
		}
	}
	return false
}

func TestNestedLoopDepths(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "NestedLoops")
	li := fn.LoopInfo()
	if li.Conservative() {
		t.Fatal("NestedLoops should not need the conservative fallback")
	}
	// row += xs[i][j] runs at depth 2, total += row*3 at depth 1.
	adds := depthsOf(fn, ssair.OpBinOp, "+=")
	if !contains(adds, 2) {
		t.Errorf("inner += depths %v: want one at depth 2", adds)
	}
	mults := depthsOf(fn, ssair.OpBinOp, "*")
	if !contains(mults, 1) || contains(mults, 2) {
		t.Errorf("outer-body * depths %v: want depth 1, no depth 2", mults)
	}
}

func TestMultiBackedgeSingleLoop(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "MultiBackedge")
	li := fn.LoopInfo()
	var headers []*ssair.Block
	for _, b := range fn.Blocks {
		if li.IsHeader(b) {
			headers = append(headers, b)
		}
	}
	if len(headers) != 1 {
		t.Fatalf("got %d loop headers, want 1 (continue + body end merge into one natural loop)", len(headers))
	}
	// Both the continue edge and the body-end edge are back edges into
	// the same header: at least two predecessors the header dominates.
	back := 0
	for _, p := range headers[0].Preds {
		if li.Dominates(headers[0], p) {
			back++
		}
	}
	if back < 2 {
		t.Errorf("header has %d back edges, want >= 2", back)
	}
	for _, d := range depthsOf(fn, ssair.OpBinOp, "+=") {
		if d != 1 {
			t.Errorf("body += at depth %d, want 1", d)
		}
	}
	for _, d := range depthsOf(fn, ssair.OpBinOp, "-=") {
		if d != 1 {
			t.Errorf("continue-branch -= at depth %d, want 1", d)
		}
	}
}

func TestRangeLoopDepths(t *testing.T) {
	prog := loadProgram(t)
	fn := findFunc(t, prog, "RangeMap")
	if ds := depthsOf(fn, ssair.OpRangeKey, "map"); !contains(ds, 1) {
		t.Errorf("map range key depths %v: want 1", ds)
	}
	if ds := depthsOf(fn, ssair.OpBinOp, "+="); !contains(ds, 1) || contains(ds, 0) {
		t.Errorf("map range body += depths %v: want all 1", ds)
	}
	fn = findFunc(t, prog, "RangeSliceNested")
	if ds := depthsOf(fn, ssair.OpBinOp, "+="); !contains(ds, 2) {
		t.Errorf("nested slice range += depths %v: want one at 2", ds)
	}
}

// loadLoopProgram builds a Program over the ssairloop testdata package
// (goto shapes kept out of ssairtest, which asserts no Approx).
func loadLoopProgram(t *testing.T) *ssair.Program {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.SrcRoots = []string{src}
	pkg, err := loader.LoadPath("ssairloop")
	if err != nil {
		t.Fatal(err)
	}
	pass := &lint.Pass{
		Analyzer:  &lint.Analyzer{Name: "ssairloop"},
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Loader:    loader,
		Report:    func(lint.Diagnostic) {},
	}
	prog, err := ssair.For(pass)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestGotoLoopConservativeFallback(t *testing.T) {
	fn := findFunc(t, loadLoopProgram(t), "GotoLoop")
	if !fn.Approx {
		t.Fatal("goto should mark the function Approx")
	}
	li := fn.LoopInfo()
	if !li.Conservative() {
		t.Fatal("Approx function must use depth-conservative labeling")
	}
	for _, v := range fn.Values {
		if d := li.DepthOf(v); d < 1 {
			t.Errorf("%v labeled depth %d in an Approx function, want >= 1", v, d)
		}
	}
}

func TestStraightLineHasNoLoops(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "StraightLine")
	li := fn.LoopInfo()
	if li.Conservative() || li.Irreducible() {
		t.Fatal("straight-line function must be neither conservative nor irreducible")
	}
	for _, v := range fn.Values {
		if d := li.DepthOf(v); d != 0 {
			t.Errorf("%v at depth %d, want 0", v, d)
		}
	}
}

// TestPosIndexClosureDepthInheritance pins the closure-depth offset of
// the position index: a comparator passed to a call inside a loop
// inherits that loop's depth for its body, while one only used outside
// loops stays at 0.
func TestPosIndexClosureDepthInheritance(t *testing.T) {
	prog := loadProgram(t)
	fn := findFunc(t, prog, "ClosureUsedInLoop")
	idx := ssair.NewPosIndex(prog, fn.Pkg)
	depthAtBinOp := func(aux string) int {
		t.Helper()
		for _, f := range prog.All {
			if f.Parent != fn {
				continue
			}
			for _, v := range f.Values {
				if v.Op == ssair.OpBinOp && v.Aux == aux && v.Pos.IsValid() {
					pos := fn.Pkg.Fset.Position(v.Pos)
					d, _, ok := idx.Depth(pos.Filename, pos.Line, pos.Column)
					if !ok {
						t.Fatalf("no index entry at %v", pos)
					}
					return d
				}
			}
		}
		t.Fatalf("no closure BinOp %q under ClosureUsedInLoop", aux)
		return -1
	}
	if d := depthAtBinOp("<"); d != 1 {
		t.Errorf("hotLess body depth = %d, want 1 (used in the loop)", d)
	}
	if d := depthAtBinOp(">"); d != 0 {
		t.Errorf("coldLess body depth = %d, want 0 (only used outside loops)", d)
	}
}

// TestDominatorDepthNeverExceedsSyntacticDepth cross-checks the two
// loop depth computations over every precisely-built function of the
// testdata package. The dominator-based depth can legitimately fall
// below the syntactic one — a block that only exits the loop (break,
// return) is not part of the natural loop body and is correctly ranked
// colder — but it must never exceed it, and the builder must never
// produce an irreducible CFG.
func TestDominatorDepthNeverExceedsSyntacticDepth(t *testing.T) {
	prog := loadProgram(t)
	for _, fn := range prog.All {
		if fn.Pkg == nil || !strings.Contains(fn.Name, "ssairtest") || fn.Approx {
			continue
		}
		li := fn.LoopInfo()
		if li.Irreducible() {
			t.Errorf("%s: builder produced an irreducible CFG", fn.Name)
			continue
		}
		for _, b := range fn.Blocks {
			if len(b.Preds) == 0 && b.Index != 0 {
				continue // unreachable: falls back to syntactic by definition
			}
			if got := li.Depth(b); got > b.LoopDepth {
				t.Errorf("%s block %d: dominator depth %d exceeds syntactic %d", fn.Name, b.Index, got, b.LoopDepth)
			}
		}
	}
}

// mkCFG builds a raw CFG from an edge list for direct ComputeLoopInfo
// tests of shapes the builder cannot produce.
func mkCFG(n int, edges [][2]int) []*ssair.Block {
	blocks := make([]*ssair.Block, n)
	for i := range blocks {
		blocks[i] = &ssair.Block{Index: i}
	}
	for _, e := range edges {
		blocks[e[1]].Preds = append(blocks[e[1]].Preds, blocks[e[0]])
	}
	return blocks
}

func TestComputeLoopInfoManualNested(t *testing.T) {
	// 0 -> 1 (outer header) -> 2 (inner header) -> 3 -> 2 (back),
	// 2 -> 4 -> 1 (back), 1 -> 5 (exit).
	blocks := mkCFG(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 2}, {2, 4}, {4, 1}, {1, 5}})
	li := ssair.ComputeLoopInfo(blocks, false)
	if li.Irreducible() {
		t.Fatal("nested reducible CFG misclassified as irreducible")
	}
	want := []int{0, 1, 2, 2, 1, 0}
	for i, w := range want {
		if got := li.Depth(blocks[i]); got != w {
			t.Errorf("block %d: depth %d, want %d", i, got, w)
		}
	}
	if !li.IsHeader(blocks[1]) || !li.IsHeader(blocks[2]) {
		t.Error("blocks 1 and 2 must be loop headers")
	}
	if !li.Dominates(blocks[1], blocks[4]) || li.Dominates(blocks[3], blocks[4]) {
		t.Error("dominator relation wrong: 1 dom 4 expected, 3 dom 4 not")
	}
}

func TestComputeLoopInfoSelfLoop(t *testing.T) {
	blocks := mkCFG(3, [][2]int{{0, 1}, {1, 1}, {1, 2}})
	li := ssair.ComputeLoopInfo(blocks, false)
	if got := li.Depth(blocks[1]); got != 1 {
		t.Errorf("self-loop block depth %d, want 1", got)
	}
	if got := li.Depth(blocks[2]); got != 0 {
		t.Errorf("exit block depth %d, want 0", got)
	}
}

func TestComputeLoopInfoIrreducible(t *testing.T) {
	// Classic two-entry region: 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1.
	// Neither 1 nor 2 dominates the other, so the cycle has no natural
	// header; the analysis must flag irreducibility and label depths
	// conservatively (>= 1 everywhere).
	blocks := mkCFG(3, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 1}})
	li := ssair.ComputeLoopInfo(blocks, false)
	if !li.Irreducible() {
		t.Fatal("two-entry cycle not detected as irreducible")
	}
	if !li.Conservative() {
		t.Fatal("irreducible CFG must be labeled conservatively")
	}
	for i := 0; i < 3; i++ {
		if got := li.Depth(blocks[i]); got < 1 {
			t.Errorf("block %d: depth %d, want >= 1 under conservative labeling", i, got)
		}
	}
}

func TestComputeLoopInfoUnreachableFallsBackToSyntactic(t *testing.T) {
	blocks := mkCFG(3, [][2]int{{0, 1}})
	blocks[2].LoopDepth = 2 // unreachable block keeps its syntactic depth
	li := ssair.ComputeLoopInfo(blocks, false)
	if got := li.Depth(blocks[2]); got != 2 {
		t.Errorf("unreachable block depth %d, want syntactic 2", got)
	}
	if got := li.Depth(blocks[1]); got != 0 {
		t.Errorf("reachable straight-line block depth %d, want 0", got)
	}
}
