// Package ssair converts the type-checked packages produced by the
// lint loader into a compact SSA-form IR and runs whole-module
// dataflow analyses over it. Like the rest of internal/lint it is
// deliberately dependency-free: the x/tools SSA packages are not used,
// so the linter builds from a clean checkout with nothing but the
// standard library.
//
// The IR is "compact" in the sense that it models exactly what the
// schedlint dataflow passes need and no more:
//
//   - Functions are lowered to basic blocks of Values in SSA form.
//     Local variables become value versions with phi nodes at joins
//     (constructed with the on-the-fly algorithm of Braun et al.,
//     sealing loop headers once their back edges are known).
//   - Memory is modeled coarsely: a store through an index, field or
//     dereference creates a new version of the *root* local variable
//     (OpStore), and every call conservatively creates a new version
//     of each reference-typed argument (OpMutate), so that callee
//     side effects are visible at the call site via callee summaries.
//   - Control dependence is captured where it matters for taint: the
//     phi nodes created at a join carry the branch conditions of the
//     statement that produced the join in Value.Ctrl, so a value
//     merged under a nondeterministic condition is itself
//     nondeterministic (implicit flows).
//   - Every value records the syntactic loop depth at which it
//     executes, which is what the hotalloc analyzer consumes.
//
// A Program is built per lint.Loader and grows monotonically as
// analyzers ask for packages; construction results are cached so the
// multichecker pays for SSA construction once per package per process.
package ssair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"

	"schedcomp/internal/lint"
)

// Op identifies the operation computed by a Value.
type Op uint8

const (
	OpUnknown    Op = iota
	OpParam         // function parameter (receiver first for methods)
	OpFreeVar       // free-variable read inside a closure; Args are the writes in the defining function
	OpConst         // literal, nil, named constant, or func reference
	OpGlobal        // read of a package-level variable (Var)
	OpPhi           // SSA phi; Args align with Block.Preds, Ctrl carries join conditions
	OpCall          // function or method call; static Callee or Args[0]=callee value when dynamic
	OpExtract       // extract result AuxInt of the multi-result call Args[0]
	OpBinOp         // binary expression; Aux is the operator
	OpUnOp          // unary expression (incl. len/cap and friends); Aux is the operator
	OpConvert       // type conversion
	OpIndex         // read x[i]
	OpField         // read x.f (also bound-method values)
	OpSliceExpr     // x[lo:hi:max]
	OpDeref         // *p
	OpAddr          // &x
	OpRangeKey      // per-iteration range key; Aux is the range kind ("map", "slice", ...)
	OpRangeVal      // per-iteration range value; Aux as OpRangeKey
	OpRecv          // <-ch; Aux=="select" ("select-default" when the select has a default) with AuxInt=#cases when inside a select
	OpSelect        // the nondeterministic choice made by a select; AuxInt=#cases, Aux=="default" when a default clause exists
	OpMakeMap       // make(map...) or a map literal (Aux "make"/"lit")
	OpMakeSlice     // make([]T,...) or a slice/array literal; AuxInt=1 when a size was given
	OpMakeChan      // make(chan ...)
	OpAppend        // append(dest, elems...); Aux renders the dest expression
	OpComposite     // struct composite literal or new(T)
	OpClosure       // func literal; Closure is the nested Func
	OpStore         // new version of a root variable after a composite store: Args[0]=old, Args[1]=stored; Aux=="copy" for builtin copy
	OpMutate        // new version of a root variable after a call that may mutate it: Args[0]=old, Call/ArgIndex identify the call
	OpTypeAssert    // x.(T)
	OpSend          // ch <- v: Args[0]=chan, Args[1]=value; Aux as OpRecv when inside a select
	OpPanic         // call to builtin panic; Args are the operands
)

var opNames = [...]string{
	OpUnknown: "Unknown", OpParam: "Param", OpFreeVar: "FreeVar", OpConst: "Const",
	OpGlobal: "Global", OpPhi: "Phi", OpCall: "Call", OpExtract: "Extract",
	OpBinOp: "BinOp", OpUnOp: "UnOp", OpConvert: "Convert", OpIndex: "Index",
	OpField: "Field", OpSliceExpr: "SliceExpr", OpDeref: "Deref", OpAddr: "Addr",
	OpRangeKey: "RangeKey", OpRangeVal: "RangeVal", OpRecv: "Recv", OpSelect: "Select",
	OpMakeMap: "MakeMap", OpMakeSlice: "MakeSlice", OpMakeChan: "MakeChan",
	OpAppend: "Append", OpComposite: "Composite", OpClosure: "Closure",
	OpStore: "Store", OpMutate: "Mutate", OpTypeAssert: "TypeAssert",
	OpSend: "Send", OpPanic: "Panic",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Value is one SSA instruction.
type Value struct {
	ID        int // program-unique, dense; taint state is indexed by it
	Op        Op
	Fn        *Func
	Block     *Block
	Args      []*Value
	Ctrl      []*Value // control-dependence inputs (phis at joins)
	Type      types.Type
	Pos       token.Pos
	Callee    *types.Func // static callee for OpCall
	Closure   *Func       // nested function for OpClosure
	Call      *Value      // the call an OpMutate belongs to
	ArgIndex  int         // callee parameter index of an OpMutate (-1 when unknown)
	Var       *types.Var  // variable identity for OpParam/OpFreeVar/OpGlobal/OpStore/OpMutate
	Aux       string
	AuxInt    int64
	LoopDepth int
}

func (v *Value) String() string {
	return fmt.Sprintf("v%d:%s", v.ID, v.Op)
}

// Block is one basic block.
type Block struct {
	Index     int
	Preds     []*Block
	Values    []*Value
	LoopDepth int

	sealed          bool
	phis            []*Value
	incomplete      map[*types.Var]*Value
	incompleteOrder []*types.Var // deterministic sealing order
	defs            map[*types.Var]*Value
	ctrlConds       []*Value
}

// Func is one function, method, or function literal with a body.
type Func struct {
	Obj     *types.Func // nil for function literals
	Name    string      // qualified, for diagnostics
	Pkg     *lint.Package
	Sig     *types.Signature
	Params  []*Value // receiver first for methods
	Blocks  []*Block
	Values  []*Value   // creation order; phis included
	Returns [][]*Value // result values of each return statement
	Parent  *Func      // enclosing function for literals
	Approx  bool       // built with conservative fallbacks (e.g. goto)

	decl   ast.Node // *ast.FuncDecl or *ast.FuncLit
	writes map[*types.Var][]*Value
	frees  []*Value  // OpFreeVar values awaiting patching
	loops  *LoopInfo // cached dominator/natural-loop analysis
}

// DeclPos returns the position of the func declaration (or literal),
// where a function-level suppression comment would sit.
func (f *Func) DeclPos() token.Pos {
	if f.decl == nil {
		return token.NoPos
	}
	return f.decl.Pos()
}

// HasFreeVars reports whether f captures variables from an enclosing
// function. A func literal with no captures compiles to a static
// function value and allocates nothing.
func (f *Func) HasFreeVars() bool { return len(f.frees) > 0 }

// Program is the SSA form of a set of packages plus everything they
// transitively import from the same module (or the testdata roots).
type Program struct {
	Loader *lint.Loader
	Funcs  map[*types.Func]*Func
	All    []*Func // deterministic construction order, closures after parent
	Pkgs   map[string]*lint.Package

	globalWrites map[*types.Var][]*Value
	nextID       int
	version      int
	taint        *TaintResult
	taintVersion int
	reported     map[string]map[[2]int]bool
}

// FirstSighting reports whether key has not been seen before under
// the given analyzer name, recording it. Whole-program analyzers use
// it to report each finding exactly once even though the suite runs
// them over every package of a growing shared program: the first pass
// whose program contains both endpoints of a flow claims it.
func (p *Program) FirstSighting(analyzer string, key [2]int) bool {
	if p.reported == nil {
		p.reported = map[string]map[[2]int]bool{}
	}
	m := p.reported[analyzer]
	if m == nil {
		m = map[[2]int]bool{}
		p.reported[analyzer] = m
	}
	if m[key] {
		return false
	}
	m[key] = true
	return true
}

// programs caches one Program per Loader so that every analyzer pass
// in a schedlint run shares SSA construction work.
var programs sync.Map // *lint.Loader -> *Program

// For returns the (cached) Program for the pass's loader, extended
// with the pass package and its transitively resolvable imports.
func For(pass *lint.Pass) (*Program, error) {
	if pass.Loader == nil {
		return nil, fmt.Errorf("ssair: pass has no loader; whole-program analyzers need one")
	}
	v, _ := programs.LoadOrStore(pass.Loader, &Program{
		Loader:       pass.Loader,
		Funcs:        map[*types.Func]*Func{},
		Pkgs:         map[string]*lint.Package{},
		globalWrites: map[*types.Var][]*Value{},
	})
	p := v.(*Program)
	if err := p.AddPackage(pass.Pkg.Path()); err != nil {
		return nil, err
	}
	return p, nil
}

// AddPackage builds SSA for the package at path and for every module
// (or testdata) package it transitively imports. Already-built
// packages are skipped, so repeated calls are cheap.
func (p *Program) AddPackage(path string) error {
	var missing []string
	var visit func(path string) error
	seen := map[string]bool{}
	visit = func(path string) error {
		if seen[path] || p.Pkgs[path] != nil {
			return nil
		}
		seen[path] = true
		if !p.Loader.Resolvable(path) {
			return nil // standard library: no bodies needed
		}
		pkg, err := p.Loader.LoadPath(path)
		if err != nil {
			return err
		}
		var imports []string
		for _, imp := range pkg.Types.Imports() {
			imports = append(imports, imp.Path())
		}
		sort.Strings(imports)
		for _, imp := range imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		missing = append(missing, path)
		return nil
	}
	if err := visit(path); err != nil {
		return err
	}
	for _, path := range missing {
		p.buildPackage(p.mustPkg(path))
	}
	return nil
}

func (p *Program) mustPkg(path string) *lint.Package {
	pkg, err := p.Loader.LoadPath(path)
	if err != nil {
		panic("ssair: package vanished from loader cache: " + err.Error())
	}
	return pkg
}

// buildPackage lowers every declared function of pkg. Files arrive
// from the loader in sorted name order and declarations are processed
// in source order, so value IDs are deterministic.
func (p *Program) buildPackage(pkg *lint.Package) {
	if p.Pkgs[pkg.Path] != nil {
		return
	}
	p.Pkgs[pkg.Path] = pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			p.buildFunc(pkg, obj, fd)
		}
	}
	p.version++
}

// FuncsOf returns the functions (including closures) declared in pkg,
// in construction order.
func (p *Program) FuncsOf(pkg *types.Package) []*Func {
	var out []*Func
	for _, fn := range p.All {
		if fn.Pkg != nil && fn.Pkg.Types == pkg {
			out = append(out, fn)
		}
	}
	return out
}

// FileFor returns the syntax tree of fn's package containing pos.
func (p *Program) FileFor(fn *Func, pos token.Pos) *ast.File {
	if fn == nil || fn.Pkg == nil {
		return nil
	}
	return lint.FileIn(fn.Pkg, pos)
}

// Fset returns the program's file set.
func (p *Program) Fset() *token.FileSet { return p.Loader.Fset }

// Version increments whenever a package is added to the program.
// Analyzers that compute whole-program fixpoints key their memoized
// results on it, recomputing only when the program has grown.
func (p *Program) Version() int { return p.version }

// MethodOn reports whether f is the method name on type
// pkgPath.typeName (pointer or value receiver). Exported for the
// analyzers built on top of the IR.
func MethodOn(f *types.Func, pkgPath, typeName, name string) bool {
	return methodOn(f, pkgPath, typeName, name)
}

// PkgFunc reports whether f is one of the named package-level
// functions of pkgPath.
func PkgFunc(f *types.Func, pkgPath string, names ...string) bool {
	return pkgFunc(f, pkgPath, names...)
}
