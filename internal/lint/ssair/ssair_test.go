package ssair_test

import (
	"path/filepath"
	"strings"
	"testing"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// loadProgram builds a fresh Program over the ssairtest testdata
// package using its own loader (so the per-loader cache starts cold).
func loadProgram(t *testing.T) *ssair.Program {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.SrcRoots = []string{src}
	pkg, err := loader.LoadPath("ssairtest")
	if err != nil {
		t.Fatal(err)
	}
	pass := &lint.Pass{
		Analyzer:  &lint.Analyzer{Name: "ssairtest"},
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Loader:    loader,
		Report:    func(lint.Diagnostic) {},
	}
	prog, err := ssair.For(pass)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func findFunc(t *testing.T, prog *ssair.Program, name string) *ssair.Func {
	t.Helper()
	for _, fn := range prog.All {
		if fn.Name == name || strings.HasSuffix(fn.Name, "."+name) {
			return fn
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestLoopPhiAndDepth(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "Sum")
	var phiAt1, addAt1 bool
	for _, v := range fn.Values {
		if v.Op == ssair.OpPhi && v.LoopDepth == 1 {
			phiAt1 = true
		}
		if v.Op == ssair.OpBinOp && v.Aux == "+=" && v.LoopDepth == 1 {
			addAt1 = true
		}
	}
	if !phiAt1 {
		t.Error("expected a loop-header phi at depth 1 for the accumulator")
	}
	if !addAt1 {
		t.Error("expected the += to be recorded at loop depth 1")
	}
}

func TestMergePhiCarriesCondition(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "Pick")
	found := false
	for _, v := range fn.Values {
		if v.Op != ssair.OpPhi || len(v.Ctrl) == 0 {
			continue
		}
		for _, c := range v.Ctrl {
			if c.Op == ssair.OpParam {
				found = true
			}
		}
	}
	if !found {
		t.Error("merge phi should carry the branch condition (the bool param) as control dependence")
	}
}

func TestClosureCapturePatched(t *testing.T) {
	prog := loadProgram(t)
	var closure *ssair.Func
	for _, fn := range prog.All {
		if fn.Parent != nil && strings.Contains(fn.Parent.Name, "Counter") {
			closure = fn
		}
	}
	if closure == nil {
		t.Fatal("closure of Counter not built")
	}
	if !closure.HasFreeVars() {
		t.Fatal("closure should capture n")
	}
	patched := false
	for _, v := range closure.Values {
		if v.Op == ssair.OpFreeVar && len(v.Args) > 0 {
			patched = true
		}
	}
	if !patched {
		t.Error("free-variable read should be patched to the defining function's writes")
	}
}

func TestNestedLoopDepth(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "Nested")
	deepAppend := false
	for _, v := range fn.Values {
		if v.Op == ssair.OpAppend && v.LoopDepth == 2 {
			deepAppend = true
		}
	}
	if !deepAppend {
		t.Error("inner append should sit at loop depth 2")
	}
}

func TestSelectControlEdges(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "Shuttle")
	var choice *ssair.Value
	var send, recv bool
	for _, v := range fn.Values {
		switch v.Op {
		case ssair.OpSelect:
			choice = v
		case ssair.OpSend:
			if v.Aux == "select" && v.AuxInt == 2 {
				send = true
			}
		case ssair.OpRecv:
			if v.Aux == "select" && v.AuxInt == 2 {
				recv = true
			}
		}
	}
	if choice == nil || choice.AuxInt != 2 || choice.Aux == "default" {
		t.Fatalf("blocking select should yield an OpSelect with 2 cases and no default mark, got %v", choice)
	}
	if !send || !recv {
		t.Errorf("select comm ops should be marked \"select\" with the case count (send=%v recv=%v)", send, recv)
	}
	// The merged t must be control-dependent on the select choice.
	depends := false
	for _, v := range fn.Values {
		if v.Op != ssair.OpPhi {
			continue
		}
		for _, c := range v.Ctrl {
			if c == choice {
				depends = true
			}
		}
	}
	if !depends {
		t.Error("the phi merging the select arms should carry the OpSelect choice in Ctrl")
	}
}

func TestSelectDefaultMarking(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "TryPut")
	var choiceDefault, sendDefault bool
	for _, v := range fn.Values {
		switch v.Op {
		case ssair.OpSelect:
			choiceDefault = v.Aux == "default"
		case ssair.OpSend:
			sendDefault = v.Aux == "select-default"
		}
	}
	if !choiceDefault {
		t.Error("select with a default clause should mark the OpSelect Aux \"default\"")
	}
	if !sendDefault {
		t.Error("a send in a select with default should be marked \"select-default\" (non-blocking)")
	}
}

func TestDeferAndGoCallMarking(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "Cleanup")
	var deferred, spawned bool
	for _, v := range fn.Values {
		if v.Op != ssair.OpCall {
			continue
		}
		switch v.Aux {
		case "defer":
			deferred = true
		case "go":
			spawned = true
		}
	}
	if !deferred {
		t.Error("deferred call should carry Aux \"defer\"")
	}
	if !spawned {
		t.Error("go-statement call should carry Aux \"go\"")
	}
}

func TestPanicLowering(t *testing.T) {
	fn := findFunc(t, loadProgram(t), "Explode")
	found := false
	for _, v := range fn.Values {
		if v.Op == ssair.OpPanic && len(v.Args) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("builtin panic should lower to OpPanic carrying its operand")
	}
}

func TestNoApproxFallbacks(t *testing.T) {
	prog := loadProgram(t)
	for _, fn := range prog.All {
		if fn.Approx {
			t.Errorf("%s built approximately; every statement form in ssairtest should be modeled", fn.Name)
		}
	}
}

func TestSourcesAndSuppression(t *testing.T) {
	prog := loadProgram(t)
	res := prog.Taint()
	var open, suppressed bool
	for _, s := range res.Sources {
		if s.Kind != ssair.KindMapIter {
			continue
		}
		name := s.Fn.Name
		switch {
		case strings.Contains(name, "KeysOf"):
			if !s.Suppressed {
				open = true
			}
		case strings.Contains(name, "SizeOf"):
			if s.Suppressed {
				suppressed = true
			}
		}
	}
	if !open {
		t.Error("KeysOf map range should be an active map-iteration source")
	}
	if !suppressed {
		t.Error("SizeOf map range should be suppressed by //lint:sorted")
	}
	// No scheduling sinks exist in this package, so no flows either.
	if len(res.Flows) != 0 {
		t.Errorf("expected no flows, got %d", len(res.Flows))
	}
}

// TestDeterministicRebuild builds the same package through two
// independent loaders and requires identical SSA shapes — the property
// every schedlint analyzer output depends on.
func TestDeterministicRebuild(t *testing.T) {
	a, b := loadProgram(t), loadProgram(t)
	if len(a.All) != len(b.All) {
		t.Fatalf("function count differs: %d vs %d", len(a.All), len(b.All))
	}
	for i := range a.All {
		fa, fb := a.All[i], b.All[i]
		if fa.Name != fb.Name || len(fa.Values) != len(fb.Values) || len(fa.Blocks) != len(fb.Blocks) {
			t.Fatalf("function %d differs: %s/%d/%d vs %s/%d/%d",
				i, fa.Name, len(fa.Values), len(fa.Blocks), fb.Name, len(fb.Values), len(fb.Blocks))
		}
		for j := range fa.Values {
			va, vb := fa.Values[j], fb.Values[j]
			if va.Op != vb.Op || va.LoopDepth != vb.LoopDepth || len(va.Args) != len(vb.Args) {
				t.Fatalf("%s value %d differs: %v vs %v", fa.Name, j, va, vb)
			}
		}
	}
}
