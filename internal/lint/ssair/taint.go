package ssair

import (
	"go/token"
	"go/types"
	"sort"

	"schedcomp/internal/lint"
)

// SourceKind classifies a nondeterminism source.
type SourceKind uint8

const (
	KindMapIter  SourceKind = iota // map (or sync.Map) iteration order
	KindSelect                     // select arm choice
	KindChanRecv                   // cross-goroutine receive ordering
	KindTime                       // wall-clock reads
	KindRand                       // unseeded math/rand
)

// Order reports whether the nondeterminism is an *ordering* of
// otherwise-deterministic values, which sorting re-determinizes. A
// sort sanitizer clears Order kinds only: sorting a slice of
// time.Now() samples does not make the values deterministic.
func (k SourceKind) Order() bool {
	return k == KindMapIter || k == KindSelect || k == KindChanRecv
}

func (k SourceKind) String() string {
	switch k {
	case KindMapIter:
		return "map-iteration"
	case KindSelect:
		return "select"
	case KindChanRecv:
		return "chan-recv"
	case KindTime:
		return "time"
	case KindRand:
		return "rand"
	}
	return "unknown"
}

// Source is one nondeterminism introduction point.
type Source struct {
	ID         int
	Value      *Value
	Kind       SourceKind
	Desc       string
	Pos        token.Pos
	Fn         *Func
	Suppressed bool // //lint:sorted at the source line
}

// Sink is one scheduling-decision input.
type Sink struct {
	ID    int
	Value *Value
	Desc  string
	Pos   token.Pos
	Fn    *Func
}

// Flow is one source-to-sink taint path.
type Flow struct {
	Source *Source
	Sink   *Sink
}

// TaintResult is the whole-program taint analysis outcome.
type TaintResult struct {
	Sources []*Source
	Sinks   []*Sink
	Flows   []*Flow // sorted by sink position, then source position
}

// Taint runs (or returns the cached) whole-program nondeterminism
// taint analysis over every package currently in the program. The
// result is recomputed whenever AddPackage has grown the program;
// source and sink IDs are stable across recomputations because
// construction order is append-only.
func (p *Program) Taint() *TaintResult {
	if p.taint != nil && p.taintVersion == p.version {
		return p.taint
	}
	e := newEngine(p)
	e.run()
	p.taint = e.result()
	p.taintVersion = p.version
	return p.taint
}

// ---- taint lattice ----

// tset is the taint of one SSA value: a bitset of global source IDs
// plus two parameter masks that make function summaries polymorphic in
// their arguments. par marks parameters whose taint reaches here
// unmodified; parSan marks parameters whose taint reaches here only
// through an order sanitizer (sorting), so that at the call site the
// argument's Order-kind bits are dropped.
type tset struct {
	src    []uint64
	par    uint64
	parSan uint64
}

type summary struct {
	result tset   // taint of every returned value, combined
	stored []tset // taint the function stores into param i's referent
	// argSinks[i] lists sinks that param i's taint reaches; the San
	// variant lists sinks reached only through an order sanitizer.
	argSinks    map[int]map[int]bool
	argSinksSan map[int]map[int]bool
}

type engine struct {
	prog      *Program
	nw        int // words per source bitset
	sources   []*Source
	sinks     []*Sink
	srcOf     map[*Value]*Source
	sinksByFn map[*Func][]*Sink
	orderMask []uint64 // bits of Order()-kind sources
	val       []*tset  // by Value.ID
	sinkTaint [][]uint64
	sums      map[*Func]*summary
	changed   bool
}

func newEngine(p *Program) *engine {
	return &engine{
		prog:      p,
		srcOf:     map[*Value]*Source{},
		sinksByFn: map[*Func][]*Sink{},
		sums:      map[*Func]*summary{},
	}
}

func (e *engine) run() {
	e.collectSources()
	e.collectSinks()
	e.nw = (len(e.sources) + 63) / 64
	if e.nw == 0 {
		e.nw = 1
	}
	e.orderMask = make([]uint64, e.nw)
	for _, s := range e.sources {
		if s.Kind.Order() {
			e.orderMask[s.ID/64] |= 1 << (s.ID % 64)
		}
	}
	e.val = make([]*tset, e.prog.nextID)
	e.sinkTaint = make([][]uint64, len(e.sinks))
	for i := range e.sinkTaint {
		e.sinkTaint[i] = make([]uint64, e.nw)
	}
	// The lattice is finite and every transfer is monotone, so this
	// terminates; the bound is a safety net only.
	for iter := 0; iter < 1000; iter++ {
		e.changed = false
		for _, fn := range e.prog.All {
			e.flowFn(fn)
		}
		if !e.changed {
			return
		}
	}
}

func (e *engine) t(v *Value) *tset {
	if v == nil {
		return &tset{src: make([]uint64, e.nw)}
	}
	if e.val[v.ID] == nil {
		e.val[v.ID] = &tset{src: make([]uint64, e.nw)}
	}
	return e.val[v.ID]
}

func (e *engine) or(dst, src *tset) {
	for i := range dst.src {
		if dst.src[i]|src.src[i] != dst.src[i] {
			dst.src[i] |= src.src[i]
			e.changed = true
		}
	}
	if dst.par|src.par != dst.par {
		dst.par |= src.par
		e.changed = true
	}
	if dst.parSan|src.parSan != dst.parSan {
		dst.parSan |= src.parSan
		e.changed = true
	}
}

// orSanitized folds src into dst through an order sanitizer: ordering
// sources are cleared and parameter channels are demoted to sanitized.
func (e *engine) orSanitized(dst, src *tset) {
	for i := range dst.src {
		add := src.src[i] &^ e.orderMask[i]
		if dst.src[i]|add != dst.src[i] {
			dst.src[i] |= add
			e.changed = true
		}
	}
	san := src.par | src.parSan
	if dst.parSan|san != dst.parSan {
		dst.parSan |= san
		e.changed = true
	}
}

// orSrcOnly folds only global source bits into dst, dropping parameter
// channels. Used where the parameters of the producing function are
// not the parameters of the consuming one (globals, free variables,
// closure results).
func (e *engine) orSrcOnly(dst, src *tset) {
	for i := range dst.src {
		if dst.src[i]|src.src[i] != dst.src[i] {
			dst.src[i] |= src.src[i]
			e.changed = true
		}
	}
}

func (e *engine) setSrcBit(dst *tset, id int) {
	w, b := id/64, uint(id%64)
	if dst.src[w]&(1<<b) == 0 {
		dst.src[w] |= 1 << b
		e.changed = true
	}
}

// subst instantiates a callee-side tset at a call site: parameter bits
// are replaced by the taint of the corresponding arguments.
func (e *engine) subst(dst *tset, from *tset, args []*Value) {
	e.orSrcOnly(dst, from)
	eachBit(from.par, func(i int) {
		if i < len(args) {
			e.or(dst, e.t(args[i]))
		}
	})
	eachBit(from.parSan, func(i int) {
		if i < len(args) {
			e.orSanitized(dst, e.t(args[i]))
		}
	})
}

func eachBit(mask uint64, f func(int)) {
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			f(i)
		}
		mask >>= 1
	}
}

func (e *engine) sum(fn *Func) *summary {
	s := e.sums[fn]
	if s == nil {
		s = &summary{
			stored:      make([]tset, len(fn.Params)),
			argSinks:    map[int]map[int]bool{},
			argSinksSan: map[int]map[int]bool{},
		}
		s.result.src = make([]uint64, e.nw)
		for i := range s.stored {
			s.stored[i].src = make([]uint64, e.nw)
		}
		e.sums[fn] = s
	}
	return s
}

func (e *engine) calleeFunc(callee *types.Func) *Func {
	if callee == nil {
		return nil
	}
	return e.prog.Funcs[callee.Origin()]
}

// ---- per-function propagation ----

func (e *engine) flowFn(fn *Func) {
	for _, v := range fn.Values {
		e.transfer(v)
	}
	s := e.sum(fn)
	for _, ret := range fn.Returns {
		for _, rv := range ret {
			e.or(&s.result, e.t(rv))
		}
	}
	paramIdx := map[*types.Var]int{}
	for i, pv := range fn.Params {
		paramIdx[pv.Var] = i
	}
	for _, v := range fn.Values {
		if (v.Op == OpStore || v.Op == OpMutate) && v.Var != nil {
			if pi, ok := paramIdx[v.Var]; ok {
				e.or(&s.stored[pi], e.t(v))
			}
		}
	}
	for _, sk := range e.sinksByFn[fn] {
		e.sinkArrive(sk.ID, e.t(sk.Value), fn)
	}
	// Sinks reachable through callee parameters: the argument taint
	// arrives at the callee's sink, transitively.
	for _, v := range fn.Values {
		if v.Op != OpCall {
			continue
		}
		cf := e.calleeFunc(v.Callee)
		if cf == nil {
			continue
		}
		cs := e.sum(cf)
		for pi, sinkIDs := range cs.argSinks {
			if pi >= len(v.Args) {
				continue
			}
			at := e.t(v.Args[pi])
			for sid := range sinkIDs {
				e.sinkArrive(sid, at, fn)
			}
		}
		for pi, sinkIDs := range cs.argSinksSan {
			if pi >= len(v.Args) {
				continue
			}
			san := &tset{src: make([]uint64, e.nw)}
			e.orSanitized(san, e.t(v.Args[pi]))
			for sid := range sinkIDs {
				e.sinkArrive(sid, san, fn)
			}
		}
	}
}

// sinkArrive records taint t reaching sink sid inside fn: global
// source bits become flows, parameter bits become entries in fn's own
// argSinks summary so callers propagate in turn.
func (e *engine) sinkArrive(sid int, t *tset, fn *Func) {
	st := e.sinkTaint[sid]
	for i := range st {
		if st[i]|t.src[i] != st[i] {
			st[i] |= t.src[i]
			e.changed = true
		}
	}
	s := e.sum(fn)
	eachBit(t.par, func(i int) {
		if s.argSinks[i] == nil {
			s.argSinks[i] = map[int]bool{}
		}
		if !s.argSinks[i][sid] {
			s.argSinks[i][sid] = true
			e.changed = true
		}
	})
	eachBit(t.parSan, func(i int) {
		if s.argSinksSan[i] == nil {
			s.argSinksSan[i] = map[int]bool{}
		}
		if !s.argSinksSan[i][sid] {
			s.argSinksSan[i][sid] = true
			e.changed = true
		}
	})
}

func (e *engine) transfer(v *Value) {
	d := e.t(v)
	switch v.Op {
	case OpParam:
		if v.AuxInt < 64 {
			if d.par&(1<<uint(v.AuxInt)) == 0 {
				d.par |= 1 << uint(v.AuxInt)
				e.changed = true
			}
		}
	case OpConst:
	case OpFreeVar:
		for _, a := range v.Args {
			e.orSrcOnly(d, e.t(a))
		}
	case OpGlobal:
		for _, w := range e.prog.globalWrites[v.Var] {
			e.orSrcOnly(d, e.t(w))
		}
	case OpClosure:
		if v.Closure != nil {
			e.orSrcOnly(d, &e.sum(v.Closure).result)
		}
	case OpPhi:
		for _, a := range v.Args {
			e.or(d, e.t(a))
		}
		for _, c := range v.Ctrl {
			e.or(d, e.t(c))
		}
	case OpExtract:
		e.or(d, e.t(v.Args[0]))
	case OpCall:
		e.transferCall(v, d)
	case OpMutate:
		e.transferMutate(v, d)
	default:
		for _, a := range v.Args {
			e.or(d, e.t(a))
		}
		for _, c := range v.Ctrl {
			e.or(d, e.t(c))
		}
	}
	if src := e.srcOf[v]; src != nil && !src.Suppressed {
		e.setSrcBit(d, src.ID)
	}
}

func (e *engine) transferCall(v *Value, d *tset) {
	if v.Callee != nil {
		if isOrderSanitizer(v.Callee) {
			for _, a := range v.Args {
				e.orSanitized(d, e.t(a))
			}
			return
		}
		if cf := e.calleeFunc(v.Callee); cf != nil {
			e.subst(d, &e.sum(cf).result, v.Args)
			return
		}
	}
	// Unknown or dynamic callee: assume any argument may flow to the
	// result (the dynamic callee value itself is Args[0]).
	for _, a := range v.Args {
		e.or(d, e.t(a))
	}
}

func (e *engine) transferMutate(v *Value, d *tset) {
	old := e.t(v.Args[0])
	c := v.Call
	if c != nil && c.Callee != nil && isOrderSanitizer(c.Callee) {
		e.orSanitized(d, old)
		return
	}
	e.or(d, old)
	if c == nil {
		return
	}
	if c.Callee != nil {
		if cf := e.calleeFunc(c.Callee); cf != nil {
			s := e.sum(cf)
			if v.ArgIndex >= 0 && v.ArgIndex < len(s.stored) {
				e.subst(d, &s.stored[v.ArgIndex], c.Args)
			}
			return
		}
	}
	// Unknown callee: anything passed to the call may have been
	// stored into this argument's referent.
	for _, a := range c.Args {
		e.or(d, e.t(a))
	}
}

// isOrderSanitizer reports whether a call to f re-determinizes the
// *order* of its (slice) argument: the sort and slices sorting
// functions. Value-kind taint (time, rand) passes through.
func isOrderSanitizer(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort":
		switch f.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch f.Name() {
		case "Sort", "SortFunc", "SortStableFunc", "Sorted", "SortedFunc", "SortedStableFunc":
			return true
		}
	}
	return false
}

// ---- source and sink discovery ----

// methodOn reports whether f is the method name on type
// pkgPath.typeName (pointer or value receiver).
func methodOn(f *types.Func, pkgPath, typeName, name string) bool {
	if f.Name() != name {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func pkgFunc(f *types.Func, pkgPath string, names ...string) bool {
	if f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if sig, _ := f.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

func (e *engine) collectSources() {
	// Parameters of closures passed to sync.Map.Range receive entries
	// in nondeterministic order, exactly like a map range.
	rangeParams := map[*Value]bool{}
	for _, fn := range e.prog.All {
		for _, v := range fn.Values {
			if v.Op != OpCall || v.Callee == nil || !methodOn(v.Callee, "sync", "Map", "Range") {
				continue
			}
			for _, a := range v.Args[1:] {
				if a.Op == OpClosure && a.Closure != nil {
					for _, pv := range a.Closure.Params {
						rangeParams[pv] = true
					}
				}
			}
		}
	}
	add := func(v *Value, fn *Func, kind SourceKind, desc string) {
		s := &Source{
			ID:    len(e.sources),
			Value: v,
			Kind:  kind,
			Desc:  desc,
			Pos:   v.Pos,
			Fn:    fn,
		}
		if f := e.prog.FileFor(fn, v.Pos); f != nil {
			s.Suppressed = lint.AnnotatedIn(e.prog.Fset(), f, v.Pos, "sorted")
		}
		e.sources = append(e.sources, s)
		e.srcOf[v] = s
	}
	for _, fn := range e.prog.All {
		for _, v := range fn.Values {
			switch v.Op {
			case OpRangeKey, OpRangeVal:
				switch v.Aux {
				case "map":
					add(v, fn, KindMapIter, "map iteration order")
				case "chan":
					add(v, fn, KindChanRecv, "channel receive ordering")
				}
			case OpSelect:
				if v.AuxInt >= 2 {
					add(v, fn, KindSelect, "select arm choice")
				}
			case OpRecv:
				add(v, fn, KindChanRecv, "channel receive ordering")
			case OpParam:
				if rangeParams[v] {
					add(v, fn, KindMapIter, "sync.Map.Range iteration order")
				}
			case OpCall:
				if v.Callee == nil {
					continue
				}
				switch {
				case pkgFunc(v.Callee, "time", "Now", "Since", "Until"):
					add(v, fn, KindTime, "wall-clock time ("+"time."+v.Callee.Name()+")")
				case isPkgRandSource(v.Callee):
					add(v, fn, KindRand, "unseeded math/rand ("+v.Callee.Name()+")")
				}
			}
		}
	}
}

// isPkgRandSource reports whether f is a package-level math/rand
// function backed by the shared, unseeded global source. Constructors
// are excluded: rand.New(rand.NewSource(seed)) is the deterministic
// idiom this analyzer steers code toward.
func isPkgRandSource(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	if pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2" {
		return false
	}
	if sig, _ := f.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return false
	}
	switch f.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

const schedPkgPath = "schedcomp/internal/sched"

// mechanismPkg reports whether fn lives in one of the schedule
// mechanism packages whose internals implement the sinks themselves.
func mechanismPkg(fn *Func) bool {
	if fn.Pkg == nil {
		return false
	}
	return fn.Pkg.Path == schedPkgPath || fn.Pkg.Path == "schedcomp/internal/pq"
}

func isPlacementType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Placement" && obj.Pkg() != nil && obj.Pkg().Path() == schedPkgPath
}

func (e *engine) collectSinks() {
	add := func(v *Value, fn *Func, pos token.Pos, desc string) {
		s := &Sink{ID: len(e.sinks), Value: v, Desc: desc, Pos: pos, Fn: fn}
		e.sinks = append(e.sinks, s)
		e.sinksByFn[fn] = append(e.sinksByFn[fn], s)
	}
	for _, fn := range e.prog.All {
		for _, v := range fn.Values {
			switch v.Op {
			case OpCall:
				if v.Callee == nil {
					continue
				}
				switch {
				case methodOn(v.Callee, schedPkgPath, "Placement", "Assign"):
					for _, a := range v.Args[1:] {
						add(a, fn, v.Pos, "sched.Placement.Assign")
					}
				case methodOn(v.Callee, "schedcomp/internal/pq", "Heap", "Push"):
					for _, a := range v.Args[1:] {
						add(a, fn, v.Pos, "pq.Heap.Push item")
					}
				case pkgFunc(v.Callee, "schedcomp/internal/pq", "NewFrom"):
					for _, a := range v.Args[1:] {
						add(a, fn, v.Pos, "pq.NewFrom item")
					}
				}
			case OpStore:
				// Direct Placement surgery outside the mechanism
				// packages. Inside sched/pq the public entry points
				// (Assign, Push, ...) are the sinks — modeled at their
				// call sites — so internal stores are not re-reported.
				if v.Var != nil && isPlacementType(v.Var.Type()) && !mechanismPkg(fn) {
					add(v, fn, v.Pos, "store into sched.Placement")
				}
			case OpComposite:
				if v.Type != nil && isPlacementType(v.Type) && len(v.Args) > 0 && !mechanismPkg(fn) {
					add(v, fn, v.Pos, "sched.Placement literal")
				}
			}
		}
	}
}

func (e *engine) result() *TaintResult {
	res := &TaintResult{Sources: e.sources, Sinks: e.sinks}
	for _, sk := range e.sinks {
		st := e.sinkTaint[sk.ID]
		for _, src := range e.sources {
			if st[src.ID/64]&(1<<uint(src.ID%64)) != 0 {
				res.Flows = append(res.Flows, &Flow{Source: src, Sink: sk})
			}
		}
	}
	sort.Slice(res.Flows, func(i, j int) bool {
		a, b := res.Flows[i], res.Flows[j]
		if a.Sink.Pos != b.Sink.Pos {
			return a.Sink.Pos < b.Sink.Pos
		}
		return a.Source.Pos < b.Source.Pos
	})
	return res
}
