// Package ssairloop holds functions whose control flow the ssair
// builder deliberately does not model precisely (goto loops); it is
// separate from ssairtest so the "no approximate fallbacks" invariant
// there stays intact.
package ssairloop

// GotoLoop builds a loop the CFG cannot represent (goto to a bare
// label): the builder marks the function Approx and the loop analysis
// must fall back to depth-conservative labeling (every block at least
// depth 1), because the invisible back edge may make any of it hot.
func GotoLoop(n int) int {
	s := 0
again:
	s += n * 13
	n--
	if n > 0 {
		goto again
	}
	return s
}
