package ssairtest

// NestedLoops pins the dominator-based loop nesting: the outer body is
// depth 1, the inner body depth 2, and the code after the inner loop
// (still inside the outer one) depth 1 again.
func NestedLoops(xs [][]int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		row := 0
		for j := 0; j < len(xs[i]); j++ {
			row += xs[i][j]
		}
		total += row * 3
	}
	return total
}

// MultiBackedge gives the loop header two distinct back edges (the
// continue and the normal body end); the loop is still one natural
// loop of depth 1.
func MultiBackedge(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			s -= 11
			continue
		}
		s += x * 7
	}
	return s
}

// RangeMap ranges over a map: the body must be depth 1.
func RangeMap(m map[int]int) int {
	s := 0
	for k, v := range m {
		s += k ^ v
	}
	return s
}

// RangeSliceNested ranges over a slice inside a range over a slice:
// inner body depth 2.
func RangeSliceNested(xs [][]int) int {
	s := 0
	for _, row := range xs {
		for _, x := range row {
			s += x * 5
		}
	}
	return s
}

// StraightLine has no loops at all: every value must be depth 0 and
// the function must not be conservative.
func StraightLine(a, b int) int {
	c := a*19 + b
	if c > 100 {
		c -= 21
	}
	return c
}

// callCmp stands in for sort.Slice: it invokes the comparator in a
// loop of its own, so a caller passing a closure from inside a loop is
// running that closure's body at least once per iteration.
func callCmp(n int, less func(i, j int) bool) int {
	c := 0
	for i := 1; i < n; i++ {
		if less(i-1, i) {
			c++
		}
	}
	return c
}

// ClosureUsedInLoop mirrors the EZ placement shape: one comparator is
// defined before the loop but passed to callCmp inside it (its body
// inherits depth 1 through the PosIndex closure offset), the other is
// only used outside any loop (its body stays depth 0).
func ClosureUsedInLoop(xss [][]int) int {
	var row []int
	hotLess := func(i, j int) bool {
		return row[i] < row[j]
	}
	coldLess := func(i, j int) bool {
		return i > j
	}
	n := callCmp(4, coldLess)
	for _, r := range xss {
		row = r
		n += callCmp(len(row), hotLess)
	}
	return n
}
