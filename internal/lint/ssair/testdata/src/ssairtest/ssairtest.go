// Package ssairtest holds small functions whose SSA shape the ssair
// builder tests pin down.
package ssairtest

// Sum has a loop-carried accumulator: s must become a phi in the
// loop header, and the addition must record loop depth 1.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Pick merges two versions of v under condition c: the merge phi must
// carry c as a control dependence.
func Pick(c bool) int {
	v := 1
	if c {
		v = 2
	}
	return v
}

// Counter returns a closure capturing n: the literal must become a
// child Func with a patched free-variable read.
func Counter() func() int {
	n := 0
	return func() int {
		n++
		return n
	}
}

// KeysOf ranges over a map: the range key is a nondeterminism source.
func KeysOf(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SizeOf ranges over a map but only counts, order-independently, and
// says so: the source must be marked suppressed.
func SizeOf(m map[int]string) int {
	n := 0
	for range m { //lint:sorted
		n++
	}
	return n
}

// Nested pins loop-depth accounting: the inner append sits at depth 2.
func Nested(rows [][]int) int {
	t := 0
	for _, r := range rows {
		var acc []int
		for _, x := range r {
			acc = append(acc, x)
		}
		t += len(acc)
	}
	return t
}

// Shuttle has a blocking select (no default): the choice must record
// both cases, the send and receive must be marked "select", and the
// value merged across the arms must be control-dependent on the choice.
func Shuttle(in, out chan int) int {
	t := 0
	select {
	case out <- 1:
		t = 1
	case v := <-in:
		t = v
	}
	return t
}

// TryPut has a select with a default clause: the choice is marked
// "default" and the send is marked "select-default" — the shape that
// distinguishes non-blocking admission from a blocking send.
func TryPut(out chan int) bool {
	select {
	case out <- 1:
		return true
	default:
		return false
	}
}

// Cleanup pins deferred- and go-statement call marking: the deferred
// call carries Aux "defer", the spawned one Aux "go".
func Cleanup(f, g func()) {
	defer f()
	go g()
}

// Explode pins builtin panic lowering: the operand feeds an OpPanic.
func Explode(msg string) {
	panic("explode: " + msg)
}

// Spin exercises the statements the builder must not choke on:
// labeled loops, switch with fallthrough, select, type switch, defer.
func Spin(ch chan int, xs []int) int {
	t := 0
	defer func() { t = 0 }()
outer:
	for i := 0; i < len(xs); i++ {
		switch xs[i] {
		case 0:
			continue outer
		case 1:
			t++
			fallthrough
		case 2:
			t += 2
		default:
			break outer
		}
	}
	select {
	case v := <-ch:
		t += v
	default:
	}
	var any interface{} = t
	switch w := any.(type) {
	case int:
		t += w
	default:
	}
	return t
}
