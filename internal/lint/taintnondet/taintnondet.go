// Package taintnondet is the interprocedural twin of mapiter: it
// tracks values derived from nondeterminism sources (map and
// sync.Map iteration order, channel receive ordering, select arm
// choice, wall-clock time, unseeded math/rand) through the SSA form of
// the whole module (internal/lint/ssair) and reports when one reaches
// a scheduling decision: a sched.Placement assignment, store, or
// literal, or an item pushed into a pq.Heap (whose Less ordering it
// would then control).
//
// Unlike the syntactic mapiter pass, flows survive function calls in
// both directions: a helper that returns map keys taints its callers,
// and a helper that assigns its argument into a Placement is a sink
// for its callers. Sorting (sort.* / slices.Sort*) re-determinizes
// ordering sources and clears their taint; //lint:sorted on the source
// line suppresses the source entirely.
package taintnondet

import (
	"path/filepath"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/ssair"
)

// Analyzer is the taintnondet pass.
var Analyzer = &lint.Analyzer{
	Name: "taintnondet",
	Doc: "track nondeterminism sources (map/sync.Map iteration, chan receive order, " +
		"select choice, time.Now, unseeded math/rand) through interprocedural SSA " +
		"dataflow and flag flows into scheduling sinks (sched.Placement, pq.Heap); " +
		"sort.*/slices.Sort* sanitize ordering taint, //lint:sorted suppresses a source",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Loader == nil {
		// Whole-program analysis needs the loader; a hand-constructed
		// pass gets the intraprocedural analyzers only.
		return nil
	}
	prog, err := ssair.For(pass)
	if err != nil {
		return err
	}
	res := prog.Taint()
	fset := prog.Fset()
	for _, fl := range res.Flows {
		// The program is shared across passes and only grows, so each
		// flow is claimed by the first pass that can see both ends.
		if !prog.FirstSighting("taintnondet", [2]int{fl.Source.ID, fl.Sink.ID}) {
			continue
		}
		sp := fset.Position(fl.Source.Pos)
		pass.Reportf(fl.Sink.Pos,
			"%s receives a value tainted by %s (%s:%d); sort, seed, or annotate the source with //lint:sorted",
			fl.Sink.Desc, fl.Source.Desc, filepath.Base(sp.Filename), sp.Line)
	}
	return nil
}
