package taintnondet_test

import (
	"path/filepath"
	"testing"

	"schedcomp/internal/lint"
	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/mapiter"
	"schedcomp/internal/lint/taintnondet"
)

func TestTaintNondet(t *testing.T) {
	linttest.Run(t, "testdata", taintnondet.Analyzer,
		"schedcomp/internal/taintdemo/flagged",
		"schedcomp/internal/taintdemo/inter",
		"schedcomp/internal/taintdemo/clean",
		"schedcomp/internal/taintdemo/suppressed",
	)
}

// TestMapiterCannotSeeInterproceduralFlow pins the claim that the
// inter-package flow flagged above is invisible to PR 1's syntactic
// mapiter pass: the map loop lives in a helper outside mapiter's
// scoped paths, and the scheduling package contains no map range at
// all, so mapiter reports nothing on either side.
func TestMapiterCannotSeeInterproceduralFlow(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.SrcRoots = []string{src}
	for _, path := range []string{
		"schedcomp/internal/taintdemo/keys",
		"schedcomp/internal/taintdemo/inter",
	} {
		pkg, err := loader.LoadPath(path)
		if err != nil {
			t.Fatal(err)
		}
		var diags []lint.Diagnostic
		pass := &lint.Pass{
			Analyzer:  mapiter.Analyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Loader:    loader,
			Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
		}
		if err := mapiter.Analyzer.Run(pass); err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("mapiter unexpectedly reported on %s: %s", path, d.Message)
		}
	}
}
