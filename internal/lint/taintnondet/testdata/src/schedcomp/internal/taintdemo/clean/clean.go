// Package clean mirrors the flagged cases with determinism restored;
// the analyzer must stay silent on every function.
package clean

import (
	"math/rand"
	"sort"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
	"schedcomp/internal/taintdemo/keys"
)

// SortedKeys sorts the key slice before assignment: the sort call is
// an order sanitizer and clears the map-iteration taint.
func SortedKeys(weight map[dag.NodeID]int) *sched.Placement {
	pl := sched.NewPlacement(len(weight))
	ks := make([]int, 0, len(weight))
	for v := range weight {
		ks = append(ks, int(v))
	}
	sort.Ints(ks)
	for p, v := range ks {
		pl.Assign(dag.NodeID(v), p%2)
	}
	return pl
}

// SortedHelper sanitizes the helper's interprocedural taint too.
func SortedHelper(weight map[dag.NodeID]int) *sched.Placement {
	pl := sched.NewPlacement(len(weight))
	ks := keys.Keys(weight)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for p, v := range ks {
		pl.Assign(v, p%2)
	}
	return pl
}

// SeededRand draws from an explicitly seeded generator — the
// deterministic idiom, not a source.
func SeededRand(n int) *sched.Placement {
	pl := sched.NewPlacement(n)
	rng := rand.New(rand.NewSource(1))
	for v := 0; v < n; v++ {
		pl.Assign(dag.NodeID(v), rng.Intn(2))
	}
	return pl
}
