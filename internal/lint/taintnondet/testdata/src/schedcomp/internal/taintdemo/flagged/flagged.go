// Package flagged exercises direct source-to-sink flows: every
// function here contains a nondeterminism bug the analyzer must see.
package flagged

import (
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/pq"
	"schedcomp/internal/sched"
)

// DirectMapIter is the classic bug: map iteration order decides which
// processor each node lands on.
func DirectMapIter(weight map[dag.NodeID]int) *sched.Placement {
	pl := sched.NewPlacement(len(weight))
	p := 0
	for v := range weight {
		pl.Assign(v, p) // want `taintnondet: sched.Placement.Assign receives a value tainted by map iteration order`
		p++
	}
	return pl
}

// TimeImplicit flows wall-clock time into the processor choice through
// a branch only — an implicit, control-dependence flow with no data
// edge from time.Now to the sink.
func TimeImplicit() *sched.Placement {
	pl := sched.NewPlacement(4)
	proc := 0
	if time.Now().UnixNano()%2 == 0 {
		proc = 1
	}
	pl.Assign(0, proc) // want `taintnondet: sched.Placement.Assign receives a value tainted by wall-clock time`
	return pl
}

// SelectArm assigns whichever worker answers first, so the placement
// depends on goroutine timing.
func SelectArm(a, b chan dag.NodeID) *sched.Placement {
	pl := sched.NewPlacement(2)
	select {
	case v := <-a:
		pl.Assign(v, 0) // want `taintnondet: sched.Placement.Assign receives a value tainted by channel receive ordering`
	case v := <-b:
		pl.Assign(v, 1) // want `taintnondet: sched.Placement.Assign receives a value tainted by channel receive ordering`
	}
	return pl
}

// HeapOrder pushes map-derived keys into a priority queue whose Less
// may tie, so pop order inherits the iteration order.
func HeapOrder(weight map[dag.NodeID]int) []dag.NodeID {
	h := pq.New(func(x, y dag.NodeID) bool { return weight[x] < weight[y] })
	for v := range weight {
		h.Push(v) // want `taintnondet: pq.Heap.Push item receives a value tainted by map iteration order`
	}
	out := make([]dag.NodeID, 0, h.Len())
	for !h.Empty() {
		out = append(out, h.Pop())
	}
	return out
}

// DirectStore bypasses Assign and writes the Proc slice with a
// map-ordered index.
func DirectStore(weight map[dag.NodeID]int) *sched.Placement {
	pl := sched.NewPlacement(len(weight))
	p := 0
	for v := range weight {
		pl.Proc[v] = p // want `taintnondet: store into sched.Placement receives a value tainted by map iteration order`
		p++
	}
	return pl
}
