// Package inter is the acceptance case for the interprocedural
// engine: the map iteration happens in another package (keys), and the
// nondeterministic ordering reaches the Placement only through the
// helper's return value. The syntactic mapiter analyzer reports
// nothing on either package (see TestMapiterCannotSeeInterproceduralFlow).
package inter

import (
	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
	"schedcomp/internal/taintdemo/keys"
)

// Build places nodes in helper-returned (map-ordered) sequence.
func Build(weight map[dag.NodeID]int) *sched.Placement {
	pl := sched.NewPlacement(len(weight))
	p := 0
	for _, v := range keys.Keys(weight) {
		pl.Assign(v, p%2) // want `taintnondet: sched.Placement.Assign receives a value tainted by map iteration order \(keys\.go:\d+\)`
		p++
	}
	return pl
}

// place is a same-package wrapper: the sink sits inside the helper,
// and the tainted value arrives through its parameter.
func place(pl *sched.Placement, v dag.NodeID, p int) {
	pl.Assign(v, p) // want `taintnondet: sched.Placement.Assign receives a value tainted by map iteration order`
}

// BuildWrapped reaches Assign only through the place wrapper above.
func BuildWrapped(weight map[dag.NodeID]int) *sched.Placement {
	pl := sched.NewPlacement(len(weight))
	p := 0
	for _, v := range keys.Keys(weight) {
		place(pl, v, p%2)
		p++
	}
	return pl
}
