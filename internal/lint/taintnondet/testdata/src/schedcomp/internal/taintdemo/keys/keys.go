// Package keys is a helper deliberately placed outside every
// mapiter-scoped path (internal/heuristics, internal/clan,
// internal/gen): its map loop is invisible to the syntactic analyzer,
// and only the interprocedural taint pass can connect it to the
// Placement built by its importer.
package keys

import "schedcomp/internal/dag"

// Keys returns the node keys of m in map-iteration (nondeterministic)
// order.
func Keys(m map[dag.NodeID]int) []dag.NodeID {
	out := make([]dag.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
