// Package suppressed exercises the //lint:sorted escape hatch: the
// map loop's result is order-independent, the author says so at the
// source, and no flow may be reported downstream of it.
package suppressed

import (
	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// CountHeavy counts heavy nodes — a fold that is independent of
// iteration order — and routes the count into the placement.
func CountHeavy(weight map[dag.NodeID]int) *sched.Placement {
	pl := sched.NewPlacement(len(weight))
	n := 0
	for _, w := range weight { //lint:sorted
		if w > 10 {
			n++
		}
	}
	pl.Assign(0, n%2)
	return pl
}
