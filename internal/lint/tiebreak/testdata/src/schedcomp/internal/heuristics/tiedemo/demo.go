// Package tiedemo exercises the tiebreak analyzer against the real
// internal/pq heap.
package tiedemo

import (
	"sort"

	"schedcomp/internal/pq"
)

type task struct {
	id   int
	prio int64
}

func singleFieldLiteral() *pq.Heap[task] {
	return pq.New(func(a, b task) bool { return a.prio < b.prio }) // want `tiebreak: pq comparator orders by the single key x.prio with no tie-break`
}

func singleFieldNamed() *pq.Heap[task] {
	less := func(a, b task) bool { return a.prio > b.prio }
	return pq.New(less) // want `tiebreak: pq comparator orders by the single key x.prio`
}

func singleIndexedKey(level []int64) *pq.Heap[int] {
	return pq.New(func(a, b int) bool { return level[a] < level[b] }) // want `tiebreak: pq comparator orders by the single key level\[x\]`
}

func ignoresArguments() *pq.Heap[task] {
	return pq.New(func(a, b task) bool { return true }) // want `tiebreak: pq comparator never compares its arguments`
}

func singleFieldNewFrom(items []task) *pq.Heap[task] {
	return pq.NewFrom(func(a, b task) bool { return a.prio < b.prio }, items...) // want `tiebreak: pq comparator orders by the single key x.prio`
}

func properTieBreak() *pq.Heap[task] {
	return pq.New(func(a, b task) bool {
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		return a.id < b.id
	})
}

func properTieBreakNamed(level []int64) *pq.Heap[int] {
	higher := func(a, b int) bool {
		if level[a] != level[b] {
			return level[a] > level[b]
		}
		return a < b
	}
	return pq.New(higher)
}

func identityOrder() *pq.Heap[int] {
	// Comparing the whole element is already a total order.
	return pq.New(func(a, b int) bool { return a < b })
}

func notAPQCall(ts []task) {
	// Single-field comparators passed elsewhere are out of scope.
	sort.Slice(ts, func(i, j int) bool { return ts[i].prio < ts[j].prio })
}
