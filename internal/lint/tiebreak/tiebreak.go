// Package tiebreak flags priority-queue comparators passed to
// internal/pq that order by a single projected key (one field, one
// index expression, one computed value) without a secondary
// comparison. Such a less function is not a total order: elements with
// equal keys sit in heap-internal order, which depends on insertion
// history and silently varies as the surrounding code evolves. Every
// comparator must break ties deterministically, typically by node ID.
//
// A comparator that compares the whole elements directly (e.g.
// func(a, b dag.NodeID) bool { return a < b }) is a total order and is
// accepted.
package tiebreak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"schedcomp/internal/lint"
)

// Analyzer is the tiebreak pass.
var Analyzer = &lint.Analyzer{
	Name: "tiebreak",
	Doc: "flag pq comparators that order by a single key with no deterministic " +
		"tie-break (non-total orders make heap pop order depend on insertion history)",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/pq") {
				return true
			}
			if (fn.Name() != "New" && fn.Name() != "NewFrom") || len(call.Args) == 0 {
				return true
			}
			lit := resolveFuncLit(pass, f, call.Args[0])
			if lit == nil {
				return true
			}
			checkComparator(pass, call.Args[0], lit)
			return true
		})
	}
	return nil
}

// resolveFuncLit returns the function literal behind arg: either the
// literal itself, or — when arg is an identifier — the literal it was
// bound to in a := / = / var statement in the same file.
func resolveFuncLit(pass *lint.Pass, f *ast.File, arg ast.Expr) *ast.FuncLit {
	switch x := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return x
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return nil
		}
		var found *ast.FuncLit
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || (pass.TypesInfo.Defs[id] != obj && pass.TypesInfo.Uses[id] != obj) {
						continue
					}
					if lit, ok := ast.Unparen(s.Rhs[i]).(*ast.FuncLit); ok {
						found = lit
					}
				}
			case *ast.ValueSpec:
				for i, id := range s.Names {
					if pass.TypesInfo.Defs[id] == obj && i < len(s.Values) {
						if lit, ok := ast.Unparen(s.Values[i]).(*ast.FuncLit); ok {
							found = lit
						}
					}
				}
			}
			return true
		})
		return found
	}
	return nil
}

func checkComparator(pass *lint.Pass, at ast.Expr, lit *ast.FuncLit) {
	params := paramObjects(pass.TypesInfo, lit)
	if len(params) == 0 {
		return
	}
	keys := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, operand := range []ast.Expr{be.X, be.Y} {
			if key, ok := normalize(pass.TypesInfo, operand, params); ok {
				keys[key] = true
			}
		}
		return true
	})
	switch {
	case len(keys) == 0:
		pass.Reportf(at.Pos(), "pq comparator never compares its arguments; the heap order is undefined")
	case len(keys) == 1 && !keys["#"]:
		var key string
		for k := range keys { // single entry
			key = k
		}
		pass.Reportf(at.Pos(),
			"pq comparator orders by the single key %s with no tie-break; compare a second field (e.g. node ID) so the order is total",
			strings.ReplaceAll(key, "#", "x"))
	}
}

func paramObjects(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// normalize renders operand with every comparator-parameter reference
// replaced by "#", so that a.prio and b.prio both become "#.prio".
// The second result is false when the operand does not mention any
// parameter (e.g. a literal threshold) and contributes no ordering key.
func normalize(info *types.Info, e ast.Expr, params map[types.Object]bool) (string, bool) {
	var b strings.Builder
	uses := false
	var render func(e ast.Expr)
	render = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Ident:
			if params[info.Uses[x]] {
				uses = true
				b.WriteString("#")
			} else {
				b.WriteString(x.Name)
			}
		case *ast.SelectorExpr:
			render(x.X)
			b.WriteString(".")
			b.WriteString(x.Sel.Name)
		case *ast.IndexExpr:
			render(x.X)
			b.WriteString("[")
			render(x.Index)
			b.WriteString("]")
		case *ast.CallExpr:
			render(x.Fun)
			b.WriteString("(")
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(",")
				}
				render(a)
			}
			b.WriteString(")")
		case *ast.ParenExpr:
			render(x.X)
		case *ast.UnaryExpr:
			b.WriteString(x.Op.String())
			render(x.X)
		case *ast.StarExpr:
			b.WriteString("*")
			render(x.X)
		case *ast.BinaryExpr:
			render(x.X)
			b.WriteString(x.Op.String())
			render(x.Y)
		case *ast.BasicLit:
			b.WriteString(x.Value)
		default:
			b.WriteString("?")
		}
	}
	render(e)
	return b.String(), uses
}
