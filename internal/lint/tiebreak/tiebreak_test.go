package tiebreak_test

import (
	"testing"

	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/tiebreak"
)

func TestTieBreak(t *testing.T) {
	linttest.Run(t, "testdata", tiebreak.Analyzer,
		"schedcomp/internal/heuristics/tiedemo",
	)
}
