// Package usdemo exercises the uncheckedschedule analyzer against the
// real internal/sched package.
package usdemo

import (
	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

func makespanWithoutValidation(g *dag.Graph, pl *sched.Placement) (int64, error) {
	s, err := sched.Build(g, pl) // want `uncheckedschedule: schedule s built by sched.Build never flows into Validate/ValidateWith`
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

func discardedBlank(g *dag.Graph, pl *sched.Placement) {
	_ = sched.MustBuild(g, pl) // want `uncheckedschedule: schedule built by sched.MustBuild is discarded without validation`
}

func discardedStatement(g *dag.Graph, pl *sched.Placement) {
	sched.MustBuild(g, pl) // want `uncheckedschedule: schedule built by sched.MustBuild is discarded without validation`
}

func methodReadOnly(g *dag.Graph, pl *sched.Placement) float64 {
	s := sched.MustBuild(g, pl) // want `uncheckedschedule: schedule s built by sched.MustBuild never flows into Validate/ValidateWith`
	return s.Speedup()
}

func validated(g *dag.Graph, pl *sched.Placement) (int64, error) {
	s, err := sched.Build(g, pl)
	if err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

func validatedWithModel(g *dag.Graph, pl *sched.Placement, delay sched.DelayFunc) (*sched.Schedule, error) {
	s, err := sched.BuildWith(g, pl, delay)
	if err != nil {
		return nil, err
	}
	if err := s.ValidateWith(delay); err != nil {
		return nil, err
	}
	return s, nil
}

func escapesByReturn(g *dag.Graph, pl *sched.Placement) (*sched.Schedule, error) {
	return sched.Build(g, pl)
}

func escapesToVariableReturn(g *dag.Graph, pl *sched.Placement) (*sched.Schedule, error) {
	s, err := sched.Build(g, pl)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func consume(*sched.Schedule) {}

func escapesAsArgument(g *dag.Graph, pl *sched.Placement) error {
	s, err := sched.Build(g, pl)
	if err != nil {
		return err
	}
	consume(s)
	return nil
}

func escapesIntoStruct(g *dag.Graph, pl *sched.Placement) error {
	var keep struct{ s *sched.Schedule }
	s, err := sched.Build(g, pl)
	if err != nil {
		return err
	}
	keep.s = s
	_ = keep
	return nil
}

func errorDiscardedStatement(s *sched.Schedule) {
	s.Validate() // want `uncheckedschedule: error from Validate is discarded`
}

func errorDiscardedBlank(s *sched.Schedule) {
	_ = s.ValidateWith(nil) // want `uncheckedschedule: error from ValidateWith is discarded`
}

func errorDiscardedCheck(pl *sched.Placement, g *dag.Graph) {
	pl.Check(g) // want `uncheckedschedule: error from Check is discarded`
}

func errorHandled(s *sched.Schedule) error {
	return s.Validate()
}
