// Package uncheckedschedule enforces that every timed schedule built
// by internal/sched (Build, BuildWith, MustBuild) is checked against
// the execution model before its timing is consumed. Within the
// building function the resulting *sched.Schedule must either flow
// into Validate/ValidateWith, or escape (be returned, stored, or
// passed to another function that can validate it). A schedule whose
// makespan is read locally without validation, or that is discarded
// outright, is flagged.
//
// The analyzer also flags discarded error results from the model
// checkers themselves: a bare statement (or all-blank assignment)
// calling Validate, ValidateWith or Check throws the verdict away.
package uncheckedschedule

import (
	"go/ast"
	"go/types"
	"strings"

	"schedcomp/internal/lint"
)

// Analyzer is the uncheckedschedule pass.
var Analyzer = &lint.Analyzer{
	Name: "uncheckedschedule",
	Doc: "flag schedules built via internal/sched whose result never reaches " +
		"Validate/ValidateWith in the building function, and discarded errors " +
		"from Validate/ValidateWith/Check",
	Run: run,
}

var builders = map[string]bool{"Build": true, "BuildWith": true, "MustBuild": true}
var checkers = map[string]bool{"Validate": true, "ValidateWith": true, "Check": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkBody(pass, fd.Body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	parents := parentMap(body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := builderCall(pass, call); fn != nil {
			checkBuilder(pass, body, parents, call, fn)
		}
		if fn := checkerCall(pass, call); fn != nil {
			checkDiscard(pass, parents, call, fn)
		}
		return true
	})
}

// builderCall resolves call to one of internal/sched's schedule
// builders, or nil.
func builderCall(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !builders[fn.Name()] {
		return nil
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/sched") {
		return nil
	}
	return fn
}

// checkerCall resolves call to a module function or method named
// Validate/ValidateWith/Check that returns an error, or nil.
func checkerCall(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !checkers[fn.Name()] {
		return nil
	}
	if !strings.HasPrefix(fn.Pkg().Path(), modulePrefix(pass.Pkg.Path())) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Implements(last, errorInterface()) {
		return nil
	}
	return fn
}

func modulePrefix(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// checkBuilder inspects what happens to the *Schedule produced by call.
func checkBuilder(pass *lint.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, call *ast.CallExpr, fn *types.Func) {
	parent := parents[call]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[p]
	}
	switch st := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "schedule built by %s.%s is discarded without validation", fn.Pkg().Name(), fn.Name())
	case *ast.AssignStmt:
		if len(st.Rhs) != 1 || st.Rhs[0] != call || len(st.Lhs) == 0 {
			return
		}
		id, ok := st.Lhs[0].(*ast.Ident)
		if !ok {
			return // assigned into a field/index: escapes
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "schedule built by %s.%s is discarded without validation", fn.Pkg().Name(), fn.Name())
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		validated, escaped := scheduleUse(pass, body, parents, st, obj)
		if !validated && !escaped {
			pass.Reportf(call.Pos(),
				"schedule %s built by %s.%s never flows into Validate/ValidateWith in this function; validate it before using its timing",
				id.Name, fn.Pkg().Name(), fn.Name())
		}
	default:
		// Returned directly, passed as an argument, etc.: the schedule
		// escapes and the responsibility moves with it.
	}
}

// scheduleUse classifies every use of obj in body outside its defining
// statement def: validated means it reaches Validate/ValidateWith;
// escaped means it leaves the function's hands (return, argument,
// alias, store, address-taken).
func scheduleUse(pass *lint.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, def ast.Stmt, obj types.Object) (validated, escaped bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if within(parents, id, def) {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SelectorExpr:
			if p.X == id {
				if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
					if p.Sel.Name == "Validate" || p.Sel.Name == "ValidateWith" {
						validated = true
						return true
					}
					return true // other method call: a read, not an escape
				}
			}
			// Field read (s.Makespan): a use, but neither validation nor escape.
		case *ast.CallExpr:
			for _, a := range p.Args {
				if a == id {
					escaped = true
				}
			}
		case *ast.ReturnStmt, *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt:
			escaped = true
		case *ast.UnaryExpr:
			escaped = true // address taken or similar
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == id {
					escaped = true // aliased into another variable or location
				}
			}
		case *ast.IndexExpr:
			if p.Index == id {
				return true
			}
			escaped = true
		}
		return true
	})
	return validated, escaped
}

// within reports whether node n (tracked through parents) lies inside stmt.
func within(parents map[ast.Node]ast.Node, n ast.Node, stmt ast.Stmt) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if p == stmt {
			return true
		}
	}
	return false
}

// checkDiscard flags bare or all-blank uses of a checker call's error.
func checkDiscard(pass *lint.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, fn *types.Func) {
	switch st := parents[call].(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "error from %s is discarded; the schedule may silently violate the execution model", fn.Name())
	case *ast.AssignStmt:
		if len(st.Rhs) != 1 || st.Rhs[0] != call {
			return
		}
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return
			}
		}
		pass.Reportf(call.Pos(), "error from %s is discarded; the schedule may silently violate the execution model", fn.Name())
	}
}

// parentMap records the parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
