package uncheckedschedule_test

import (
	"testing"

	"schedcomp/internal/lint/linttest"
	"schedcomp/internal/lint/uncheckedschedule"
)

func TestUncheckedSchedule(t *testing.T) {
	linttest.Run(t, "testdata", uncheckedschedule.Analyzer,
		"schedcomp/internal/heuristics/usdemo",
	)
}
