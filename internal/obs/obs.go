// Package obs is the testbed's dependency-free observability layer:
// atomic counters and gauges, fixed-bucket histograms, and lightweight
// hierarchical spans (span.go), all hanging off a Registry.
//
// The contract every instrumented hot path relies on:
//
//   - A disabled registry is a no-op. Counter.Add, Gauge.Set and
//     Histogram.Observe pay exactly one atomic load and never allocate,
//     so instrumentation can stay in place permanently — schedule
//     outputs and golden hashes are identical whether the registry is
//     on or off.
//   - Enabled updates are lock-free (atomic add / CAS) and never
//     allocate either, so concurrent workers can hammer the same
//     instrument without contention beyond the cache line.
//   - Instrument lookup (Registry.Counter etc.) takes a mutex and may
//     allocate; callers create instruments once at init time or cache
//     them, never per operation.
//
// Metric names follow Prometheus conventions: snake_case with a
// subsystem prefix (sched_, core_, gen_, dag_, serve_), counters end
// in _total, and time histograms end in _seconds. Labels are constant
// per instrument and must come from small fixed sets (heuristic names,
// analysis kinds, HTTP status classes) — never graph names, node IDs
// or anything unbounded.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// desc is the immutable identity of one instrument.
type desc struct {
	name   string
	help   string
	kind   metricKind
	labels string // rendered `k="v",k2="v2"` form, "" when unlabeled
}

// key uniquely identifies the instrument within a registry.
func (d desc) key() string { return d.name + "{" + d.labels + "}" }

// Registry holds a set of named instruments and an enabled flag the
// instruments consult on every update. The zero value is NOT usable;
// call NewRegistry. Most code uses the package-level Default registry,
// which starts disabled.
type Registry struct {
	enabled atomic.Bool
	mu      sync.Mutex
	byKey   map[string]interface{} // *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]interface{})}
}

var def = NewRegistry()

// Default returns the process-wide registry the internal packages
// instrument against. It starts disabled.
func Default() *Registry { return def }

// SetEnabled turns the registry's instruments on or off.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether updates are currently recorded.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// renderLabels validates and renders a label set in the caller's
// order. Keys must be non-empty and unique.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if l.Key == "" {
			panic("obs: empty label key")
		}
		for j := 0; j < i; j++ {
			if labels[j].Key == l.Key {
				panic("obs: duplicate label key " + l.Key)
			}
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// lookup returns the instrument under d's key, creating it with mk on
// first use. Re-registering the same name with a different kind is a
// programming error and panics.
func (r *Registry) lookup(d desc, mk func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[d.key()]; ok {
		if got := kindOf(m); got != d.kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s, was %s", d.name, d.kind, got))
		}
		return m
	}
	m := mk()
	r.byKey[d.key()] = m
	return m
}

func kindOf(m interface{}) metricKind {
	switch m.(type) {
	case *Counter:
		return kindCounter
	case *Gauge:
		return kindGauge
	default:
		return kindHistogram
	}
}

// Counter is a monotonically increasing uint64. The zero value of the
// pointer (nil) is a valid no-op instrument.
type Counter struct {
	v  atomic.Uint64
	on *atomic.Bool
	d  desc
}

// Counter returns (creating on first use) the counter with the given
// name and constant labels. Idempotent: the same identity yields the
// same instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	d := desc{name: name, help: help, kind: kindCounter, labels: renderLabels(labels)}
	return r.lookup(d, func() interface{} { return &Counter{on: &r.enabled, d: d} }).(*Counter)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op when the registry is disabled or c is nil.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that can go up and down.
type Gauge struct {
	v  atomic.Int64
	on *atomic.Bool
	d  desc
}

// Gauge returns (creating on first use) the gauge with the given name
// and constant labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	d := desc{name: name, help: help, kind: kindGauge, labels: renderLabels(labels)}
	return r.lookup(d, func() interface{} { return &Gauge{on: &r.enabled, d: d} }).(*Gauge)
}

// Set stores v. No-op when the registry is disabled or g is nil.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; an implicit +Inf bucket is always present) and tracks the
// running sum.
type Histogram struct {
	on     *atomic.Bool
	d      desc
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// DefTimeBuckets is the default bucket layout for _seconds histograms:
// 10µs to ~10s, roughly ×3 per step.
var DefTimeBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10,
}

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		panic("obs: LinearBuckets needs count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Histogram returns (creating on first use) the histogram with the
// given name, labels, and bucket upper bounds. buckets must be sorted
// ascending and non-empty; a trailing +Inf is optional (one is always
// maintained internally). Re-registering with different buckets
// panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram " + name + " buckets not strictly ascending")
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1]
	}
	d := desc{name: name, help: help, kind: kindHistogram, labels: renderLabels(labels)}
	h := r.lookup(d, func() interface{} {
		upper := append([]float64(nil), buckets...)
		return &Histogram{on: &r.enabled, d: d, upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
	}).(*Histogram)
	if len(h.upper) != len(buckets) {
		panic("obs: histogram " + name + " re-registered with different buckets")
	}
	return h
}

// Observe records one value. No-op when the registry is disabled or h
// is nil; never allocates.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	// Binary search for the first upper bound >= v; the +Inf bucket is
	// counts[len(upper)].
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format, sorted by name then label set, so the output is
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	keys := make([]string, 0, len(r.byKey))
	for k := range r.byKey { //lint:sorted
		keys = append(keys, k)
	}
	metrics := make([]interface{}, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		metrics[i] = r.byKey[k]
	}
	r.mu.Unlock()

	var b strings.Builder
	lastName := ""
	for _, m := range metrics {
		var d desc
		switch mm := m.(type) {
		case *Counter:
			d = mm.d
		case *Gauge:
			d = mm.d
		case *Histogram:
			d = mm.d
		}
		if d.name != lastName {
			if d.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", d.name, d.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", d.name, d.kind)
			lastName = d.name
		}
		switch mm := m.(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s %d\n", seriesName(d.name, d.labels), mm.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s %d\n", seriesName(d.name, d.labels), mm.Value())
		case *Histogram:
			writeHistogram(&b, mm)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesName renders name{labels} (or the bare name when unlabeled).
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withLe appends the le label to an existing (possibly empty) set.
func withLe(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func writeHistogram(b *strings.Builder, h *Histogram) {
	cum := uint64(0)
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(up, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", h.d.name, withLe(h.d.labels, le), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", h.d.name, withLe(h.d.labels, "+Inf"), h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", h.d.name, braced(h.d.labels), strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", h.d.name, braced(h.d.labels), h.Count())
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
