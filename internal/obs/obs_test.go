package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")

	// Disabled: updates are dropped.
	c.Inc()
	g.Set(7)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("disabled registry recorded: counter=%d gauge=%d", c.Value(), g.Value())
	}

	r.SetEnabled(true)
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}

	// Idempotent lookup returns the same instrument.
	if r.Counter("test_total", "a counter") != c {
		t.Fatal("re-lookup returned a different counter")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded values")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("test_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+3+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Bucket counts: <=1: 2 (0.5, 1), <=2: 1 (1.5), <=4: 1 (3), +Inf: 1 (100).
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("race_total", "")
	g := r.Gauge("race_gauge", "")
	h := r.Histogram("race_seconds", "", DefTimeBuckets)

	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != workers*each {
		t.Fatalf("bucket total = %d, want %d", cum, workers*each)
	}
}

// TestDisabledFastPathAllocs is the no-op contract: a disabled
// registry's hot-path updates must not allocate at all.
func TestDisabledFastPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", DefTimeBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.01)
	}); n != 0 {
		t.Fatalf("disabled instrument updates allocated %v allocs/op, want 0", n)
	}
	// Nil-span operations (the disabled-trace path) must also be free.
	var sp *Span
	var tr *Trace
	if n := testing.AllocsPerRun(1000, func() {
		s2 := tr.Span("x")
		s3 := sp.Span("y")
		s2.End()
		s3.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("nil span ops allocated %v allocs/op, want 0", n)
	}
}

// TestEnabledFastPathAllocs: enabled updates stay alloc-free too.
func TestEnabledFastPathAllocs(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("alloc_on_total", "")
	h := r.Histogram("alloc_on_seconds", "", DefTimeBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.01)
	}); n != 0 {
		t.Fatalf("enabled instrument updates allocated %v allocs/op, want 0", n)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("demo_total", "demo counter", L("kind", "a")).Add(3)
	r.Counter("demo_total", "demo counter", L("kind", "b")).Add(1)
	r.Gauge("demo_gauge", "demo gauge").Set(-4)
	h := r.Histogram("demo_seconds", "demo histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE demo_total counter",
		`demo_total{kind="a"} 3`,
		`demo_total{kind="b"} 1`,
		"# TYPE demo_gauge gauge",
		"demo_gauge -4",
		"# TYPE demo_seconds histogram",
		`demo_seconds_bucket{le="0.1"} 1`,
		`demo_seconds_bucket{le="1"} 2`,
		`demo_seconds_bucket{le="+Inf"} 3`,
		"demo_seconds_sum 5.55",
		"demo_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The two labeled counters must share one HELP/TYPE header.
	if strings.Count(out, "# TYPE demo_total counter") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", out)
	}
	// Deterministic output.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("WritePrometheus not deterministic")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("clash_total", "")
}

func TestHistogramLabeled(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lab_seconds", "", []float64{1}, L("heuristic", "MCP"))
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lab_seconds_bucket{heuristic="MCP",le="1"} 1`,
		`lab_seconds_sum{heuristic="MCP"} 0.5`,
		`lab_seconds_count{heuristic="MCP"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
