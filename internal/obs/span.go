package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Trace is one run's hierarchical span record. Spans are timestamped
// with monotonic offsets from the trace start, so wall-clock
// adjustments never produce negative durations.
//
// All methods are safe on a nil *Trace and nil *Span (they no-op and
// return nil), so instrumented code can thread an optional trace
// through without guarding every call site. Span creation allocates;
// traces are for per-run phase accounting, not per-task inner loops.
type Trace struct {
	mu    sync.Mutex
	name  string
	start time.Time
	roots []*Span
}

// Span is one timed phase. End it exactly once; child spans may be
// started from it while it is open.
type Span struct {
	tr       *Trace
	name     string
	start    time.Duration // offset from trace start
	end      time.Duration // -1 while open
	children []*Span
}

// NewTrace starts an empty trace clocked from now.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Name returns the trace name ("" for nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Span starts a new root-level span.
func (t *Trace) Span(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: time.Since(t.start), end: -1}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Span starts a child span under s.
func (s *Span) Span(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Since(s.tr.start), end: -1}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span. Ending an already-ended span is a no-op (the
// first End wins), so defer sp.End() composes with early explicit
// ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.tr.start)
	s.tr.mu.Lock()
	if s.end < 0 {
		s.end = now
	}
	s.tr.mu.Unlock()
}

// Duration returns the span's length (elapsed-so-far while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.durLocked()
}

func (s *Span) durLocked() time.Duration {
	if s.end < 0 {
		return time.Since(s.tr.start) - s.start
	}
	return s.end - s.start
}

// jsonSpan is the wire form of one span.
type jsonSpan struct {
	Name     string     `json:"name"`
	StartUs  int64      `json:"start_us"`
	DurUs    int64      `json:"dur_us"`
	Open     bool       `json:"open,omitempty"`
	Children []jsonSpan `json:"children,omitempty"`
}

type jsonTrace struct {
	Name  string     `json:"name"`
	Spans []jsonSpan `json:"spans"`
}

func (s *Span) toJSON() jsonSpan {
	js := jsonSpan{
		Name:    s.name,
		StartUs: s.start.Microseconds(),
		DurUs:   s.durLocked().Microseconds(),
		Open:    s.end < 0,
	}
	for _, c := range s.children {
		js.Children = append(js.Children, c.toJSON())
	}
	return js
}

// WriteJSON writes the trace as one JSON object.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	t.mu.Lock()
	jt := jsonTrace{Name: t.name}
	for _, s := range t.roots {
		jt.Spans = append(jt.Spans, s.toJSON())
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// Tree renders the trace as an indented flame-style text tree: one
// line per span with its duration and share of its parent.
func (t *Trace) Tree() string {
	if t == nil {
		return "(no trace)\n"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, s := range t.roots {
		total += s.durLocked()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s — %d root span(s), %v total\n", t.name, len(t.roots), total.Round(time.Microsecond))
	for _, s := range t.roots {
		s.tree(&b, 1, total)
	}
	return b.String()
}

func (s *Span) tree(b *strings.Builder, depth int, parent time.Duration) {
	d := s.durLocked()
	pct := ""
	if parent > 0 {
		pct = fmt.Sprintf(" %5.1f%%", 100*float64(d)/float64(parent))
	}
	open := ""
	if s.end < 0 {
		open = " (open)"
	}
	fmt.Fprintf(b, "%s%-*s %12v%s%s\n", strings.Repeat("  ", depth), 32-2*depth, s.name, d.Round(time.Microsecond), pct, open)
	for _, c := range s.children {
		c.tree(b, depth+1, d)
	}
}
