package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("run")
	a := tr.Span("phase-a")
	a1 := a.Span("step-1")
	a1.End()
	a2 := a.Span("step-2")
	a2.End()
	a.End()
	b := tr.Span("phase-b")
	b.End()

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name  string `json:"name"`
		Spans []struct {
			Name     string `json:"name"`
			DurUs    int64  `json:"dur_us"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("bad trace JSON: %v\n%s", err, sb.String())
	}
	if got.Name != "run" || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	if got.Spans[0].Name != "phase-a" || len(got.Spans[0].Children) != 2 {
		t.Fatalf("phase-a = %+v", got.Spans[0])
	}
	if got.Spans[0].Children[0].Name != "step-1" || got.Spans[0].Children[1].Name != "step-2" {
		t.Fatalf("children = %+v", got.Spans[0].Children)
	}
	if got.Spans[0].DurUs < 0 {
		t.Fatalf("negative duration %d", got.Spans[0].DurUs)
	}

	tree := tr.Tree()
	for _, want := range []string{"trace run", "phase-a", "step-1", "step-2", "phase-b"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanDoubleEndAndDuration(t *testing.T) {
	tr := NewTrace("d")
	s := tr.Span("work")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	time.Sleep(time.Millisecond)
	s.End() // second End must not move the boundary
	if got := s.Duration(); got != d {
		t.Fatalf("double End moved duration: %v -> %v", d, got)
	}
}

func TestNilTraceAndSpan(t *testing.T) {
	var tr *Trace
	sp := tr.Span("x")
	if sp != nil {
		t.Fatal("nil trace produced a span")
	}
	child := sp.Span("y")
	if child != nil {
		t.Fatal("nil span produced a child")
	}
	sp.End()
	child.End()
	if tr.Name() != "" || sp.Duration() != 0 {
		t.Fatal("nil accessors not zero")
	}
	if tr.Tree() != "(no trace)\n" {
		t.Fatalf("nil tree = %q", tr.Tree())
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "{}" {
		t.Fatalf("nil JSON = %q", sb.String())
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc")
	root := tr.Span("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := root.Span("child")
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), `"child"`); got != 8*200 {
		t.Fatalf("recorded %d child spans, want %d", got, 8*200)
	}
}

func TestOpenSpanMarked(t *testing.T) {
	tr := NewTrace("open")
	tr.Span("never-ended")
	tree := tr.Tree()
	if !strings.Contains(tree, "(open)") {
		t.Fatalf("open span not marked:\n%s", tree)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"open":true`) {
		t.Fatalf("open span not in JSON: %s", sb.String())
	}
}
